#!/usr/bin/env bash
# CI gate: formatting, lints, docs, release build, full test suite, bench
# compile smoke, examples, spec validation (scenario + ensemble, including
# the sparse-regime and sharded specs), the sparse-vs-dense and sharded
# equivalence proptests, the ensemble and sharded thread-count determinism
# diffs, the theory-conformance suite (budgeted, at two thread counts),
# experiment smoke, and the perf gates (batched-vs-scalar, sparse-vs-dense,
# and sharded-vs-dense).
# Run from the repository root. Mirrors the tier-1 verify
# (`cargo build --release && cargo test -q`) plus conformance checks.
# Fully offline: all external dependencies are vendored under `vendor/`.
#
# Stages (each wall-clock timed; summary table at the end):
#   fmt          cargo fmt --check
#   lint         clippy, rbb-lint (self-check + gate + JSON artifact), rustdoc
#   build        release build, bench compile smoke, examples
#   test         cargo test -q, engine-equivalence proptests, rbb-exp smoke
#   specs        committed specs run; ensemble + sharded determinism diffs
#   weighted     weighted regime: specs/weighted-*.json byte-diffed against
#                their goldens; unit-degeneration/obliviousness proptests
#   serve        rbb-serve daemon end to end: socket session, snapshot →
#                restore → resume byte-diffed against an uninterrupted run
#   conformance  theory-conformance suite at 1 and 4 threads (300s budget)
#   bench        rbb-bench perf gates
#
# `./ci.sh --stage <name>` runs one stage in isolation — e.g.
# `./ci.sh --stage bench` re-runs just the perf gates locally.
set -euo pipefail
cd "$(dirname "$0")"

usage() {
    echo "usage: ./ci.sh [--stage fmt|lint|build|test|specs|weighted|serve|conformance|bench]" >&2
    exit 2
}

STAGE=all
while [ $# -gt 0 ]; do
    case "$1" in
        --stage)
            shift
            [ $# -gt 0 ] || usage
            STAGE=$1
            ;;
        -h|--help) usage ;;
        *) usage ;;
    esac
    shift
done
case "${STAGE}" in
    all|fmt|lint|build|test|specs|weighted|serve|conformance|bench) ;;
    *) echo "unknown stage '${STAGE}'" >&2; usage ;;
esac

STAGE_NAMES=()
STAGE_TIMES=()

run_stage() {
    local name=$1
    if [ "${STAGE}" != all ] && [ "${STAGE}" != "${name}" ]; then
        return 0
    fi
    echo "=== stage: ${name} ==="
    local started=${SECONDS}
    "stage_${name}"
    local elapsed=$((SECONDS - started))
    STAGE_NAMES+=("${name}")
    STAGE_TIMES+=("${elapsed}")
}

stage_fmt() {
    echo "==> cargo fmt --check"
    cargo fmt --check
}

stage_lint() {
    echo "==> cargo clippy --workspace --all-targets -- -D warnings"
    cargo clippy --workspace --all-targets -- -D warnings

    echo "==> rbb-lint (token + semantic + repo-invariant rules, JSON artifact for CI)"
    cargo run -q --release -p rbb-lint -- --self-check
    mkdir -p target
    # One invocation serves both the text gate (exit 1 on findings) and the
    # JSON artifact: --json-out writes the report before the gate exits, so
    # the workflow can upload it from a failed run too. The default run
    # includes the repo-invariant family (spec-golden, experiment-doc,
    # engine-proptest, bench-schema) — no --no-repo here: skew between
    # committed artifacts must fail the gate.
    cargo run -q --release -p rbb-lint -- --json-out target/rbb-lint.json

    echo "==> cargo doc (RUSTDOCFLAGS=-D warnings)"
    RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q
}

stage_build() {
    echo "==> cargo build --release"
    cargo build --release

    echo "==> cargo bench --no-run (compile smoke)"
    cargo bench --workspace --no-run -q

    echo "==> examples"
    for example in quickstart process_zoo topology_tour adversarial_recovery token_scheduler exact_analysis; do
        echo "--> cargo run --release --example ${example}"
        cargo run -q --release --example "${example}" >/dev/null
    done
}

stage_test() {
    echo "==> cargo test -q"
    cargo test -q

    echo "==> engine equivalence proptests (sparse-vs-dense, sharded)"
    cargo test -q -p rbb --test proptest_sparse --test proptest_sharded

    echo "==> snapshot/restore round-trip proptests (dense, sparse, sharded)"
    cargo test -q -p rbb --test proptest_snapshot

    echo "==> RNG guard regression under the release profile"
    # debug_assert! would vanish here — these tests pin that the bound and
    # rate validations are hard asserts that survive optimized builds.
    cargo test -q --release -p rbb-core --lib rng::

    echo "==> rbb-exp --quick smoke (spec/ensemble-migrated set + e24-e26)"
    cargo run -q --release --bin rbb-exp -- --quick --no-write e01 e05 e09 e12 e13 e14 e16 e24 e25 e26 >/dev/null

    echo "==> rbb-exp rejects unknown experiment ids"
    if cargo run -q --release --bin rbb-exp -- --quick --no-write e01 e99 >/dev/null 2>&1; then
        echo "ERROR: rbb-exp accepted unknown id e99" >&2
        exit 1
    fi
}

stage_specs() {
    echo "==> committed specs validate and run (rbb sim / rbb ensemble, --quick)"
    for spec in specs/*.json; do
        case "$(basename "${spec}")" in
            ensemble-*) subcommand=ensemble ;;
            *)          subcommand=sim ;;
        esac
        echo "--> rbb ${subcommand} --spec ${spec} --quick"
        cargo run -q --release --bin rbb -- "${subcommand}" --spec "${spec}" --quick >/dev/null
    done

    echo "==> ensemble determinism gate: byte-identical reports at 1 vs 4 threads"
    RAYON_NUM_THREADS=1 cargo run -q --release --bin rbb -- ensemble \
        --spec specs/ensemble-stability.json > target/ensemble-t1.json
    RAYON_NUM_THREADS=4 cargo run -q --release --bin rbb -- ensemble \
        --spec specs/ensemble-stability.json > target/ensemble-t4.json
    if ! diff -q target/ensemble-t1.json target/ensemble-t4.json >/dev/null; then
        echo "ERROR: ensemble report differs between RAYON_NUM_THREADS=1 and =4" >&2
        diff target/ensemble-t1.json target/ensemble-t4.json >&2 || true
        exit 1
    fi

    echo "==> sharded determinism gate: byte-identical reports at 1 vs 4 threads (fixed shards: 4)"
    RAYON_NUM_THREADS=1 cargo run -q --release --bin rbb -- sim \
        --spec specs/sharded-large.json --quick > target/sharded-t1.out
    RAYON_NUM_THREADS=4 cargo run -q --release --bin rbb -- sim \
        --spec specs/sharded-large.json --quick > target/sharded-t4.out
    if ! diff -q target/sharded-t1.out target/sharded-t4.out >/dev/null; then
        echo "ERROR: sharded trial differs between RAYON_NUM_THREADS=1 and =4" >&2
        diff target/sharded-t1.out target/sharded-t4.out >&2 || true
        exit 1
    fi
}

stage_weighted() {
    # The weighted-regime gate: the committed weighted specs replay
    # byte-identically against their golden fixtures (same harness
    # convention as crates/cli/tests/golden_specs.rs — RAYON_NUM_THREADS
    # pinned), and the weighted equivalence laws (unit degeneration,
    # weight obliviousness, snapshot round-trip) hold across
    # dense/sparse/sharded.
    echo "==> weighted specs byte-diff against golden fixtures"
    local found=0
    for spec in specs/weighted-*.json specs/ensemble-weighted*.json; do
        [ -e "${spec}" ] || continue
        found=1
        local stem subcommand
        stem=$(basename "${spec}" .json)
        case "${stem}" in
            ensemble-*) subcommand=ensemble ;;
            *)          subcommand=sim ;;
        esac
        echo "--> rbb ${subcommand} --spec ${spec} --quick vs golden"
        RAYON_NUM_THREADS=2 cargo run -q --release --bin rbb -- \
            "${subcommand}" --spec "${spec}" --quick > "target/${stem}.out"
        if ! diff -q "target/${stem}.out" "crates/cli/tests/golden/${stem}.stdout" >/dev/null; then
            echo "ERROR: ${spec} output drifted from its golden fixture" >&2
            diff "target/${stem}.out" "crates/cli/tests/golden/${stem}.stdout" >&2 || true
            exit 1
        fi
    done
    if [ "${found}" -eq 0 ]; then
        echo "ERROR: no weighted specs found under specs/" >&2
        exit 1
    fi

    echo "==> weighted equivalence proptests (unit degeneration, obliviousness, snapshots)"
    cargo test -q -p rbb --test proptest_weighted
}

stage_serve() {
    # End-to-end daemon gate, per engine: (1) an uninterrupted stdio session
    # answers prefix+suffix requests; (2) session A on a Unix socket answers
    # the prefix and writes a snapshot; (3) a fresh daemon B restores the
    # snapshot and answers the suffix. The suffix draws plenty of RNG
    # (placements + whole rounds), so any drift in the restored stream state
    # breaks the byte-diffs below.
    echo "==> rbb-serve end to end: snapshot -> restore -> resume byte-diff"
    cargo build -q --release -p rbb-serve
    local bin=target/release/rbb-serve
    local dir=target/serve-stage
    rm -rf "${dir}"
    mkdir -p "${dir}"

    cat > "${dir}/prefix.req" <<'EOF'
{"op":"place"}
{"op":"step","rounds":40}
{"op":"place","count":5}
{"op":"query"}
{"op":"depart","bin":0}
EOF
    cat > "${dir}/suffix.req" <<'EOF'
{"op":"place"}
{"op":"step","rounds":25}
{"op":"place","count":7}
{"op":"query"}
{"op":"place"}
EOF

    local engine sock daemon
    for engine in dense sparse sharded; do
        local shard_args=()
        if [ "${engine}" = sharded ]; then
            shard_args=(--shards 4)
        fi

        echo "--> ${engine}: uninterrupted reference session (stdio)"
        cat "${dir}/prefix.req" "${dir}/suffix.req" \
            | "${bin}" --stdio --spec specs/serve-session.json --engine "${engine}" \
                  ${shard_args[@]+"${shard_args[@]}"} \
            > "${dir}/${engine}-full.out"

        echo "--> ${engine}: session A on a Unix socket, checkpoint, clean shutdown"
        sock="${dir}/${engine}.sock"
        "${bin}" --socket "${sock}" --spec specs/serve-session.json --engine "${engine}" \
            ${shard_args[@]+"${shard_args[@]}"} &
        daemon=$!
        for _ in $(seq 100); do
            [ -S "${sock}" ] && break
            sleep 0.1
        done
        [ -S "${sock}" ] || { echo "ERROR: ${engine} daemon socket never appeared" >&2; exit 1; }
        { cat "${dir}/prefix.req"
          echo "{\"op\":\"snapshot\",\"path\":\"${dir}/${engine}.snap\"}"
          echo '{"op":"shutdown"}'
        } | "${bin}" --connect "${sock}" > "${dir}/${engine}-a.out"
        wait "${daemon}" || { echo "ERROR: ${engine} daemon exited non-zero" >&2; exit 1; }

        echo "--> ${engine}: session B restores the checkpoint and resumes"
        # Deliberately started on a tiny default engine: restore must replace
        # it wholesale with the checkpointed ${engine} state.
        { echo "{\"op\":\"restore\",\"path\":\"${dir}/${engine}.snap\"}"
          cat "${dir}/suffix.req"
          echo '{"op":"shutdown"}'
        } | "${bin}" --stdio --n 8 --seed 999 > "${dir}/${engine}-b.out"

        # Prefix responses: uninterrupted run vs session A, byte-identical.
        if ! diff <(head -n 5 "${dir}/${engine}-full.out") \
                  <(head -n 5 "${dir}/${engine}-a.out") >/dev/null; then
            echo "ERROR: ${engine} prefix responses diverged (full vs session A)" >&2
            diff <(head -n 5 "${dir}/${engine}-full.out") \
                 <(head -n 5 "${dir}/${engine}-a.out") >&2 || true
            exit 1
        fi
        # Suffix responses: uninterrupted run vs restored session B (B's
        # line 1 is the restore ack, line 7 the shutdown ack).
        if ! diff <(tail -n 5 "${dir}/${engine}-full.out") \
                  <(sed -n '2,6p' "${dir}/${engine}-b.out") >/dev/null; then
            echo "ERROR: ${engine} resumed responses diverged (full vs session B)" >&2
            diff <(tail -n 5 "${dir}/${engine}-full.out") \
                 <(sed -n '2,6p' "${dir}/${engine}-b.out") >&2 || true
            exit 1
        fi
        echo "    ${engine}: snapshot -> restore -> resume is byte-identical"
    done
}

stage_conformance() {
    echo "==> theory-conformance suite (named group, wall-clock budget 300s)"
    local started=${SECONDS}
    RAYON_NUM_THREADS=1 cargo test -q -p rbb --test conformance_theory --test thread_invariance
    RAYON_NUM_THREADS=4 cargo test -q -p rbb --test conformance_theory --test thread_invariance
    local elapsed=$((SECONDS - started))
    echo "    conformance suite took ${elapsed}s"
    if [ "${elapsed}" -gt 300 ]; then
        echo "ERROR: conformance suite exceeded its 300s wall-clock budget" >&2
        exit 1
    fi
}

stage_bench() {
    # The gate writes its quick-profile report to an untracked path so it never
    # clobbers the committed full-profile BENCH.json snapshot (refresh that one
    # deliberately with `cargo run --release --bin rbb-bench -- --json BENCH.json`).
    # Sparse gate: measured ~30x at m/n = 1/1024 (quick profile); 3x leaves a wide
    # margin for noisy machines while still failing on any real regression.
    # Sharded gate: a parallel-scaling assertion (4 shards, n = 10^7); rbb-bench
    # enforces the 2x threshold when the machine has >= 4 cores and otherwise
    # prints the measured ratio and skips loudly (it still lands in BENCH.json),
    # because fewer cores than shards cannot physically express the speedup.
    echo "==> rbb-bench perf gates (batched >= 1.5x scalar, sparse >= 3x dense, sharded >= 2x dense)"
    cargo run -q --release --bin rbb-bench -- --quick --json target/BENCH.json \
        --min-engine-speedup 1.5 --min-sparse-speedup 3.0 --min-sharded-speedup 2.0
    # Weighted-unit gate: the unit fast path through the weighted constructor
    # must stay within 5% of the batched kernel (same workload) — the weighted
    # layer is free when unused, and this keeps it that way. A 5% budget needs
    # the interleaved full-profile pair at a healthy rep count; the quick
    # profile's sub-ms iterations are scheduler noise at that resolution.
    echo "==> rbb-bench weighted-unit neutrality gate (>= 0.95x batched, interleaved pair)"
    cargo run -q --release --bin rbb-bench -- --only engine/weighted-unit --reps 25 \
        --min-weighted-unit-ratio 0.95
}

run_stage fmt
run_stage lint
run_stage build
run_stage test
run_stage specs
run_stage weighted
run_stage serve
run_stage conformance
run_stage bench

echo ""
echo "==> stage timings"
for i in "${!STAGE_NAMES[@]}"; do
    printf '    %-12s %4ss\n' "${STAGE_NAMES[$i]}" "${STAGE_TIMES[$i]}"
done

echo "CI OK"
