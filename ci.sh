#!/usr/bin/env bash
# CI gate: formatting, lints, release build, full test suite, and examples.
# Run from the repository root. Mirrors the tier-1 verify
# (`cargo build --release && cargo test -q`) plus conformance checks.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> examples"
for example in quickstart process_zoo topology_tour adversarial_recovery token_scheduler exact_analysis; do
    echo "--> cargo run --release --example ${example}"
    cargo run -q --release --example "${example}" >/dev/null
done

echo "CI OK"
