#!/usr/bin/env bash
# CI gate: formatting, lints, docs, release build, full test suite, bench
# compile smoke, examples, spec validation (scenario + ensemble, including
# the sparse-regime specs), the sparse-vs-dense equivalence proptests, the
# ensemble thread-count determinism diff, the theory-conformance suite
# (budgeted, at two thread counts), experiment smoke, and the perf gates
# (batched-vs-scalar and sparse-vs-dense).
# Run from the repository root. Mirrors the tier-1 verify
# (`cargo build --release && cargo test -q`) plus conformance checks.
# Fully offline: all external dependencies are vendored under `vendor/`.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> rbb-lint (repo-invariant static analysis, JSON artifact for CI)"
cargo run -q --release -p rbb-lint -- --self-check
mkdir -p target
# The JSON artifact is written even when findings exist (exit 1), so the
# workflow can upload it from a failed run; the text invocation is the gate.
cargo run -q --release -p rbb-lint -- --format json > target/rbb-lint.json || true
cargo run -q --release -p rbb-lint

echo "==> cargo doc (RUSTDOCFLAGS=-D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo bench --no-run (compile smoke)"
cargo bench --workspace --no-run -q

echo "==> examples"
for example in quickstart process_zoo topology_tour adversarial_recovery token_scheduler exact_analysis; do
    echo "--> cargo run --release --example ${example}"
    cargo run -q --release --example "${example}" >/dev/null
done

echo "==> committed specs validate and run (rbb sim / rbb ensemble, --quick)"
for spec in specs/*.json; do
    case "$(basename "${spec}")" in
        ensemble-*) subcommand=ensemble ;;
        *)          subcommand=sim ;;
    esac
    echo "--> rbb ${subcommand} --spec ${spec} --quick"
    cargo run -q --release --bin rbb -- "${subcommand}" --spec "${spec}" --quick >/dev/null
done

echo "==> ensemble determinism gate: byte-identical reports at 1 vs 4 threads"
RAYON_NUM_THREADS=1 cargo run -q --release --bin rbb -- ensemble \
    --spec specs/ensemble-stability.json > target/ensemble-t1.json
RAYON_NUM_THREADS=4 cargo run -q --release --bin rbb -- ensemble \
    --spec specs/ensemble-stability.json > target/ensemble-t4.json
if ! diff -q target/ensemble-t1.json target/ensemble-t4.json >/dev/null; then
    echo "ERROR: ensemble report differs between RAYON_NUM_THREADS=1 and =4" >&2
    diff target/ensemble-t1.json target/ensemble-t4.json >&2 || true
    exit 1
fi

echo "==> sparse-vs-dense engine equivalence proptests"
cargo test -q -p rbb --test proptest_sparse

echo "==> theory-conformance suite (named group, wall-clock budget 300s)"
conformance_started=${SECONDS}
RAYON_NUM_THREADS=1 cargo test -q -p rbb --test conformance_theory --test thread_invariance
RAYON_NUM_THREADS=4 cargo test -q -p rbb --test conformance_theory --test thread_invariance
conformance_elapsed=$((SECONDS - conformance_started))
echo "    conformance suite took ${conformance_elapsed}s"
if [ "${conformance_elapsed}" -gt 300 ]; then
    echo "ERROR: conformance suite exceeded its 300s wall-clock budget" >&2
    exit 1
fi

echo "==> rbb-exp --quick smoke (spec/ensemble-migrated set + e24 + sparse-regime e25)"
cargo run -q --release --bin rbb-exp -- --quick --no-write e01 e05 e09 e12 e13 e14 e16 e24 e25 >/dev/null

echo "==> rbb-exp rejects unknown experiment ids"
if cargo run -q --release --bin rbb-exp -- --quick --no-write e01 e99 >/dev/null 2>&1; then
    echo "ERROR: rbb-exp accepted unknown id e99" >&2
    exit 1
fi

# The gate writes its quick-profile report to an untracked path so it never
# clobbers the committed full-profile BENCH.json snapshot (refresh that one
# deliberately with `cargo run --release --bin rbb-bench -- --json BENCH.json`).
# Sparse gate: measured ~30x at m/n = 1/1024 (quick profile); 3x leaves a wide
# margin for noisy machines while still failing on any real regression.
echo "==> rbb-bench perf gates (batched >= 1.5x scalar, sparse >= 3x dense at m << n)"
cargo run -q --release --bin rbb-bench -- --quick --json target/BENCH.json \
    --min-engine-speedup 1.5 --min-sparse-speedup 3.0

echo "CI OK"
