//! Thread-count invariance: ensembles and parallel sweeps return — and
//! render — byte-identical results no matter how many workers the
//! scheduler uses.
//!
//! The vendored rayon honors `RAYON_NUM_THREADS` per fan-out, so one test
//! can exercise several worker counts in-process. Everything lives in a
//! single `#[test]` because the environment variable is process-global;
//! `ci.sh` additionally runs the whole suite under `RAYON_NUM_THREADS=1`
//! and `=4` and diffs the `rbb ensemble` CLI output.

use rbb_sim::{sweep_par, EnsembleSpec, MetricKind, MetricSpec, ScenarioSpec, SeedTree};

fn ensemble_report_json() -> String {
    let scenario = ScenarioSpec::builder(128)
        .name("thread-invariance")
        .horizon_rounds(400)
        .build();
    EnsembleSpec::new(scenario, 0xBEEF, 64)
        .with_metrics(vec![
            MetricSpec::with_thresholds(MetricKind::WindowMaxLoad, vec![10.0, 20.0]),
            MetricSpec::plain(MetricKind::MeanRoundMax),
            MetricSpec::plain(MetricKind::MinEmptyBins),
        ])
        .run()
        .unwrap()
        .to_json()
}

/// The committed sparse-regime ensemble (`specs/ensemble-sparse.json`),
/// loaded from disk so this test and the CI spec validation can never
/// drift apart. Horizon trimmed to keep the three-thread-count run cheap.
fn sparse_ensemble_report_json() -> String {
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../specs/ensemble-sparse.json");
    let text = std::fs::read_to_string(&path).expect("committed sparse ensemble spec");
    let mut spec: EnsembleSpec = serde_json::from_str(&text).expect("spec parses");
    assert_eq!(
        spec.scenario.resolved_engine(),
        rbb_sim::EngineSpec::Sparse,
        "committed spec must exercise the sparse engine"
    );
    spec.scenario.horizon = rbb_sim::HorizonSpec::Rounds { rounds: 300 };
    spec.run().unwrap().to_json()
}

/// The committed sharded single-trial spec (`specs/sharded-large.json`),
/// loaded from disk like the sparse ensemble above. At n = 10^6 the engine
/// takes its thread-pool round path, so this pins the sharded determinism
/// contract — fixed shard count ⇒ bit-identical trajectory at any worker
/// count — on the exact spec `ci.sh` diffs at the CLI level. Horizon
/// trimmed to keep the three-thread-count run cheap.
fn sharded_trial_digest() -> (rbb_sim::ScenarioOutcome, rbb_core::config::Config) {
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../specs/sharded-large.json");
    let text = std::fs::read_to_string(&path).expect("committed sharded spec");
    let mut spec: rbb_sim::ScenarioSpec = serde_json::from_str(&text).expect("spec parses");
    assert_eq!(
        spec.resolved_engine(),
        rbb_sim::EngineSpec::Sharded,
        "committed spec must exercise the sharded engine"
    );
    spec.horizon = rbb_sim::HorizonSpec::Rounds { rounds: 40 };
    let mut scenario = spec.scenario().expect("sharded scenario builds");
    let outcome = scenario.run();
    (outcome, scenario.engine().config().clone())
}

fn sweep_result() -> Vec<(usize, Vec<u64>)> {
    sweep_par(
        SeedTree::new(0xF00D),
        &[16usize, 32, 64],
        8,
        |p| format!("n{p}"),
        |_, _, mut rng| rng.next_u64(),
    )
}

#[test]
fn ensemble_and_sweep_are_byte_identical_across_thread_counts() {
    let mut reports = Vec::new();
    let mut sparse_reports = Vec::new();
    let mut sharded_digests = Vec::new();
    let mut sweeps = Vec::new();
    for threads in ["1", "2", "4"] {
        std::env::set_var("RAYON_NUM_THREADS", threads);
        assert_eq!(
            rayon::current_num_threads(),
            threads.parse::<usize>().unwrap()
        );
        reports.push(ensemble_report_json());
        sparse_reports.push(sparse_ensemble_report_json());
        sharded_digests.push(sharded_trial_digest());
        sweeps.push(sweep_result());
    }
    std::env::remove_var("RAYON_NUM_THREADS");

    assert_eq!(
        reports[0], reports[1],
        "ensemble report differs between 1 and 2 threads"
    );
    assert_eq!(
        reports[0], reports[2],
        "ensemble report differs between 1 and 4 threads"
    );
    assert_eq!(
        sparse_reports[0], sparse_reports[1],
        "sparse ensemble report differs between 1 and 2 threads"
    );
    assert_eq!(
        sparse_reports[0], sparse_reports[2],
        "sparse ensemble report differs between 1 and 4 threads"
    );
    assert_eq!(
        sharded_digests[0], sharded_digests[1],
        "sharded trial differs between 1 and 2 threads"
    );
    assert_eq!(
        sharded_digests[0], sharded_digests[2],
        "sharded trial differs between 1 and 4 threads"
    );
    assert_eq!(sweeps[0], sweeps[1]);
    assert_eq!(sweeps[0], sweeps[2]);

    // And the unconstrained default matches the pinned runs too.
    assert_eq!(reports[0], ensemble_report_json());
    assert_eq!(sparse_reports[0], sparse_ensemble_report_json());
    assert_eq!(sweeps[0], sweep_result());
}
