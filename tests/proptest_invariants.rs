//! Property-based tests on the core invariants (proptest).

use proptest::prelude::*;

use rbb_core::ball_process::BallProcess;
use rbb_core::config::Config;
use rbb_core::coupling::CoupledRun;
use rbb_core::engine::Engine;
use rbb_core::exact::{compositions, multinomial_probability, transition_distribution};
use rbb_core::process::LoadProcess;
use rbb_core::rng::Xoshiro256pp;
use rbb_core::sampling::{binomial, random_assignment};
use rbb_core::strategy::QueueStrategy;
use rbb_stats::{quantile, IntHistogram, Summary};

/// Arbitrary small configuration: n bins, m balls placed by seed.
fn arb_config() -> impl Strategy<Value = (Config, u64)> {
    (2usize..40, 0u64..80, any::<u64>()).prop_map(|(n, m, seed)| {
        let mut rng = Xoshiro256pp::seed_from(seed);
        (Config::from_loads(random_assignment(&mut rng, n, m)), seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Ball count is conserved by any number of rounds from any start.
    #[test]
    fn load_process_conserves_mass((config, seed) in arb_config(), rounds in 0u64..200) {
        let m = config.total_balls();
        let mut p = LoadProcess::new(config, Xoshiro256pp::seed_from(seed ^ 0xA5));
        p.run_silent(rounds);
        prop_assert_eq!(p.config().total_balls(), m);
    }

    /// The ball-identity engine conserves mass and stays internally
    /// consistent under every strategy.
    #[test]
    fn ball_process_consistent((config, seed) in arb_config(), rounds in 0u64..100,
                               strat_idx in 0usize..3) {
        let strategy = QueueStrategy::ALL[strat_idx];
        let m = config.total_balls();
        let mut p = BallProcess::new(config, strategy, Xoshiro256pp::seed_from(seed ^ 0xB6));
        for _ in 0..rounds {
            p.step();
        }
        prop_assert!(p.validate().is_ok());
        prop_assert_eq!(p.config().total_balls(), m);
    }

    /// FIFO and LIFO produce identical load trajectories under a shared
    /// seed (strategy obliviousness at the law level, pinned exactly).
    #[test]
    fn fifo_lifo_trajectories_identical(n in 2usize..50, seed in any::<u64>(), rounds in 1u64..60) {
        let mut fifo = BallProcess::new(
            Config::one_per_bin(n), QueueStrategy::Fifo, Xoshiro256pp::seed_from(seed));
        let mut lifo = BallProcess::new(
            Config::one_per_bin(n), QueueStrategy::Lifo, Xoshiro256pp::seed_from(seed));
        for _ in 0..rounds {
            fifo.step();
            lifo.step();
        }
        prop_assert_eq!(fifo.config(), lifo.config());
    }

    /// Empty bins never fall below the pigeonhole floor: when m ≤ n,
    /// congested bins never outnumber empty bins (the Lemma-1 structure).
    #[test]
    fn pigeonhole_structure_invariant(n in 2usize..60, seed in any::<u64>(), rounds in 0u64..100) {
        let mut rng = Xoshiro256pp::seed_from(seed);
        let config = Config::from_loads(random_assignment(&mut rng, n, n as u64));
        let mut p = LoadProcess::new(config, rng);
        for _ in 0..rounds {
            p.step();
            prop_assert!(p.config().congested_bins() <= p.config().empty_bins());
        }
    }

    /// The Lemma-3 coupling certifies domination for every valid start.
    #[test]
    fn coupling_domination(n in 8usize..64, seed in any::<u64>(), rounds in 1u64..80) {
        let mut rng = Xoshiro256pp::seed_from(seed);
        // Rejection-sample a start with ≥ n/4 empty bins.
        let config = loop {
            let c = Config::from_loads(random_assignment(&mut rng, n, n as u64));
            if 4 * c.empty_bins() >= n {
                break c;
            }
        };
        let report = CoupledRun::new(config, seed).unwrap().run(rounds);
        prop_assert!(report.domination_certified());
        if report.case_ii_rounds == 0 {
            prop_assert!(report.tetris_window_max >= report.original_window_max);
        }
    }

    /// Binomial sampler: always within [0, n], matches Bernoulli-sum law on
    /// the mean for random parameters.
    #[test]
    fn binomial_in_range(n in 0u64..200, p in 0.0f64..=1.0, seed in any::<u64>()) {
        let mut rng = Xoshiro256pp::seed_from(seed);
        let x = binomial(&mut rng, n, p);
        prop_assert!(x <= n);
    }

    /// Exact-kernel rows are probability distributions that conserve mass,
    /// for any small configuration.
    #[test]
    fn exact_transition_rows_stochastic(q in proptest::collection::vec(0u32..5, 2..5)) {
        let m: u32 = q.iter().sum();
        let dist = transition_distribution(&q);
        let total: f64 = dist.iter().map(|(_, p)| p).sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "row sums to {}", total);
        for (next, p) in &dist {
            prop_assert!(*p >= 0.0);
            prop_assert_eq!(next.iter().sum::<u32>(), m);
        }
    }

    /// Multinomial probabilities over all compositions sum to 1.
    #[test]
    fn multinomial_normalizes(h in 0u32..7, n in 1usize..5) {
        let total: f64 = compositions(h, n)
            .iter()
            .map(|a| multinomial_probability(a, n))
            .sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    /// Histogram tail/pmf/quantile are mutually consistent.
    #[test]
    fn histogram_consistency(values in proptest::collection::vec(0usize..30, 1..200)) {
        let hist: IntHistogram = values.iter().copied().collect();
        prop_assert_eq!(hist.total() as usize, values.len());
        // pmf sums to 1.
        let max = hist.max_value().unwrap();
        let pmf_sum: f64 = (0..=max).map(|v| hist.pmf(v)).sum();
        prop_assert!((pmf_sum - 1.0).abs() < 1e-9);
        // tail(0) = 1.
        prop_assert!((hist.tail(0) - 1.0).abs() < 1e-12);
        // median quantile is an observed value.
        let med = hist.quantile(0.5).unwrap();
        prop_assert!(values.contains(&med));
    }

    /// Summary matches a direct two-pass computation.
    #[test]
    fn summary_matches_two_pass(values in proptest::collection::vec(-1e6f64..1e6, 2..100)) {
        let s = Summary::from_slice(&values);
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let var = values.iter().map(|x| (x - mean).powi(2)).sum::<f64>()
            / (values.len() - 1) as f64;
        prop_assert!((s.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert!((s.variance() - var).abs() < 1e-5 * (1.0 + var));
    }

    /// Quantiles are monotone in q and bracketed by min/max.
    #[test]
    fn quantiles_monotone(values in proptest::collection::vec(-1e3f64..1e3, 1..60),
                          q1 in 0.0f64..=1.0, q2 in 0.0f64..=1.0) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let a = quantile(&values, lo);
        let b = quantile(&values, hi);
        prop_assert!(a <= b + 1e-12);
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(a >= min - 1e-12 && b <= max + 1e-12);
    }
}
