//! Property-based tests on the substrate data structures: bitsets, graphs,
//! the sequential baseline, and the distance/correlation helpers.

use proptest::prelude::*;

use rbb_baselines::SequentialProcess;
use rbb_core::config::Config;
use rbb_core::det_hash::DetHashSet;
use rbb_core::rng::Xoshiro256pp;
use rbb_core::sampling::random_assignment;
use rbb_graphs::{bfs_distances, erdos_renyi, random_regular, ring, torus, Graph};
use rbb_stats::{kl_divergence, normalize, pearson, tv_distance};
use rbb_traversal::FixedBitSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// FixedBitSet behaves exactly like a reference set model under a random
    /// operation sequence.
    #[test]
    fn bitset_matches_hashset(cap in 1usize..300,
                              ops in proptest::collection::vec((any::<bool>(), 0usize..300), 0..120)) {
        let mut bs = FixedBitSet::new(cap);
        let mut hs: DetHashSet<usize> = DetHashSet::default();
        for (insert, raw) in ops {
            let i = raw % cap;
            if insert {
                prop_assert_eq!(bs.insert(i), hs.insert(i));
            } else {
                prop_assert_eq!(bs.remove(i), hs.remove(&i));
            }
        }
        prop_assert_eq!(bs.count_ones(), hs.len());
        prop_assert_eq!(bs.recount(), hs.len());
        let mut from_iter: Vec<usize> = bs.iter().collect();
        let mut expect: Vec<usize> = hs.into_iter().collect();
        from_iter.sort_unstable();
        expect.sort_unstable();
        prop_assert_eq!(from_iter, expect);
    }

    /// Random regular graphs are simple, regular and connected for feasible
    /// parameters.
    #[test]
    fn random_regular_is_simple_regular_connected(
        n in 6usize..60, d_raw in 3usize..5, seed in any::<u64>()
    ) {
        let d = d_raw;
        prop_assume!(n * d % 2 == 0 && d < n);
        let mut rng = Xoshiro256pp::seed_from(seed);
        let g = random_regular(n, d, &mut rng);
        prop_assert_eq!(g.regular_degree(), Some(d));
        prop_assert!(g.is_connected());
        // Simple: no duplicate neighbor entries, no self-loops.
        for v in 0..n {
            let ns = g.neighbors(v);
            let mut uniq: Vec<u32> = ns.to_vec();
            uniq.sort_unstable();
            uniq.dedup();
            prop_assert_eq!(uniq.len(), ns.len(), "vertex {} has multi-edges", v);
            prop_assert!(!ns.contains(&(v as u32)), "vertex {} has a loop", v);
        }
    }

    /// BFS distances satisfy the triangle property along edges:
    /// |dist(u) − dist(v)| ≤ 1 for every edge (u, v).
    #[test]
    fn bfs_distances_are_lipschitz_on_edges(n in 4usize..40, seed in any::<u64>()) {
        let mut rng = Xoshiro256pp::seed_from(seed);
        let g = erdos_renyi(n, 0.35, &mut rng);
        let dist = bfs_distances(&g, 0);
        for u in 0..n {
            for &v in g.neighbors(u) {
                let (a, b) = (dist[u] as i64, dist[v as usize] as i64);
                prop_assert!((a - b).abs() <= 1, "edge ({u},{v}): {a} vs {b}");
            }
        }
    }

    /// Graph construction from an edge list preserves the degree sum
    /// invariant (handshake lemma, adjusted for self-loops counting once).
    #[test]
    fn handshake_lemma(n in 2usize..30,
                       edges in proptest::collection::vec((0u32..30, 0u32..30), 0..60)) {
        let edges: Vec<(u32, u32)> = edges
            .into_iter()
            .map(|(a, b)| (a % n as u32, b % n as u32))
            .collect();
        let g = Graph::from_edges(n, &edges);
        let loops = edges.iter().filter(|(a, b)| a == b).count();
        let degree_sum: usize = (0..n).map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum, 2 * (edges.len() - loops) + loops);
    }

    /// The sequential baseline conserves mass from any start.
    #[test]
    fn sequential_process_conserves_mass(n in 2usize..40, seed in any::<u64>(),
                                         rounds in 0u64..80) {
        let mut rng = Xoshiro256pp::seed_from(seed);
        let cfg = Config::from_loads(random_assignment(&mut rng, n, n as u64));
        let m = cfg.total_balls();
        let mut p = SequentialProcess::new(cfg, rng);
        for _ in 0..rounds {
            p.step();
        }
        prop_assert_eq!(p.config().total_balls(), m);
    }

    /// TV distance is a metric on normalized histograms: symmetric, zero on
    /// identity, triangle inequality.
    #[test]
    fn tv_is_a_metric(a in proptest::collection::vec(1u64..50, 1..10),
                      b in proptest::collection::vec(1u64..50, 1..10),
                      c in proptest::collection::vec(1u64..50, 1..10)) {
        let p = normalize(&a);
        let q = normalize(&b);
        let r = normalize(&c);
        prop_assert!(tv_distance(&p, &p) < 1e-12);
        prop_assert!((tv_distance(&p, &q) - tv_distance(&q, &p)).abs() < 1e-12);
        prop_assert!(tv_distance(&p, &r) <= tv_distance(&p, &q) + tv_distance(&q, &r) + 1e-12);
        prop_assert!(tv_distance(&p, &q) <= 1.0 + 1e-12);
    }

    /// KL divergence is non-negative on strictly positive distributions
    /// (Gibbs' inequality).
    #[test]
    fn kl_nonnegative(a in proptest::collection::vec(1u64..50, 2..10),
                      b in proptest::collection::vec(1u64..50, 2..10)) {
        prop_assume!(a.len() == b.len());
        let p = normalize(&a);
        let q = normalize(&b);
        prop_assert!(kl_divergence(&p, &q) >= -1e-12);
    }

    /// Pearson correlation is within [−1, 1] and invariant under positive
    /// affine maps of either argument.
    #[test]
    fn pearson_bounded_and_affine_invariant(
        xs in proptest::collection::vec(-100.0f64..100.0, 3..40),
        scale in 0.1f64..10.0, shift in -50.0f64..50.0
    ) {
        let ys: Vec<f64> = xs.iter().map(|&x| x * 2.0 - 1.0).collect();
        let r = pearson(&xs, &ys);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
        let xs2: Vec<f64> = xs.iter().map(|&x| scale * x + shift).collect();
        let r2 = pearson(&xs2, &ys);
        if r.abs() > 1e-9 {
            prop_assert!((r - r2).abs() < 1e-6, "{r} vs {r2}");
        }
    }

    /// Torus builders produce 4-regular graphs whose BFS distance matches
    /// the L1 wrap-around metric on a sampled pair.
    #[test]
    fn torus_distance_is_wrapped_l1(rows in 3usize..9, cols in 3usize..9,
                                    r in 0usize..9, c in 0usize..9) {
        prop_assume!(r < rows && c < cols);
        let g = torus(rows, cols);
        let dist = bfs_distances(&g, 0);
        let v = r * cols + c;
        let dr = r.min(rows - r);
        let dc = c.min(cols - c);
        prop_assert_eq!(dist[v], dr + dc);
    }

    /// Ring BFS distance from 0 is min(v, n − v).
    #[test]
    fn ring_distance_formula(n in 3usize..60, v in 0usize..60) {
        prop_assume!(v < n);
        let g = ring(n);
        let dist = bfs_distances(&g, 0);
        prop_assert_eq!(dist[v], v.min(n - v));
    }
}
