//! Snapshot/restore round trip: for every load engine (dense, sparse,
//! sharded), a snapshot taken mid-trajectory — serialized to JSON and
//! parsed back — restores an engine whose remaining trajectory is
//! bit-identical to the uninterrupted original, across seeds, start
//! configurations, shard counts, and interleaved `place`/`depart` traffic.
//! This is the invariant the `rbb-serve` daemon's checkpointing rides on.

use proptest::prelude::*;

use rbb_core::engine::Engine;
use rbb_core::snapshot::{restore, SnapshotState};
use rbb_sim::{EngineSpec, ScenarioSpec, StartSpec};
use serde::Deserialize as _;

/// The three engines with a snapshot surface, with a shard-count axis for
/// the sharded one.
fn engine_axis() -> Vec<(EngineSpec, Option<usize>)> {
    vec![
        (EngineSpec::Dense, None),
        (EngineSpec::Sparse, None),
        (EngineSpec::Sharded, Some(1)),
        (EngineSpec::Sharded, Some(3)),
        (EngineSpec::Sharded, Some(4)),
    ]
}

fn build(
    engine: EngineSpec,
    shards: Option<usize>,
    start: StartSpec,
    n: usize,
    seed: u64,
) -> Box<dyn Engine> {
    let mut b = ScenarioSpec::builder(n)
        .name("snapshot-roundtrip")
        .start(start)
        .seed(seed)
        .engine(engine);
    if let Some(k) = shards {
        b = b.shards(k);
    }
    let spec = b.build();
    spec.validate().expect("axis specs must validate");
    rbb_sim::build_engine(&spec).expect("factory")
}

/// Asserts two engines agree on every cheap observable.
fn assert_twins(a: &dyn Engine, b: &dyn Engine, context: &str) {
    assert_eq!(a.round(), b.round(), "round diverged {context}");
    assert_eq!(a.balls(), b.balls(), "mass diverged {context}");
    assert_eq!(a.max_load(), b.max_load(), "max load diverged {context}");
    assert_eq!(
        a.empty_bins(),
        b.empty_bins(),
        "empty bins diverged {context}"
    );
    // The sparse engine's occupancy worklist order is history-dependent and
    // deliberately not trajectory state (each round draws once per occupied
    // bin, destinations i.i.d.), so compare the sets, then per-bin loads.
    let sort = |e: &dyn Engine| {
        let mut bins = e.nonempty_bins_list().unwrap_or_default();
        bins.sort_unstable();
        bins
    };
    let occupied = sort(a);
    assert_eq!(occupied, sort(b), "occupancy diverged {context}");
    for bin in occupied {
        assert_eq!(
            a.bin_load(bin as usize),
            b.bin_load(bin as usize),
            "load of bin {bin} diverged {context}"
        );
    }
}

/// Runs `k` rounds plus some incremental traffic, snapshots, round-trips
/// the state through JSON, restores, then drives original and restoree in
/// lockstep for `m` more rounds of mixed traffic.
fn assert_roundtrip(
    engine: EngineSpec,
    shards: Option<usize>,
    start: StartSpec,
    n: usize,
    seed: u64,
    k: u64,
    m: u64,
) {
    let label = format!("({engine:?}, shards {shards:?}, n {n}, seed {seed})");
    let mut original = build(engine, shards, start, n, seed);
    for _ in 0..k {
        original.step_batched();
    }
    // Incremental traffic before the snapshot: arrivals and departures are
    // part of the state the checkpoint must carry.
    let b0 = original.place();
    original.depart(b0);
    original.place();

    let state = original
        .snapshot()
        .unwrap_or_else(|| panic!("{label}: load engines must snapshot"));
    let json = serde_json::to_string(&state).expect("snapshot states serialize");
    let parsed: SnapshotState = serde_json::from_str(&json)
        .unwrap_or_else(|e| panic!("{label}: snapshot JSON must parse back: {e}"));
    assert_eq!(parsed, state, "{label}: JSON round trip must be lossless");

    let mut restored = restore(&parsed).unwrap_or_else(|e| panic!("{label}: restore failed: {e}"));
    assert_twins(original.as_ref(), restored.as_ref(), &label);

    // Lockstep resume: rounds, placements, and departures must all replay
    // bit-identically (same RNG stream state ⇒ same draws).
    for r in 0..m {
        let moved_a = original.step_batched();
        let moved_b = restored.step_batched();
        assert_eq!(
            moved_a, moved_b,
            "{label}: movers diverged at resume round {r}"
        );
        let pa = original.place();
        let pb = restored.place();
        assert_eq!(pa, pb, "{label}: placement diverged at resume round {r}");
        assert_eq!(
            original.depart(pa),
            restored.depart(pb),
            "{label}: departure diverged at resume round {r}"
        );
        assert_twins(original.as_ref(), restored.as_ref(), &label);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random (n, seed, split) across engines × starts.
    #[test]
    fn snapshot_restore_resumes_bit_identically(
        n in 9usize..65,
        seed in any::<u64>(),
        k in 1u64..30,
        m in 5u64..20,
    ) {
        for (engine, shards) in engine_axis() {
            for start in [StartSpec::OnePerBin, StartSpec::AllInOne, StartSpec::Geometric] {
                assert_roundtrip(engine, shards, start, n, seed, k, m);
            }
        }
    }
}

/// A fixed-seed pass so the axis is exercised even with a trimmed property
/// runner.
#[test]
fn snapshot_axis_pinned_seeds() {
    for (engine, shards) in engine_axis() {
        for seed in [1u64, 0xBEEF] {
            assert_roundtrip(engine, shards, StartSpec::OnePerBin, 33, seed, 25, 10);
        }
    }
}

/// A snapshot is a value: restoring the same state twice yields two
/// independent engines on the same trajectory (no shared mutability).
#[test]
fn one_snapshot_restores_many_identical_engines() {
    let mut e = build(EngineSpec::Sharded, Some(4), StartSpec::AllInOne, 48, 7);
    for _ in 0..20 {
        e.step();
    }
    let state = e.snapshot().expect("snapshot");
    let mut a = restore(&state).expect("restore a");
    let mut b = restore(&state).expect("restore b");
    for _ in 0..15 {
        assert_eq!(a.step_batched(), b.step_batched());
        assert_eq!(a.place(), b.place());
    }
    assert_twins(a.as_ref(), b.as_ref(), "(twin restores)");
}

/// Corrupted snapshots are rejected by `restore`, not trusted.
#[test]
fn restore_rejects_corruption() {
    let mut e = build(EngineSpec::Dense, None, StartSpec::OnePerBin, 16, 3);
    e.step();
    let good = e.snapshot().expect("snapshot");
    let json = serde_json::to_string(&good).expect("serialize");

    // Flip the mass so entries no longer sum to `balls`.
    let mut tampered: SnapshotState = serde_json::from_str(&json).expect("parse");
    tampered.balls += 1;
    assert!(
        restore(&tampered).is_err(),
        "mass mismatch must be rejected"
    );

    // Truncate the RNG streams.
    let mut tampered: SnapshotState = serde_json::from_str(&json).expect("parse");
    tampered.rng_states.clear();
    assert!(
        restore(&tampered).is_err(),
        "missing streams must be rejected"
    );

    // Structural corruption at the JSON layer: a wrong-kind field.
    let broken = json.replace("\"dense\"", "\"marble\"");
    let parsed = serde_json::parse_value_str(&broken).expect("still JSON");
    let state = SnapshotState::deserialize(&parsed).expect("shape still parses");
    assert!(
        restore(&state).is_err(),
        "unknown engine kinds must be rejected"
    );
}
