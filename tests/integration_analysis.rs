//! Cross-crate integration for the analysis instrumentation: phases,
//! arrivals, mixing, delays — the measurements behind experiments E20–E22.

use rbb_core::arrivals::ArrivalTracker;
use rbb_core::ball_process::BallProcess;
use rbb_core::config::Config;
use rbb_core::engine::Engine;
use rbb_core::exact::ExactChain;
use rbb_core::metrics::RoundObserver;
use rbb_core::mixing::{mixing_time, tv_decay, MaxLoadDistribution};
use rbb_core::phases::PhaseTracker;
use rbb_core::process::LoadProcess;
use rbb_core::rng::Xoshiro256pp;
use rbb_core::strategy::QueueStrategy;
use rbb_stats::{autocorrelation, tv_distance, IntHistogram, Summary};
use rbb_traversal::record_delays_exact;

/// The arrival series reconstructed from load deltas must total the number
/// of balls that moved: Σ arrivals over all bins per round = movers.
#[test]
fn arrival_reconstruction_is_consistent_with_movers() {
    let n = 32;
    let mut p = LoadProcess::legitimate_start(n, 1);
    let mut trackers: Vec<ArrivalTracker> = (0..n)
        .map(|b| ArrivalTracker::with_initial(b, p.config()))
        .collect();
    let mut movers_per_round = Vec::new();
    for _ in 0..200 {
        let before_nonempty = p.config().nonempty_bins();
        p.step();
        movers_per_round.push(before_nonempty as u64);
        for t in trackers.iter_mut() {
            t.observe(p.round(), p.config());
        }
    }
    for (round_idx, &movers) in movers_per_round.iter().enumerate() {
        let total: u64 = trackers
            .iter()
            .map(|t| t.arrivals()[round_idx] as u64)
            .sum();
        assert_eq!(total, movers, "round {round_idx}");
    }
}

/// Phase accounting and delay accounting agree with the engine's own
/// bookkeeping: a FIFO ball's wait is bounded by the phase peak of its bin.
#[test]
fn fifo_waits_bounded_by_window_max_load() {
    let n = 128;
    let mut p = BallProcess::new(
        Config::one_per_bin(n),
        QueueStrategy::Fifo,
        Xoshiro256pp::seed_from(2),
    );
    let hist = record_delays_exact(&mut p, 20_000);
    let max_wait = hist.max_value().unwrap_or(0) as u32;
    // Under FIFO the wait equals the load observed on arrival, which is at
    // most the window max load minus one.
    let window_max: u32 = p.config().max_load().max(
        p.ball_stats()
            .iter()
            .map(|s| s.max_wait as u32 + 1)
            .max()
            .unwrap_or(0),
    );
    assert!(
        max_wait < window_max + 8,
        "wait {max_wait} vs max {window_max}"
    );
    // And the engine's own max_wait agrees with the histogram's.
    let engine_max = p.ball_stats().iter().map(|s| s.max_wait).max().unwrap();
    assert_eq!(engine_max as usize, hist.max_value().unwrap());
}

/// Exact mixing time and the simulated distribution agree: after t_mix(0.01)
/// steps from the worst start, the simulated max-load distribution is close
/// to the exact stationary one.
#[test]
fn simulated_distribution_close_after_exact_mixing_time() {
    let n = 4usize;
    let chain = ExactChain::build(n, n as u32);
    let t_mix = mixing_time(&chain, 0.01, 10_000).unwrap();
    let pi = chain.stationary(1e-13, 100_000);

    // Exact max-load pmf at stationarity.
    let mut exact_pmf = vec![0.0; n + 1];
    for (q, &p) in chain.configs().iter().zip(&pi) {
        exact_pmf[*q.iter().max().unwrap() as usize] += p;
    }

    // Simulate many independent chains for exactly t_mix rounds from the
    // all-in-one start and collect the final max load.
    let trials = 200_000;
    let mut hist = IntHistogram::new();
    for s in 0..trials {
        let mut p = LoadProcess::new(
            Config::all_in_one(n, n as u32),
            Xoshiro256pp::seed_from(1000 + s),
        );
        p.run_silent(t_mix as u64);
        hist.add(p.config().max_load() as usize);
    }
    let sim_pmf: Vec<f64> = (0..=n).map(|k| hist.pmf(k)).collect();
    let tv = tv_distance(&sim_pmf, &exact_pmf);
    // The chain is within 0.01 TV of stationarity at t_mix; Monte Carlo adds
    // a bit of noise on top.
    assert!(tv < 0.02, "TV {tv} at t_mix = {t_mix}");
}

/// TV decay curves from different starts are ordered by how extreme the
/// start is: the all-in-one Dirac start more distant than the spread one.
#[test]
fn tv_decay_ordered_by_start_extremity() {
    let chain = ExactChain::build(4, 4);
    let from_pile = tv_decay(&chain, &[4, 0, 0, 0], 10);
    let from_spread = tv_decay(&chain, &[1, 1, 1, 1], 10);
    // After a few steps the pile start is at least as far from π.
    for t in 2..=6 {
        assert!(
            from_pile[t] + 1e-9 >= from_spread[t],
            "t={t}: pile {} < spread {}",
            from_pile[t],
            from_spread[t]
        );
    }
}

/// The MaxLoadDistribution observer and an IntHistogram built by hand agree.
#[test]
fn max_load_distribution_matches_manual_histogram() {
    let n = 64;
    let mut p1 = LoadProcess::legitimate_start(n, 3);
    let mut dist = MaxLoadDistribution::new();
    let rounds = 5_000;
    p1.run(rounds, &mut dist);

    let mut p2 = LoadProcess::legitimate_start(n, 3);
    let mut hist = IntHistogram::new();
    for _ in 0..rounds {
        p2.step();
        hist.add(p2.config().max_load() as usize);
    }
    let manual: Vec<f64> = (0..=hist.max_value().unwrap())
        .map(|k| hist.pmf(k))
        .collect();
    assert!(tv_distance(&dist.pmf(), &manual) < 1e-12);
    assert_eq!(dist.rounds(), rounds);
}

/// Phases tracked on the full bin set account for (almost) all busy time:
/// the mean phase duration times the phase rate approximates the busy
/// fraction.
#[test]
fn phase_accounting_consistent_with_busy_fraction() {
    let n = 256;
    let mut p = LoadProcess::legitimate_start(n, 4);
    p.run_silent(2000);
    let mut phases = PhaseTracker::first_k(n);
    let window = 20_000u64;
    p.run(window, &mut phases);
    // Busy bin-rounds ≈ completed phases × mean duration.
    let busy_bin_rounds = phases.completed() as f64 * phases.mean_duration();
    let expected = 0.586 * n as f64 * window as f64;
    let ratio = busy_bin_rounds / expected;
    assert!(ratio > 0.85 && ratio < 1.15, "ratio {ratio}");
}

/// Arrival autocorrelation estimates are stable across disjoint halves of a
/// long run (a sanity check that E22's measurement is not an artifact).
#[test]
fn acf_estimate_reproducible_across_halves() {
    let n = 64;
    let mut p = LoadProcess::legitimate_start(n, 5);
    p.run_silent(1000);
    let mut t = ArrivalTracker::with_initial(0, p.config());
    p.run(100_000, &mut t);
    let series = t.series_f64();
    let half = series.len() / 2;
    let a1 = autocorrelation(&series[..half], 1);
    let a2 = autocorrelation(&series[half..], 1);
    assert!((a1 - a2).abs() < 0.02, "halves disagree: {a1} vs {a2}");
}

/// Cross-strategy: delays differ but totals of moves match across strategies
/// at the same horizon (every strategy moves one ball per non-empty bin).
#[test]
fn total_moves_strategy_invariant() {
    let n = 64;
    let rounds = 2_000u64;
    let totals: Vec<u64> = QueueStrategy::ALL
        .iter()
        .map(|&s| {
            let mut p = BallProcess::new(Config::one_per_bin(n), s, Xoshiro256pp::seed_from(6));
            p.run(rounds, rbb_core::metrics::NullObserver);
            p.ball_stats().iter().map(|b| b.moves).sum()
        })
        .collect();
    // FIFO and LIFO are bit-identical; random matches in expectation (same
    // law) — allow a small relative tolerance for it.
    assert_eq!(totals[0], totals[1]);
    let rel = (totals[2] as f64 - totals[0] as f64).abs() / totals[0] as f64;
    assert!(rel < 0.01, "random deviates {rel}");
}

/// Summary-level check that the per-round max distribution is tight: the
/// 5-95 quantile spread at equilibrium is a few units.
#[test]
fn per_round_max_distribution_is_tight() {
    let n = 512;
    let mut p = LoadProcess::legitimate_start(n, 7);
    p.run_silent(2000);
    let mut dist = MaxLoadDistribution::new();
    p.run(50_000, &mut dist);
    let pmf = dist.pmf();
    let mut cum = 0.0;
    let mut q05 = 0usize;
    let mut q95 = 0usize;
    for (k, &pk) in pmf.iter().enumerate() {
        cum += pk;
        if cum < 0.05 {
            q05 = k;
        }
        if cum <= 0.95 {
            q95 = k;
        }
    }
    assert!(q95 - q05 <= 6, "spread {q05}..{q95}");
    let mean: f64 = pmf.iter().enumerate().map(|(k, &p)| k as f64 * p).sum();
    let s = Summary::from_slice(&[mean]);
    assert!(s.mean() > 4.0 && s.mean() < 4.0 * (n as f64).ln());
}
