//! Cross-crate integration: process engines + metrics + statistics, and the
//! exact small-n chain as ground truth for the simulators.

use rbb_core::config::{Config, LegitimacyThreshold};
use rbb_core::engine::Engine;
use rbb_core::exact::ExactChain;
use rbb_core::metrics::{EmptyBinsTracker, MaxLoadTracker, TrajectoryRecorder};
use rbb_core::process::LoadProcess;
use rbb_core::rng::Xoshiro256pp;
use rbb_stats::{linear_fit, log_fit, IntHistogram, Summary};

/// Theorem 1(a) end-to-end: window max load grows like a + b·ln n with a
/// good fit, across a size sweep.
#[test]
fn window_max_load_fits_log_law() {
    let sizes = [64usize, 128, 256, 512, 1024];
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for (i, &n) in sizes.iter().enumerate() {
        let trials = 5;
        let mut s = Summary::new();
        for t in 0..trials {
            let mut p = LoadProcess::legitimate_start(n, 1000 + (i * trials + t) as u64);
            let mut tracker = MaxLoadTracker::new();
            p.run(50 * n as u64, &mut tracker);
            s.push(tracker.window_max() as f64);
        }
        xs.push(n as f64);
        ys.push(s.mean());
    }
    let fit = log_fit(&xs, &ys);
    assert!(fit.slope > 0.5 && fit.slope < 6.0, "slope {}", fit.slope);
    assert!(fit.r_squared > 0.8, "R² {}", fit.r_squared);
    // Monotone in n but slowly: the largest n's load under 3x the smallest's.
    assert!(ys[4] < 3.0 * ys[0], "{ys:?}");
}

/// Theorem 1(b) end-to-end: convergence from all-in-one is linear in n.
#[test]
fn convergence_time_fits_linear_law() {
    let sizes = [128usize, 256, 512, 1024];
    let thr = LegitimacyThreshold::default();
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &n in &sizes {
        let mut s = Summary::new();
        for t in 0..5u64 {
            let mut p = LoadProcess::new(
                Config::all_in_one(n, n as u32),
                Xoshiro256pp::seed_from(2000 + t),
            );
            let hit = p
                .run_until(30 * n as u64, |c| thr.is_legitimate(c))
                .expect("converges");
            s.push(hit as f64);
        }
        xs.push(n as f64);
        ys.push(s.mean());
    }
    let fit = linear_fit(&xs, &ys);
    assert!(fit.slope > 0.8 && fit.slope < 3.0, "slope {}", fit.slope);
    assert!(fit.r_squared > 0.97, "R² {}", fit.r_squared);
}

/// The exact chain (n = m = 3) vs long-run simulation: the stationary
/// distribution of the max load must match within Monte Carlo error.
#[test]
fn simulation_matches_exact_stationary_distribution() {
    let n = 3usize;
    let chain = ExactChain::build(n, n as u32);
    let pi = chain.stationary(1e-13, 100_000);
    let exact_p_max = |k: u32| chain.prob_max_load_at_least(&pi, k);

    // Long simulated run with burn-in; per-round max load histogram.
    let mut p = LoadProcess::legitimate_start(n, 77);
    p.run_silent(10_000);
    let mut hist = IntHistogram::new();
    let rounds = 2_000_000u64;
    for _ in 0..rounds {
        p.step();
        hist.add(p.config().max_load() as usize);
    }
    for k in 1..=3u32 {
        let emp = hist.tail(k as usize);
        let exact = exact_p_max(k);
        assert!(
            (emp - exact).abs() < 0.01,
            "P(max >= {k}): simulated {emp:.4} vs exact {exact:.4}"
        );
    }
}

/// Exact expected max load (n = 4) vs simulation.
#[test]
fn simulation_matches_exact_expected_max_load() {
    let n = 4usize;
    let chain = ExactChain::build(n, n as u32);
    let pi = chain.stationary(1e-13, 100_000);
    let exact = chain.expected_max_load(&pi);

    let mut p = LoadProcess::legitimate_start(n, 78);
    p.run_silent(10_000);
    let mut sum = 0u64;
    let rounds = 1_000_000u64;
    for _ in 0..rounds {
        p.step();
        sum += p.config().max_load() as u64;
    }
    let emp = sum as f64 / rounds as f64;
    assert!(
        (emp - exact).abs() < 0.01,
        "simulated {emp:.4} vs exact {exact:.4}"
    );
}

/// The empty-bins guarantee composes with the trajectory recorder: every
/// recorded point from round 2 on has ≥ n/4 empty bins.
#[test]
fn trajectory_points_respect_empty_bins_bound() {
    let n = 512;
    let mut p = LoadProcess::legitimate_start(n, 79);
    let mut rec = TrajectoryRecorder::with_stride(10);
    let mut empty = EmptyBinsTracker::starting_at(2);
    p.run(20_000, (&mut rec, &mut empty));
    assert_eq!(empty.violations_below_quarter(), 0);
    for pt in rec.points().iter().filter(|p| p.round >= 2) {
        assert!(
            4 * pt.empty_bins >= n,
            "round {}: {} empty",
            pt.round,
            pt.empty_bins
        );
        assert_eq!(pt.empty_bins + pt.nonempty_bins, n);
    }
}

/// Mass conservation composes across adversarial faults and long runs.
#[test]
fn mass_conserved_through_faults() {
    let n = 256;
    let mut p = LoadProcess::legitimate_start(n, 80);
    for fault in 0..5 {
        p.run_silent(997);
        p.adversarial_reassign(Config::packed(n, n as u32, 1 + fault));
        assert_eq!(p.config().total_balls(), n as u64);
    }
    p.run_silent(5000);
    assert_eq!(p.config().total_balls(), n as u64);
}
