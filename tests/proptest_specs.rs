//! Property tests for the declarative scenario layer: `ScenarioSpec` JSON
//! round-trips losslessly, and spec-built engines reproduce hand-built
//! engines bit for bit across the full strategy × arrival matrix.

use proptest::prelude::*;

use rbb_baselines::DChoiceProcess;
use rbb_core::ball_process::BallProcess;
use rbb_core::config::Config;
use rbb_core::engine::Engine;
use rbb_core::process::LoadProcess;
use rbb_core::rng::Xoshiro256pp;
use rbb_core::strategy::QueueStrategy;
use rbb_core::tetris::{BatchedTetris, Tetris};
use rbb_sim::{
    AdversaryKindSpec, ArrivalSpec, EngineSpec, HorizonSpec, ScenarioSpec, ScheduleSpec, StartSpec,
    StopSpec, StrategySpec, TopologySpec,
};

fn arb_start() -> impl Strategy<Value = StartSpec> {
    (0usize..6, 1usize..8, any::<u64>()).prop_map(|(pick, k, salt)| match pick {
        0 => StartSpec::OnePerBin,
        1 => StartSpec::AllInOne,
        2 => StartSpec::Packed { k },
        3 => StartSpec::Geometric,
        4 => StartSpec::RandomMultinomial { salt },
        _ => StartSpec::Random { salt },
    })
}

fn arb_arrival() -> impl Strategy<Value = ArrivalSpec> {
    (0usize..4, 1usize..4, 0u32..=100).prop_map(|(pick, d, lam)| match pick {
        0 => ArrivalSpec::Uniform,
        1 => ArrivalSpec::DChoice { d },
        2 => ArrivalSpec::Tetris,
        _ => ArrivalSpec::BatchedTetris {
            lambda: lam as f64 / 100.0,
        },
    })
}

fn arb_strategy() -> impl Strategy<Value = Option<StrategySpec>> {
    (0usize..4).prop_map(|pick| match pick {
        0 => None,
        1 => Some(StrategySpec::Fifo),
        2 => Some(StrategySpec::Lifo),
        _ => Some(StrategySpec::Random),
    })
}

fn arb_topology() -> impl Strategy<Value = TopologySpec> {
    (0usize..7, 1usize..5, any::<u64>()).prop_map(|(pick, degree, salt)| match pick {
        0 => TopologySpec::Complete,
        1 => TopologySpec::CompleteGraph,
        2 => TopologySpec::Ring,
        3 => TopologySpec::Torus,
        4 => TopologySpec::Hypercube,
        5 => TopologySpec::RandomRegular { degree, salt },
        _ => TopologySpec::Star,
    })
}

fn arb_spec() -> impl Strategy<Value = ScenarioSpec> {
    (
        (2usize..300, any::<u64>(), (0usize..2, 1u64..500)),
        arb_start(),
        arb_arrival(),
        arb_strategy(),
        arb_topology(),
        (0usize..5, 1usize..10, 1u64..10_000),
        (1u64..100_000, 0usize..4, 0usize..4),
    )
        .prop_map(
            |(
                (n, seed, (balls_some, balls_v)),
                start,
                arrival,
                strategy,
                topology,
                (adv_pick, adv_k, adv_period),
                (horizon, stop_pick, engine_pick),
            )| {
                ScenarioSpec {
                    name: Some(format!("prop-{n}-{seed}")),
                    n,
                    balls: (balls_some == 1).then_some(balls_v),
                    weights: None,
                    capacities: None,
                    start,
                    arrival,
                    strategy,
                    engine: match engine_pick {
                        0 => None,
                        1 => Some(EngineSpec::Dense),
                        2 => Some(EngineSpec::Sparse),
                        _ => Some(EngineSpec::Auto),
                    },
                    shards: None,
                    topology,
                    adversary: match adv_pick {
                        0 => None,
                        1 => Some(rbb_sim::AdversarySpec {
                            kind: AdversaryKindSpec::AllInOne,
                            schedule: ScheduleSpec::Gamma { gamma: 6 },
                        }),
                        2 => Some(rbb_sim::AdversarySpec {
                            kind: AdversaryKindSpec::Packed { k: adv_k },
                            schedule: ScheduleSpec::Period { period: adv_period },
                        }),
                        3 => Some(rbb_sim::AdversarySpec {
                            kind: AdversaryKindSpec::FollowTheLeader,
                            schedule: ScheduleSpec::Period { period: adv_period },
                        }),
                        _ => Some(rbb_sim::AdversarySpec {
                            kind: AdversaryKindSpec::Random,
                            schedule: ScheduleSpec::Gamma { gamma: 8 },
                        }),
                    },
                    horizon: if stop_pick % 2 == 0 {
                        HorizonSpec::Rounds { rounds: horizon }
                    } else {
                        HorizonSpec::FactorN {
                            factor: 1 + horizon % 50,
                        }
                    },
                    stop: match stop_pick {
                        0 => StopSpec::Horizon,
                        1 => StopSpec::Legitimate,
                        2 => StopSpec::AllEmptied,
                        _ => StopSpec::Covered,
                    },
                    seed,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any spec — valid or not — survives a JSON round trip losslessly.
    #[test]
    fn spec_json_round_trips(spec in arb_spec()) {
        let compact = serde_json::to_string(&spec).unwrap();
        let pretty = serde_json::to_string_pretty(&spec).unwrap();
        let from_compact: ScenarioSpec = serde_json::from_str(&compact).unwrap();
        let from_pretty: ScenarioSpec = serde_json::from_str(&pretty).unwrap();
        prop_assert_eq!(&from_compact, &spec);
        prop_assert_eq!(&from_pretty, &spec);
        // A second round trip is a fixed point.
        prop_assert_eq!(serde_json::to_string(&from_compact).unwrap(), compact);
    }

    /// Valid specs build engines; invalid specs report errors (never panic).
    #[test]
    fn factory_totality(spec in arb_spec()) {
        match spec.validate() {
            Ok(()) => {
                // Structural validity must carry through the factory.
                prop_assert!(spec.scenario().is_ok() || spec.adversary.is_some(),
                    "fault-free valid spec failed to build: {:?}", spec);
            }
            Err(e) => prop_assert!(!e.0.is_empty()),
        }
    }
}

/// Spec-built engines are bit-identical to hand-constructed engines for
/// every (strategy × arrival) combination the factory serves, across seeds.
#[test]
fn spec_engines_match_hand_built_for_all_strategy_arrival_combos() {
    let n = 48;
    let rounds = 120;
    let strategies: [Option<StrategySpec>; 4] = [
        None,
        Some(StrategySpec::Fifo),
        Some(StrategySpec::Lifo),
        Some(StrategySpec::Random),
    ];
    let arrivals = [
        ArrivalSpec::Uniform,
        ArrivalSpec::DChoice { d: 2 },
        ArrivalSpec::Tetris,
        ArrivalSpec::BatchedTetris { lambda: 0.75 },
    ];
    for seed in [1u64, 42, 0xDEAD] {
        for strategy in strategies {
            for arrival in arrivals {
                let mut builder = ScenarioSpec::builder(n)
                    .arrival(arrival)
                    .horizon_rounds(rounds)
                    .seed(seed);
                if let Some(s) = strategy {
                    builder = builder.strategy(s);
                }
                let spec = builder.build();
                if spec.validate().is_err() {
                    // Ball-identity strategies only compose with uniform
                    // arrivals; the factory rejects the rest by design.
                    assert!(!matches!(arrival, ArrivalSpec::Uniform));
                    continue;
                }

                let mut engine = rbb_sim::build_engine(&spec).expect("valid spec");
                let hand: Box<dyn Engine> = match (strategy, arrival) {
                    (None, ArrivalSpec::Uniform) => Box::new(LoadProcess::new(
                        Config::one_per_bin(n),
                        Xoshiro256pp::seed_from(seed),
                    )),
                    (Some(s), ArrivalSpec::Uniform) => Box::new(BallProcess::new(
                        Config::one_per_bin(n),
                        match s {
                            StrategySpec::Fifo => QueueStrategy::Fifo,
                            StrategySpec::Lifo => QueueStrategy::Lifo,
                            StrategySpec::Random => QueueStrategy::Random,
                        },
                        Xoshiro256pp::seed_from(seed),
                    )),
                    (None, ArrivalSpec::DChoice { d }) => Box::new(DChoiceProcess::new(
                        Config::one_per_bin(n),
                        d,
                        Xoshiro256pp::seed_from(seed),
                    )),
                    (None, ArrivalSpec::Tetris) => Box::new(Tetris::new(
                        Config::one_per_bin(n),
                        Xoshiro256pp::seed_from(seed),
                    )),
                    (None, ArrivalSpec::BatchedTetris { lambda }) => Box::new(BatchedTetris::new(
                        Config::one_per_bin(n),
                        lambda,
                        Xoshiro256pp::seed_from(seed),
                    )),
                    _ => unreachable!("validated away"),
                };
                let mut hand = hand;
                for r in 0..rounds {
                    let a = engine.step_batched();
                    let b = hand.step_batched();
                    assert_eq!(
                        a, b,
                        "mover count diverged at round {r} for {strategy:?} × {arrival:?}"
                    );
                    assert_eq!(
                        engine.config(),
                        hand.config(),
                        "trajectory diverged at round {r} for {strategy:?} × {arrival:?} (seed {seed})"
                    );
                }
            }
        }
    }
}

/// The scenario driver's batched-by-default loop equals scalar stepping for
/// the engines that guarantee bit-identical paths.
#[test]
fn scenario_run_equals_scalar_reference() {
    let spec = ScenarioSpec::builder(96)
        .horizon_rounds(300)
        .seed(5)
        .build();
    let mut scenario = spec.scenario().unwrap();
    scenario.run();

    let mut reference = LoadProcess::new(Config::one_per_bin(96), Xoshiro256pp::seed_from(5));
    for _ in 0..300 {
        reference.step(); // scalar path
    }
    assert_eq!(scenario.engine().config(), reference.config());
}
