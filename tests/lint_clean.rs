//! Repo-level gate: the workspace lints clean under `rbb-lint`.
//!
//! This is the library-level twin of the `==> rbb-lint` step in `ci.sh`:
//! running the full test suite alone (e.g. `cargo test -q`) already proves
//! the tree carries zero unsuppressed findings, without needing the shell
//! gate. On a violation, the failure message carries the same
//! file:line:col/rule rendering the CLI prints.

use rbb_lint::{find_root, lint_root};

#[test]
fn workspace_lints_clean() {
    let root = find_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above the facade crate");
    let (findings, stats) = lint_root(&root).expect("walk workspace sources");
    assert!(
        stats.files > 100,
        "suspiciously few files linted ({}) — did the walk roots move?",
        stats.files
    );
    let rendered: Vec<String> = findings
        .iter()
        .map(|f| {
            format!(
                "{}:{}:{}: [{}] {}",
                f.file, f.line, f.col, f.rule, f.message
            )
        })
        .collect();
    assert!(
        findings.is_empty(),
        "rbb-lint found {} unsuppressed violation(s):\n{}",
        findings.len(),
        rendered.join("\n")
    );
}

#[test]
fn lint_self_check_passes() {
    let errors = rbb_lint::self_check();
    assert!(
        errors.is_empty(),
        "rbb-lint self-check failures:\n{}",
        errors.join("\n")
    );
}
