//! Cross-crate integration: traversal + faults + graphs + stats.

use rbb_core::adversary::{AllInOneAdversary, FaultSchedule, FollowTheLeaderAdversary};
use rbb_core::strategy::QueueStrategy;
use rbb_graphs::{complete_with_loops, GraphTokenProcess};
use rbb_stats::{power_fit, Summary};
use rbb_traversal::{faulty_cover_time, single_token_cover_time, ProgressReport, Traversal};

/// Corollary 1 end-to-end: parallel cover time scales like n·polylog(n) —
/// a power fit over a size sweep has exponent close to 1 (with the log²
/// correction pushing it slightly above).
#[test]
fn parallel_cover_time_scaling() {
    let sizes = [64usize, 128, 256, 512];
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &n in &sizes {
        let mut s = Summary::new();
        for t in 0..3u64 {
            let mut tr = Traversal::new(n, QueueStrategy::Fifo, 500 + t);
            s.push(tr.run_to_cover(100_000_000).expect("covers") as f64);
        }
        xs.push(n as f64);
        ys.push(s.mean());
    }
    let fit = power_fit(&xs, &ys);
    assert!(
        fit.exponent > 1.0 && fit.exponent < 1.75,
        "exponent {} (expect ~1.3 for n log² n over this range)",
        fit.exponent
    );
    assert!(fit.r_squared > 0.95, "R² {}", fit.r_squared);
}

/// The traversal engine on the clique and the generic graph-token engine on
/// K_n-with-loops implement the same protocol: cover times agree in scale.
#[test]
fn traversal_engines_agree_on_clique() {
    let n = 64;
    let mut a_sum = 0.0;
    let mut b_sum = 0.0;
    for t in 0..5u64 {
        let mut a = Traversal::new(n, QueueStrategy::Fifo, 600 + t);
        a_sum += a.run_to_cover(10_000_000).unwrap() as f64;
        let mut b = GraphTokenProcess::one_per_node(complete_with_loops(n), 700 + t);
        b_sum += b.run_to_cover(10_000_000).unwrap() as f64;
    }
    let ratio = a_sum / b_sum;
    assert!(
        ratio > 0.5 && ratio < 2.0,
        "engines disagree: ratio {ratio}"
    );
}

/// §4.1 end-to-end: γ = 6 faults from two different adversaries leave the
/// cover time within a constant factor of fault-free.
#[test]
fn fault_resilience_constant_factor() {
    let n = 96;
    let cap = 50_000_000;
    let clean = {
        let mut t = Traversal::new(n, QueueStrategy::Fifo, 42);
        t.run_to_cover(cap).unwrap() as f64
    };
    for seed in 0..3u64 {
        let mut adv = AllInOneAdversary;
        let r = faulty_cover_time(
            n,
            QueueStrategy::Fifo,
            FaultSchedule::gamma_n(6, n),
            &mut adv,
            800 + seed,
            cap,
        );
        let faulty = r.cover_time.expect("covers despite faults") as f64;
        assert!(faulty < 30.0 * clean, "slowdown {}", faulty / clean);

        let mut adv = FollowTheLeaderAdversary;
        let r = faulty_cover_time(
            n,
            QueueStrategy::Fifo,
            FaultSchedule::gamma_n(6, n),
            &mut adv,
            900 + seed,
            cap,
        );
        assert!(r.cover_time.is_some(), "follow-the-leader broke coverage");
    }
}

/// Single-token vs parallel: the measured slowdown is logarithmic-scale,
/// not polynomial — doubling n should roughly add a constant to the ratio,
/// not multiply it.
#[test]
fn slowdown_is_subpolynomial() {
    let mut ratios = Vec::new();
    for &n in &[64usize, 256] {
        let mut par = Summary::new();
        let mut single = Summary::new();
        for t in 0..3u64 {
            let mut tr = Traversal::new(n, QueueStrategy::Fifo, 1000 + t);
            par.push(tr.run_to_cover(100_000_000).unwrap() as f64);
            single.push(single_token_cover_time(n, 1100 + t, 100_000_000).unwrap() as f64);
        }
        ratios.push(par.mean() / single.mean());
    }
    // n quadrupled: a log-factor ratio grows by ~ln 4 ≈ 1.4 additively, so
    // the ratio of ratios stays well under 4 (it would be 4 if polynomial).
    assert!(
        ratios[1] / ratios[0] < 2.5,
        "slowdown grew polynomially: {ratios:?}"
    );
}

/// FIFO progress guarantee composes with the traversal run.
#[test]
fn progress_holds_after_cover() {
    let n = 128;
    let mut t = Traversal::new(n, QueueStrategy::Fifo, 1200);
    t.run_to_cover(100_000_000).unwrap();
    let report = ProgressReport::from_process(t.process());
    // Every token moved at least t/(2 ln n) times.
    assert!(
        report.min_progress_ratio() > 0.5,
        "min progress ratio {}",
        report.min_progress_ratio()
    );
    // And the worst FIFO wait stayed logarithmic.
    assert!(report.max_wait < 40, "max wait {}", report.max_wait);
}
