//! Weighted-regime equivalence laws, across dense/sparse/sharded:
//!
//! 1. **Unit degeneration** — a weighted constructor fed all-ones weights
//!    and unbounded capacities builds an engine bit-identical to the plain
//!    constructor: same trajectory, same RNG stream, same (version-1)
//!    snapshot bytes. The weighted layer must cost literally nothing when
//!    it is not used.
//! 2. **Weight obliviousness** — non-unit weights never touch the RNG, so
//!    a weighted engine's ball trajectory (configs, mover counts) is
//!    bit-identical to the unit engine at the same seed; only the metric
//!    overlay differs.
//! 3. **Weighted snapshot round-trip** — a version-2 snapshot restores to
//!    an engine that continues bit-identically, weighted surface included.
//!
//! Together with `tests/proptest_engines.rs` (whose matrix carries the
//! weighted combos through the scalar/batched law) this pins the tentpole
//! guarantee: pre-weighted behavior is unchanged wherever weights are not
//! in play.

use proptest::prelude::*;

use rbb_core::prelude::{Capacities, Config, Engine, LoadProcess, Weights, Xoshiro256pp};
use rbb_core::snapshot::restore;
use rbb_sim::{CapacitiesSpec, EngineSpec, ScenarioSpec, WeightsSpec};

/// The three engine families the weighted layer touches.
const FAMILIES: &[&str] = &["dense", "sparse", "sharded"];

fn family_spec(family: &str, n: usize, seed: u64) -> rbb_sim::ScenarioSpecBuilder {
    let mut b = ScenarioSpec::builder(n)
        .name(family)
        .seed(seed)
        .horizon_rounds(1);
    match family {
        "sparse" => b = b.engine(EngineSpec::Sparse),
        "sharded" => b = b.engine(EngineSpec::Sharded).shards(4),
        _ => b = b.engine(EngineSpec::Dense),
    }
    b
}

/// Steps both engines `rounds` times asserting bit-identical trajectories;
/// weighted state is allowed to differ (checked separately).
fn assert_same_trajectory(
    a: &mut dyn rbb_core::engine::Engine,
    b: &mut dyn rbb_core::engine::Engine,
    rounds: u64,
    label: &str,
) {
    for r in 0..rounds {
        assert_eq!(a.step(), b.step(), "{label}: movers diverged at round {r}");
        assert_eq!(
            a.config(),
            b.config(),
            "{label}: config diverged at round {r}"
        );
        assert_eq!(a.round(), b.round());
        assert_eq!(a.balls(), b.balls());
        assert_eq!(a.max_load(), b.max_load());
    }
}

fn unit_degenerate_case(family: &str, n: usize, seed: u64, rounds: u64) {
    let plain_spec = family_spec(family, n, seed).build();
    let unit_weighted_spec = family_spec(family, n, seed)
        .weights(WeightsSpec::Explicit(vec![1; n]))
        .capacities(CapacitiesSpec::Unbounded)
        .build();
    // All-ones weights + unbounded capacities normalize away entirely: the
    // spec is not weighted and resolves to the same engine.
    assert!(!unit_weighted_spec.is_weighted());
    let mut plain = rbb_sim::build_engine(&plain_spec).expect("factory");
    let mut unit = rbb_sim::build_engine(&unit_weighted_spec).expect("factory");
    assert!(
        !unit.weighted(),
        "{family}: unit weights must not build an overlay"
    );
    assert_same_trajectory(plain.as_mut(), unit.as_mut(), rounds, family);
    // Same snapshot bytes — including the layout version: an unused
    // weighted layer must not version-bump checkpoints.
    let (sa, sb) = (plain.snapshot(), unit.snapshot());
    assert_eq!(sa, sb, "{family}: snapshots differ for unit weights");
    if let Some(s) = sa {
        assert_eq!(
            s.weighted, None,
            "{family}: unit snapshot grew a weighted section"
        );
    }
}

fn oblivious_case(family: &str, n: usize, seed: u64, rounds: u64) {
    let unit_spec = family_spec(family, n, seed).build();
    let weighted_spec = family_spec(family, n, seed)
        .weights(WeightsSpec::Zipf {
            s: 1.0,
            w_max: Some(9),
        })
        .capacities(CapacitiesSpec::Uniform { c: 3 })
        .build();
    assert!(weighted_spec.is_weighted());
    let mut unit = rbb_sim::build_engine(&unit_spec).expect("factory");
    let mut weighted = rbb_sim::build_engine(&weighted_spec).expect("factory");
    assert!(weighted.weighted());
    let total = weighted.total_weight();
    assert!(total >= weighted.balls(), "{family}: weights are >= 1 each");
    assert_same_trajectory(unit.as_mut(), weighted.as_mut(), rounds, family);
    // The overlay conserves mass and stays consistent with the ball loads.
    assert_eq!(
        weighted.total_weight(),
        total,
        "{family}: weight mass not conserved"
    );
    assert!(weighted.weighted_max_load() >= u64::from(weighted.max_load()));
}

fn weighted_round_trip_case(family: &str, n: usize, seed: u64, rounds: u64) {
    let spec = family_spec(family, n, seed)
        .weights(WeightsSpec::Zipf {
            s: 1.2,
            w_max: Some(7),
        })
        .capacities(CapacitiesSpec::Uniform { c: 4 })
        .build();
    let mut engine = rbb_sim::build_engine(&spec).expect("factory");
    for _ in 0..rounds {
        engine.step();
    }
    let snap = engine.snapshot().expect("load engines snapshot");
    snap.validate().expect("engine snapshots validate");
    assert!(
        snap.weighted.is_some(),
        "{family}: weighted run must emit a v2 snapshot"
    );
    let mut restored = restore(&snap).expect("restore");
    // Identical continuation, weighted surface included.
    for r in 0..rounds {
        assert_eq!(
            engine.step(),
            restored.step(),
            "{family}: movers diverged at +{r}"
        );
        assert_eq!(
            engine.config(),
            restored.config(),
            "{family}: config diverged at +{r}"
        );
        assert_eq!(
            engine.weighted_max_load(),
            restored.weighted_max_load(),
            "{family}: weighted max diverged at +{r}"
        );
        assert_eq!(
            engine.capacity_violations(),
            restored.capacity_violations(),
            "{family}: violation count diverged at +{r}"
        );
    }
    assert_eq!(engine.snapshot(), restored.snapshot());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Law 1 across random (n, seed): the unit-weight configuration of the
    /// weighted constructors is today's engine, bit for bit.
    #[test]
    fn unit_weights_and_unbounded_caps_degenerate_to_the_plain_engines(
        n in 9usize..65,
        seed in any::<u64>(),
        rounds in 20u64..50,
    ) {
        for family in FAMILIES {
            unit_degenerate_case(family, n, seed, rounds);
        }
    }

    /// Law 2: weights are metric-only — the trajectory never sees them.
    #[test]
    fn weighted_engines_share_the_unit_trajectory(
        n in 9usize..65,
        seed in any::<u64>(),
        rounds in 20u64..50,
    ) {
        for family in FAMILIES {
            oblivious_case(family, n, seed, rounds);
        }
    }

    /// Law 3: version-2 snapshots resume bit-identically.
    #[test]
    fn weighted_snapshots_round_trip(
        n in 9usize..65,
        seed in any::<u64>(),
        rounds in 10u64..40,
    ) {
        for family in FAMILIES {
            weighted_round_trip_case(family, n, seed, rounds);
        }
    }
}

/// The same three laws at pinned seeds with more rounds, so the weighted
/// matrix is exercised even if the property runner's case count is trimmed.
#[test]
fn weighted_matrix_pinned_seeds() {
    for family in FAMILIES {
        for seed in [1u64, 0xBEEF] {
            unit_degenerate_case(family, 33, seed, 100);
            oblivious_case(family, 33, seed, 100);
            weighted_round_trip_case(family, 33, seed, 60);
        }
    }
}

/// Core-constructor variant of law 1: `with_weights` itself (not just the
/// spec factory) must normalize all-ones weights to the no-overlay engine.
#[test]
fn core_with_weights_normalizes_unit_weights() {
    let n = 48;
    let mk_rng = || Xoshiro256pp::seed_from(11);
    let mut plain = LoadProcess::new(Config::one_per_bin(n), mk_rng());
    let mut unit = LoadProcess::with_weights(
        Config::one_per_bin(n),
        mk_rng(),
        Weights::Explicit(vec![1; n]),
        Capacities::Unbounded,
    );
    assert!(!unit.weighted());
    for _ in 0..80 {
        assert_eq!(plain.step(), unit.step());
    }
    assert_eq!(plain.snapshot(), unit.snapshot());
}
