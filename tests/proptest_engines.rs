//! Cross-engine equivalence: `step` and `step_batched` produce
//! bit-identical trajectories for **every** [`Engine`] implementation the
//! scenario factory can build — not just the load/ball engines whose unit
//! tests already pin it. Engines without a dedicated batched kernel default
//! `step_batched` to `step`; this suite keeps that contract honest as
//! kernels get added, and it pins the mover counts as well as the
//! configurations.
//!
//! Engines are built in pairs through `rbb_sim::build_engine` from one
//! spec, so the matrix automatically tracks the factory table (clique
//! engines, d-choice, Tetris variants, traversal, and both graph walkers).

use proptest::prelude::*;

use rbb_sim::{ArrivalSpec, ScenarioSpec, StopSpec, StrategySpec, TopologySpec};

/// Every `impl Engine` type the matrix below drives (indirectly, through
/// `rbb_sim::build_engine`). rbb-lint's `engine-proptest` repo check
/// cross-references the workspace's Engine impls against this file, so a
/// new engine must be added both to [`engine_matrix`] and to this list.
///
/// The load engines are covered in both their unit and their **weighted**
/// configurations (the `*-weighted` matrix labels); the weighted-specific
/// laws — unit degeneration, weight obliviousness, snapshot round-trip —
/// live in `tests/proptest_weighted.rs`.
const COVERED_ENGINES: &[&str] = &[
    "LoadProcess",
    "LoadProcess (weighted)",
    "SparseLoadProcess",
    "SparseLoadProcess (weighted)",
    "ShardedLoadProcess",
    "ShardedLoadProcess (weighted)",
    "BallProcess",
    "DChoiceProcess",
    "Tetris",
    "BatchedTetris",
    "Traversal",
    "GraphLoadProcess",
    "GraphTokenProcess",
];

/// Every distinct engine family the factory serves, as spec fragments:
/// `(label, arrival, strategy, topology, stop)`.
type Combo = (
    &'static str,
    ArrivalSpec,
    Option<StrategySpec>,
    TopologySpec,
    StopSpec,
);

fn engine_matrix() -> Vec<Combo> {
    vec![
        (
            "load",
            ArrivalSpec::Uniform,
            None,
            TopologySpec::Complete,
            StopSpec::Horizon,
        ),
        (
            // The sparse occupancy engine (spec_for forces engine: sparse
            // for this label); scalar and batched kernels both exist.
            "load-sparse",
            ArrivalSpec::Uniform,
            None,
            TopologySpec::Complete,
            StopSpec::Horizon,
        ),
        (
            // The sharded engine at 4 shards (spec_for forces engine:
            // sharded); scalar and batched round bodies both exist.
            "load-sharded",
            ArrivalSpec::Uniform,
            None,
            TopologySpec::Complete,
            StopSpec::Horizon,
        ),
        (
            // The dense engine carrying the weighted overlay (spec_for
            // adds zipf weights + a uniform capacity for `*-weighted`
            // labels): the scalar/batched law must hold with the overlay
            // in play, not just on the unit fast path.
            "load-weighted",
            ArrivalSpec::Uniform,
            None,
            TopologySpec::Complete,
            StopSpec::Horizon,
        ),
        (
            "load-sparse-weighted",
            ArrivalSpec::Uniform,
            None,
            TopologySpec::Complete,
            StopSpec::Horizon,
        ),
        (
            "load-sharded-weighted",
            ArrivalSpec::Uniform,
            None,
            TopologySpec::Complete,
            StopSpec::Horizon,
        ),
        (
            "ball-fifo",
            ArrivalSpec::Uniform,
            Some(StrategySpec::Fifo),
            TopologySpec::Complete,
            StopSpec::Horizon,
        ),
        (
            "ball-lifo",
            ArrivalSpec::Uniform,
            Some(StrategySpec::Lifo),
            TopologySpec::Complete,
            StopSpec::Horizon,
        ),
        (
            "ball-random",
            ArrivalSpec::Uniform,
            Some(StrategySpec::Random),
            TopologySpec::Complete,
            StopSpec::Horizon,
        ),
        (
            "dchoice",
            ArrivalSpec::DChoice { d: 2 },
            None,
            TopologySpec::Complete,
            StopSpec::Horizon,
        ),
        (
            "tetris",
            ArrivalSpec::Tetris,
            None,
            TopologySpec::Complete,
            StopSpec::Horizon,
        ),
        (
            "batched-tetris",
            ArrivalSpec::BatchedTetris { lambda: 0.75 },
            None,
            TopologySpec::Complete,
            StopSpec::Horizon,
        ),
        (
            "traversal",
            ArrivalSpec::Uniform,
            Some(StrategySpec::Fifo),
            TopologySpec::Complete,
            StopSpec::Covered,
        ),
        (
            "graph-load-ring",
            ArrivalSpec::Uniform,
            None,
            TopologySpec::Ring,
            StopSpec::Horizon,
        ),
        (
            "graph-load-torus",
            ArrivalSpec::Uniform,
            None,
            TopologySpec::Torus,
            StopSpec::Horizon,
        ),
        (
            "graph-token-hypercube",
            ArrivalSpec::Uniform,
            Some(StrategySpec::Lifo),
            TopologySpec::Hypercube,
            StopSpec::Horizon,
        ),
        (
            "graph-token-star",
            ArrivalSpec::Uniform,
            Some(StrategySpec::Random),
            TopologySpec::Star,
            StopSpec::Horizon,
        ),
    ]
}

fn spec_for(combo: &Combo, n: usize, seed: u64) -> ScenarioSpec {
    let (label, arrival, strategy, topology, stop) = combo;
    let mut b = ScenarioSpec::builder(n)
        .name(*label)
        .arrival(*arrival)
        .topology(*topology)
        .stop(*stop)
        .horizon_rounds(1)
        .seed(seed);
    if let Some(s) = strategy {
        b = b.strategy(*s);
    }
    if label.starts_with("load-sparse") {
        b = b.engine(rbb_sim::EngineSpec::Sparse);
    }
    if label.starts_with("load-sharded") {
        b = b.engine(rbb_sim::EngineSpec::Sharded).shards(4);
    }
    if label.ends_with("-weighted") {
        b = b
            .weights(rbb_sim::WeightsSpec::Zipf {
                s: 1.0,
                w_max: Some(8),
            })
            .capacities(rbb_sim::CapacitiesSpec::Uniform { c: 3 });
    }
    b.build()
}

/// Steps one engine scalar and its twin batched, comparing every round.
fn assert_paths_identical(combo: &Combo, n: usize, seed: u64, rounds: u64) {
    let spec = spec_for(combo, n, seed);
    spec.validate()
        .unwrap_or_else(|e| panic!("matrix combo '{}' must be a valid spec: {e}", combo.0));
    let mut scalar = rbb_sim::build_engine(&spec).expect("factory");
    let mut batched = rbb_sim::build_engine(&spec).expect("factory");
    for r in 0..rounds {
        let a = scalar.step();
        let b = batched.step_batched();
        assert_eq!(
            a, b,
            "{}: mover count diverged at round {r} (n = {n}, seed = {seed})",
            combo.0
        );
        assert_eq!(
            scalar.config(),
            batched.config(),
            "{}: trajectory diverged at round {r} (n = {n}, seed = {seed})",
            combo.0
        );
        assert_eq!(scalar.round(), batched.round());
        assert_eq!(scalar.balls(), batched.balls());
        assert_eq!(scalar.covered(), batched.covered());
        assert_eq!(scalar.min_progress(), batched.min_progress());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random (n, seed, rounds) across the whole engine matrix.
    #[test]
    fn step_and_step_batched_are_bit_identical_for_every_engine(
        n in 9usize..65,
        seed in any::<u64>(),
        rounds in 20u64..60,
    ) {
        for combo in engine_matrix() {
            assert_paths_identical(&combo, n, seed, rounds);
        }
    }
}

/// A fixed-seed pass with more rounds, so the matrix is exercised even if
/// the property runner's case count is trimmed.
#[test]
fn engine_matrix_pinned_seeds() {
    for combo in engine_matrix() {
        for seed in [1u64, 0xDEAD] {
            assert_paths_identical(&combo, 33, seed, 100);
        }
    }
}

/// The coverage list exists for rbb-lint's `engine-proptest`
/// cross-reference; keep it duplicate-free so a stale or copy-pasted
/// entry is noticed.
#[test]
fn covered_engines_list_has_no_duplicates() {
    let mut names = COVERED_ENGINES.to_vec();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), COVERED_ENGINES.len());
}
