//! Theory-conformance suite: the paper's probabilistic claims, machine-
//! checked against ensemble estimates.
//!
//! Two ground truths back the checks:
//!
//! * the paper's own Appendix-A Chernoff envelopes (`rbb_stats::chernoff`)
//!   for the w.h.p. events at moderate `n`, and
//! * the exact finite Markov chain (`rbb_core::exact::ExactChain`) for tiny
//!   `n`, compared via total-variation distance and pooled chi-square.
//!
//! Every test runs a **fixed seed set** through the deterministic ensemble
//! subsystem, so the empirical numbers — and hence the assertions — are
//! bit-reproducible: there are no flaky tolerances here, only pinned
//! budgets with slack over the measured values. `ci.sh` runs this file as
//! a named test group under a wall-clock budget, at two thread counts.

use rbb_core::config::{Config, LegitimacyThreshold};
use rbb_core::engine::Engine;
use rbb_core::exact::ExactChain;
use rbb_core::metrics::RoundObserver;
use rbb_core::process::LoadProcess;
use rbb_core::rng::Xoshiro256pp;
use std::sync::OnceLock;

use rbb_sim::{EnsembleReport, EnsembleSpec, MetricKind, MetricSpec, ScenarioSpec};
use rbb_stats::{chi_square_stat, lemma1_alpha, normalize, pool_cells, tv_distance};

/// The suite's fixed master seed (arbitrary; all budgets were pinned
/// against the numbers this seed produces).
const MASTER: u64 = 0xC04F_0444_2015_0615;

/// The 48-seed stability ensemble at size `n`, computed once per test
/// binary — both Chernoff-envelope tests read the same report, so the
/// suite's dominant simulation cost is paid once, not per test.
fn stability_report(n: usize) -> &'static EnsembleReport {
    static R64: OnceLock<EnsembleReport> = OnceLock::new();
    static R256: OnceLock<EnsembleReport> = OnceLock::new();
    let cell = match n {
        64 => &R64,
        256 => &R256,
        _ => panic!("unpinned size {n}"),
    };
    cell.get_or_init(|| {
        let scenario = ScenarioSpec::builder(n)
            .name("conformance-stability")
            .horizon_rounds(20 * n as u64)
            .build();
        let bound = LegitimacyThreshold::default().bound(n) as f64;
        EnsembleSpec::new(scenario, MASTER ^ n as u64, 48)
            .with_metrics(vec![
                MetricSpec::with_thresholds(MetricKind::WindowMaxLoad, vec![bound]),
                MetricSpec::plain(MetricKind::QuarterViolationRate),
                MetricSpec::plain(MetricKind::MinEmptyBins),
            ])
            .run()
            .unwrap()
    })
}

/// Theorem 1(a): from a legitimate start the window max load exceeds the
/// `4 ln n` legitimacy bound with probability at most `n^{-c}` (w.h.p.).
/// The empirical tail over the fixed seed set must sit at or below the
/// envelope — and the envelope itself must be non-vacuous at these sizes.
#[test]
fn max_load_tail_stays_below_whp_envelope() {
    for n in [64usize, 256] {
        let report = stability_report(n);
        let bound = LegitimacyThreshold::default().bound(n) as f64;
        let wml = report.metric(MetricKind::WindowMaxLoad).unwrap();
        let tail = wml.tail_at(bound).expect("threshold requested");

        // The paper's w.h.p. target: probability at most 1/n per window.
        let envelope = 1.0 / n as f64;
        assert!(envelope < 0.05, "envelope must be non-vacuous at n = {n}");
        assert!(
            tail.probability <= envelope,
            "n = {n}: empirical P(window max >= {bound}) = {} > envelope {envelope}",
            tail.probability
        );
        // With 48 fixed seeds the conforming outcome is exactly zero
        // exceedances; the Wilson lower bound is then 0 <= envelope.
        assert_eq!(tail.exceed_count, 0, "n = {n}");
        assert!(tail.wilson.lo <= envelope, "n = {n}");
        // And the window max itself stays within the observed O(ln n) band.
        assert!(wml.max <= bound, "n = {n}: worst window max {}", wml.max);
    }
}

/// Lemmas 1–2: in any round (after the first), fewer than `n/4` bins are
/// empty with probability at most `e^{-αn}`, with the paper's explicit
/// `α(n)`. The per-round empirical violation frequency — the
/// `quarter-violation-rate` ensemble metric — must conform.
#[test]
fn empty_bins_violation_rate_stays_below_lemma1_envelope() {
    for n in [64usize, 256] {
        let report = stability_report(n);
        let rate = report.metric(MetricKind::QuarterViolationRate).unwrap();
        let envelope = (-lemma1_alpha(n) * n as f64).exp();
        assert!(
            rate.mean <= envelope,
            "n = {n}: empirical per-round violation rate {} > Chernoff envelope {envelope}",
            rate.mean
        );
        // Pinned against the fixed seed set: at n = 64 a single round in
        // ~61k observations dips below n/4 (rate 3.3e-5, well under the
        // envelope); at n = 256 no round does.
        assert!(rate.mean <= 1e-4, "n = {n}: rate {}", rate.mean);
        if n >= 256 {
            assert_eq!(rate.mean, 0.0, "n = {n}");
        }
        let min_empty = report.metric(MetricKind::MinEmptyBins).unwrap();
        assert!(
            min_empty.min >= (n / 4) as f64 - 2.0,
            "n = {n}: min empty bins {}",
            min_empty.min
        );
    }
}

/// Counts how often each exact-chain state is visited.
struct StateCounter<'a> {
    chain: &'a ExactChain,
    counts: Vec<u64>,
}

impl RoundObserver for StateCounter<'_> {
    fn observe(&mut self, _round: u64, config: &Config) {
        let idx = self
            .chain
            .state_index(config.loads())
            .expect("simulated configuration must be a chain state");
        self.counts[idx] += 1;
    }
}

/// Runs the real engine for `rounds` rounds (after `burn_in`) and returns
/// per-state visit counts.
fn occupancy(chain: &ExactChain, seed: u64, burn_in: u64, rounds: u64) -> Vec<u64> {
    let n = chain.n();
    let m = chain.m();
    assert_eq!(n as u32, m, "suite uses m = n chains");
    let mut p = LoadProcess::new(Config::one_per_bin(n), Xoshiro256pp::seed_from(seed));
    p.run_silent(burn_in);
    let mut counter = StateCounter {
        chain,
        counts: vec![0; chain.num_states()],
    };
    p.run(rounds, &mut counter);
    counter.counts
}

/// The ergodic theorem against the enumerative kernel: long-run state
/// occupancy of the simulated process matches the exact stationary law in
/// total variation, within a pinned budget.
#[test]
fn state_occupancy_matches_exact_stationary_law() {
    for (n, rounds, tv_budget) in [(3usize, 150_000u64, 0.01), (4, 120_000, 0.02)] {
        let chain = ExactChain::build(n, n as u32);
        let pi = chain.stationary(1e-13, 200_000);
        let counts = occupancy(&chain, MASTER ^ rounds, 1_000, rounds);
        let empirical = normalize(&counts);
        let tv = tv_distance(&empirical, &pi);
        assert!(
            tv <= tv_budget,
            "n = {n}: TV(empirical, stationary) = {tv} > budget {tv_budget}"
        );

        // Pooled chi-square over the same table. Per-round samples are
        // autocorrelated, so no classical critical value applies — the
        // budget is pinned against the fixed-seed measurement with slack.
        let (obs, exp) = pool_cells(&counts, &pi, 5.0);
        let stat = chi_square_stat(&obs, &exp);
        let chi_budget = 4.0 * chain.num_states() as f64;
        assert!(
            stat <= chi_budget,
            "n = {n}: pooled chi-square {stat} > budget {chi_budget}"
        );
    }
}

/// The max-load functional of the stationary law, through the ensemble API:
/// the ensemble's `mean-round-max` (time average of `M(t)`) must agree with
/// the exact `E_pi[max load]`, and the final-configuration law must match
/// the exact stationary max-load distribution in TV.
#[test]
fn ensemble_estimates_match_exact_chain_functionals() {
    let n = 3usize;
    let chain = ExactChain::build(n, n as u32);
    let pi = chain.stationary(1e-13, 200_000);

    // Time-average check: 8 trials x 20k rounds.
    let scenario = ScenarioSpec::builder(n)
        .name("conformance-exact")
        .horizon_rounds(20_000)
        .build();
    let report = EnsembleSpec::new(scenario, MASTER ^ 0xE1, 8)
        .with_metrics(vec![MetricSpec::plain(MetricKind::MeanRoundMax)])
        .run()
        .unwrap();
    let mrm = report.metric(MetricKind::MeanRoundMax).unwrap();
    let exact = chain.expected_max_load(&pi);
    let err = (mrm.mean - exact).abs();
    assert!(
        err <= 0.01,
        "ensemble mean-round-max {} vs exact E[max load] {exact}: |diff| = {err}",
        mrm.mean
    );

    // Distribution check: 400 independent seeds, each run 200 rounds (past
    // mixing at n = 3); the final max-load law vs the exact stationary one,
    // with the empirical pmf rebuilt from tails at integer thresholds.
    let short = ScenarioSpec::builder(n)
        .name("conformance-exact-final")
        .horizon_rounds(200)
        .build();
    let report = EnsembleSpec::new(short, MASTER ^ 0xE2, 400)
        .with_metrics(vec![MetricSpec::with_thresholds(
            MetricKind::FinalMaxLoad,
            (0..=n as u64 + 1).map(|k| k as f64).collect(),
        )])
        .run()
        .unwrap();
    let fml = report.metric(MetricKind::FinalMaxLoad).unwrap();
    assert_eq!(fml.count, 400);
    // Exact stationary pmf of the max load over values 0..=n.
    let exact_pmf: Vec<f64> = (0..=n as u32)
        .map(|k| chain.prob_max_load_at_least(&pi, k) - chain.prob_max_load_at_least(&pi, k + 1))
        .collect();
    let empirical_pmf: Vec<f64> = (0..=n)
        .map(|k| {
            fml.tail_at(k as f64).unwrap().probability
                - fml.tail_at((k + 1) as f64).unwrap().probability
        })
        .collect();
    let tv = tv_distance(&empirical_pmf, &exact_pmf);
    assert!(
        tv <= 0.05,
        "final max-load law vs exact stationary: TV = {tv}"
    );
}

/// The Appendix-B exactness check rides along: the generic kernel must
/// reproduce the paper's 1/4, 3/8, 1/8 positively-associated arrival
/// probabilities — the suite's anchor that `exact.rs` is the right ground
/// truth to conform against.
#[test]
fn appendix_b_ground_truth_is_exact() {
    let ab = rbb_core::exact::appendix_b_exact();
    assert!((ab.p_x1_zero - 0.25).abs() < 1e-15);
    assert!((ab.p_x2_zero - 0.375).abs() < 1e-15);
    assert!((ab.p_joint_zero - 0.125).abs() < 1e-15);
    assert!(ab.violates_negative_association());
}
