//! Sharded-engine determinism contract, pinned at the facade:
//!
//! 1. **Shard-count 1 is bit-identical to the dense stream.** The single
//!    shard draws from the engine-convention stream and the single-shard
//!    round is exactly the dense scan + batched throw, so the factory-built
//!    pair must agree on the full metric surface, faults included — the
//!    same discipline `proptest_sparse.rs` pins for the sparse engine.
//! 2. **A fixed shard count is exactly reproducible** — across rebuilds,
//!    across scalar/batched stepping mixes, and (by construction; the unit
//!    tests pin the parallel round body) across thread counts.
//! 3. **Every shard count obeys the process law.** The round's departure
//!    count equals the previous non-empty count, mass is conserved, and the
//!    cheap accessors match the dense snapshot — the trajectory-level
//!    invariants that characterize the paper's process regardless of which
//!    stream the destinations are drawn from.
//! 4. **Fault injection is engine-independent.** A placement fault forces
//!    the same configuration on every engine at any shard count, and
//!    consumes no engine randomness.
//!
//! Shard counts cover {1, 2, 4, 7}: both power-of-two (mask/shift routing)
//! and odd (div/mod routing) partitions.

use proptest::prelude::*;

use rbb_core::engine::Engine;
use rbb_sim::{EngineSpec, ScenarioSpec, StartSpec};

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 7];

fn arb_start() -> impl Strategy<Value = StartSpec> {
    (0usize..5, 1usize..6, any::<u64>()).prop_map(|(pick, k, salt)| match pick {
        0 => StartSpec::AllInOne,
        1 => StartSpec::Packed { k },
        2 => StartSpec::Geometric,
        3 => StartSpec::RandomMultinomial { salt },
        _ => StartSpec::Random { salt },
    })
}

fn base_spec(n: usize, m: u64, start: StartSpec, seed: u64) -> ScenarioSpec {
    let start = match start {
        StartSpec::Packed { k } => StartSpec::Packed { k: k.min(n) },
        other => other,
    };
    ScenarioSpec::builder(n)
        .balls(m)
        .start(start)
        .horizon_rounds(1)
        .seed(seed)
        .build()
}

fn build(spec: &ScenarioSpec, engine: EngineSpec, shards: Option<usize>) -> Box<dyn Engine> {
    rbb_sim::build_engine(&ScenarioSpec {
        engine: Some(engine),
        shards,
        ..spec.clone()
    })
    .expect("factory")
}

/// Lockstep bit-identity comparison (meaningful at shard count 1), with a
/// scalar/batched mix and an optional mid-run fault — mirrors the sparse
/// suite's `assert_pair_identical`.
fn assert_pair_identical(
    dense: &mut dyn Engine,
    sharded: &mut dyn Engine,
    rounds: u64,
    fault_at: Option<u64>,
) {
    for r in 0..rounds {
        let (a, b) = if r % 2 == 0 {
            (dense.step(), sharded.step())
        } else {
            (dense.step_batched(), sharded.step_batched())
        };
        assert_eq!(a, b, "departure count diverged at round {r}");
        assert_eq!(dense.round(), sharded.round());
        assert_eq!(dense.balls(), sharded.balls());
        assert_eq!(dense.max_load(), sharded.max_load(), "round {r}");
        assert_eq!(dense.empty_bins(), sharded.empty_bins(), "round {r}");
        assert_eq!(dense.nonempty_bins(), sharded.nonempty_bins());
        assert_eq!(
            dense.config(),
            sharded.config(),
            "trajectory diverged at round {r}"
        );
        if fault_at == Some(r) {
            let placement: Vec<usize> = (0..dense.balls() as usize)
                .map(|ball| (ball * 7 + 1) % dense.n())
                .collect();
            dense.apply_fault(&placement);
            sharded.apply_fault(&placement);
            assert_eq!(dense.config(), sharded.config(), "fault diverged");
        }
    }
}

/// Law-level invariants that hold at any shard count: departures equal the
/// previous non-empty count, mass is conserved, and every cheap accessor
/// agrees with the materialized dense snapshot.
fn assert_law_invariants(engine: &mut dyn Engine, balls: u64, rounds: u64) {
    for r in 0..rounds {
        let nonempty_before = engine.nonempty_bins();
        let moved = if r % 2 == 0 {
            engine.step()
        } else {
            engine.step_batched()
        };
        assert_eq!(moved, nonempty_before, "release law violated at round {r}");
        let config = engine.config().clone();
        assert_eq!(config.total_balls(), balls, "mass violated at round {r}");
        assert_eq!(engine.max_load(), config.max_load(), "round {r}");
        assert_eq!(engine.empty_bins(), config.empty_bins(), "round {r}");
        assert_eq!(engine.nonempty_bins(), config.nonempty_bins(), "round {r}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Random (n, m, start, seed): a 1-shard sharded engine is
    /// indistinguishable from the dense engine — trajectory, metric
    /// surface, and fault handling.
    #[test]
    fn one_shard_is_bit_identical_to_dense(
        n in 2usize..257,
        m in 1u64..400,
        start in arb_start(),
        seed in any::<u64>(),
        rounds in 10u64..50,
        with_fault in any::<bool>(),
        fault_round in 0u64..40,
    ) {
        let spec = base_spec(n, m, start, seed);
        let mut dense = build(&spec, EngineSpec::Dense, None);
        let mut sharded = build(&spec, EngineSpec::Sharded, Some(1));
        prop_assert!(sharded.supports_faults());
        let fault = with_fault.then_some(fault_round);
        assert_pair_identical(dense.as_mut(), sharded.as_mut(), rounds, fault);
    }

    /// Random (n, m, start, seed) × shard counts {1, 2, 4, 7}: rebuilding
    /// the same spec reproduces the trajectory exactly, and the law-level
    /// invariants hold round by round.
    #[test]
    fn fixed_shard_count_is_reproducible_and_lawful(
        n in 8usize..257,
        m in 1u64..300,
        start in arb_start(),
        seed in any::<u64>(),
        rounds in 10u64..40,
    ) {
        for shards in SHARD_COUNTS {
            let shards = shards.min(n);
            let spec = base_spec(n, m, start, seed);
            let mut a = build(&spec, EngineSpec::Sharded, Some(shards));
            let mut b = build(&spec, EngineSpec::Sharded, Some(shards));
            assert_law_invariants(a.as_mut(), m, rounds);
            for _ in 0..rounds {
                b.step_batched();
            }
            // Scalar/batched-mixed `a` and batched-only `b` land on the
            // same state: the paths are bit-compatible and the build is
            // deterministic.
            prop_assert_eq!(a.config(), b.config(), "shards = {}", shards);
        }
    }

    /// A placement fault forces the same configuration at every shard
    /// count (fault application is engine-independent and consumes no
    /// engine randomness).
    #[test]
    fn faults_are_engine_independent_at_any_shard_count(
        n in 8usize..200,
        seed in any::<u64>(),
        pre_rounds in 1u64..20,
    ) {
        let spec = base_spec(n, n as u64, StartSpec::OnePerBin, seed);
        let placement: Vec<usize> = (0..n).map(|ball| (ball * 3 + 2) % n).collect();
        let mut dense = build(&spec, EngineSpec::Dense, None);
        for _ in 0..pre_rounds { dense.step_batched(); }
        dense.apply_fault(&placement);
        let reference = dense.config().clone();
        for shards in SHARD_COUNTS {
            let shards = shards.min(n);
            let mut sharded = build(&spec, EngineSpec::Sharded, Some(shards));
            for _ in 0..pre_rounds { sharded.step_batched(); }
            sharded.apply_fault(&placement);
            prop_assert_eq!(sharded.config(), &reference, "shards = {}", shards);
            // Post-fault rounds keep the law invariants.
            assert_law_invariants(sharded.as_mut(), n as u64, 10);
        }
    }
}

/// Fixed-seed pass with more rounds, exercised even if the property
/// runner's case count is trimmed.
#[test]
fn sharded_pinned_seeds() {
    for seed in [1u64, 0xDEAD, 0xC0FFEE] {
        for (n, m, start) in [
            (64usize, 64u64, StartSpec::OnePerBin),
            (1000, 10, StartSpec::AllInOne),
            (128, 300, StartSpec::Random { salt: 0xFEED }),
            (4096, 17, StartSpec::RandomMultinomial { salt: 1 }),
        ] {
            let spec = base_spec(n, m, start, seed);
            let mut dense = build(&spec, EngineSpec::Dense, None);
            let mut sharded = build(&spec, EngineSpec::Sharded, Some(1));
            assert_pair_identical(dense.as_mut(), sharded.as_mut(), 150, Some(75));
        }
    }
}

/// Different shard counts share the law but not the stream: from one seed
/// the trajectories diverge, while long-run occupancy statistics agree to
/// a few percent (the law-equality sanity check at the statistics level).
#[test]
fn shard_counts_differ_per_seed_but_agree_in_law() {
    let n = 512usize;
    let rounds = 400u64;
    let mean_nonempty = |shards: Option<usize>, engine: EngineSpec, seed: u64| {
        let spec = base_spec(n, n as u64, StartSpec::OnePerBin, seed);
        let mut e = build(&spec, engine, shards);
        let mut total = 0.0f64;
        for _ in 0..rounds {
            e.step_batched();
            total += e.nonempty_bins() as f64;
        }
        total / rounds as f64
    };
    let dense = mean_nonempty(None, EngineSpec::Dense, 9);
    for shards in [2usize, 4, 7] {
        let sharded = mean_nonempty(Some(shards), EngineSpec::Sharded, 9);
        let rel = (sharded - dense).abs() / dense;
        assert!(
            rel < 0.05,
            "mean occupancy diverged in law at {shards} shards: dense {dense:.1} vs {sharded:.1}"
        );
    }
    // And the per-seed trajectories do diverge (different streams).
    let spec = base_spec(n, n as u64, StartSpec::OnePerBin, 9);
    let mut one = build(&spec, EngineSpec::Sharded, Some(1));
    let mut four = build(&spec, EngineSpec::Sharded, Some(4));
    for _ in 0..50 {
        one.step_batched();
        four.step_batched();
    }
    assert_ne!(one.config(), four.config());
}
