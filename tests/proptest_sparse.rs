//! Sparse-vs-dense bit-identity: `SparseLoadProcess` must be
//! indistinguishable from `LoadProcess` — same trajectory, same round
//! counter, same departures, same metric surface, same fault behavior —
//! from any seed, any start, and any mix of scalar/batched stepping,
//! because the process consumes randomness only through the round's
//! departure-count-many uniform draws (see `rbb_core::sparse` for the
//! argument). Both engines are built through the scenario factory from one
//! spec that differs only in the `engine` field, so the property also pins
//! the spec-layer wiring (`StartSpec::build_entries`, `resolved_engine`).

use proptest::prelude::*;

use rbb_core::engine::Engine;
use rbb_sim::{AdversaryKindSpec, EngineSpec, ScenarioSpec, ScheduleSpec, StartSpec, StopSpec};

fn arb_start() -> impl Strategy<Value = StartSpec> {
    (0usize..5, 1usize..6, any::<u64>()).prop_map(|(pick, k, salt)| match pick {
        0 => StartSpec::AllInOne,
        1 => StartSpec::Packed { k },
        2 => StartSpec::Geometric,
        3 => StartSpec::RandomMultinomial { salt },
        _ => StartSpec::Random { salt },
    })
}

/// Builds the dense/sparse engine pair from one spec (differing only in
/// the `engine` field). Packed starts are clamped to `k ≤ n`.
fn engine_pair(
    n: usize,
    m: u64,
    start: StartSpec,
    seed: u64,
) -> (Box<dyn Engine>, Box<dyn Engine>) {
    let start = match start {
        StartSpec::Packed { k } => StartSpec::Packed { k: k.min(n) },
        other => other,
    };
    let spec = ScenarioSpec::builder(n)
        .balls(m)
        .start(start)
        .horizon_rounds(1)
        .seed(seed)
        .build();
    let dense = rbb_sim::build_engine(&ScenarioSpec {
        engine: Some(EngineSpec::Dense),
        ..spec.clone()
    })
    .expect("dense factory");
    let sparse = rbb_sim::build_engine(&ScenarioSpec {
        engine: Some(EngineSpec::Sparse),
        ..spec
    })
    .expect("sparse factory");
    (dense, sparse)
}

/// Lockstep comparison over `rounds` rounds with a scalar/batched mix and a
/// mid-run fault.
fn assert_pair_identical(
    dense: &mut dyn Engine,
    sparse: &mut dyn Engine,
    rounds: u64,
    fault_at: Option<u64>,
) {
    for r in 0..rounds {
        let (a, b) = if r % 2 == 0 {
            (dense.step(), sparse.step())
        } else {
            (dense.step_batched(), sparse.step_batched())
        };
        assert_eq!(a, b, "departure count diverged at round {r}");
        assert_eq!(dense.round(), sparse.round());
        assert_eq!(dense.balls(), sparse.balls());
        assert_eq!(dense.max_load(), sparse.max_load(), "round {r}");
        assert_eq!(dense.empty_bins(), sparse.empty_bins(), "round {r}");
        assert_eq!(dense.nonempty_bins(), sparse.nonempty_bins());
        assert_eq!(dense.covered(), sparse.covered());
        assert_eq!(dense.min_progress(), sparse.min_progress());
        assert_eq!(
            dense.config(),
            sparse.config(),
            "trajectory diverged at round {r}"
        );
        if fault_at == Some(r) {
            // The §4.1 adversary: pile everything into bin 1 (mod n). The
            // placement is engine-independent, and applying it consumes no
            // engine randomness, so the pair must stay in lockstep.
            let placement: Vec<usize> = (0..dense.balls() as usize)
                .map(|ball| (ball * 7 + 1) % dense.n())
                .collect();
            dense.apply_fault(&placement);
            sparse.apply_fault(&placement);
            assert_eq!(dense.config(), sparse.config(), "fault diverged");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random (n, m, start, seed): identical trajectories, metric surfaces,
    /// and fault handling across a scalar/batched stepping mix.
    #[test]
    fn sparse_engine_is_bit_identical_to_dense(
        n in 2usize..257,
        m in 1u64..400,
        start in arb_start(),
        seed in any::<u64>(),
        rounds in 10u64..50,
        with_fault in any::<bool>(),
        fault_round in 0u64..40,
    ) {
        let (mut dense, mut sparse) = engine_pair(n, m, start, seed);
        prop_assert!(dense.supports_faults() && sparse.supports_faults());
        let fault = with_fault.then_some(fault_round);
        assert_pair_identical(dense.as_mut(), sparse.as_mut(), rounds, fault);
    }

    /// The one-per-bin start (m = n) through the same pairing.
    #[test]
    fn sparse_matches_dense_from_legitimate_start(
        n in 2usize..200,
        seed in any::<u64>(),
    ) {
        let (mut dense, mut sparse) = engine_pair(n, n as u64, StartSpec::OnePerBin, seed);
        assert_pair_identical(dense.as_mut(), sparse.as_mut(), 60, None);
    }

    /// Full scenario runs (stop conditions, adversary schedule, observers'
    /// statistics) agree between the engines for every stop kind.
    #[test]
    fn sparse_scenarios_produce_identical_outcomes(
        n in 16usize..200,
        m in 1u64..64,
        seed in any::<u64>(),
        stop_pick in 0usize..3,
        with_adversary in any::<bool>(),
    ) {
        let mut b = ScenarioSpec::builder(n)
            .balls(m)
            .start(StartSpec::Geometric)
            .stop(match stop_pick {
                0 => StopSpec::Horizon,
                1 => StopSpec::Legitimate,
                _ => StopSpec::AllEmptied,
            })
            .horizon_rounds(250)
            .seed(seed);
        if with_adversary {
            b = b.adversary(
                AdversaryKindSpec::FollowTheLeader,
                ScheduleSpec::Period { period: 29 },
            );
        }
        let spec = b.build();
        let dense = ScenarioSpec { engine: Some(EngineSpec::Dense), ..spec.clone() }
            .scenario().expect("dense scenario").run();
        let sparse = ScenarioSpec { engine: Some(EngineSpec::Sparse), ..spec }
            .scenario().expect("sparse scenario").run();
        prop_assert_eq!(dense, sparse);
    }
}

/// Fixed-seed pass with more rounds, exercised even if the property
/// runner's case count is trimmed.
#[test]
fn sparse_pinned_seeds() {
    for seed in [1u64, 0xDEAD, 0xC0FFEE] {
        for (n, m, start) in [
            (64usize, 64u64, StartSpec::OnePerBin),
            (1000, 10, StartSpec::AllInOne),
            (128, 300, StartSpec::Random { salt: 0xFEED }),
            (4096, 17, StartSpec::RandomMultinomial { salt: 1 }),
        ] {
            let (mut dense, mut sparse) = engine_pair(n, m, start, seed);
            assert_pair_identical(dense.as_mut(), sparse.as_mut(), 150, Some(75));
        }
    }
}
