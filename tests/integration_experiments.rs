//! Smoke tests over the experiment suite: every registered experiment runs
//! to completion on quick sizes without writing artifacts. These are the
//! end-to-end guards that the EXPERIMENTS.md pipeline cannot rot.

use rbb_experiments::common::ExpContext;
use rbb_experiments::registry;

#[test]
fn every_experiment_runs_quick() {
    for e in registry() {
        let ctx = ExpContext::for_tests(e.id);
        (e.run)(&ctx);
    }
}

#[test]
fn registry_covers_all_claims() {
    let reg = registry();
    let claims: Vec<&str> = reg.iter().map(|e| e.claim).collect();
    // Every theorem/lemma/corollary/appendix of the paper is mapped.
    for needle in [
        "Theorem 1(a)",
        "Theorem 1(b)",
        "Lemmas 1-2",
        "Lemma 3",
        "Lemma 4",
        "Lemma 5",
        "Lemma 6",
        "Corollary 1",
        "Section 4.1",
        "Appendix B",
    ] {
        assert!(
            claims.iter().any(|c| c.contains(needle)),
            "claim {needle} not covered by any experiment"
        );
    }
}

#[test]
fn experiment_results_are_deterministic() {
    // E01 computed twice with the same context gives identical rows.
    use rbb_experiments::e01_stability;
    let ctx = ExpContext::for_tests("e01-det");
    let a = e01_stability::compute(&ctx, &[64, 128], 3);
    let b = e01_stability::compute(&ctx, &[64, 128], 3);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.mean_window_max, y.mean_window_max);
        assert_eq!(x.worst_window_max, y.worst_window_max);
    }
}
