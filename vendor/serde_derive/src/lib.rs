//! Offline vendored stub of `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for
//! non-generic structs with named fields — the only shape this workspace
//! derives — by walking the raw `proc_macro` token stream directly (the
//! real `syn`/`quote` stack is not available offline). `Serialize` lowers
//! the struct into `serde::Value::Object` with fields in declaration order;
//! `Deserialize` rebuilds it field by field, reading missing keys as
//! `Value::Null` so `Option` fields treat absence as `None`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` for a struct with named fields.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, fields) = parse_named_struct(input, "Serialize");

    let mut entries = String::new();
    for field in &fields {
        entries.push_str(&format!(
            "({field:?}.to_string(), serde::Serialize::serialize(&self.{field})),"
        ));
    }

    format!(
        "impl serde::Serialize for {name} {{\n\
             fn serialize(&self) -> serde::Value {{\n\
                 serde::Value::Object(vec![{entries}])\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("generated Serialize impl must parse")
}

/// Derives `serde::Deserialize` for a struct with named fields.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, fields) = parse_named_struct(input, "Deserialize");

    let mut entries = String::new();
    for field in &fields {
        entries.push_str(&format!(
            "{field}: serde::Deserialize::deserialize(serde::field(value, {field:?})?)\
                 .map_err(|e| e.in_field({field:?}))?,"
        ));
    }

    format!(
        "impl serde::Deserialize for {name} {{\n\
             fn deserialize(value: &serde::Value) -> Result<Self, serde::DeError> {{\n\
                 Ok(Self {{ {entries} }})\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("generated Deserialize impl must parse")
}

/// Parses `input` as a non-generic named-field struct, returning its name
/// and field names in declaration order.
fn parse_named_struct(input: TokenStream, derive: &str) -> (String, Vec<String>) {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes (`#[...]`, including doc comments) and
    // visibility, then expect `struct Name`.
    skip_attributes_and_vis(&tokens, &mut i);
    match tokens.get(i) {
        Some(TokenTree::Ident(kw)) if kw.to_string() == "struct" => i += 1,
        other => panic!("#[derive({derive})] stub supports only structs, got {other:?}"),
    }
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(name)) => name.to_string(),
        other => panic!("expected struct name, got {other:?}"),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("#[derive({derive})] stub does not support generic structs ({name})");
    }
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!("#[derive({derive})] stub requires named fields on {name}, got {other:?}"),
    };
    (name, field_names(body))
}

/// Advances `i` past any `#[...]` attributes and a `pub` / `pub(...)`
/// visibility prefix.
fn skip_attributes_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(kw)) if kw.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Extracts field names, in order, from the token stream of a named-field
/// struct body. Splits on commas outside `<...>` nesting so types like
/// `BTreeMap<String, f64>` don't confuse the scan.
fn field_names(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut names = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(field)) = tokens.get(i) else {
            break;
        };
        names.push(field.to_string());
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field name, got {other:?}"),
        }
        // Consume the type up to the next top-level comma.
        let mut angle_depth = 0i32;
        while let Some(tt) = tokens.get(i) {
            if let TokenTree::Punct(p) = tt {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    names
}
