//! Offline vendored stub of `serde`.
//!
//! The build environment has no network access, so this crate provides the
//! slice of serde the workspace uses: a [`Serialize`] trait (with a
//! same-named derive macro re-exported from `serde_derive`) that lowers
//! values into a small JSON-shaped [`Value`] model, which `serde_json`
//! renders, and the mirror-image [`Deserialize`] trait that rebuilds values
//! from a parsed [`Value`] tree. The full serde serializer/visitor machinery
//! is intentionally absent.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

// Lets the derive's generated `serde::...` paths resolve inside this crate's
// own tests.
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;

/// A JSON-shaped value tree: the serialization data model of this stub.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer (kept separate to round-trip `u64::MAX`).
    UInt(u64),
    /// Floating-point number. Non-finite values render as `null`.
    Float(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

/// Types that can lower themselves into a [`Value`].
///
/// Derivable for structs with named fields via `#[derive(serde::Serialize)]`.
pub trait Serialize {
    /// Lowers `self` into the value model.
    fn serialize(&self) -> Value;
}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
    )*};
}

impl_serialize_int!(i8, i16, i32, i64, isize);
impl_serialize_uint!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(x) => x.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize(&self) -> Value {
        Value::Array(vec![self.0.serialize(), self.1.serialize()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize(&self) -> Value {
        Value::Array(vec![
            self.0.serialize(),
            self.1.serialize(),
            self.2.serialize(),
        ])
    }
}

impl<K: ToString, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.serialize()))
                .collect(),
        )
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Value {
    /// Human-readable name of the variant, used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::UInt(_) => "uint",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up `key` in an object; returns [`Value::Null`] when the key is
    /// absent (mirroring serde's treatment of optional fields) and `None`
    /// when `self` is not an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => Some(
                entries
                    .iter()
                    .find(|(k, _)| k == key)
                    .map(|(_, v)| v)
                    .unwrap_or(&Value::Null),
            ),
            _ => None,
        }
    }
}

/// Deserialization failure: what was expected and what was found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// A "expected X, got Y" error.
    pub fn expected(what: &str, got: &Value) -> Self {
        DeError(format!("expected {what}, got {}", got.kind()))
    }

    /// An error tagged with the field it occurred under.
    pub fn in_field(self, field: &str) -> Self {
        DeError(format!("{field}: {}", self.0))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can rebuild themselves from a [`Value`].
///
/// Derivable for structs with named fields via
/// `#[derive(serde::Deserialize)]`; a missing key deserializes the field
/// from [`Value::Null`], so `Option` fields treat absence as `None`.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from the value model.
    fn deserialize(value: &Value) -> Result<Self, DeError>;
}

/// Looks up a struct field in an object value: missing keys yield
/// [`Value::Null`] (so `Option` fields default to `None`). Used by the
/// `#[derive(Deserialize)]` expansion.
pub fn field<'v>(value: &'v Value, key: &str) -> Result<&'v Value, DeError> {
    value
        .get(key)
        .ok_or_else(|| DeError::expected("object", value))
}

macro_rules! impl_deserialize_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, DeError> {
                let raw: u64 = match value {
                    Value::UInt(x) => *x,
                    Value::Int(x) if *x >= 0 => *x as u64,
                    other => return Err(DeError::expected("unsigned integer", other)),
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

macro_rules! impl_deserialize_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, DeError> {
                let raw: i64 = match value {
                    Value::Int(x) => *x,
                    Value::UInt(x) if *x <= i64::MAX as u64 => *x as i64,
                    other => return Err(DeError::expected("integer", other)),
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_deserialize_uint!(u8, u16, u32, u64, usize);
impl_deserialize_int!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Float(x) => Ok(*x),
            Value::Int(x) => Ok(*x as f64),
            Value::UInt(x) => Ok(*x as f64),
            other => Err(DeError::expected("number", other)),
        }
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Deserialize::deserialize(value)?;
        let got = items.len();
        items
            .try_into()
            .map_err(|_| DeError(format!("expected array of length {N}, got {got}")))
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        let items = value
            .as_array()
            .ok_or_else(|| DeError::expected("2-element array", value))?;
        if items.len() != 2 {
            return Err(DeError(format!(
                "expected 2-element array, got {} elements",
                items.len()
            )));
        }
        Ok((A::deserialize(&items[0])?, B::deserialize(&items[1])?))
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        let items = value
            .as_array()
            .ok_or_else(|| DeError::expected("3-element array", value))?;
        if items.len() != 3 {
            return Err(DeError(format!(
                "expected 3-element array, got {} elements",
                items.len()
            )));
        }
        Ok((
            A::deserialize(&items[0])?,
            B::deserialize(&items[1])?,
            C::deserialize(&items[2])?,
        ))
    }
}

impl Deserialize for Value {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_lower_to_expected_variants() {
        assert_eq!(5usize.serialize(), Value::UInt(5));
        assert_eq!((-3i32).serialize(), Value::Int(-3));
        assert_eq!(1.5f64.serialize(), Value::Float(1.5));
        assert_eq!(true.serialize(), Value::Bool(true));
        assert_eq!("hi".serialize(), Value::Str("hi".to_string()));
        assert_eq!(None::<u32>.serialize(), Value::Null);
    }

    #[test]
    fn containers_lower_recursively() {
        let v = vec![1u32, 2, 3].serialize();
        assert_eq!(
            v,
            Value::Array(vec![Value::UInt(1), Value::UInt(2), Value::UInt(3)])
        );
        let t = (1u32, "x").serialize();
        assert_eq!(
            t,
            Value::Array(vec![Value::UInt(1), Value::Str("x".into())])
        );
    }

    #[test]
    fn derive_produces_ordered_object() {
        #[derive(Serialize)]
        struct Rec {
            n: usize,
            value: f64,
        }
        let v = Rec { n: 7, value: 0.5 }.serialize();
        assert_eq!(
            v,
            Value::Object(vec![
                ("n".to_string(), Value::UInt(7)),
                ("value".to_string(), Value::Float(0.5)),
            ])
        );
    }

    #[test]
    fn primitives_deserialize_back() {
        assert_eq!(usize::deserialize(&Value::UInt(5)), Ok(5));
        assert_eq!(u64::deserialize(&Value::Int(9)), Ok(9));
        assert_eq!(i32::deserialize(&Value::Int(-3)), Ok(-3));
        assert_eq!(f64::deserialize(&Value::Float(1.5)), Ok(1.5));
        assert_eq!(f64::deserialize(&Value::Int(2)), Ok(2.0));
        assert_eq!(bool::deserialize(&Value::Bool(true)), Ok(true));
        assert_eq!(String::deserialize(&Value::Str("x".into())), Ok("x".into()));
        assert!(u8::deserialize(&Value::UInt(300)).is_err());
        assert!(usize::deserialize(&Value::Str("5".into())).is_err());
    }

    #[test]
    fn options_map_null_to_none() {
        assert_eq!(Option::<u32>::deserialize(&Value::Null), Ok(None));
        assert_eq!(Option::<u32>::deserialize(&Value::UInt(4)), Ok(Some(4)));
    }

    #[test]
    fn vectors_deserialize_elementwise() {
        let v = Value::Array(vec![Value::UInt(1), Value::UInt(2)]);
        assert_eq!(Vec::<u32>::deserialize(&v), Ok(vec![1, 2]));
        assert!(Vec::<u32>::deserialize(&Value::UInt(1)).is_err());
    }

    #[test]
    fn missing_object_key_reads_as_null() {
        let obj = Value::Object(vec![("a".into(), Value::UInt(1))]);
        assert_eq!(obj.get("a"), Some(&Value::UInt(1)));
        assert_eq!(obj.get("b"), Some(&Value::Null));
        assert_eq!(Value::UInt(1).get("a"), None);
    }

    #[test]
    fn arrays_and_tuples_round_trip() {
        let arr = [1u64, 2, 3, 4];
        assert_eq!(<[u64; 4]>::deserialize(&arr.serialize()), Ok(arr));
        assert!(<[u64; 4]>::deserialize(&[1u64, 2].serialize()).is_err());
        let pair = (3u32, 9u32);
        assert_eq!(<(u32, u32)>::deserialize(&pair.serialize()), Ok(pair));
        assert!(<(u32, u32)>::deserialize(&Value::UInt(1)).is_err());
        let triple = (1u32, "x".to_string(), true);
        assert_eq!(
            <(u32, String, bool)>::deserialize(&triple.serialize()),
            Ok(triple)
        );
        let nested = vec![(1u32, 2u32), (7, 8)];
        assert_eq!(
            Vec::<(u32, u32)>::deserialize(&nested.serialize()),
            Ok(nested)
        );
    }

    #[test]
    fn derive_deserialize_round_trips_struct() {
        #[derive(Serialize, Deserialize, Debug, PartialEq)]
        struct Rec {
            n: usize,
            label: Option<String>,
        }
        let rec = Rec {
            n: 3,
            label: Some("hi".into()),
        };
        assert_eq!(Rec::deserialize(&rec.serialize()), Ok(rec));
        // Missing optional key -> None; missing required key -> error.
        let partial = Value::Object(vec![("n".into(), Value::UInt(1))]);
        assert_eq!(Rec::deserialize(&partial), Ok(Rec { n: 1, label: None }));
        let empty = Value::Object(vec![]);
        assert!(Rec::deserialize(&empty).is_err());
    }
}
