//! Offline vendored stub of `serde`.
//!
//! The build environment has no network access, so this crate provides the
//! slice of serde the workspace uses: a [`Serialize`] trait (with a
//! same-named derive macro re-exported from `serde_derive`) that lowers
//! values into a small JSON-shaped [`Value`] model, which `serde_json`
//! renders. The full serde serializer/visitor machinery is intentionally
//! absent.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

// Lets the derive's generated `serde::...` paths resolve inside this crate's
// own tests.
extern crate self as serde;

pub use serde_derive::Serialize;

use std::collections::BTreeMap;

/// A JSON-shaped value tree: the serialization data model of this stub.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer (kept separate to round-trip `u64::MAX`).
    UInt(u64),
    /// Floating-point number. Non-finite values render as `null`.
    Float(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

/// Types that can lower themselves into a [`Value`].
///
/// Derivable for structs with named fields via `#[derive(serde::Serialize)]`.
pub trait Serialize {
    /// Lowers `self` into the value model.
    fn serialize(&self) -> Value;
}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
    )*};
}

impl_serialize_int!(i8, i16, i32, i64, isize);
impl_serialize_uint!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(x) => x.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize(&self) -> Value {
        Value::Array(vec![self.0.serialize(), self.1.serialize()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize(&self) -> Value {
        Value::Array(vec![
            self.0.serialize(),
            self.1.serialize(),
            self.2.serialize(),
        ])
    }
}

impl<K: ToString, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.serialize()))
                .collect(),
        )
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_lower_to_expected_variants() {
        assert_eq!(5usize.serialize(), Value::UInt(5));
        assert_eq!((-3i32).serialize(), Value::Int(-3));
        assert_eq!(1.5f64.serialize(), Value::Float(1.5));
        assert_eq!(true.serialize(), Value::Bool(true));
        assert_eq!("hi".serialize(), Value::Str("hi".to_string()));
        assert_eq!(None::<u32>.serialize(), Value::Null);
    }

    #[test]
    fn containers_lower_recursively() {
        let v = vec![1u32, 2, 3].serialize();
        assert_eq!(
            v,
            Value::Array(vec![Value::UInt(1), Value::UInt(2), Value::UInt(3)])
        );
        let t = (1u32, "x").serialize();
        assert_eq!(
            t,
            Value::Array(vec![Value::UInt(1), Value::Str("x".into())])
        );
    }

    #[test]
    fn derive_produces_ordered_object() {
        #[derive(Serialize)]
        struct Rec {
            n: usize,
            value: f64,
        }
        let v = Rec { n: 7, value: 0.5 }.serialize();
        assert_eq!(
            v,
            Value::Object(vec![
                ("n".to_string(), Value::UInt(7)),
                ("value".to_string(), Value::Float(0.5)),
            ])
        );
    }
}
