//! Offline vendored stub of `rayon`'s parallel-iterator surface.
//!
//! The build environment has no network access, so this crate implements the
//! one shape the workspace uses — `(0..n).into_par_iter().map(f).collect()`
//! — on top of `std::thread::scope`. Work is split into one contiguous chunk
//! per available core and results are concatenated in index order, so the
//! output is identical to the sequential computation regardless of thread
//! count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// The traits users import, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{FromParallelIterator, IntoParallelIterator, ParallelIterator};
}

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// The parallel iterator produced.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// A data-parallel iterator over an index range.
pub trait ParallelIterator: Sized {
    /// Element type.
    type Item: Send;

    /// Maps each element through `f` in parallel.
    fn map<O, F>(self, f: F) -> ParMap<Self, F>
    where
        O: Send,
        F: Fn(Self::Item) -> O + Sync,
    {
        ParMap { inner: self, f }
    }

    /// Collects all elements, preserving index order.
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_par_iter(self.run())
    }

    /// Executes the iterator, returning elements in index order.
    fn run(self) -> Vec<Self::Item>;
}

/// Collection types a parallel iterator can gather into.
pub trait FromParallelIterator<T: Send> {
    /// Builds the collection from elements in index order.
    fn from_par_iter(items: Vec<T>) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter(items: Vec<T>) -> Self {
        items
    }
}

/// Parallel iterator over `Range<usize>`.
#[derive(Debug, Clone)]
pub struct ParRange {
    range: Range<usize>,
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    type Iter = ParRange;

    fn into_par_iter(self) -> ParRange {
        ParRange { range: self }
    }
}

impl ParallelIterator for ParRange {
    type Item = usize;

    fn run(self) -> Vec<usize> {
        self.range.collect()
    }
}

/// A mapped parallel iterator.
#[derive(Debug, Clone)]
pub struct ParMap<I, F> {
    inner: I,
    f: F,
}

impl<O, F> ParallelIterator for ParMap<ParRange, F>
where
    O: Send,
    F: Fn(usize) -> O + Sync,
{
    type Item = O;

    fn run(self) -> Vec<O> {
        par_map_range(self.inner.range, &self.f)
    }
}

/// Maps `f` over `range` using one chunk per available core; results are in
/// index order.
fn par_map_range<O, F>(range: Range<usize>, f: &F) -> Vec<O>
where
    O: Send,
    F: Fn(usize) -> O + Sync,
{
    let n = range.len();
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n.max(1));
    if threads <= 1 {
        return range.map(f).collect();
    }
    let chunk = n.div_ceil(threads);
    let mut parts: Vec<Vec<O>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let start = (range.start + t * chunk).min(range.end);
                let end = (start + chunk).min(range.end);
                scope.spawn(move || (start..end).map(f).collect::<Vec<O>>())
            })
            .collect();
        for handle in handles {
            parts.push(handle.join().expect("parallel worker panicked"));
        }
    });
    parts.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn matches_sequential_map() {
        let par: Vec<usize> = (0..1000).into_par_iter().map(|i| i * i).collect();
        let seq: Vec<usize> = (0..1000).map(|i| i * i).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn empty_range_is_fine() {
        let out: Vec<usize> = (5..5).into_par_iter().map(|i| i).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn tiny_ranges_are_fine() {
        let out: Vec<usize> = (0..1).into_par_iter().map(|i| i + 7).collect();
        assert_eq!(out, vec![7]);
    }
}
