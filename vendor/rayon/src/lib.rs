//! Offline vendored stub of `rayon`'s parallel-iterator surface.
//!
//! The build environment has no network access, so this crate implements the
//! shapes the workspace uses — `(0..n).into_par_iter().map(f).collect()`,
//! optionally tuned with `with_min_len` — on top of `std::thread::scope`.
//!
//! Unlike the original one-static-chunk-per-core splitter, work is scheduled
//! through a shared chunk queue: the index range is cut into many chunks
//! (several per worker, never smaller than the configured minimum length)
//! and workers claim the next chunk from an atomic counter as they finish
//! their previous one. Uneven per-item workloads therefore rebalance
//! dynamically instead of idling whole cores behind one slow static chunk.
//!
//! Guarantees, matching real rayon where the workspace relies on them:
//!
//! * **Order-preserving collect** — results are concatenated in chunk (and
//!   hence index) order, so the output is identical to the sequential
//!   computation regardless of thread count or claim interleaving.
//! * **Panic propagation** — a panic inside the mapped closure is captured
//!   on the worker, re-raised on the calling thread with its original
//!   payload after all workers have been joined, and never deadlocks the
//!   pool.
//! * **`RAYON_NUM_THREADS`** — overrides the worker count (values `>= 1`;
//!   `0`, unset, or unparsable fall back to `std::thread::available_parallelism`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// How many chunks each worker gets on average: small enough to amortize
/// the per-chunk atomic claim, large enough that a worker stuck on an
/// expensive chunk leaves plenty for the others to steal.
const CHUNKS_PER_THREAD: usize = 8;

/// The traits users import, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{FromParallelIterator, IntoParallelIterator, ParallelIterator};
}

/// Number of worker threads a parallel iterator will use, honoring the
/// `RAYON_NUM_THREADS` environment variable (mirrors
/// `rayon::current_num_threads`).
pub fn current_num_threads() -> usize {
    #[allow(clippy::disallowed_methods)] // the one sanctioned env read:
    // this stub mirrors rayon's thread-count override, and the ci.sh
    // determinism gate depends on byte-identical output across its values.
    match std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1),
    }
}

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// The parallel iterator produced.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// A data-parallel iterator over an index range.
pub trait ParallelIterator: Sized {
    /// Element type.
    type Item: Send;

    /// Maps each element through `f` in parallel.
    fn map<O, F>(self, f: F) -> ParMap<Self, F>
    where
        O: Send,
        F: Fn(Self::Item) -> O + Sync,
    {
        ParMap { inner: self, f }
    }

    /// Sets the minimum number of items a scheduling chunk may hold
    /// (mirrors `IndexedParallelIterator::with_min_len`). Use it to stop
    /// very cheap per-item work from being cut into too many chunks.
    fn with_min_len(self, min: usize) -> Self;

    /// Collects all elements, preserving index order.
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_par_iter(self.run())
    }

    /// Executes the iterator, returning elements in index order.
    fn run(self) -> Vec<Self::Item>;
}

/// Collection types a parallel iterator can gather into.
pub trait FromParallelIterator<T: Send> {
    /// Builds the collection from elements in index order.
    fn from_par_iter(items: Vec<T>) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter(items: Vec<T>) -> Self {
        items
    }
}

/// Parallel iterator over `Range<usize>`.
#[derive(Debug, Clone)]
pub struct ParRange {
    range: Range<usize>,
    min_len: usize,
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    type Iter = ParRange;

    fn into_par_iter(self) -> ParRange {
        ParRange {
            range: self,
            min_len: 1,
        }
    }
}

impl ParallelIterator for ParRange {
    type Item = usize;

    fn with_min_len(mut self, min: usize) -> Self {
        self.min_len = min.max(1);
        self
    }

    fn run(self) -> Vec<usize> {
        self.range.collect()
    }
}

/// A mapped parallel iterator.
#[derive(Debug, Clone)]
pub struct ParMap<I, F> {
    inner: I,
    f: F,
}

impl<O, F> ParallelIterator for ParMap<ParRange, F>
where
    O: Send,
    F: Fn(usize) -> O + Sync,
{
    type Item = O;

    fn with_min_len(mut self, min: usize) -> Self {
        self.inner = self.inner.with_min_len(min);
        self
    }

    fn run(self) -> Vec<O> {
        par_map_range(
            self.inner.range,
            &self.f,
            current_num_threads(),
            self.inner.min_len,
        )
    }
}

/// Maps `f` over `range` on `threads` workers pulling chunks of at least
/// `min_len` items from a shared claim counter; results are in index order.
fn par_map_range<O, F>(range: Range<usize>, f: &F, threads: usize, min_len: usize) -> Vec<O>
where
    O: Send,
    F: Fn(usize) -> O + Sync,
{
    let n = range.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.max(1).min(n);
    let (chunk, num_chunks) = chunk_layout(n, threads, min_len);
    if threads <= 1 || num_chunks <= 1 {
        return range.map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let mut completed: Vec<(usize, Vec<O>)> = Vec::with_capacity(num_chunks);
    let mut panic_payload = None;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                scope.spawn(move || {
                    let mut parts: Vec<(usize, Vec<O>)> = Vec::new();
                    loop {
                        let c = next.fetch_add(1, Ordering::Relaxed);
                        if c >= num_chunks {
                            return parts;
                        }
                        let start = range.start + c * chunk;
                        let end = (start + chunk).min(range.end);
                        parts.push((c, (start..end).map(f).collect()));
                    }
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(parts) => completed.extend(parts),
                // Drain the claim counter so surviving workers stop quickly,
                // then keep joining: the panic is re-raised only after every
                // worker has finished.
                Err(payload) => {
                    next.fetch_add(num_chunks, Ordering::Relaxed);
                    panic_payload.get_or_insert(payload);
                }
            }
        }
    });
    if let Some(payload) = panic_payload {
        std::panic::resume_unwind(payload);
    }

    completed.sort_unstable_by_key(|&(c, _)| c);
    debug_assert!(completed.iter().enumerate().all(|(i, &(c, _))| i == c));
    completed.into_iter().flat_map(|(_, part)| part).collect()
}

/// Computes the scheduling granularity: chunks of `max(min_len,
/// n / (threads * CHUNKS_PER_THREAD))` items, so there are several chunks
/// per worker unless the caller's minimum forbids it.
fn chunk_layout(n: usize, threads: usize, min_len: usize) -> (usize, usize) {
    let chunk = min_len
        .max(1)
        .max(n.div_ceil(threads.max(1) * CHUNKS_PER_THREAD));
    (chunk, n.div_ceil(chunk))
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::{chunk_layout, par_map_range};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn matches_sequential_map() {
        let par: Vec<usize> = (0..1000).into_par_iter().map(|i| i * i).collect();
        let seq: Vec<usize> = (0..1000).map(|i| i * i).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn empty_range_is_fine() {
        let out: Vec<usize> = (5..5).into_par_iter().map(|i| i).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn tiny_ranges_are_fine() {
        let out: Vec<usize> = (0..1).into_par_iter().map(|i| i + 7).collect();
        assert_eq!(out, vec![7]);
    }

    #[test]
    fn order_preserved_for_every_thread_count() {
        let expect: Vec<usize> = (0..257).map(|i| i * 3).collect();
        for threads in [1, 2, 3, 4, 8, 16] {
            let got = par_map_range(0..257, &|i| i * 3, threads, 1);
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    #[test]
    fn uneven_workloads_stay_correct_and_ordered() {
        // Item cost varies by four orders of magnitude; under the old
        // static split the first worker would own all the heavy items.
        let work = |i: usize| -> u64 {
            let iters = if i % 97 == 0 { 20_000 } else { 2 };
            let mut acc = i as u64;
            for _ in 0..iters {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            acc
        };
        let seq: Vec<u64> = (0..500).map(work).collect();
        for threads in [2, 4, 8] {
            assert_eq!(par_map_range(0..500, &work, threads, 1), seq);
        }
    }

    #[test]
    fn chunking_leaves_room_to_steal() {
        // With several chunks per worker, a worker that lands on a slow
        // chunk leaves the rest claimable by its peers.
        let (chunk, num_chunks) = chunk_layout(10_000, 4, 1);
        assert!(num_chunks >= 3 * 4, "only {num_chunks} chunks");
        assert!(chunk * num_chunks >= 10_000);
        // min_len caps the granularity...
        let (chunk, num_chunks) = chunk_layout(10_000, 4, 5_000);
        assert_eq!(chunk, 5_000);
        assert_eq!(num_chunks, 2);
        // ...and tiny inputs collapse to a single sequential chunk.
        let (_, num_chunks) = chunk_layout(3, 4, 8);
        assert_eq!(num_chunks, 1);
    }

    #[test]
    fn all_workers_can_claim_chunks() {
        // Count how many distinct chunks get claimed: the dynamic queue
        // hands out all of them exactly once whatever the interleaving.
        let claimed = AtomicUsize::new(0);
        let out = par_map_range(
            0..4096,
            &|i| {
                if i % 512 == 0 {
                    claimed.fetch_add(1, Ordering::Relaxed);
                }
                i
            },
            4,
            1,
        );
        assert_eq!(out.len(), 4096);
        assert_eq!(claimed.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn panics_propagate_with_payload() {
        let result = std::panic::catch_unwind(|| {
            let _: Vec<usize> = par_map_range(
                0..1000,
                &|i| {
                    if i == 613 {
                        panic!("boom at {i}");
                    }
                    i
                },
                4,
                1,
            );
        });
        let payload = result.expect_err("panic must propagate to the caller");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("boom at 613"), "payload lost: {msg:?}");
    }

    #[test]
    fn with_min_len_does_not_change_results() {
        let expect: Vec<usize> = (0..300).map(|i| i + 1).collect();
        for min in [1, 7, 64, 1000] {
            let got: Vec<usize> = (0..300)
                .into_par_iter()
                .with_min_len(min)
                .map(|i| i + 1)
                .collect();
            assert_eq!(got, expect, "min_len = {min}");
        }
    }

    #[test]
    fn thread_count_does_not_change_results() {
        // The determinism contract `sweep_par` builds on: output depends
        // only on the input, never on worker count.
        let f = |i: usize| i.wrapping_mul(0x9E3779B97F4A7C15usize) >> 7;
        let one = par_map_range(0..1111, &f, 1, 1);
        for threads in [2, 3, 8, 32] {
            assert_eq!(par_map_range(0..1111, &f, threads, 1), one);
        }
    }

    #[test]
    fn current_num_threads_is_positive() {
        assert!(super::current_num_threads() >= 1);
    }
}
