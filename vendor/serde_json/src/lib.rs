//! Offline vendored stub of `serde_json`.
//!
//! Renders the `serde` stub's [`Value`] model as JSON text, matching the
//! real `serde_json` output conventions the workspace relies on: two-space
//! pretty indentation, `"key": value` separators, and floats always carrying
//! a decimal point (`2.0`, not `2`) — and parses JSON text back into the
//! [`Value`] model ([`from_str`]) for `serde::Deserialize` round trips.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

use serde::{Deserialize, Serialize, Value};

/// Serialization or parse error.
#[derive(Debug)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0);
    Ok(out)
}

/// Serializes `value` as pretty JSON with two-space indentation.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into a `T` via the [`Value`] model (the stub's analogue
/// of `serde_json::from_str`). Integral numbers parse as `UInt` when
/// non-negative and `Int` otherwise; numbers with a fraction or exponent
/// parse as `Float`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value_str(s)?;
    Ok(T::deserialize(&value)?)
}

/// Parses JSON text into a raw [`Value`] tree.
pub fn parse_value_str(s: &str) -> Result<Value, Error> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::new(format!("trailing input at byte {pos}")));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), Error> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(Error::new(format!(
            "expected '{}' at byte {}",
            b as char, *pos
        )))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(Error::new("unexpected end of input")),
        Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
        Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error::new(format!("expected ',' or ']' at byte {}", *pos))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(entries));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                entries.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(entries));
                    }
                    _ => return Err(Error::new(format!("expected ',' or '}}' at byte {}", *pos))),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, Error> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(Error::new(format!("invalid literal at byte {}", *pos)))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(Error::new("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| Error::new("truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                        // Surrogates are not paired; the workspace only emits
                        // BMP control escapes, which this covers.
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| Error::new("invalid \\u code point"))?,
                        );
                        *pos += 4;
                    }
                    _ => return Err(Error::new(format!("invalid escape at byte {}", *pos))),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character (multi-byte safe).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ASCII number");
    if text.is_empty() || text == "-" {
        return Err(Error::new(format!("invalid number at byte {start}")));
    }
    if !is_float {
        if let Some(stripped) = text.strip_prefix('-') {
            if let Ok(x) = stripped.parse::<u64>() {
                if x <= i64::MAX as u64 {
                    return Ok(Value::Int(-(x as i64)));
                }
            }
        } else if let Ok(x) = text.parse::<u64>() {
            return Ok(Value::UInt(x));
        }
    }
    text.parse::<f64>()
        .map(Value::Float)
        .map_err(|_| Error::new(format!("invalid number '{text}'")))
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(x) => out.push_str(&x.to_string()),
        Value::UInt(x) => out.push_str(&x.to_string()),
        Value::Float(x) => write_float(out, *x),
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => write_seq(
            out,
            items.iter(),
            items.len(),
            indent,
            depth,
            ('[', ']'),
            |out, item, indent, depth| {
                write_value(out, item, indent, depth);
            },
        ),
        Value::Object(entries) => write_seq(
            out,
            entries.iter(),
            entries.len(),
            indent,
            depth,
            ('{', '}'),
            |out, (key, item), indent, depth| {
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth);
            },
        ),
    }
}

fn write_seq<I: Iterator>(
    out: &mut String,
    items: I,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    brackets: (char, char),
    mut write_item: impl FnMut(&mut String, I::Item, Option<usize>, usize),
) {
    out.push(brackets.0);
    if len == 0 {
        out.push(brackets.1);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(step * (depth + 1)));
        }
        write_item(out, item, indent, depth + 1);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(step * depth));
    }
    out.push(brackets.1);
}

/// Floats keep a decimal point so they re-parse as floats (`2.0`, not `2`);
/// non-finite values have no JSON representation and render as `null`.
fn write_float(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 1e16 {
        out.push_str(&format!("{x:.1}"));
    } else {
        out.push_str(&format!("{x}"));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let v = Value::Object(vec![
            ("n".to_string(), Value::UInt(5)),
            (
                "xs".to_string(),
                Value::Array(vec![Value::Float(1.5), Value::Float(2.0)]),
            ),
        ]);
        assert_eq!(to_string(&v).unwrap(), r#"{"n":5,"xs":[1.5,2.0]}"#);
    }

    #[test]
    fn pretty_rendering_matches_serde_json_shape() {
        let v = Value::Object(vec![
            ("n".to_string(), Value::UInt(5)),
            ("value".to_string(), Value::Float(1.5)),
        ]);
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "{\n  \"n\": 5,\n  \"value\": 1.5\n}");
    }

    #[test]
    fn floats_keep_decimal_point() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(to_string(&"a\"b\n").unwrap(), r#""a\"b\n""#);
    }

    #[test]
    fn empty_containers_stay_inline() {
        assert_eq!(to_string_pretty(&Value::Array(vec![])).unwrap(), "[]");
        assert_eq!(to_string_pretty(&Value::Object(vec![])).unwrap(), "{}");
    }

    #[test]
    fn parse_round_trips_rendered_values() {
        let v = Value::Object(vec![
            ("n".to_string(), Value::UInt(5)),
            ("delta".to_string(), Value::Int(-3)),
            ("rate".to_string(), Value::Float(0.75)),
            ("label".to_string(), Value::Str("a\"b\n".to_string())),
            ("flag".to_string(), Value::Bool(true)),
            ("gap".to_string(), Value::Null),
            (
                "xs".to_string(),
                Value::Array(vec![Value::UInt(1), Value::Float(2.0)]),
            ),
        ]);
        for rendered in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            assert_eq!(parse_value_str(&rendered).unwrap(), v);
        }
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "nul", "1 2", "--3", "\"x"] {
            assert!(parse_value_str(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parse_handles_whitespace_and_nesting() {
        let v = parse_value_str(" { \"a\" : [ 1 , { \"b\" : null } ] } ").unwrap();
        assert_eq!(
            v,
            Value::Object(vec![(
                "a".to_string(),
                Value::Array(vec![
                    Value::UInt(1),
                    Value::Object(vec![("b".to_string(), Value::Null)]),
                ]),
            )])
        );
    }

    #[test]
    fn parse_unicode_escapes_and_multibyte() {
        assert_eq!(
            parse_value_str("\"\\u0041é\"").unwrap(),
            Value::Str("Aé".to_string())
        );
    }

    #[test]
    fn from_str_drives_deserialize() {
        let xs: Vec<u32> = from_str("[1, 2, 3]").unwrap();
        assert_eq!(xs, vec![1, 2, 3]);
        assert!(from_str::<Vec<u32>>("[1, -2]").is_err());
    }

    #[test]
    fn numbers_classify_by_shape() {
        assert_eq!(
            parse_value_str("18446744073709551615").unwrap(),
            Value::UInt(u64::MAX)
        );
        assert_eq!(parse_value_str("-7").unwrap(), Value::Int(-7));
        assert_eq!(parse_value_str("1e3").unwrap(), Value::Float(1000.0));
        assert_eq!(parse_value_str("2.5").unwrap(), Value::Float(2.5));
    }
}
