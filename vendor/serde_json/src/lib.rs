//! Offline vendored stub of `serde_json`.
//!
//! Renders the `serde` stub's [`Value`] model as JSON text, matching the
//! real `serde_json` output conventions the workspace relies on: two-space
//! pretty indentation, `"key": value` separators, and floats always carrying
//! a decimal point (`2.0`, not `2`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

use serde::{Serialize, Value};

/// Serialization error. The stub's value model is always renderable, so this
/// is never produced; it exists so call sites can keep `Result` handling
/// compatible with the real `serde_json`.
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("JSON serialization error")
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0);
    Ok(out)
}

/// Serializes `value` as pretty JSON with two-space indentation.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(2), 0);
    Ok(out)
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(x) => out.push_str(&x.to_string()),
        Value::UInt(x) => out.push_str(&x.to_string()),
        Value::Float(x) => write_float(out, *x),
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => write_seq(
            out,
            items.iter(),
            items.len(),
            indent,
            depth,
            ('[', ']'),
            |out, item, indent, depth| {
                write_value(out, item, indent, depth);
            },
        ),
        Value::Object(entries) => write_seq(
            out,
            entries.iter(),
            entries.len(),
            indent,
            depth,
            ('{', '}'),
            |out, (key, item), indent, depth| {
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth);
            },
        ),
    }
}

fn write_seq<I: Iterator>(
    out: &mut String,
    items: I,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    brackets: (char, char),
    mut write_item: impl FnMut(&mut String, I::Item, Option<usize>, usize),
) {
    out.push(brackets.0);
    if len == 0 {
        out.push(brackets.1);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(step * (depth + 1)));
        }
        write_item(out, item, indent, depth + 1);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(step * depth));
    }
    out.push(brackets.1);
}

/// Floats keep a decimal point so they re-parse as floats (`2.0`, not `2`);
/// non-finite values have no JSON representation and render as `null`.
fn write_float(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 1e16 {
        out.push_str(&format!("{x:.1}"));
    } else {
        out.push_str(&format!("{x}"));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let v = Value::Object(vec![
            ("n".to_string(), Value::UInt(5)),
            (
                "xs".to_string(),
                Value::Array(vec![Value::Float(1.5), Value::Float(2.0)]),
            ),
        ]);
        assert_eq!(to_string(&v).unwrap(), r#"{"n":5,"xs":[1.5,2.0]}"#);
    }

    #[test]
    fn pretty_rendering_matches_serde_json_shape() {
        let v = Value::Object(vec![
            ("n".to_string(), Value::UInt(5)),
            ("value".to_string(), Value::Float(1.5)),
        ]);
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "{\n  \"n\": 5,\n  \"value\": 1.5\n}");
    }

    #[test]
    fn floats_keep_decimal_point() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(to_string(&"a\"b\n").unwrap(), r#""a\"b\n""#);
    }

    #[test]
    fn empty_containers_stay_inline() {
        assert_eq!(to_string_pretty(&Value::Array(vec![])).unwrap(), "[]");
        assert_eq!(to_string_pretty(&Value::Object(vec![])).unwrap(), "{}");
    }
}
