//! Deterministic case generation and the pass/reject/fail loop.

/// Runner configuration. Mirrors `ProptestConfig` where the workspace uses
/// it (`with_cases`).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of successful (non-rejected) cases required.
    pub cases: u32,
}

impl Config {
    /// A configuration running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Outcome of a single generated case, produced by the `prop_assert*` and
/// `prop_assume!` macros.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case did not satisfy an assumption; resample without counting it.
    Reject,
    /// The property failed; aborts the test with the message.
    Fail(String),
}

/// Deterministic generator RNG (SplitMix64), seeded from the test name so
/// every test exercises a distinct but reproducible stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG from a raw seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Creates an RNG seeded by hashing `name` (FNV-1a).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Self::new(h)
    }

    /// Returns the next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Unbiased uniform draw in `[0, bound)`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let t = bound.wrapping_neg() % bound;
            while lo < t {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform double in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Runs `cases` successful executions of `f`, resampling rejected cases and
/// panicking on the first failure.
pub fn run_proptest<F>(config: Config, name: &str, mut f: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::from_name(name);
    let cases = config.cases.max(1);
    let max_attempts = u64::from(cases) * 64 + 1024;
    let mut passed: u32 = 0;
    let mut attempts: u64 = 0;
    while passed < cases {
        attempts += 1;
        assert!(
            attempts <= max_attempts,
            "{name}: too many rejected cases ({passed}/{cases} passed after {attempts} attempts)"
        );
        match f(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => continue,
            Err(TestCaseError::Fail(msg)) => {
                panic!("{name}: property failed after {passed} passing cases: {msg}")
            }
        }
    }
}
