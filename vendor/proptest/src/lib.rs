//! Offline vendored stub of `proptest`.
//!
//! Provides the subset this workspace's property tests use: the
//! [`proptest!`] macro, [`Strategy`] with `prop_map`, [`any`], range and
//! tuple strategies, [`collection::vec`], and the `prop_assert*` /
//! `prop_assume!` macros. Cases are generated from a deterministic RNG
//! seeded by the test name; failing inputs are reported via panic message.
//! There is no shrinking — a failure prints the property message only.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Arbitrary, Strategy};
pub use test_runner::{run_proptest, Config, TestCaseError, TestRng};

/// Everything the tests import, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests.
///
/// Supports an optional leading `#![proptest_config(expr)]` followed by
/// `fn name(pat in strategy, ...) { body }` items carrying their own
/// attributes (doc comments, `#[test]`).
#[macro_export]
macro_rules! proptest {
    (@run ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                $crate::test_runner::run_proptest(config, stringify!($name), |prop_rng| {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), prop_rng);)+
                    $body
                    Ok(())
                });
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::Config::default()); $($rest)*);
    };
}

/// Fails the current test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)
            )));
        }
    };
}

/// Fails the current test case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(, $($fmt:tt)+)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "{:?} != {:?}{}",
            left,
            right,
            {
                #[allow(unused_mut, unused_assignments)]
                let mut extra = String::new();
                $(extra = format!(": {}", format!($($fmt)+));)?
                extra
            }
        );
    }};
}

/// Fails the current test case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(, $($fmt:tt)+)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "{:?} == {:?}{}",
            left,
            right,
            {
                #[allow(unused_mut, unused_assignments)]
                let mut extra = String::new();
                $(extra = format!(": {}", format!($($fmt)+));)?
                extra
            }
        );
    }};
}

/// Rejects the current test case (resampled, not counted) unless `cond`
/// holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
