//! Value-generation strategies (no shrinking).

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_strategy_uint_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.below((self.end - self.start) as u64) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + (rng.next_u64() as $t);
                }
                lo + (rng.below(span + 1) as $t)
            }
        }
    )*};
}

impl_strategy_uint_range!(u8, u16, u32, u64, usize);

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_strategy_int_range!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        // Scale by the next-up unit draw so the upper endpoint is reachable.
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        self.start() + u * (self.end() - self.start())
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_strategy_tuple! {
    (A / 0)
    (A / 0, B / 1)
    (A / 0, B / 1, C / 2)
    (A / 0, B / 1, C / 2, D / 3)
    (A / 0, B / 1, C / 2, D / 3, E / 4)
    (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5)
    (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6)
    (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7)
}

/// Types with a canonical full-domain strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values only: uniform over a wide symmetric interval.
        (rng.unit_f64() - 0.5) * 2e12
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T`, e.g. `any::<u64>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..2000 {
            let a = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&a));
            let b = (-5i32..5).generate(&mut rng);
            assert!((-5..5).contains(&b));
            let c = (0.0f64..=1.0).generate(&mut rng);
            assert!((0.0..=1.0).contains(&c));
        }
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = TestRng::new(2);
        let s = (0u64..10).prop_map(|x| x * 3);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v % 3 == 0 && v < 30);
        }
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut rng = TestRng::new(3);
        let (a, b, c) = (1usize..4, any::<bool>(), 0.0f64..1.0).generate(&mut rng);
        assert!((1..4).contains(&a));
        let _: bool = b;
        assert!((0.0..1.0).contains(&c));
    }
}
