//! Collection strategies (`proptest::collection::vec`).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy for `Vec<T>` with a random length drawn from a range.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        assert!(self.len.start < self.len.end, "empty length range");
        let span = (self.len.end - self.len.start) as u64;
        let n = self.len.start + rng.below(span) as usize;
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy generating vectors of `element` with length in `len`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_and_elements_in_range() {
        let mut rng = TestRng::new(9);
        let s = vec(0u32..5, 2..7);
        for _ in 0..500 {
            let v = s.generate(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }
}
