//! Behavioral tests for the `proptest!` macro: cases actually execute,
//! assumptions resample, and failures abort the test with a panic.

use proptest::prelude::*;
use proptest::test_runner::{run_proptest, Config, TestCaseError};
use std::sync::atomic::{AtomicU32, Ordering};

static EXECUTIONS: AtomicU32 = AtomicU32::new(0);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Each case sees in-range values; the counter proves all 64 ran.
    #[test]
    fn runs_the_configured_number_of_cases(x in 10u64..20, flip in any::<bool>()) {
        EXECUTIONS.fetch_add(1, Ordering::Relaxed);
        prop_assert!((10..20).contains(&x));
        let _: bool = flip;
    }

    /// Assumptions reject without failing.
    #[test]
    fn assumptions_resample(n in 0u32..100) {
        prop_assume!(n % 2 == 0);
        prop_assert!(n % 2 == 0);
    }

    /// Tuple + prop_map + collection strategies compose.
    #[test]
    fn composed_strategies(v in proptest::collection::vec((any::<bool>(), 0usize..5), 1..10),
                           y in (0u64..10).prop_map(|x| x * 7)) {
        prop_assert!(!v.is_empty() && v.len() < 10);
        prop_assert!(v.iter().all(|&(_, b)| b < 5));
        prop_assert_eq!(y % 7, 0);
    }
}

#[test]
fn all_cases_executed() {
    // Runs after the proptest above in the same binary only by chance of
    // ordering, so drive the check directly instead.
    let mut count = 0u32;
    run_proptest(Config::with_cases(64), "direct", |rng| {
        let _ = rng.next_u64();
        count += 1;
        Ok(())
    });
    assert_eq!(count, 64);
}

#[test]
#[should_panic(expected = "property failed")]
fn failures_panic() {
    run_proptest(Config::with_cases(10), "failing", |_rng| {
        Err(TestCaseError::Fail("forced".to_string()))
    });
}

#[test]
#[should_panic(expected = "too many rejected")]
fn pathological_rejection_is_detected() {
    run_proptest(Config::with_cases(10), "rejecting", |_rng| {
        Err(TestCaseError::Reject)
    });
}
