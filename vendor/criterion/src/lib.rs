//! Offline vendored stub of `criterion`.
//!
//! Implements the harness-off benchmark surface this workspace uses
//! ([`Criterion`], [`BenchmarkId`], [`Throughput`], benchmark groups,
//! [`criterion_group!`]/[`criterion_main!`]) with a simple wall-clock
//! timing loop: each benchmark is warmed up briefly, then timed over an
//! iteration count calibrated to a fixed measurement window, and the
//! mean time per iteration (plus throughput, when set) is printed.
//! There is no statistical analysis, plotting, or results persistence.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

const WARMUP: Duration = Duration::from_millis(150);
const MEASURE: Duration = Duration::from_millis(400);

/// Identifier for a parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id from a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The per-benchmark timing driver handed to `bench_function` closures.
#[derive(Debug, Default)]
pub struct Bencher {
    mean_ns: f64,
}

impl Bencher {
    /// Times `routine`, first warming up and calibrating an iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: find how many iterations fit the window.
        let warm_start = Instant::now();
        let mut iters: u64 = 0;
        while warm_start.elapsed() < WARMUP {
            std::hint::black_box(routine());
            iters += 1;
        }
        let per_iter = WARMUP.as_secs_f64() / iters.max(1) as f64;
        let target = (MEASURE.as_secs_f64() / per_iter).clamp(1.0, 1e9) as u64;

        let start = Instant::now();
        for _ in 0..target {
            std::hint::black_box(routine());
        }
        self.mean_ns = start.elapsed().as_secs_f64() * 1e9 / target as f64;
    }
}

/// Top-level benchmark registry, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, None, f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a throughput annotation.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the stub's fixed measurement window
    /// ignores the requested sample count.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.throughput, f);
        self
    }

    /// Runs a parameterized benchmark in this group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.throughput, |b| {
            f(b, input)
        });
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, throughput: Option<Throughput>, mut f: F) {
    let mut bencher = Bencher::default();
    f(&mut bencher);
    let mean_ns = bencher.mean_ns;
    let rate = match throughput {
        Some(Throughput::Elements(n)) if mean_ns > 0.0 => {
            format!("  {:>12.0} elem/s", n as f64 * 1e9 / mean_ns)
        }
        Some(Throughput::Bytes(n)) if mean_ns > 0.0 => {
            format!("  {:>12.0} B/s", n as f64 * 1e9 / mean_ns)
        }
        _ => String::new(),
    };
    println!("{label:<48} {:>14.1} ns/iter{rate}", mean_ns);
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
