//! Offline vendored stub of the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this crate
//! provides exactly the trait surface the workspace uses — [`TryRng`], the
//! blanket [`Rng`] for infallible generators, [`RngExt::random_range`],
//! [`SeedableRng`], and [`rngs::StdRng`] — with compatible semantics. It is
//! not a general-purpose replacement for the real `rand`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::convert::Infallible;

/// A fallible random number generator (the `rand` 0.9+ `TryRngCore` shape).
pub trait TryRng {
    /// Error produced by the generator; [`Infallible`] for in-memory PRNGs.
    type Error;

    /// Returns the next 32 random bits.
    fn try_next_u32(&mut self) -> Result<u32, Self::Error>;

    /// Returns the next 64 random bits.
    fn try_next_u64(&mut self) -> Result<u64, Self::Error>;

    /// Fills `dst` with random bytes.
    fn try_fill_bytes(&mut self, dst: &mut [u8]) -> Result<(), Self::Error>;
}

/// An infallible random number generator.
///
/// Blanket-implemented for every [`TryRng`] whose error is [`Infallible`],
/// so implementing [`TryRng`] is enough to join the ecosystem.
pub trait Rng: TryRng<Error = Infallible> {
    /// Returns the next 32 random bits.
    #[inline]
    fn next_u32(&mut self) -> u32 {
        match self.try_next_u32() {
            Ok(x) => x,
        }
    }

    /// Returns the next 64 random bits.
    #[inline]
    fn next_u64(&mut self) -> u64 {
        match self.try_next_u64() {
            Ok(x) => x,
        }
    }

    /// Fills `dst` with random bytes.
    #[inline]
    fn fill_bytes(&mut self, dst: &mut [u8]) {
        match self.try_fill_bytes(dst) {
            Ok(()) => {}
        }
    }
}

impl<T: TryRng<Error = Infallible>> Rng for T {}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + (rng.next_u64() as $t);
                }
                lo + (uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_range_uint!(u32, u64, usize);

impl SampleRange<f64> for std::ops::Range<f64> {
    #[inline]
    fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> f64 {
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + u * (self.end - self.start)
    }
}

/// Unbiased uniform draw in `[0, bound)` (Lemire multiply-shift rejection).
#[inline]
fn uniform_below<G: Rng + ?Sized>(rng: &mut G, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let mut x = rng.next_u64();
    let mut m = (x as u128).wrapping_mul(bound as u128);
    let mut lo = m as u64;
    if lo < bound {
        let t = bound.wrapping_neg() % bound;
        while lo < t {
            x = rng.next_u64();
            m = (x as u128).wrapping_mul(bound as u128);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

/// Convenience sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// Draws a uniform value from `range`.
    #[inline]
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }
}

impl<T: Rng> RngExt for T {}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Seed type, e.g. `[u8; 32]`.
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from the full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it through SplitMix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Infallible, SeedableRng, TryRng};

    /// Stand-in for `rand::rngs::StdRng`: a xoshiro256++ generator.
    ///
    /// Only determinism and uniformity matter for this workspace (the real
    /// `StdRng` is explicitly not reproducible across `rand` versions).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl TryRng for StdRng {
        type Error = Infallible;

        #[inline]
        fn try_next_u32(&mut self) -> Result<u32, Infallible> {
            Ok((self.next_raw() >> 32) as u32)
        }

        #[inline]
        fn try_next_u64(&mut self) -> Result<u64, Infallible> {
            Ok(self.next_raw())
        }

        fn try_fill_bytes(&mut self, dst: &mut [u8]) -> Result<(), Infallible> {
            let mut chunks = dst.chunks_exact_mut(8);
            for chunk in &mut chunks {
                chunk.copy_from_slice(&self.next_raw().to_le_bytes());
            }
            let rem = chunks.into_remainder();
            if !rem.is_empty() {
                let bytes = self.next_raw().to_le_bytes();
                rem.copy_from_slice(&bytes[..rem.len()]);
            }
            Ok(())
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, w) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *w = u64::from_le_bytes(b);
            }
            if s == [0, 0, 0, 0] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            Self { s }
        }
    }

    impl StdRng {
        #[inline]
        fn next_raw(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn std_rng_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(
                a.random_range(0..1_000_000usize),
                b.random_range(0..1_000_000usize)
            );
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.random_range(10..20u64);
            assert!((10..20).contains(&x));
            let y = rng.random_range(0.0..1.0f64);
            assert!((0.0..1.0).contains(&y));
            let z = rng.random_range(0..=5u32);
            assert!(z <= 5);
        }
    }
}
