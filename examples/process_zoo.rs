//! A side-by-side zoo of every process in the workspace: the paper's
//! process, its Tetris majorant, the batched variant, and all baselines —
//! one table, same n, same window.
//!
//! Run: `cargo run --release --example process_zoo`

use rbb_baselines::{DChoiceProcess, IndependentWalks, JacksonNetwork};
use rbb_core::metrics::MaxLoadTracker;
use rbb_core::prelude::*;

fn main() {
    let n = 1024;
    let window = 50_000u64;
    let nf = n as f64;
    println!(
        "process zoo: n = {n}, window = {window} rounds (ln n = {:.1})\n",
        nf.ln()
    );
    println!("{:<34} {:>8} {:>12}", "process", "max load", "max/ln n");
    println!("{}", "-".repeat(58));

    let row = |name: &str, max: f64| {
        println!("{name:<34} {max:>8.1} {:>12.2}", max / nf.ln());
    };

    // The paper's process.
    let mut p = LoadProcess::new(Config::one_per_bin(n), Xoshiro256pp::seed_from(1));
    let mut t = MaxLoadTracker::new();
    p.run(window, &mut t);
    row("repeated balls-into-bins (paper)", t.window_max() as f64);

    // Tetris majorant (Section 3).
    let mut tet = Tetris::new(Config::one_per_bin(n), Xoshiro256pp::seed_from(2));
    let mut t = MaxLoadTracker::new();
    tet.run(window, &mut t);
    row("tetris majorant (3n/4 arrivals)", t.window_max() as f64);

    // Batched Tetris ([18]).
    for lambda in [0.5, 0.75, 0.95] {
        let mut bt = BatchedTetris::new(Config::one_per_bin(n), lambda, Xoshiro256pp::seed_from(3));
        let mut t = MaxLoadTracker::new();
        bt.run(window, &mut t);
        row(
            &format!("batched tetris λ = {lambda}"),
            t.window_max() as f64,
        );
    }

    // d-choice ([36]).
    for d in [1usize, 2] {
        let mut dc = DChoiceProcess::legitimate_start(n, d, 4);
        let mut t = MaxLoadTracker::new();
        dc.run(window, &mut t);
        row(&format!("repeated {d}-choice"), t.window_max() as f64);
    }

    // Independent (unconstrained) walks.
    let mut iw = IndependentWalks::legitimate_start(n, 5);
    let mut t = MaxLoadTracker::new();
    iw.run(window, &mut t);
    row("independent walks (no constraint)", t.window_max() as f64);

    // Closed Jackson network ([30]) — sequential events; use matched count.
    let mut j = JacksonNetwork::legitimate_start(n, 6);
    let hist = j.run_events(window);
    row(
        "closed jackson network (max seen)",
        hist.max_value().unwrap_or(0) as f64,
    );

    println!(
        "\nreading: every constrained variant sits at the Θ(log n) level; 2-choice collapses it; \
         \nthe paper's contribution is proving the first row stays there for poly(n) rounds."
    );
}
