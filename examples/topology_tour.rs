//! Constrained parallel walks beyond the clique — the Section-5 open
//! question, interactively.
//!
//! The paper conjectures the max load stays logarithmic on every regular
//! graph. This example runs the one-token-per-node protocol on five
//! topologies at n ≈ 1024 and prints congestion summaries side by side.
//!
//! Run: `cargo run --release --example topology_tour`

use rbb_core::engine::Engine;
use rbb_core::metrics::{EmptyBinsTracker, MaxLoadTracker};
use rbb_core::rng::Xoshiro256pp;
use rbb_graphs::{
    complete_with_loops, hypercube, random_regular, ring, star, torus, Graph, GraphLoadProcess,
};

fn tour(name: &str, graph: Graph, rounds: u64) {
    let n = graph.n();
    let degree = graph
        .regular_degree()
        .map(|d| d.to_string())
        .unwrap_or_else(|| "irregular".into());
    let mut p = GraphLoadProcess::one_per_node(graph, 0xD15C0);
    let mut max_t = MaxLoadTracker::new();
    let mut empty_t = EmptyBinsTracker::new();
    p.run(rounds, (&mut max_t, &mut empty_t));
    println!(
        "{name:<18} n={n:<5} degree={degree:<9} max load={:<3} ({:.2}·ln n)  min empty={:>4} ({:>2}%)",
        max_t.window_max(),
        max_t.window_max() as f64 / (n as f64).ln(),
        empty_t.min_empty(),
        100 * empty_t.min_empty() / n,
    );
}

fn main() {
    let rounds = 50_000;
    println!("constrained parallel token walks, {rounds} rounds each\n");

    let mut rng = Xoshiro256pp::seed_from(0x6E0);
    tour("clique + loops", complete_with_loops(1024), rounds);
    tour("hypercube d=10", hypercube(10), rounds);
    tour("torus 32x32", torus(32, 32), rounds);
    tour(
        "random 4-regular",
        random_regular(1024, 4, &mut rng),
        rounds,
    );
    tour("ring", ring(1024), rounds);
    tour("star (control)", star(1024), rounds);

    println!(
        "\nreading: every regular topology keeps the max load near the clique's O(log n) level, \
         \nsupporting the Section-5 conjecture; the irregular star concentrates load at its hub."
    );
}
