//! Self-stabilization under attack — the §4.1 adversarial model.
//!
//! Every γ·n rounds an adversary grabs all balls and piles them into one
//! bin. The process shrugs: within O(n) rounds it is legitimate again
//! (Theorem 1(b)), and as long as γ ≥ 6 the long-run behavior is unharmed.
//!
//! Run: `cargo run --release --example adversarial_recovery`

use rbb_core::adversary::{Adversary, AllInOneAdversary, FaultSchedule};
use rbb_core::prelude::*;

fn main() {
    let n = 1024;
    let gamma = 6;
    let threshold = LegitimacyThreshold::default();
    let schedule = FaultSchedule::gamma_n(gamma, n);
    let horizon = 4 * schedule.period();

    println!(
        "n = {n}, adversary strikes every γ·n = {} rounds (γ = {gamma})",
        schedule.period()
    );
    println!("legitimacy bound: max load ≤ {}\n", threshold.bound(n));

    let mut process = LoadProcess::new(Config::one_per_bin(n), Xoshiro256pp::seed_from(99));
    let mut adv = AllInOneAdversary;
    let mut adv_rng = Xoshiro256pp::seed_from(0xBAD);

    let mut fault_round: Option<u64> = None;
    let mut recoveries: Vec<u64> = Vec::new();
    let mut illegitimate_rounds = 0u64;

    for _ in 0..horizon {
        process.step();
        let round = process.round();
        let legit = threshold.is_legitimate(process.config());
        if !legit {
            illegitimate_rounds += 1;
        }
        if let Some(f) = fault_round {
            if legit {
                let took = round - f;
                println!(
                    "  recovered {took} rounds after the fault ({:.2}·n)",
                    took as f64 / n as f64
                );
                recoveries.push(took);
                fault_round = None;
            }
        }
        if schedule.is_faulty(round) {
            let placement = adv.placement(n, n, process.config(), &mut adv_rng);
            let mut loads = vec![0u32; n];
            for &b in &placement {
                loads[b] += 1;
            }
            process.adversarial_reassign(Config::from_loads(loads));
            println!(
                "round {round}: ADVERSARY piles all {n} balls into one bin (max load {})",
                process.config().max_load()
            );
            fault_round = Some(round);
        }
    }

    let faults = schedule.faults_up_to(horizon);
    println!("\nsummary over {horizon} rounds and {faults} faults:");
    println!(
        "  every fault recovered; worst recovery {} rounds ({:.2}·n — paper: O(n))",
        recoveries.iter().max().unwrap(),
        *recoveries.iter().max().unwrap() as f64 / n as f64
    );
    println!(
        "  illegitimate fraction of time: {:.1}% (bounded: each fault costs O(n) of γn = {} rounds)",
        100.0 * illegitimate_rounds as f64 / horizon as f64,
        schedule.period()
    );
}
