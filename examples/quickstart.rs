//! Quickstart: the repeated balls-into-bins process in 60 seconds.
//!
//! Demonstrates the paper's two headline behaviors (Theorem 1):
//! (a) from a legitimate start the max load stays O(log n) for a long time;
//! (b) from the worst possible start (all balls in one bin) the system
//!     self-stabilizes in ~n rounds.
//!
//! Run: `cargo run --release --example quickstart`

use rbb_core::prelude::*;

fn main() {
    let n = 1024;
    let threshold = LegitimacyThreshold::default();
    println!("repeated balls-into-bins, n = {n} balls and bins");
    println!("legitimacy: max load <= 4 ln n = {}\n", threshold.bound(n));

    // (a) Stability from a legitimate configuration.
    let mut process = LoadProcess::new(Config::one_per_bin(n), Xoshiro256pp::seed_from(1));
    let mut max_tracker = MaxLoadTracker::new();
    let mut empty_tracker = EmptyBinsTracker::new();
    let window = 100 * n as u64;
    process.run(window, (&mut max_tracker, &mut empty_tracker));
    println!("stability over {window} rounds from the one-ball-per-bin start:");
    println!(
        "  max load ever seen : {} (first hit at round {})",
        max_tracker.window_max(),
        max_tracker.argmax_round()
    );
    println!(
        "  empty bins         : never below {} ({}% of n; paper guarantees >= 25%)",
        empty_tracker.min_empty(),
        100 * empty_tracker.min_empty() / n
    );

    // (b) Self-stabilization from the worst configuration.
    let worst = Config::all_in_one(n, n as u32);
    let mut process = LoadProcess::new(worst, Xoshiro256pp::seed_from(2));
    let round = process
        .run_until(20 * n as u64, |c| threshold.is_legitimate(c))
        .expect("Theorem 1(b): converges w.h.p.");
    println!("\nself-stabilization from all {n} balls in one bin:");
    println!(
        "  legitimate after {round} rounds (paper: O(n); here {:.2}·n)",
        round as f64 / n as f64
    );

    // Bonus: the per-ball view under FIFO.
    let mut balls = BallProcess::legitimate_start(n, 3);
    balls.run(2_000, NullObserver);
    println!("\nper-ball progress after 2000 rounds (FIFO):");
    println!(
        "  slowest ball moved {} times (Ω(t/log n) floor ≈ {:.0})",
        balls.min_progress(),
        2_000.0 / (n as f64).ln()
    );
    println!(
        "  mean moves {:.1} — duty cycle {:.2}",
        balls.mean_progress(),
        balls.mean_progress() / 2_000.0
    );
}
