//! Multi-token resource assignment — the application from the paper's
//! introduction (Section 1.1 / Section 4).
//!
//! Scenario: a cluster of `n` anonymous nodes must each process all `n`
//! maintenance tasks (certificate rotation, index rebuild, …) in mutual
//! exclusion — no node handles two tasks in the same round, and each task
//! visits one node per round. The random-walk protocol needs no node ids,
//! no coordinator and no global state; Corollary 1 bounds completion by
//! O(n log² n) rounds w.h.p.
//!
//! Run: `cargo run --release --example token_scheduler`

use rbb_core::strategy::QueueStrategy;
use rbb_traversal::{single_token_cover_time, ProgressReport, Traversal};

fn main() {
    let n = 512;
    println!("cluster of {n} nodes, {n} maintenance tasks, FIFO queues\n");

    let mut traversal = Traversal::new(n, QueueStrategy::Fifo, 2024);

    // Progress checkpoints while the protocol runs.
    let nf = n as f64;
    let budget = (4.0 * nf * nf.ln() * nf.ln()) as u64;
    let mut next_report = n as u64;
    while !traversal.all_covered() && traversal.round() < budget {
        traversal.step();
        if traversal.round() == next_report {
            println!(
                "round {:>7}: {:>5.1}% of (task, node) pairs done, {:>3} tasks fully done, max queue {}",
                traversal.round(),
                100.0 * traversal.coverage_fraction(),
                traversal.covered_tokens(),
                traversal.process().config().max_load(),
            );
            next_report *= 2;
        }
    }
    let cover = traversal.round();
    assert!(
        traversal.all_covered(),
        "protocol must finish within budget"
    );

    println!("\nall tasks processed by all nodes after {cover} rounds");
    println!(
        "  n ln²n = {:.0} → measured/bound constant {:.2}",
        nf * nf.ln() * nf.ln(),
        cover as f64 / (nf * nf.ln() * nf.ln())
    );

    let single = single_token_cover_time(n, 7, budget).expect("single token covers");
    println!(
        "  single-task baseline: {single} rounds — parallel slowdown {:.1}× (paper: O(log n))",
        cover as f64 / single as f64
    );

    let report = ProgressReport::from_process(traversal.process());
    println!(
        "  fairness: slowest task made {} moves vs t/ln n = {:.0}; no task starved (FIFO)",
        report.min_moves, report.t_over_ln_n
    );
    println!(
        "  congestion: worst queue wait anywhere was {} rounds (O(log n) under FIFO)",
        report.max_wait
    );
}
