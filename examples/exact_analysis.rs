//! Exact analysis for small n — the ground truth behind the simulators.
//!
//! For tiny systems the configuration chain is small enough to enumerate:
//! we can compute stationary laws, mixing times, and the Appendix-B
//! counterexample *exactly*, then confirm the Monte Carlo engines agree.
//!
//! Run: `cargo run --release --example exact_analysis`

use rbb_core::config::Config;
use rbb_core::engine::Engine;
use rbb_core::exact::{appendix_b_exact, ExactChain};
use rbb_core::mixing::{mixing_time, tv_decay};
use rbb_core::process::LoadProcess;
use rbb_core::rng::Xoshiro256pp;

fn main() {
    println!("=== the exact configuration chain, n = m = 2..5 ===\n");
    println!(
        "{:<4} {:>7} {:>14} {:>12} {:>12}",
        "n", "states", "E[max load]", "t_mix(1/4)", "t_mix(.01)"
    );
    for n in 2..=5usize {
        let chain = ExactChain::build(n, n as u32);
        let pi = chain.stationary(1e-13, 200_000);
        println!(
            "{:<4} {:>7} {:>14.4} {:>12} {:>12}",
            n,
            chain.num_states(),
            chain.expected_max_load(&pi),
            mixing_time(&chain, 0.25, 100_000).unwrap(),
            mixing_time(&chain, 0.01, 100_000).unwrap(),
        );
    }

    println!("\n=== TV decay from the worst start (n = 4) ===\n");
    let chain = ExactChain::build(4, 4);
    let decay = tv_decay(&chain, &[4, 0, 0, 0], 12);
    for (t, d) in decay.iter().enumerate() {
        let bar = "#".repeat((d * 50.0).round() as usize);
        println!("  t={t:<3} TV={d:.4}  {bar}");
    }

    println!("\n=== Appendix B, exactly ===\n");
    let ab = appendix_b_exact();
    println!("  P(X1=0)        = {:.5}   (paper: 1/4)", ab.p_x1_zero);
    println!("  P(X2=0)        = {:.5}   (paper: 3/8)", ab.p_x2_zero);
    println!("  P(X1=0, X2=0)  = {:.5}   (paper: 1/8)", ab.p_joint_zero);
    println!(
        "  product        = {:.5}  <-- joint exceeds it: POSITIVE association",
        ab.p_x1_zero * ab.p_x2_zero
    );

    println!("\n=== simulation vs exact (n = 3, stationary P(max >= k)) ===\n");
    let chain = ExactChain::build(3, 3);
    let pi = chain.stationary(1e-13, 200_000);
    let mut p = LoadProcess::new(Config::one_per_bin(3), Xoshiro256pp::seed_from(99));
    p.run_silent(10_000);
    let rounds = 500_000u64;
    let mut counts = [0u64; 4];
    for _ in 0..rounds {
        p.step();
        counts[p.config().max_load() as usize] += 1;
    }
    for k in 1..=3u32 {
        let exact = chain.prob_max_load_at_least(&pi, k);
        let sim: u64 = counts.iter().skip(k as usize).sum();
        println!(
            "  P(max >= {k}):  exact {:.5}   simulated {:.5}",
            exact,
            sim as f64 / rounds as f64
        );
    }
    println!("\nthe engines and the kernel agree — the Monte Carlo experiments are calibrated.");
}
