//! # rbb — workspace facade
//!
//! Re-exports the reproduction's crates under one roof so downstream users
//! (and the repo-level `tests/` and `examples/`) can depend on a single
//! package. See `rbb_core` for the paper engine and `rbb_experiments` for
//! the claim-by-claim experiment suite.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use rbb_baselines as baselines;
pub use rbb_core as core;
pub use rbb_experiments as experiments;
pub use rbb_graphs as graphs;
pub use rbb_sim as sim;
pub use rbb_stats as stats;
pub use rbb_traversal as traversal;
