//! Queue-selection strategies.
//!
//! The paper's analysis is *oblivious* to how a non-empty bin chooses which
//! enqueued ball to release ("random, FIFO, etc", Section 2, footnote 2):
//! the load process is identical for every strategy because exactly one ball
//! leaves each non-empty bin per round regardless of *which* ball it is.
//! The choice matters only for per-ball quantities (progress, delay, cover
//! time), which is why [`crate::ball_process::BallProcess`] is generic over
//! this enum while [`crate::process::LoadProcess`] ignores it.

use crate::rng::Xoshiro256pp;

/// How a non-empty bin selects the ball it releases this round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueueStrategy {
    /// First-in-first-out. The strategy the paper uses for the progress and
    /// cover-time corollaries: under FIFO a ball waits at most the load it
    /// observed on arrival.
    Fifo,
    /// Last-in-first-out (a stack). Worst case for individual-ball progress:
    /// a ball buried under later arrivals can starve.
    Lifo,
    /// A uniformly random enqueued ball.
    Random,
}

impl QueueStrategy {
    /// All strategies, for sweep experiments.
    pub const ALL: [QueueStrategy; 3] = [
        QueueStrategy::Fifo,
        QueueStrategy::Lifo,
        QueueStrategy::Random,
    ];

    /// Returns the index (into a queue of length `len ≥ 1`) of the ball to
    /// release, where index 0 is the oldest ball.
    #[inline]
    ///
    /// # RNG stream
    ///
    /// Consumes one `uniform_usize` draw under `Random`, zero under
    /// `Fifo`/`Lifo`.
    pub fn pick(&self, len: usize, rng: &mut Xoshiro256pp) -> usize {
        debug_assert!(len >= 1);
        match self {
            QueueStrategy::Fifo => 0,
            QueueStrategy::Lifo => len - 1,
            QueueStrategy::Random => rng.uniform_usize(len),
        }
    }

    /// Human-readable label used in experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            QueueStrategy::Fifo => "fifo",
            QueueStrategy::Lifo => "lifo",
            QueueStrategy::Random => "random",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_picks_front() {
        let mut rng = Xoshiro256pp::seed_from(1);
        assert_eq!(QueueStrategy::Fifo.pick(5, &mut rng), 0);
        assert_eq!(QueueStrategy::Fifo.pick(1, &mut rng), 0);
    }

    #[test]
    fn lifo_picks_back() {
        let mut rng = Xoshiro256pp::seed_from(2);
        assert_eq!(QueueStrategy::Lifo.pick(5, &mut rng), 4);
        assert_eq!(QueueStrategy::Lifo.pick(1, &mut rng), 0);
    }

    #[test]
    fn random_pick_in_bounds_and_covers() {
        let mut rng = Xoshiro256pp::seed_from(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            let i = QueueStrategy::Random.pick(4, &mut rng);
            assert!(i < 4);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn labels_are_distinct() {
        let labels: Vec<_> = QueueStrategy::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(labels, vec!["fifo", "lifo", "random"]);
    }
}
