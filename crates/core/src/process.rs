//! The repeated balls-into-bins process — load-only engine.
//!
//! This engine simulates exactly the dynamics of Section 2:
//!
//! ```text
//! Q_v(t+1) = max(Q_v(t) - 1, 0) + |{ u ∈ W(t) : X_u(t+1) = v }|
//! ```
//!
//! where `W(t)` is the set of non-empty bins at round `t` and each
//! `X_u(t+1)` is u.a.r. over the `n` bins. Because exactly one ball leaves
//! every non-empty bin regardless of *which* ball the queue strategy picks,
//! the load process is strategy-invariant; this engine therefore carries no
//! ball identities and runs a round in `O(n)` time over a dense `Vec<u32>`
//! (see DESIGN.md §3.1 — [`crate::ball_process::BallProcess`] is the
//! identity-carrying sibling).

use crate::adversary::placement_to_config;
use crate::config::Config;
use crate::engine::Engine;
use crate::rng::Xoshiro256pp;
use crate::sampling::{
    throw_uniform, throw_uniform_batched, throw_uniform_recording, UniformSampler,
};
use crate::snapshot::{SnapshotError, SnapshotState, ENGINE_DENSE, SNAPSHOT_VERSION};

/// Load-only repeated balls-into-bins simulator.
///
/// ```
/// use rbb_core::prelude::*;
///
/// let mut p = LoadProcess::legitimate_start(64, 7);
/// let mut tracker = MaxLoadTracker::new();
/// p.run(1_000, &mut tracker);
/// assert_eq!(p.config().total_balls(), 64);       // mass conserved
/// assert!(tracker.window_max() <= 4 * 64u32.ilog2()); // O(log n) loads
/// ```
#[derive(Debug, Clone)]
pub struct LoadProcess {
    config: Config,
    rng: Xoshiro256pp,
    round: u64,
    balls: u64,
    /// Destination scratch reused by the batched hot path; empty until the
    /// first `step_batched` call, so the scalar path pays nothing for it.
    dests: Vec<u32>,
    /// Uniform sampler keyed on `n` (the bin count never changes over a
    /// process's lifetime), so the batched path does not re-pay the
    /// `2^64 mod n` rejection-threshold division every round.
    sampler: UniformSampler,
}

impl LoadProcess {
    /// Creates a process from an initial configuration and a seeded RNG.
    ///
    /// # RNG stream
    ///
    /// Takes ownership of `rng` as the engine stream: each round consumes one
    /// uniform destination draw per ball released, in bin order (the contract
    /// of [`throw_uniform`]).
    pub fn new(config: Config, rng: Xoshiro256pp) -> Self {
        let balls = config.total_balls();
        let sampler = UniformSampler::new(config.n() as u64);
        Self {
            config,
            rng,
            round: 0,
            balls,
            dests: Vec::new(),
            sampler,
        }
    }

    /// Convenience constructor: `n` balls into `n` bins, one per bin.
    pub fn legitimate_start(n: usize, seed: u64) -> Self {
        // rbb-lint: allow(rng-construct, reason = "engine-convention stream for a core convenience constructor; core cannot depend on rbb_sim::seed")
        Self::new(Config::one_per_bin(n), Xoshiro256pp::seed_from(seed))
    }

    /// Current round index (0 before any step).
    #[inline]
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Number of bins.
    #[inline]
    pub fn n(&self) -> usize {
        self.config.n()
    }

    /// Total ball count (rounds conserve it; the incremental
    /// [`Engine::place`]/[`Engine::depart`] surface changes it).
    #[inline]
    pub fn balls(&self) -> u64 {
        self.balls
    }

    /// Current configuration.
    #[inline]
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// Advances one round; returns the number of balls that moved (equal to
    /// the number of non-empty bins at the start of the round).
    pub fn step(&mut self) -> usize {
        let loads = self.config.loads_mut();
        let mut departures = 0usize;
        for l in loads.iter_mut() {
            if *l > 0 {
                *l -= 1;
                departures += 1;
            }
        }
        throw_uniform(&mut self.rng, loads, departures);
        self.round += 1;
        debug_assert_eq!(self.config.total_balls(), self.balls);
        departures
    }

    /// Advances one round through the batched hot path. Semantically (and
    /// bit-for-bit, given equal starting state) identical to [`step`]: the
    /// departure scan is branchless and the destination draws are batched
    /// through [`crate::sampling::UniformSampler`] into a reused scratch
    /// buffer, but the RNG stream is consumed in exactly the same order, so
    /// the two paths produce the same trajectory from the same seed.
    ///
    /// [`step`]: LoadProcess::step
    pub fn step_batched(&mut self) -> usize {
        let loads = self.config.loads_mut();
        let mut departures = 0usize;
        for l in loads.iter_mut() {
            // Branchless: at ~63% occupancy in equilibrium the `l > 0`
            // branch is close to worst-case unpredictable, so the scalar
            // path's compare-and-jump stalls the O(n) scan.
            // rbb-lint: allow(lossy-cast, reason = "bool-to-u32 cast is lossless (0 or 1)")
            let occupied = (*l > 0) as u32;
            *l -= occupied;
            departures += occupied as usize;
        }
        throw_uniform_batched(
            &self.sampler,
            &mut self.rng,
            loads,
            departures,
            &mut self.dests,
        );
        self.round += 1;
        debug_assert_eq!(self.config.total_balls(), self.balls);
        departures
    }

    /// Advances one round, recording each mover's destination in `dests`
    /// (bin indices in the order the source bins were scanned). Used by the
    /// Lemma-3 coupling, which reuses these choices for the Tetris copy.
    pub fn step_recording(&mut self, dests: &mut Vec<usize>) -> usize {
        let loads = self.config.loads_mut();
        let mut departures = 0usize;
        for l in loads.iter_mut() {
            if *l > 0 {
                *l -= 1;
                departures += 1;
            }
        }
        throw_uniform_recording(&mut self.rng, loads, departures, dests);
        self.round += 1;
        departures
    }

    /// Replaces the configuration wholesale — the §4.1 adversary's move.
    /// Panics if the new configuration changes the ball count (the adversary
    /// may *re-assign* balls, not create or destroy them).
    pub fn adversarial_reassign(&mut self, new_config: Config) {
        assert_eq!(
            new_config.total_balls(),
            self.balls,
            "adversary must conserve balls"
        );
        assert_eq!(
            new_config.n(),
            self.config.n(),
            "adversary must keep n bins"
        );
        self.config = new_config;
    }

    /// Captures the complete resumable state — loads, raw RNG stream state,
    /// round and ball counters. Restoring through [`Self::from_snapshot`]
    /// resumes the trajectory bit-identically.
    pub fn snapshot_state(&self) -> SnapshotState {
        let entries = self
            .config
            .loads()
            .iter()
            .enumerate()
            .filter(|&(_, &l)| l > 0)
            // rbb-lint: allow(lossy-cast, reason = "enumerate index < n, and the constructors assert n fits the u32 index range")
            .map(|(b, &l)| (b as u32, l))
            .collect();
        SnapshotState {
            version: SNAPSHOT_VERSION,
            engine: ENGINE_DENSE.to_string(),
            n: self.config.n(),
            shards: 1,
            round: self.round,
            balls: self.balls,
            entries,
            rng_states: vec![self.rng.state()],
        }
    }

    /// Rebuilds a dense process from a snapshot (validated first); the
    /// restored process resumes the snapshotted trajectory bit-identically.
    pub fn from_snapshot(state: &SnapshotState) -> Result<Self, SnapshotError> {
        state.validate()?;
        if state.engine != ENGINE_DENSE {
            return Err(SnapshotError(format!(
                "expected a {ENGINE_DENSE} snapshot, got '{}'",
                state.engine
            )));
        }
        // rbb-lint: allow(rng-construct, reason = "restoring a serialized stream state captured from a live engine snapshot, not seeding a new stream")
        let rng = Xoshiro256pp::from_state(state.rng_states[0]);
        let mut p = Self::new(Config::from_loads(state.dense_loads()), rng);
        p.round = state.round;
        Ok(p)
    }
}

/// The run family (`run`, `run_silent`, `run_until`) is provided by
/// [`Engine`]; both step paths are bit-identical, so the trait's
/// batched-by-default policy never changes a trajectory.
impl Engine for LoadProcess {
    #[inline]
    fn step(&mut self) -> usize {
        LoadProcess::step(self)
    }

    #[inline]
    fn step_batched(&mut self) -> usize {
        LoadProcess::step_batched(self)
    }

    #[inline]
    fn round(&self) -> u64 {
        self.round
    }

    /// The tracked counter, not the trait default's `O(n)` load sum — the
    /// serve hot path reads this per placement.
    #[inline]
    fn balls(&self) -> u64 {
        self.balls
    }

    #[inline]
    fn config(&self) -> &Config {
        &self.config
    }

    fn supports_faults(&self) -> bool {
        true
    }

    /// Placement-based fault: folds `placement[ball] = bin` into a load
    /// vector (ball identities are irrelevant to the load-only engine).
    fn apply_fault(&mut self, placement: &[usize]) {
        self.adversarial_reassign(placement_to_config(self.n(), placement));
    }

    fn supports_incremental(&self) -> bool {
        true
    }

    /// Incremental arrival: one uniform destination draw from the engine
    /// stream, exactly the per-ball primitive a round uses.
    fn place(&mut self) -> usize {
        assert!(
            self.balls < u32::MAX as u64,
            "place would overflow the u32 load bound"
        );
        let b = self.rng.uniform_usize(self.config.n());
        self.config.loads_mut()[b] += 1;
        self.balls += 1;
        b
    }

    fn depart(&mut self, bin: usize) -> bool {
        match self.config.loads_mut().get_mut(bin) {
            Some(slot) if *slot > 0 => {
                *slot -= 1;
                self.balls -= 1;
                true
            }
            _ => false,
        }
    }

    fn snapshot(&self) -> Option<SnapshotState> {
        Some(self.snapshot_state())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LegitimacyThreshold;
    use crate::metrics::{EmptyBinsTracker, MaxLoadTracker};

    #[test]
    fn step_conserves_balls() {
        let mut p = LoadProcess::legitimate_start(64, 1);
        for _ in 0..200 {
            p.step();
            assert_eq!(p.config().total_balls(), 64);
        }
    }

    #[test]
    fn step_returns_nonempty_count() {
        let mut p = LoadProcess::new(Config::all_in_one(8, 8), Xoshiro256pp::seed_from(2));
        // Round 1: only bin 0 is non-empty, so exactly one ball moves.
        assert_eq!(p.step(), 1);
    }

    #[test]
    fn round_counter_advances() {
        let mut p = LoadProcess::legitimate_start(16, 3);
        assert_eq!(p.round(), 0);
        p.run_silent(10);
        assert_eq!(p.round(), 10);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = LoadProcess::legitimate_start(32, 42);
        let mut b = LoadProcess::legitimate_start(32, 42);
        a.run_silent(100);
        b.run_silent(100);
        assert_eq!(a.config(), b.config());
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = LoadProcess::legitimate_start(32, 1);
        let mut b = LoadProcess::legitimate_start(32, 2);
        a.run_silent(50);
        b.run_silent(50);
        assert_ne!(a.config(), b.config());
    }

    #[test]
    fn empty_bins_appear_after_one_round() {
        // Lemma 1: from the all-singleton start, one round creates ≥ n/4
        // empty bins w.h.p. (here: just check plenty appear).
        let mut p = LoadProcess::legitimate_start(1024, 7);
        p.step();
        let empty = p.config().empty_bins();
        assert!(empty >= 1024 / 4, "only {empty} empty bins after round 1");
    }

    #[test]
    fn max_load_stays_logarithmic_short_window() {
        let n = 512;
        let mut p = LoadProcess::legitimate_start(n, 11);
        let mut tracker = MaxLoadTracker::new();
        p.run(2000, &mut tracker);
        let bound = LegitimacyThreshold::default().bound(n);
        assert!(
            tracker.window_max() <= bound,
            "max load {} exceeded 4 ln n = {}",
            tracker.window_max(),
            bound
        );
    }

    #[test]
    fn empty_fraction_at_least_quarter_in_window() {
        let mut p = LoadProcess::legitimate_start(1024, 13);
        let mut tracker = EmptyBinsTracker::new();
        p.run(2000, &mut tracker);
        assert_eq!(tracker.violations_below_quarter(), 0);
        assert!(tracker.min_empty() >= 256);
    }

    #[test]
    fn all_in_one_drains_one_per_round() {
        let n = 64;
        let mut p = LoadProcess::new(Config::all_in_one(n, n as u32), Xoshiro256pp::seed_from(5));
        for t in 1..=10u32 {
            p.step();
            // Bin 0 loses one per round and receives at most the number of
            // movers; early on it can only shrink roughly one per round.
            assert!(p.config().loads()[0] >= n as u32 - 2 * t);
        }
    }

    #[test]
    fn convergence_from_all_in_one_is_linear() {
        let n = 256;
        let thr = LegitimacyThreshold::default();
        let mut p = LoadProcess::new(Config::all_in_one(n, n as u32), Xoshiro256pp::seed_from(6));
        let hit = p
            .run_until(20 * n as u64, |c| thr.is_legitimate(c))
            .expect("should converge");
        // Needs at least (n - bound) rounds to drain bin 0; should finish in O(n).
        assert!(hit >= (n as u64 - thr.bound(n) as u64));
        assert!(hit <= 3 * n as u64, "took {hit} rounds");
    }

    #[test]
    fn run_until_immediate_hit() {
        let mut p = LoadProcess::legitimate_start(16, 8);
        let hit = p.run_until(10, |_| true);
        assert_eq!(hit, Some(0));
    }

    #[test]
    fn run_until_gives_none_on_timeout() {
        let mut p = LoadProcess::legitimate_start(16, 9);
        assert_eq!(p.run_until(5, |c| c.max_load() > 1_000), None);
    }

    #[test]
    fn step_recording_matches_departures() {
        let mut p = LoadProcess::legitimate_start(32, 10);
        let mut dests = Vec::new();
        let d = p.step_recording(&mut dests);
        assert_eq!(d, 32);
        assert_eq!(dests.len(), 32);
        assert!(dests.iter().all(|&b| b < 32));
    }

    #[test]
    fn adversarial_reassign_conserves() {
        let mut p = LoadProcess::legitimate_start(16, 11);
        p.adversarial_reassign(Config::all_in_one(16, 16));
        assert_eq!(p.config().max_load(), 16);
        p.step();
        assert_eq!(p.config().total_balls(), 16);
    }

    #[test]
    #[should_panic(expected = "conserve")]
    fn adversarial_reassign_rejects_mass_change() {
        let mut p = LoadProcess::legitimate_start(16, 12);
        p.adversarial_reassign(Config::all_in_one(16, 17));
    }

    #[test]
    fn batched_step_is_bit_identical_to_scalar() {
        // The batched hot path must be indistinguishable from the scalar
        // path: same loads and same RNG consumption, round for round.
        for n in [1usize, 7, 64, 1000] {
            let mut scalar = LoadProcess::legitimate_start(n, 21);
            let mut batched = scalar.clone();
            for _ in 0..300 {
                let a = scalar.step();
                let b = batched.step_batched();
                assert_eq!(a, b);
                assert_eq!(scalar.config(), batched.config());
            }
        }
    }

    #[test]
    fn cached_sampler_keeps_rng_state_bit_identical_to_scalar() {
        // The cached `UniformSampler` must not change what the batched path
        // consumes: after any number of rounds the loads AND the raw RNG
        // state match the scalar path exactly.
        for n in [2usize, 33, 500] {
            let mut scalar = LoadProcess::legitimate_start(n, 77);
            let mut batched = scalar.clone();
            for _ in 0..250 {
                scalar.step();
                batched.step_batched();
            }
            assert_eq!(scalar.config, batched.config);
            assert_eq!(scalar.rng, batched.rng, "RNG state diverged at n={n}");
            assert_eq!(batched.sampler.bound(), n as u64, "sampler keyed on n");
        }
    }

    #[test]
    fn batched_and_scalar_steps_interleave() {
        // Because both paths consume the RNG identically, they can be mixed
        // freely mid-trajectory.
        let mut reference = LoadProcess::legitimate_start(128, 22);
        let mut mixed = reference.clone();
        for i in 0..200 {
            reference.step();
            if i % 2 == 0 {
                mixed.step_batched();
            } else {
                mixed.step();
            }
        }
        assert_eq!(reference.config(), mixed.config());
        assert_eq!(reference.round(), mixed.round());
    }

    #[test]
    fn run_silent_matches_scalar_stepping() {
        let mut a = LoadProcess::legitimate_start(256, 23);
        let mut b = a.clone();
        for _ in 0..500 {
            a.step();
        }
        b.run_silent(500);
        assert_eq!(a.config(), b.config());
        assert_eq!(b.round(), 500);
        assert_eq!(b.config().total_balls(), 256);
    }

    #[test]
    fn run_invokes_observer() {
        let mut p = LoadProcess::legitimate_start(64, 24);
        let mut tracker = MaxLoadTracker::new();
        p.run(100, &mut tracker);
        assert!(tracker.window_max() >= 1);
    }

    #[test]
    fn batched_from_all_in_one_conserves() {
        let mut p = LoadProcess::new(Config::all_in_one(64, 200), Xoshiro256pp::seed_from(25));
        p.run_silent(300);
        assert_eq!(p.config().total_balls(), 200);
    }

    #[test]
    fn snapshot_restore_resumes_bit_identically() {
        let mut p = LoadProcess::legitimate_start(64, 33);
        p.run_silent(37);
        let snap = Engine::snapshot(&p).expect("dense engine snapshots");
        let mut q = LoadProcess::from_snapshot(&snap).unwrap();
        assert_eq!(q.round(), 37);
        assert_eq!(q.config(), p.config());
        for _ in 0..100 {
            p.step();
            q.step();
        }
        assert_eq!(p.config(), q.config());
        assert_eq!(Engine::snapshot(&p), Engine::snapshot(&q));
    }

    #[test]
    fn from_snapshot_rejects_other_kinds() {
        let mut snap = LoadProcess::legitimate_start(8, 1).snapshot_state();
        snap.engine = "sparse".to_string();
        assert!(LoadProcess::from_snapshot(&snap).is_err());
    }

    #[test]
    fn place_and_depart_update_loads_and_mass() {
        let mut p = LoadProcess::legitimate_start(32, 44);
        assert!(Engine::supports_incremental(&p));
        let b = Engine::place(&mut p);
        assert!(b < 32);
        assert_eq!(p.balls(), 33);
        assert_eq!(p.config().loads()[b], 2);
        assert!(Engine::depart(&mut p, b));
        assert_eq!(p.balls(), 32);
        assert!(!Engine::depart(&mut p, 99), "out of range is a no-op");
        assert!(Engine::depart(&mut p, 0));
        assert!(!Engine::depart(&mut p, 0), "empty bin is a no-op");
        assert_eq!(p.balls(), 31);
        p.step();
        assert_eq!(p.config().total_balls(), 31);
    }

    #[test]
    fn place_consumes_the_engine_stream_deterministically() {
        let mut a = LoadProcess::legitimate_start(64, 9);
        let mut b = a.clone();
        for _ in 0..20 {
            assert_eq!(Engine::place(&mut a), Engine::place(&mut b));
        }
        a.run_silent(10);
        b.run_silent(10);
        assert_eq!(a.config(), b.config());
    }

    #[test]
    fn m_less_than_n_supported() {
        let mut rng = Xoshiro256pp::seed_from(13);
        let cfg = Config::random(&mut rng, 100, 50);
        let mut p = LoadProcess::new(cfg, rng);
        p.run_silent(100);
        assert_eq!(p.config().total_balls(), 50);
    }

    #[test]
    fn m_greater_than_n_supported() {
        let mut rng = Xoshiro256pp::seed_from(14);
        let cfg = Config::random(&mut rng, 100, 400);
        let mut p = LoadProcess::new(cfg, rng);
        p.run_silent(100);
        assert_eq!(p.config().total_balls(), 400);
    }
}
