//! The repeated balls-into-bins process — load-only engine.
//!
//! This engine simulates exactly the dynamics of Section 2:
//!
//! ```text
//! Q_v(t+1) = max(Q_v(t) - 1, 0) + |{ u ∈ W(t) : X_u(t+1) = v }|
//! ```
//!
//! where `W(t)` is the set of non-empty bins at round `t` and each
//! `X_u(t+1)` is u.a.r. over the `n` bins. Because exactly one ball leaves
//! every non-empty bin regardless of *which* ball the queue strategy picks,
//! the load process is strategy-invariant; this engine therefore carries no
//! ball identities and runs a round in `O(n)` time over a dense `Vec<u32>`
//! (see DESIGN.md §3.1 — [`crate::ball_process::BallProcess`] is the
//! identity-carrying sibling).

use crate::adversary::placement_to_config;
use crate::config::Config;
use crate::engine::Engine;
use crate::rng::Xoshiro256pp;
use crate::sampling::{
    throw_uniform, throw_uniform_batched, throw_uniform_recording, UniformSampler,
};
use crate::snapshot::{
    SnapshotError, SnapshotState, WeightedSection, ENGINE_DENSE, SNAPSHOT_VERSION,
    SNAPSHOT_VERSION_WEIGHTED,
};
use crate::weights::{Capacities, WeightOverlay, Weights};

/// Load-only repeated balls-into-bins simulator.
///
/// ```
/// use rbb_core::prelude::*;
///
/// let mut p = LoadProcess::legitimate_start(64, 7);
/// let mut tracker = MaxLoadTracker::new();
/// p.run(1_000, &mut tracker);
/// assert_eq!(p.config().total_balls(), 64);       // mass conserved
/// assert!(tracker.window_max() <= 4 * 64u32.ilog2()); // O(log n) loads
/// ```
#[derive(Debug, Clone)]
pub struct LoadProcess {
    config: Config,
    rng: Xoshiro256pp,
    round: u64,
    balls: u64,
    /// Destination scratch reused by the batched hot path; empty until the
    /// first `step_batched` call, so the scalar path pays nothing for it.
    dests: Vec<u32>,
    /// Uniform sampler keyed on `n` (the bin count never changes over a
    /// process's lifetime), so the batched path does not re-pay the
    /// `2^64 mod n` rejection-threshold division every round.
    sampler: UniformSampler,
    /// Weight overlay — `None` in the unit configuration, where every step
    /// path takes its original branch untouched (the weighted code is never
    /// on the unit path).
    weighted: Option<WeightOverlay>,
    /// Observed capacity bounds ([`Capacities::Unbounded`] by default).
    capacities: Capacities,
    /// Scalar-path destination scratch for weighted rounds.
    dests_scalar: Vec<usize>,
}

impl LoadProcess {
    /// Creates a process from an initial configuration and a seeded RNG.
    ///
    /// # RNG stream
    ///
    /// Takes ownership of `rng` as the engine stream: each round consumes one
    /// uniform destination draw per ball released, in bin order (the contract
    /// of [`throw_uniform`]).
    pub fn new(config: Config, rng: Xoshiro256pp) -> Self {
        let balls = config.total_balls();
        let sampler = UniformSampler::new(config.n() as u64);
        Self {
            config,
            rng,
            round: 0,
            balls,
            dests: Vec::new(),
            sampler,
            weighted: None,
            capacities: Capacities::Unbounded,
            dests_scalar: Vec::new(),
        }
    }

    /// Creates a weighted, capacity-observing process. [`Weights::Unit`]
    /// (or an explicit all-ones vector) builds no overlay at all, so the
    /// unit configuration is the *same engine* as [`Self::new`] — identical
    /// trajectory, RNG stream, and snapshot bytes. Non-unit weights are
    /// assigned ball by ball in bin order over `config`.
    ///
    /// # RNG stream
    ///
    /// Identical to [`Self::new`]: weights never touch the RNG — each round
    /// still consumes one uniform draw per non-empty bin, in bin order.
    pub fn with_weights(
        config: Config,
        rng: Xoshiro256pp,
        weights: Weights,
        capacities: Capacities,
    ) -> Self {
        let weights = weights.normalized();
        if let Err(e) = weights.validate(config.total_balls()) {
            // rbb-lint: allow(panic, reason = "constructor contract violation, caught by spec-layer validation first")
            panic!("invalid weights: {e}");
        }
        if let Err(e) = capacities.validate(config.n()) {
            // rbb-lint: allow(panic, reason = "constructor contract violation, caught by spec-layer validation first")
            panic!("invalid capacities: {e}");
        }
        let mut p = Self::new(config, rng);
        if let Weights::Explicit(ws) = &weights {
            let entries = p
                .config
                .loads()
                .iter()
                .enumerate()
                .filter(|&(_, &l)| l > 0)
                // rbb-lint: allow(lossy-cast, reason = "enumerate index < n, which fits the u32 bin-index range")
                .map(|(b, &l)| (b as u32, l));
            p.weighted = Some(WeightOverlay::from_entries(entries, ws));
        }
        p.capacities = capacities;
        p
    }

    /// Convenience constructor: `n` balls into `n` bins, one per bin.
    pub fn legitimate_start(n: usize, seed: u64) -> Self {
        // rbb-lint: allow(rng-construct, reason = "engine-convention stream for a core convenience constructor; core cannot depend on rbb_sim::seed")
        Self::new(Config::one_per_bin(n), Xoshiro256pp::seed_from(seed))
    }

    /// Current round index (0 before any step).
    #[inline]
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Number of bins.
    #[inline]
    pub fn n(&self) -> usize {
        self.config.n()
    }

    /// Total ball count (rounds conserve it; the incremental
    /// [`Engine::place`]/[`Engine::depart`] surface changes it).
    #[inline]
    pub fn balls(&self) -> u64 {
        self.balls
    }

    /// Current configuration.
    #[inline]
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// Advances one round; returns the number of balls that moved (equal to
    /// the number of non-empty bins at the start of the round).
    pub fn step(&mut self) -> usize {
        if self.weighted.is_some() {
            return self.step_weighted(false);
        }
        let loads = self.config.loads_mut();
        let mut departures = 0usize;
        for l in loads.iter_mut() {
            if *l > 0 {
                *l -= 1;
                departures += 1;
            }
        }
        throw_uniform(&mut self.rng, loads, departures);
        self.round += 1;
        debug_assert_eq!(self.config.total_balls(), self.balls);
        departures
    }

    /// Advances one round through the batched hot path. Semantically (and
    /// bit-for-bit, given equal starting state) identical to [`step`]: the
    /// departure scan is branchless and the destination draws are batched
    /// through [`crate::sampling::UniformSampler`] into a reused scratch
    /// buffer, but the RNG stream is consumed in exactly the same order, so
    /// the two paths produce the same trajectory from the same seed.
    ///
    /// [`step`]: LoadProcess::step
    pub fn step_batched(&mut self) -> usize {
        if self.weighted.is_some() {
            return self.step_weighted(true);
        }
        let loads = self.config.loads_mut();
        let mut departures = 0usize;
        for l in loads.iter_mut() {
            // Branchless: at ~63% occupancy in equilibrium the `l > 0`
            // branch is close to worst-case unpredictable, so the scalar
            // path's compare-and-jump stalls the O(n) scan.
            // rbb-lint: allow(lossy-cast, reason = "bool-to-u32 cast is lossless (0 or 1)")
            let occupied = (*l > 0) as u32;
            *l -= occupied;
            departures += occupied as usize;
        }
        throw_uniform_batched(
            &self.sampler,
            &mut self.rng,
            loads,
            departures,
            &mut self.dests,
        );
        self.round += 1;
        debug_assert_eq!(self.config.total_balls(), self.balls);
        departures
    }

    /// The weighted round: identical departure scan and destination draws
    /// as the unit paths (same RNG stream, draw for draw), plus the metric
    /// transport pairing the `k`-th departing bin with the `k`-th draw.
    fn step_weighted(&mut self, batched: bool) -> usize {
        let Self {
            config,
            rng,
            dests,
            sampler,
            weighted,
            dests_scalar,
            ..
        } = self;
        // rbb-lint: allow(panic, reason = "only reached behind a weighted.is_some() guard in step/step_batched")
        let overlay = weighted.as_mut().expect("weighted step needs an overlay");
        let loads = config.loads_mut();
        let mut departures = 0usize;
        overlay.srcs.clear();
        for (b, l) in loads.iter_mut().enumerate() {
            if *l > 0 {
                *l -= 1;
                departures += 1;
                // rbb-lint: allow(lossy-cast, reason = "enumerate index < n, which fits the u32 bin-index range")
                overlay.srcs.push(b as u32);
            }
        }
        if batched {
            throw_uniform_batched(sampler, rng, loads, departures, dests);
        } else {
            throw_uniform_recording(rng, loads, departures, dests_scalar);
            dests.clear();
            // rbb-lint: allow(lossy-cast, reason = "destinations are bin indices < n, which fits u32")
            dests.extend(dests_scalar.iter().map(|&d| d as u32));
        }
        overlay.transport(dests);
        self.round += 1;
        debug_assert_eq!(self.config.total_balls(), self.balls);
        debug_assert!(self.weighted.as_ref().is_some_and(|o| o
            .check_against(
                self.config
                    .loads()
                    .iter()
                    .enumerate()
                    .filter(|&(_, &l)| l > 0)
                    // rbb-lint: allow(lossy-cast, reason = "bin index < n, and n fits u32 by the Config invariant")
                    .map(|(b, &l)| (b as u32, l)),
            )
            .is_ok()));
        departures
    }

    /// Advances one round, recording each mover's destination in `dests`
    /// (bin indices in the order the source bins were scanned). Used by the
    /// Lemma-3 coupling, which reuses these choices for the Tetris copy.
    pub fn step_recording(&mut self, dests: &mut Vec<usize>) -> usize {
        assert!(
            self.weighted.is_none(),
            "step_recording is a unit-path primitive (the Lemma-3 coupling); \
             weighted rounds go through step/step_batched"
        );
        let loads = self.config.loads_mut();
        let mut departures = 0usize;
        for l in loads.iter_mut() {
            if *l > 0 {
                *l -= 1;
                departures += 1;
            }
        }
        throw_uniform_recording(&mut self.rng, loads, departures, dests);
        self.round += 1;
        departures
    }

    /// Replaces the configuration wholesale — the §4.1 adversary's move.
    /// Panics if the new configuration changes the ball count (the adversary
    /// may *re-assign* balls, not create or destroy them).
    pub fn adversarial_reassign(&mut self, new_config: Config) {
        assert_eq!(
            new_config.total_balls(),
            self.balls,
            "adversary must conserve balls"
        );
        assert_eq!(
            new_config.n(),
            self.config.n(),
            "adversary must keep n bins"
        );
        self.config = new_config;
    }

    /// Captures the complete resumable state — loads, raw RNG stream state,
    /// round and ball counters. Restoring through [`Self::from_snapshot`]
    /// resumes the trajectory bit-identically.
    pub fn snapshot_state(&self) -> SnapshotState {
        let entries = self
            .config
            .loads()
            .iter()
            .enumerate()
            .filter(|&(_, &l)| l > 0)
            // rbb-lint: allow(lossy-cast, reason = "enumerate index < n, and the constructors assert n fits the u32 index range")
            .map(|(b, &l)| (b as u32, l))
            .collect();
        let weighted = weighted_section(self.weighted.as_ref(), &self.capacities);
        SnapshotState {
            version: if weighted.is_some() {
                SNAPSHOT_VERSION_WEIGHTED
            } else {
                SNAPSHOT_VERSION
            },
            engine: ENGINE_DENSE.to_string(),
            n: self.config.n(),
            shards: 1,
            round: self.round,
            balls: self.balls,
            entries,
            rng_states: vec![self.rng.state()],
            weighted,
        }
    }

    /// Rebuilds a dense process from a snapshot (validated first); the
    /// restored process resumes the snapshotted trajectory bit-identically.
    pub fn from_snapshot(state: &SnapshotState) -> Result<Self, SnapshotError> {
        state.validate()?;
        if state.engine != ENGINE_DENSE {
            return Err(SnapshotError(format!(
                "expected a {ENGINE_DENSE} snapshot, got '{}'",
                state.engine
            )));
        }
        // rbb-lint: allow(rng-construct, reason = "restoring a serialized stream state captured from a live engine snapshot, not seeding a new stream")
        let rng = Xoshiro256pp::from_state(state.rng_states[0]);
        let mut p = Self::new(Config::from_loads(state.dense_loads()), rng);
        p.round = state.round;
        if let Some(w) = &state.weighted {
            p.capacities = w.capacities()?;
            if !w.queues.is_empty() {
                p.weighted = Some(WeightOverlay::from_queues(&w.queues));
            }
        }
        Ok(p)
    }
}

/// The snapshot encoding shared by the three load engines: a weighted
/// section is emitted iff there is anything non-unit to record — an overlay
/// or non-default capacities (an overlay-less section carries capacities
/// only; validation rejects the vacuous unbounded-and-empty combination).
pub(crate) fn weighted_section(
    overlay: Option<&WeightOverlay>,
    capacities: &Capacities,
) -> Option<WeightedSection> {
    if overlay.is_none() && capacities.is_unbounded() {
        return None;
    }
    Some(WeightedSection {
        queues: overlay.map_or_else(Vec::new, WeightOverlay::queues_sorted),
        cap_kind: capacities.kind_str().to_string(),
        caps: capacities.bounds_vec(),
    })
}

/// The run family (`run`, `run_silent`, `run_until`) is provided by
/// [`Engine`]; both step paths are bit-identical, so the trait's
/// batched-by-default policy never changes a trajectory.
impl Engine for LoadProcess {
    #[inline]
    fn step(&mut self) -> usize {
        LoadProcess::step(self)
    }

    #[inline]
    fn step_batched(&mut self) -> usize {
        LoadProcess::step_batched(self)
    }

    #[inline]
    fn round(&self) -> u64 {
        self.round
    }

    /// The tracked counter, not the trait default's `O(n)` load sum — the
    /// serve hot path reads this per placement.
    #[inline]
    fn balls(&self) -> u64 {
        self.balls
    }

    #[inline]
    fn config(&self) -> &Config {
        &self.config
    }

    fn supports_faults(&self) -> bool {
        true
    }

    /// Placement-based fault: folds `placement[ball] = bin` into a load
    /// vector (ball identities are irrelevant to the load-only engine).
    fn apply_fault(&mut self, placement: &[usize]) {
        self.adversarial_reassign(placement_to_config(self.n(), placement));
    }

    fn supports_incremental(&self) -> bool {
        true
    }

    /// Incremental arrival: one uniform destination draw from the engine
    /// stream, exactly the per-ball primitive a round uses.
    fn place(&mut self) -> usize {
        self.place_weighted(1)
    }

    /// Same RNG draw as [`place`](Engine::place) — the weight only feeds
    /// the overlay. A unit process accepts weight 1 only (it has no overlay
    /// to record a heavier ball in).
    fn place_weighted(&mut self, weight: u32) -> usize {
        assert!(
            self.balls < u32::MAX as u64,
            "place would overflow the u32 load bound"
        );
        assert!(
            weight == 1 || self.weighted.is_some(),
            "this process is unit-weight: only weight-1 placements are supported"
        );
        assert!(weight >= 1, "placed weight must be at least 1");
        let b = self.rng.uniform_usize(self.config.n());
        self.config.loads_mut()[b] += 1;
        self.balls += 1;
        if let Some(o) = &mut self.weighted {
            // rbb-lint: allow(lossy-cast, reason = "destination is a bin index < n, which fits u32")
            o.place(b as u32, weight);
        }
        b
    }

    fn depart(&mut self, bin: usize) -> bool {
        match self.config.loads_mut().get_mut(bin) {
            Some(slot) if *slot > 0 => {
                *slot -= 1;
                self.balls -= 1;
                if let Some(o) = &mut self.weighted {
                    // rbb-lint: allow(lossy-cast, reason = "in-range bin index < n, which fits u32")
                    o.depart(bin as u32);
                }
                true
            }
            _ => false,
        }
    }

    fn weighted(&self) -> bool {
        self.weighted.is_some()
    }

    fn total_weight(&self) -> u64 {
        self.weighted
            .as_ref()
            .map_or(self.balls, WeightOverlay::total)
    }

    fn weighted_max_load(&self) -> u64 {
        match &self.weighted {
            Some(o) => o.weighted_max_load(),
            None => u64::from(self.config.max_load()),
        }
    }

    fn weighted_bin_load(&self, bin: usize) -> u64 {
        match &self.weighted {
            // rbb-lint: allow(lossy-cast, reason = "out-of-range bins read as empty, matching the dense path's 0 load")
            Some(o) => o.weighted_load(bin as u32),
            None => u64::from(self.config.loads().get(bin).copied().unwrap_or(0)),
        }
    }

    fn capacities(&self) -> &Capacities {
        &self.capacities
    }

    /// `O(#occupied)` through the overlay; the capacity-only unit case
    /// falls back to the dense `O(n)` scan.
    fn capacity_violations(&self) -> u64 {
        match &self.weighted {
            Some(o) => o.capacity_violations(&self.capacities),
            None => {
                if self.capacities.is_unbounded() {
                    return 0;
                }
                self.config
                    .loads()
                    .iter()
                    .enumerate()
                    .filter(|&(b, &l)| self.capacities.bound(b).is_some_and(|c| u64::from(l) > c))
                    .count() as u64
            }
        }
    }

    fn snapshot(&self) -> Option<SnapshotState> {
        Some(self.snapshot_state())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LegitimacyThreshold;
    use crate::metrics::{EmptyBinsTracker, MaxLoadTracker};

    #[test]
    fn step_conserves_balls() {
        let mut p = LoadProcess::legitimate_start(64, 1);
        for _ in 0..200 {
            p.step();
            assert_eq!(p.config().total_balls(), 64);
        }
    }

    #[test]
    fn step_returns_nonempty_count() {
        let mut p = LoadProcess::new(Config::all_in_one(8, 8), Xoshiro256pp::seed_from(2));
        // Round 1: only bin 0 is non-empty, so exactly one ball moves.
        assert_eq!(p.step(), 1);
    }

    #[test]
    fn round_counter_advances() {
        let mut p = LoadProcess::legitimate_start(16, 3);
        assert_eq!(p.round(), 0);
        p.run_silent(10);
        assert_eq!(p.round(), 10);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = LoadProcess::legitimate_start(32, 42);
        let mut b = LoadProcess::legitimate_start(32, 42);
        a.run_silent(100);
        b.run_silent(100);
        assert_eq!(a.config(), b.config());
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = LoadProcess::legitimate_start(32, 1);
        let mut b = LoadProcess::legitimate_start(32, 2);
        a.run_silent(50);
        b.run_silent(50);
        assert_ne!(a.config(), b.config());
    }

    #[test]
    fn empty_bins_appear_after_one_round() {
        // Lemma 1: from the all-singleton start, one round creates ≥ n/4
        // empty bins w.h.p. (here: just check plenty appear).
        let mut p = LoadProcess::legitimate_start(1024, 7);
        p.step();
        let empty = p.config().empty_bins();
        assert!(empty >= 1024 / 4, "only {empty} empty bins after round 1");
    }

    #[test]
    fn max_load_stays_logarithmic_short_window() {
        let n = 512;
        let mut p = LoadProcess::legitimate_start(n, 11);
        let mut tracker = MaxLoadTracker::new();
        p.run(2000, &mut tracker);
        let bound = LegitimacyThreshold::default().bound(n);
        assert!(
            tracker.window_max() <= bound,
            "max load {} exceeded 4 ln n = {}",
            tracker.window_max(),
            bound
        );
    }

    #[test]
    fn empty_fraction_at_least_quarter_in_window() {
        let mut p = LoadProcess::legitimate_start(1024, 13);
        let mut tracker = EmptyBinsTracker::new();
        p.run(2000, &mut tracker);
        assert_eq!(tracker.violations_below_quarter(), 0);
        assert!(tracker.min_empty() >= 256);
    }

    #[test]
    fn all_in_one_drains_one_per_round() {
        let n = 64;
        let mut p = LoadProcess::new(Config::all_in_one(n, n as u32), Xoshiro256pp::seed_from(5));
        for t in 1..=10u32 {
            p.step();
            // Bin 0 loses one per round and receives at most the number of
            // movers; early on it can only shrink roughly one per round.
            assert!(p.config().loads()[0] >= n as u32 - 2 * t);
        }
    }

    #[test]
    fn convergence_from_all_in_one_is_linear() {
        let n = 256;
        let thr = LegitimacyThreshold::default();
        let mut p = LoadProcess::new(Config::all_in_one(n, n as u32), Xoshiro256pp::seed_from(6));
        let hit = p
            .run_until(20 * n as u64, |c| thr.is_legitimate(c))
            .expect("should converge");
        // Needs at least (n - bound) rounds to drain bin 0; should finish in O(n).
        assert!(hit >= (n as u64 - thr.bound(n) as u64));
        assert!(hit <= 3 * n as u64, "took {hit} rounds");
    }

    #[test]
    fn run_until_immediate_hit() {
        let mut p = LoadProcess::legitimate_start(16, 8);
        let hit = p.run_until(10, |_| true);
        assert_eq!(hit, Some(0));
    }

    #[test]
    fn run_until_gives_none_on_timeout() {
        let mut p = LoadProcess::legitimate_start(16, 9);
        assert_eq!(p.run_until(5, |c| c.max_load() > 1_000), None);
    }

    #[test]
    fn step_recording_matches_departures() {
        let mut p = LoadProcess::legitimate_start(32, 10);
        let mut dests = Vec::new();
        let d = p.step_recording(&mut dests);
        assert_eq!(d, 32);
        assert_eq!(dests.len(), 32);
        assert!(dests.iter().all(|&b| b < 32));
    }

    #[test]
    fn adversarial_reassign_conserves() {
        let mut p = LoadProcess::legitimate_start(16, 11);
        p.adversarial_reassign(Config::all_in_one(16, 16));
        assert_eq!(p.config().max_load(), 16);
        p.step();
        assert_eq!(p.config().total_balls(), 16);
    }

    #[test]
    #[should_panic(expected = "conserve")]
    fn adversarial_reassign_rejects_mass_change() {
        let mut p = LoadProcess::legitimate_start(16, 12);
        p.adversarial_reassign(Config::all_in_one(16, 17));
    }

    #[test]
    fn batched_step_is_bit_identical_to_scalar() {
        // The batched hot path must be indistinguishable from the scalar
        // path: same loads and same RNG consumption, round for round.
        for n in [1usize, 7, 64, 1000] {
            let mut scalar = LoadProcess::legitimate_start(n, 21);
            let mut batched = scalar.clone();
            for _ in 0..300 {
                let a = scalar.step();
                let b = batched.step_batched();
                assert_eq!(a, b);
                assert_eq!(scalar.config(), batched.config());
            }
        }
    }

    #[test]
    fn cached_sampler_keeps_rng_state_bit_identical_to_scalar() {
        // The cached `UniformSampler` must not change what the batched path
        // consumes: after any number of rounds the loads AND the raw RNG
        // state match the scalar path exactly.
        for n in [2usize, 33, 500] {
            let mut scalar = LoadProcess::legitimate_start(n, 77);
            let mut batched = scalar.clone();
            for _ in 0..250 {
                scalar.step();
                batched.step_batched();
            }
            assert_eq!(scalar.config, batched.config);
            assert_eq!(scalar.rng, batched.rng, "RNG state diverged at n={n}");
            assert_eq!(batched.sampler.bound(), n as u64, "sampler keyed on n");
        }
    }

    #[test]
    fn batched_and_scalar_steps_interleave() {
        // Because both paths consume the RNG identically, they can be mixed
        // freely mid-trajectory.
        let mut reference = LoadProcess::legitimate_start(128, 22);
        let mut mixed = reference.clone();
        for i in 0..200 {
            reference.step();
            if i % 2 == 0 {
                mixed.step_batched();
            } else {
                mixed.step();
            }
        }
        assert_eq!(reference.config(), mixed.config());
        assert_eq!(reference.round(), mixed.round());
    }

    #[test]
    fn run_silent_matches_scalar_stepping() {
        let mut a = LoadProcess::legitimate_start(256, 23);
        let mut b = a.clone();
        for _ in 0..500 {
            a.step();
        }
        b.run_silent(500);
        assert_eq!(a.config(), b.config());
        assert_eq!(b.round(), 500);
        assert_eq!(b.config().total_balls(), 256);
    }

    #[test]
    fn run_invokes_observer() {
        let mut p = LoadProcess::legitimate_start(64, 24);
        let mut tracker = MaxLoadTracker::new();
        p.run(100, &mut tracker);
        assert!(tracker.window_max() >= 1);
    }

    #[test]
    fn batched_from_all_in_one_conserves() {
        let mut p = LoadProcess::new(Config::all_in_one(64, 200), Xoshiro256pp::seed_from(25));
        p.run_silent(300);
        assert_eq!(p.config().total_balls(), 200);
    }

    #[test]
    fn snapshot_restore_resumes_bit_identically() {
        let mut p = LoadProcess::legitimate_start(64, 33);
        p.run_silent(37);
        let snap = Engine::snapshot(&p).expect("dense engine snapshots");
        let mut q = LoadProcess::from_snapshot(&snap).unwrap();
        assert_eq!(q.round(), 37);
        assert_eq!(q.config(), p.config());
        for _ in 0..100 {
            p.step();
            q.step();
        }
        assert_eq!(p.config(), q.config());
        assert_eq!(Engine::snapshot(&p), Engine::snapshot(&q));
    }

    #[test]
    fn from_snapshot_rejects_other_kinds() {
        let mut snap = LoadProcess::legitimate_start(8, 1).snapshot_state();
        snap.engine = "sparse".to_string();
        assert!(LoadProcess::from_snapshot(&snap).is_err());
    }

    #[test]
    fn place_and_depart_update_loads_and_mass() {
        let mut p = LoadProcess::legitimate_start(32, 44);
        assert!(Engine::supports_incremental(&p));
        let b = Engine::place(&mut p);
        assert!(b < 32);
        assert_eq!(p.balls(), 33);
        assert_eq!(p.config().loads()[b], 2);
        assert!(Engine::depart(&mut p, b));
        assert_eq!(p.balls(), 32);
        assert!(!Engine::depart(&mut p, 99), "out of range is a no-op");
        assert!(Engine::depart(&mut p, 0));
        assert!(!Engine::depart(&mut p, 0), "empty bin is a no-op");
        assert_eq!(p.balls(), 31);
        p.step();
        assert_eq!(p.config().total_balls(), 31);
    }

    #[test]
    fn place_consumes_the_engine_stream_deterministically() {
        let mut a = LoadProcess::legitimate_start(64, 9);
        let mut b = a.clone();
        for _ in 0..20 {
            assert_eq!(Engine::place(&mut a), Engine::place(&mut b));
        }
        a.run_silent(10);
        b.run_silent(10);
        assert_eq!(a.config(), b.config());
    }

    #[test]
    fn m_less_than_n_supported() {
        let mut rng = Xoshiro256pp::seed_from(13);
        let cfg = Config::random(&mut rng, 100, 50);
        let mut p = LoadProcess::new(cfg, rng);
        p.run_silent(100);
        assert_eq!(p.config().total_balls(), 50);
    }

    #[test]
    fn m_greater_than_n_supported() {
        let mut rng = Xoshiro256pp::seed_from(14);
        let cfg = Config::random(&mut rng, 100, 400);
        let mut p = LoadProcess::new(cfg, rng);
        p.run_silent(100);
        assert_eq!(p.config().total_balls(), 400);
    }

    fn zipf_process(n: usize, seed: u64, caps: Capacities) -> LoadProcess {
        let config = Config::one_per_bin(n);
        LoadProcess::with_weights(
            config,
            Xoshiro256pp::seed_from(seed),
            Weights::zipf(n as u64, 1.0, 50),
            caps,
        )
    }

    #[test]
    fn unit_weights_build_the_same_engine() {
        // Weights::Unit (and an explicit all-ones vector) must not build an
        // overlay: the weighted constructor returns the *same* engine as
        // `new`, trajectory, stream, and snapshot bytes included.
        let plain = LoadProcess::legitimate_start(64, 51);
        for weights in [Weights::Unit, Weights::Explicit(vec![1; 64])] {
            let mut w = LoadProcess::with_weights(
                Config::one_per_bin(64),
                Xoshiro256pp::seed_from(51),
                weights,
                Capacities::Unbounded,
            );
            assert!(w.weighted.is_none());
            assert!(!Engine::weighted(&w));
            let mut reference = plain.clone();
            for i in 0..120 {
                if i % 2 == 0 {
                    reference.step();
                    w.step();
                } else {
                    reference.step_batched();
                    w.step_batched();
                }
                assert_eq!(reference.config(), w.config());
            }
            assert_eq!(reference.rng, w.rng);
            assert_eq!(Engine::snapshot(&reference), Engine::snapshot(&w));
        }
    }

    #[test]
    fn weighted_trajectory_matches_unit_trajectory() {
        // Weight-obliviousness: the load trajectory and RNG stream of a
        // weighted process are bit-identical to the unit process from the
        // same seed — weights are a metric overlay, not a dynamic.
        let mut unit = LoadProcess::legitimate_start(128, 52);
        let mut zipf = zipf_process(128, 52, Capacities::Unbounded);
        assert!(Engine::weighted(&zipf));
        for i in 0..200 {
            if i % 2 == 0 {
                unit.step();
                zipf.step();
            } else {
                unit.step_batched();
                zipf.step_batched();
            }
            assert_eq!(unit.config(), zipf.config());
        }
        assert_eq!(unit.rng, zipf.rng, "weights must never touch the RNG");
        assert_eq!(Engine::balls(&zipf), 128);
        assert_eq!(
            Engine::total_weight(&zipf),
            Weights::zipf(128, 1.0, 50).total(128)
        );
    }

    #[test]
    fn weighted_scalar_and_batched_paths_are_bit_identical() {
        let mut scalar = zipf_process(96, 53, Capacities::Unbounded);
        let mut batched = scalar.clone();
        for _ in 0..150 {
            scalar.step();
            batched.step_batched();
            assert_eq!(scalar.config(), batched.config());
            assert_eq!(
                Engine::weighted_max_load(&scalar),
                Engine::weighted_max_load(&batched)
            );
        }
        assert_eq!(scalar.rng, batched.rng);
        assert_eq!(Engine::snapshot(&scalar), Engine::snapshot(&batched));
    }

    #[test]
    fn weighted_rounds_conserve_total_weight() {
        let mut p = zipf_process(64, 54, Capacities::Uniform(60));
        let total = Engine::total_weight(&p);
        for _ in 0..100 {
            p.step_batched();
            assert_eq!(Engine::total_weight(&p), total);
            assert!(Engine::weighted_max_load(&p) <= total);
        }
        // Weighted max load dominates the unweighted count whenever any
        // heavy ball exists (here ball 0 weighs 50).
        assert!(Engine::weighted_max_load(&p) >= u64::from(Engine::max_load(&p)));
    }

    #[test]
    fn weighted_snapshot_round_trips_bit_identically() {
        let mut p = zipf_process(48, 55, Capacities::Uniform(55));
        p.run_silent(31);
        let snap = Engine::snapshot(&p).expect("dense engine snapshots");
        assert_eq!(snap.version, SNAPSHOT_VERSION_WEIGHTED);
        let w = snap.weighted.as_ref().expect("weighted section");
        assert_eq!(w.cap_kind, "uniform");
        let mut q = LoadProcess::from_snapshot(&snap).unwrap();
        assert_eq!(Engine::total_weight(&q), Engine::total_weight(&p));
        assert_eq!(Engine::capacities(&q), Engine::capacities(&p));
        for _ in 0..60 {
            p.step_batched();
            q.step_batched();
        }
        assert_eq!(p.config(), q.config());
        assert_eq!(Engine::snapshot(&p), Engine::snapshot(&q));
    }

    #[test]
    fn capacity_only_process_snapshots_and_counts_violations() {
        // Unit weights + real capacities: no overlay, but the capacities
        // persist through snapshots and violations use the dense scan.
        let mut p = LoadProcess::with_weights(
            Config::all_in_one(16, 16),
            Xoshiro256pp::seed_from(56),
            Weights::Unit,
            Capacities::Uniform(3),
        );
        assert!(p.weighted.is_none());
        assert_eq!(Engine::capacity_violations(&p), 1, "bin 0 holds 16 > 3");
        let snap = Engine::snapshot(&p).expect("dense engine snapshots");
        assert_eq!(snap.version, SNAPSHOT_VERSION_WEIGHTED);
        assert!(snap.weighted.as_ref().is_some_and(|w| w.queues.is_empty()));
        let q = LoadProcess::from_snapshot(&snap).unwrap();
        assert_eq!(Engine::capacities(&q), &Capacities::Uniform(3));
        assert_eq!(Engine::capacity_violations(&q), 1);
        p.run_silent(200);
        assert_eq!(p.config().total_balls(), 16);
    }

    #[test]
    fn weighted_place_and_depart_track_the_overlay() {
        let mut p = zipf_process(32, 57, Capacities::Unbounded);
        let total = Engine::total_weight(&p);
        let b = Engine::place_weighted(&mut p, 40);
        assert_eq!(Engine::total_weight(&p), total + 40);
        assert_eq!(Engine::balls(&p), 33);
        assert!(Engine::weighted_bin_load(&p, b) >= 40);
        assert!(Engine::depart(&mut p, b), "bin just received a ball");
        assert_eq!(Engine::balls(&p), 32);
        p.step_batched();
        assert_eq!(p.config().total_balls(), 32);
    }

    #[test]
    #[should_panic(expected = "unit-weight")]
    fn unit_process_rejects_heavy_placements() {
        let mut p = LoadProcess::legitimate_start(8, 58);
        Engine::place_weighted(&mut p, 2);
    }

    #[test]
    #[should_panic(expected = "unit-path primitive")]
    fn weighted_process_rejects_step_recording() {
        let mut p = zipf_process(8, 59, Capacities::Unbounded);
        let mut dests = Vec::new();
        p.step_recording(&mut dests);
    }

    #[test]
    #[should_panic(expected = "invalid weights")]
    fn with_weights_rejects_wrong_arity() {
        LoadProcess::with_weights(
            Config::one_per_bin(4),
            Xoshiro256pp::seed_from(60),
            Weights::Explicit(vec![2, 3]),
            Capacities::Unbounded,
        );
    }
}
