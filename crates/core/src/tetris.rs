//! The Tetris process (Section 3, step (ii)) and its batched variant.
//!
//! Tetris is the analysis device that makes the original process tractable:
//! starting from a configuration with at least `n/4` empty bins, each round
//!
//! 1. every non-empty bin discards one ball ("throws it away"), and
//! 2. exactly `(3/4)·n` *new* balls are thrown, each independently u.a.r.
//!
//! Unlike the original process, the arrival counts at a fixed bin across
//! rounds are i.i.d. `Binomial((3/4)n, 1/n)` — mutually independent — so
//! standard Chernoff bounds apply (Lemmas 4–6). [`BatchedTetris`] is the
//! probabilistic generalization studied after this paper in
//! Berenbrink et al., PODC 2016 ("leaky bins", reference \[18\]): the number
//! of new balls per round is `Binomial(n, λ)`.

use crate::config::Config;
use crate::engine::Engine;
use crate::rng::Xoshiro256pp;
use crate::sampling::{binomial, throw_uniform};

/// The Tetris process with exactly `⌊(3/4)n⌋` arrivals per round.
///
/// ```
/// use rbb_core::prelude::*;
///
/// // Lemma 4: every bin empties at least once within 5n rounds, w.h.p.
/// let mut t = Tetris::new(Config::all_in_one(64, 64), Xoshiro256pp::seed_from(1));
/// let drained = t.run_until_all_emptied(5 * 64).expect("drains w.h.p.");
/// assert!(drained <= 5 * 64);
/// ```
#[derive(Debug, Clone)]
pub struct Tetris {
    config: Config,
    rng: Xoshiro256pp,
    round: u64,
    arrivals_per_round: usize,
}

impl Tetris {
    /// Creates the process. The paper's precondition (≥ `n/4` empty bins)
    /// is *not* enforced here: Lemma 4 is stated from any configuration.
    ///
    /// # RNG stream
    ///
    /// Takes ownership of `rng` as the process's stream; each round consumes
    /// one uniform destination draw per arriving ball (`floor(3n/4)` per
    /// round).
    pub fn new(config: Config, rng: Xoshiro256pp) -> Self {
        let n = config.n();
        Self {
            config,
            rng,
            round: 0,
            arrivals_per_round: (3 * n) / 4,
        }
    }

    /// Number of new balls thrown each round, `⌊(3/4)n⌋`.
    #[inline]
    pub fn arrivals_per_round(&self) -> usize {
        self.arrivals_per_round
    }

    #[inline]
    /// Current configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }

    #[inline]
    /// Current round.
    pub fn round(&self) -> u64 {
        self.round
    }

    #[inline]
    /// Number of bins.
    pub fn n(&self) -> usize {
        self.config.n()
    }

    /// Advances one round; returns the number of balls discarded.
    pub fn step(&mut self) -> usize {
        let loads = self.config.loads_mut();
        let mut discarded = 0usize;
        for l in loads.iter_mut() {
            if *l > 0 {
                *l -= 1;
                discarded += 1;
            }
        }
        throw_uniform(&mut self.rng, loads, self.arrivals_per_round);
        self.round += 1;
        discarded
    }

    /// Advances one round where the destinations of the first
    /// `reused.len() ≤ (3/4)n` new balls are dictated by `reused` (the
    /// Lemma-3 coupling: those balls shadow the original process's movers);
    /// the remaining `(3/4)n - reused.len()` balls are thrown u.a.r.
    ///
    /// Panics if `reused` is longer than the per-round arrival budget —
    /// that is the coupling's case (ii), which the caller must handle by
    /// calling plain [`Tetris::step`] instead.
    pub fn step_reusing(&mut self, reused: &[usize]) -> usize {
        assert!(
            reused.len() <= self.arrivals_per_round,
            "coupling case (ii): more movers than Tetris arrivals"
        );
        let loads = self.config.loads_mut();
        let mut discarded = 0usize;
        for l in loads.iter_mut() {
            if *l > 0 {
                *l -= 1;
                discarded += 1;
            }
        }
        for &d in reused {
            loads[d] += 1;
        }
        let fresh = self.arrivals_per_round - reused.len();
        throw_uniform(&mut self.rng, loads, fresh);
        self.round += 1;
        discarded
    }

    /// Runs until every bin has been empty at least once, or `max_rounds`
    /// elapse. Returns the first round by which all bins have emptied
    /// (Lemma 4 asserts this is ≤ `5n` w.h.p. from any start).
    pub fn run_until_all_emptied(&mut self, max_rounds: u64) -> Option<u64> {
        let n = self.config.n();
        let mut emptied = vec![false; n];
        let mut remaining = n;
        for (u, &l) in self.config.loads().iter().enumerate() {
            if l == 0 {
                emptied[u] = true;
                remaining -= 1;
            }
        }
        if remaining == 0 {
            return Some(self.round);
        }
        for _ in 0..max_rounds {
            self.step();
            for (u, &l) in self.config.loads().iter().enumerate() {
                if l == 0 && !emptied[u] {
                    emptied[u] = true;
                    remaining -= 1;
                }
            }
            if remaining == 0 {
                return Some(self.round);
            }
        }
        None
    }
}

/// The run family is provided by [`Engine`]. Tetris has no batched kernel
/// (arrival counts already amortize the sampling), so `step_batched`
/// defaults to the scalar step. Faults are unsupported: Tetris does not
/// conserve balls, so an arbitrary placement has no well-defined meaning.
impl Engine for Tetris {
    #[inline]
    fn step(&mut self) -> usize {
        Tetris::step(self)
    }

    #[inline]
    fn round(&self) -> u64 {
        self.round
    }

    #[inline]
    fn config(&self) -> &Config {
        &self.config
    }
}

/// Batched Tetris ("leaky bins", \[18\]): per round, every non-empty bin
/// discards one ball and `Binomial(n, λ)` new balls arrive u.a.r.
///
/// For `λ < 1` the expected drift at a busy bin is negative and the process
/// is stable; `λ = 3/4` recovers [`Tetris`] in expectation.
#[derive(Debug, Clone)]
pub struct BatchedTetris {
    config: Config,
    rng: Xoshiro256pp,
    round: u64,
    lambda: f64,
}

impl BatchedTetris {
    /// Creates the process with arrival rate `λ ∈ [0, 1]`.
    ///
    /// # RNG stream
    ///
    /// Takes ownership of `rng` as the process's stream; each round consumes
    /// one `Binomial(n, lambda)` arrival-count sample plus one uniform
    /// destination draw per arriving ball.
    pub fn new(config: Config, lambda: f64, rng: Xoshiro256pp) -> Self {
        assert!((0.0..=1.0).contains(&lambda), "λ must be in [0, 1]");
        Self {
            config,
            rng,
            round: 0,
            lambda,
        }
    }

    #[inline]
    /// Current configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }

    #[inline]
    /// Current round.
    pub fn round(&self) -> u64 {
        self.round
    }

    #[inline]
    /// The arrival rate λ.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Advances one round; returns `(discarded, arrived)` — the count-pair
    /// variant of [`Engine::step`] for callers that track the arrival rate.
    pub fn step_counts(&mut self) -> (usize, usize) {
        let n = self.config.n();
        let arrivals = binomial(&mut self.rng, n as u64, self.lambda) as usize;
        let loads = self.config.loads_mut();
        let mut discarded = 0usize;
        for l in loads.iter_mut() {
            if *l > 0 {
                *l -= 1;
                discarded += 1;
            }
        }
        throw_uniform(&mut self.rng, loads, arrivals);
        self.round += 1;
        (discarded, arrivals)
    }
}

/// The run family is provided by [`Engine`]; [`Engine::step`] returns the
/// discarded count (use [`BatchedTetris::step_counts`] to also observe the
/// random arrival count).
impl Engine for BatchedTetris {
    #[inline]
    fn step(&mut self) -> usize {
        self.step_counts().0
    }

    #[inline]
    fn round(&self) -> u64 {
        self.round
    }

    #[inline]
    fn config(&self) -> &Config {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MaxLoadTracker;

    #[test]
    fn arrivals_per_round_is_three_quarters() {
        let t = Tetris::new(Config::one_per_bin(100), Xoshiro256pp::seed_from(1));
        assert_eq!(t.arrivals_per_round(), 75);
        let t = Tetris::new(Config::one_per_bin(10), Xoshiro256pp::seed_from(1));
        assert_eq!(t.arrivals_per_round(), 7);
    }

    #[test]
    fn mass_is_not_conserved_but_bounded_in_expectation() {
        // Tetris discards up to n and adds exactly 3n/4: from the
        // all-singleton start mass drifts down towards equilibrium.
        let n = 400;
        let mut t = Tetris::new(Config::one_per_bin(n), Xoshiro256pp::seed_from(2));
        for _ in 0..200 {
            t.step();
        }
        let total = t.config().total_balls();
        // Equilibrium total is around n·(3/4)/(chance busy) ~ n; just check sane bounds.
        assert!(total > 0 && total < 3 * n as u64, "total {total}");
    }

    #[test]
    fn step_decrements_every_nonempty_bin() {
        let mut t = Tetris::new(
            Config::from_loads(vec![5, 0, 0, 0]),
            Xoshiro256pp::seed_from(3),
        );
        let discarded = t.step();
        assert_eq!(discarded, 1);
    }

    #[test]
    fn lemma4_all_bins_empty_within_5n() {
        // From the worst start (all n balls in one bin) every bin must have
        // been empty at least once within 5n rounds, w.h.p.
        let n = 256;
        let mut t = Tetris::new(Config::all_in_one(n, n as u32), Xoshiro256pp::seed_from(4));
        let hit = t.run_until_all_emptied(5 * n as u64);
        assert!(hit.is_some(), "not all bins emptied within 5n rounds");
    }

    #[test]
    fn run_until_all_emptied_immediate_when_all_empty() {
        let mut t = Tetris::new(Config::empty(16), Xoshiro256pp::seed_from(5));
        assert_eq!(t.run_until_all_emptied(10), Some(0));
    }

    #[test]
    fn lemma6_max_load_logarithmic() {
        let n = 512;
        let mut t = Tetris::new(Config::one_per_bin(n), Xoshiro256pp::seed_from(6));
        let mut tracker = MaxLoadTracker::new();
        t.run(4000, &mut tracker);
        let bound = (4.0 * (n as f64).ln()).ceil() as u32;
        assert!(
            tracker.window_max() <= bound,
            "Tetris max load {} > {}",
            tracker.window_max(),
            bound
        );
    }

    #[test]
    fn step_reusing_places_reused_destinations() {
        let mut t = Tetris::new(Config::empty(8), Xoshiro256pp::seed_from(7));
        // 8 bins -> 6 arrivals; reuse 3 of them deterministically.
        t.step_reusing(&[2, 2, 5]);
        let loads = t.config().loads();
        assert!(loads[2] >= 2);
        assert!(loads[5] >= 1);
        assert_eq!(t.config().total_balls(), 6);
    }

    #[test]
    #[should_panic(expected = "case (ii)")]
    fn step_reusing_rejects_overflow() {
        let mut t = Tetris::new(Config::empty(8), Xoshiro256pp::seed_from(8));
        let too_many = vec![0usize; 7]; // budget is 6
        t.step_reusing(&too_many);
    }

    #[test]
    fn batched_tetris_lambda_validated() {
        let c = Config::one_per_bin(8);
        let r = Xoshiro256pp::seed_from(9);
        let _ = BatchedTetris::new(c, 0.5, r);
    }

    #[test]
    #[should_panic(expected = "λ must be")]
    fn batched_tetris_rejects_bad_lambda() {
        BatchedTetris::new(Config::one_per_bin(8), 1.5, Xoshiro256pp::seed_from(10));
    }

    #[test]
    fn batched_tetris_subcritical_is_stable() {
        let n = 256;
        let mut t = BatchedTetris::new(Config::one_per_bin(n), 0.5, Xoshiro256pp::seed_from(11));
        let mut tracker = MaxLoadTracker::new();
        t.run(2000, &mut tracker);
        assert!(
            tracker.window_max() <= 20,
            "λ=0.5 batched Tetris max load {}",
            tracker.window_max()
        );
    }

    #[test]
    fn batched_tetris_arrival_rate_matches_lambda() {
        let n = 1000;
        let mut t = BatchedTetris::new(Config::one_per_bin(n), 0.75, Xoshiro256pp::seed_from(12));
        let rounds = 500;
        let mut arrived_total = 0usize;
        for _ in 0..rounds {
            let (_, a) = t.step_counts();
            arrived_total += a;
        }
        let per_round = arrived_total as f64 / rounds as f64;
        assert!((per_round - 750.0).abs() < 15.0, "rate {per_round}");
    }
}
