//! Exact distribution samplers used by the simulation engines.
//!
//! All samplers are *exact* (no normal approximations): experiments in this
//! workspace validate probabilistic bounds with explicit constants, so any
//! sampling bias would contaminate the measurements. The binomial sampler
//! uses geometric gap-skipping, whose expected cost is `O(np + 1)` — the
//! processes here only ever need binomials whose mean is at most `O(n)`,
//! matching the `O(n)`-per-round cost of the engines themselves.

use crate::rng::Xoshiro256pp;

/// Samples `Geometric(p)` on `{1, 2, 3, ...}`: the number of Bernoulli(`p`)
/// trials up to and including the first success.
///
/// Uses the inverse-CDF formula `ceil(ln(1-U) / ln(1-p))`, which is exact for
/// `p ∈ (0, 1)`. The denominator is computed as `(-p).ln_1p()`: the naive
/// `(1.0 - p).ln()` loses all of `p`'s precision below `~1e-9` (the subtraction
/// rounds) and is exactly `0.0` once `p < f64::EPSILON/2`, which turned every
/// sample into `inf → u64::MAX`. `ln_1p` keeps full relative precision down to
/// the smallest subnormal `p`.
#[inline]
///
/// # RNG stream
///
/// Consumes exactly one `next_f64` draw.
pub fn geometric(rng: &mut Xoshiro256pp, p: f64) -> u64 {
    debug_assert!(p > 0.0 && p <= 1.0, "geometric p must be in (0, 1]");
    if p >= 1.0 {
        return 1;
    }
    let u = 1.0 - rng.next_f64(); // in (0, 1]
    let g = (u.ln() / (-p).ln_1p()).ceil();
    if g < 1.0 {
        1
    } else {
        g as u64 // saturates at u64::MAX only when the true sample overflows
    }
}

/// Samples `Binomial(n, p)` exactly via geometric gap-skipping.
///
/// Successive success positions are spaced by i.i.d. geometric gaps, so we
/// count how many gaps fit in `n` trials. Expected running time is
/// `O(n·min(p, 1-p) + 1)`; the `p > 1/2` case is mirrored.
///
/// # RNG stream
///
/// Consumes one [`geometric`] draw per success counted — a data-dependent
/// count with expectation `n * min(p, 1-p) + 1`. The `p > 1/2` mirror
/// consumes exactly the draws of its complement.
pub fn binomial(rng: &mut Xoshiro256pp, n: u64, p: f64) -> u64 {
    debug_assert!((0.0..=1.0).contains(&p), "binomial p must be in [0, 1]");
    if n == 0 || p <= 0.0 {
        return 0;
    }
    if p >= 1.0 {
        return n;
    }
    if p > 0.5 {
        return n - binomial(rng, n, 1.0 - p);
    }
    let mut successes = 0u64;
    let mut position = 0u64;
    loop {
        let gap = geometric(rng, p);
        position = position.saturating_add(gap);
        if position > n {
            return successes;
        }
        successes += 1;
    }
}

/// Throws `d` balls independently and uniformly at random into `loads`,
/// incrementing the hit bins. This is the paper's re-assignment step: the
/// joint law is exactly `d` i.i.d. uniform bin choices (multinomial).
#[inline]
///
/// # RNG stream
///
/// Consumes exactly `d` `uniform_usize` draws, one per ball in throw order.
pub fn throw_uniform(rng: &mut Xoshiro256pp, loads: &mut [u32], d: usize) {
    let n = loads.len();
    debug_assert!(n > 0);
    for _ in 0..d {
        let b = rng.uniform_usize(n);
        debug_assert_ne!(loads[b], u32::MAX, "bin {b} load would overflow u32");
        loads[b] += 1;
    }
}

/// A uniform sampler over `[0, bound)` with the Lemire rejection threshold
/// (`2^64 mod bound`) precomputed once, so batch draws pay no per-draw
/// division or modulo.
///
/// Draw-for-draw compatible with [`Xoshiro256pp::next_below`]: both accept a
/// raw 64-bit output iff the low half of `x · bound` is at least the
/// threshold, so filling a batch through this sampler consumes the RNG
/// stream identically to a loop of scalar draws and produces bit-identical
/// values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UniformSampler {
    bound: u64,
    threshold: u64,
}

impl UniformSampler {
    /// Creates a sampler over `[0, bound)`. Panics if `bound` is zero.
    #[inline]
    pub fn new(bound: u64) -> Self {
        assert!(bound > 0, "UniformSampler bound must be positive");
        Self {
            bound,
            threshold: bound.wrapping_neg() % bound,
        }
    }

    /// The exclusive upper bound of the sampler.
    #[inline]
    pub fn bound(&self) -> u64 {
        self.bound
    }

    /// Draws one value in `[0, bound)` (multiply-shift, precomputed
    /// rejection threshold; usually a single multiplication).
    #[inline]
    ///
    /// # RNG stream
    ///
    /// Consumes one `next_u64` draw per rejection-loop iteration — almost
    /// always exactly one (the rejection probability is `bound / 2^64`).
    pub fn sample(&self, rng: &mut Xoshiro256pp) -> u64 {
        loop {
            let m = (rng.next_u64() as u128).wrapping_mul(self.bound as u128);
            if (m as u64) >= self.threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Fills `out` with i.i.d. draws in `[0, bound)`. Requires the bound to
    /// fit `u32` (bin indices are dense `u32`s throughout the workspace).
    #[inline]
    ///
    /// # RNG stream
    ///
    /// Consumes one [`Self::sample`] draw per slot, in slot order.
    pub fn fill_u32(&self, rng: &mut Xoshiro256pp, out: &mut [u32]) {
        debug_assert!(
            self.bound <= u32::MAX as u64 + 1,
            "fill_u32 bound {} exceeds u32 range",
            self.bound
        );
        for slot in out.iter_mut() {
            // rbb-lint: allow(lossy-cast, reason = "bound <= u32::MAX + 1 is asserted above, and draws are < bound")
            *slot = self.sample(rng) as u32;
        }
    }
}

/// Batched form of [`throw_uniform`]: draws all `d` destinations into the
/// reusable `dests` scratch buffer first (amortizing the Lemire threshold
/// over the whole batch), then scatters the increments. Consumes the RNG
/// identically to [`throw_uniform`], so the resulting `loads` and the
/// post-call RNG state are bit-identical to the scalar path.
///
/// The caller passes the [`UniformSampler`] (keyed on `loads.len()`) so the
/// per-round `2^64 mod n` threshold division is paid once at engine
/// construction, not once per round; the engines cache it next to their RNG.
#[inline]
///
/// # RNG stream
///
/// Bit-compatible with [`throw_uniform`]: consumes exactly `d` sampler
/// draws in the same order, leaving the RNG in the identical state.
pub fn throw_uniform_batched(
    sampler: &UniformSampler,
    rng: &mut Xoshiro256pp,
    loads: &mut [u32],
    d: usize,
    dests: &mut Vec<u32>,
) {
    let n = loads.len();
    debug_assert!(n > 0);
    debug_assert_eq!(
        sampler.bound(),
        n as u64,
        "cached sampler must be keyed on the bin count"
    );
    dests.resize(d, 0);
    sampler.fill_u32(rng, dests);
    for &b in dests.iter() {
        debug_assert_ne!(
            loads[b as usize],
            u32::MAX,
            "bin {b} load would overflow u32"
        );
        loads[b as usize] += 1;
    }
}

/// Throws `d` balls u.a.r. and records each destination in `dests` (cleared
/// first). Used by the Lemma-3 coupling, which must *reuse* the original
/// process's destination choices for the Tetris copy.
///
/// # RNG stream
///
/// Consumes exactly `d` `uniform_usize` draws, one per ball in throw
/// order — the same stream contract as [`throw_uniform`].
pub fn throw_uniform_recording(
    rng: &mut Xoshiro256pp,
    loads: &mut [u32],
    d: usize,
    dests: &mut Vec<usize>,
) {
    dests.clear();
    let n = loads.len();
    for _ in 0..d {
        let b = rng.uniform_usize(n);
        debug_assert_ne!(loads[b], u32::MAX, "bin {b} load would overflow u32");
        loads[b] += 1;
        dests.push(b);
    }
}

/// Samples a uniformly random composition: `m` balls into `n` bins, each ball
/// independent and uniform. Returns the load vector.
///
/// This is the *stream-compatible* initializer — one `uniform_usize(n)` draw
/// per ball, in ball order — which every published experiment number depends
/// on. [`random_assignment_multinomial`] is the large-`m` fast path with a
/// different (but equal-in-law) RNG stream; it must never silently replace
/// this function where seeds are pinned.
///
/// # RNG stream
///
/// Consumes exactly `m` `uniform_usize` draws, one per ball in ball order
/// — the stream every published experiment number pins.
pub fn random_assignment(rng: &mut Xoshiro256pp, n: usize, m: u64) -> Vec<u32> {
    let mut loads = vec![0u32; n];
    for _ in 0..m {
        let b = rng.uniform_usize(n);
        debug_assert_ne!(loads[b], u32::MAX, "bin {b} load would overflow u32");
        loads[b] += 1;
    }
    loads
}

/// Sorted occupied-bin entries of the same law as [`random_assignment`], but
/// consuming one `uniform_usize(n)` draw per ball exactly like the dense
/// version — the sparse engine's stream-compatible initializer. Returns
/// `(bin, load)` pairs sorted by bin index, only for non-empty bins, so
/// memory is `O(#occupied)` on top of the transient `O(m)` draw buffer and
/// no `O(n)` vector is ever allocated.
///
/// # RNG stream
///
/// Consumes exactly `m` `uniform_usize` draws — stream-compatible with
/// [`random_assignment`].
pub fn random_assignment_entries(rng: &mut Xoshiro256pp, n: usize, m: u64) -> Vec<(u32, u32)> {
    assert!(
        n <= u32::MAX as usize + 1,
        "bin count {n} exceeds the u32 index range"
    );
    // rbb-lint: allow(lossy-cast, reason = "n <= u32::MAX + 1 is asserted above; draws are < n")
    let mut draws: Vec<u32> = (0..m).map(|_| rng.uniform_usize(n) as u32).collect();
    draws.sort_unstable();
    let mut entries: Vec<(u32, u32)> = Vec::new();
    for b in draws {
        match entries.last_mut() {
            Some((bin, load)) if *bin == b => {
                debug_assert_ne!(*load, u32::MAX, "bin {b} load would overflow u32");
                *load += 1;
            }
            _ => entries.push((b, 1)),
        }
    }
    entries
}

/// Number of sub-blocks a range is split into per level of
/// [`random_assignment_multinomial`]; also the per-node ball count below
/// which the sampler falls back to direct per-ball throws within the range.
const MULTINOMIAL_FANOUT: u64 = 64;

/// Samples the same multinomial law as [`random_assignment`] — `m` i.i.d.
/// uniform balls over `n` bins — via recursive **binomial splitting**,
/// returning sorted `(bin, load)` entries for the occupied bins only.
///
/// The range `[0, n)` is cut into 64 (`MULTINOMIAL_FANOUT`) blocks and the
/// ball count is divided among them with a chain of exact conditional
/// binomials (`k_i ~ Binomial(remaining, |block_i| / |remaining range|)`);
/// blocks that receive at most 64 balls finish with direct per-ball
/// uniform throws inside the block. Expected cost is
/// `O(m · log_64 n)` geometric draws with **`O(#occupied)` memory** and a
/// sequential (sorted) output — no `O(n)` dense vector, no random-access
/// scatter. That makes it the initializer of choice for large-`m` starts in
/// the sparse regime (`n = 10^8` would otherwise pay a 400 MB load vector
/// before the first round).
///
/// **Not stream-compatible** with [`random_assignment`]: it consumes the RNG
/// through binomials instead of per-ball uniforms, so the two samplers agree
/// in law but not per seed. Published numbers pin the per-ball stream; this
/// fast path is opt-in (spec start kind `random-multinomial`).
///
/// # RNG stream
///
/// **Not stream-compatible** with [`random_assignment`]: consumes
/// binomial-splitting draws (a data-dependent count). Equal in law,
/// different per seed.
pub fn random_assignment_multinomial(rng: &mut Xoshiro256pp, n: usize, m: u64) -> Vec<(u32, u32)> {
    assert!(n > 0, "need at least one bin");
    assert!(
        n <= u32::MAX as usize + 1,
        "bin count {n} exceeds the u32 index range"
    );
    assert!(
        m <= u32::MAX as u64,
        "ball count {m} could overflow a u32 bin"
    );
    let mut entries = Vec::new();
    split_range(rng, 0, n as u64, m, &mut entries);
    entries
}

/// Recursive worker of [`random_assignment_multinomial`]: distributes `m`
/// balls u.a.r. over bins `[lo, lo + len)`, appending occupied entries in
/// bin order.
fn split_range(rng: &mut Xoshiro256pp, lo: u64, len: u64, m: u64, out: &mut Vec<(u32, u32)>) {
    if m == 0 {
        return;
    }
    if len == 1 {
        // rbb-lint: allow(lossy-cast, reason = "single-bin range: lo < n fits u32, and m <= u32::MAX is asserted at entry")
        out.push((lo as u32, m as u32));
        return;
    }
    if m <= MULTINOMIAL_FANOUT {
        // Few balls over a wide range: direct per-ball throws, then an
        // insertion-merge into the (sorted) output tail.
        let start = out.len();
        for _ in 0..m {
            let b = lo + rng.next_below(len);
            let pos = out[start..].partition_point(|&(bin, _)| (bin as u64) < b) + start;
            match out.get_mut(pos) {
                Some((bin, load)) if *bin as u64 == b => *load += 1,
                // rbb-lint: allow(lossy-cast, reason = "b < n <= u32::MAX + 1, asserted at entry")
                _ => out.insert(pos, (b as u32, 1)),
            }
        }
        return;
    }
    // Chain of conditional binomials over MULTINOMIAL_FANOUT blocks: given
    // the balls remaining after earlier blocks, each block's count is
    // Binomial(remaining, |block| / |remaining range|) — together an exact
    // multinomial split of m over the blocks.
    let blocks = MULTINOMIAL_FANOUT.min(len);
    let mut remaining_balls = m;
    let mut cursor = lo;
    let end = lo + len;
    for i in 0..blocks {
        // Even partition: block i covers [lo + i*len/blocks, lo + (i+1)*len/blocks).
        let block_end = lo + (i + 1) * len / blocks;
        let block_len = block_end - cursor;
        if block_len == 0 {
            continue;
        }
        let remaining_range = end - cursor;
        let k = if remaining_range == block_len {
            remaining_balls // last block takes whatever is left
        } else {
            binomial(
                rng,
                remaining_balls,
                block_len as f64 / remaining_range as f64,
            )
        };
        split_range(rng, cursor, block_len, k, out);
        remaining_balls -= k;
        cursor = block_end;
        if remaining_balls == 0 {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng(seed: u64) -> Xoshiro256pp {
        Xoshiro256pp::seed_from(seed)
    }

    #[test]
    fn geometric_mean_is_inverse_p() {
        let mut r = rng(1);
        let p = 0.2;
        let n = 100_000;
        let sum: u64 = (0..n).map(|_| geometric(&mut r, p)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn geometric_p_one_is_always_one() {
        let mut r = rng(2);
        for _ in 0..100 {
            assert_eq!(geometric(&mut r, 1.0), 1);
        }
    }

    #[test]
    fn geometric_minimum_is_one() {
        let mut r = rng(3);
        assert!((0..10_000).all(|_| geometric(&mut r, 0.9) >= 1));
    }

    #[test]
    fn binomial_edge_cases() {
        let mut r = rng(4);
        assert_eq!(binomial(&mut r, 0, 0.5), 0);
        assert_eq!(binomial(&mut r, 100, 0.0), 0);
        assert_eq!(binomial(&mut r, 100, 1.0), 100);
    }

    #[test]
    fn binomial_never_exceeds_n() {
        let mut r = rng(5);
        for _ in 0..10_000 {
            assert!(binomial(&mut r, 20, 0.7) <= 20);
        }
    }

    #[test]
    fn binomial_mean_and_variance_small_p() {
        // This is the paper's workhorse law: B((3/4)n, 1/n) with mean 3/4.
        let mut r = rng(6);
        let n = 768u64; // (3/4) * 1024
        let p = 1.0 / 1024.0;
        let trials = 200_000;
        let samples: Vec<u64> = (0..trials).map(|_| binomial(&mut r, n, p)).collect();
        let mean = samples.iter().sum::<u64>() as f64 / trials as f64;
        let var = samples
            .iter()
            .map(|&x| (x as f64 - mean).powi(2))
            .sum::<f64>()
            / trials as f64;
        assert!((mean - 0.75).abs() < 0.01, "mean {mean}");
        // Var = np(1-p) ≈ 0.7493
        assert!((var - 0.7493).abs() < 0.02, "var {var}");
    }

    #[test]
    fn binomial_mean_large_p_uses_mirror() {
        let mut r = rng(7);
        let trials = 50_000;
        let sum: u64 = (0..trials).map(|_| binomial(&mut r, 100, 0.9)).sum();
        let mean = sum as f64 / trials as f64;
        assert!((mean - 90.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn binomial_half_is_symmetric() {
        let mut r = rng(8);
        let trials = 100_000;
        let sum: u64 = (0..trials).map(|_| binomial(&mut r, 10, 0.5)).sum();
        let mean = sum as f64 / trials as f64;
        assert!((mean - 5.0).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn throw_uniform_conserves_and_is_uniform() {
        let mut r = rng(9);
        let mut loads = vec![0u32; 10];
        throw_uniform(&mut r, &mut loads, 100_000);
        assert_eq!(loads.iter().map(|&x| x as u64).sum::<u64>(), 100_000);
        for &l in &loads {
            // Each bin expects 10_000, sd ≈ 95.
            assert!((l as f64 - 10_000.0).abs() < 500.0, "load {l}");
        }
    }

    #[test]
    fn throw_recording_matches_loads() {
        let mut r = rng(10);
        let mut loads = vec![0u32; 8];
        let mut dests = Vec::new();
        throw_uniform_recording(&mut r, &mut loads, 50, &mut dests);
        assert_eq!(dests.len(), 50);
        let mut recount = vec![0u32; 8];
        for &d in &dests {
            recount[d] += 1;
        }
        assert_eq!(recount, loads);
    }

    #[test]
    fn uniform_sampler_matches_next_below_bit_for_bit() {
        // The batched sampler must consume the RNG stream exactly like the
        // scalar `next_below`, for any bound (including powers of two, where
        // the threshold is zero and no rejection ever happens).
        for bound in [1u64, 2, 3, 7, 64, 100, 1023, 1024, 1025] {
            let sampler = UniformSampler::new(bound);
            let mut a = rng(100 + bound);
            let mut b = a.clone();
            for _ in 0..10_000 {
                assert_eq!(sampler.sample(&mut a), b.next_below(bound));
            }
            // Post-run states coincide: identical stream consumption.
            assert_eq!(a, b);
        }
    }

    #[test]
    fn fill_u32_matches_scalar_draw_loop() {
        let sampler = UniformSampler::new(77);
        let mut a = rng(200);
        let mut b = a.clone();
        let mut batch = vec![0u32; 5000];
        sampler.fill_u32(&mut a, &mut batch);
        let scalar: Vec<u32> = (0..5000).map(|_| b.next_below(77) as u32).collect();
        assert_eq!(batch, scalar);
        assert_eq!(a, b);
    }

    #[test]
    fn throw_uniform_batched_is_bit_identical_to_scalar() {
        let mut a = rng(300);
        let mut b = a.clone();
        let mut loads_scalar = vec![0u32; 100];
        let mut loads_batched = vec![0u32; 100];
        let mut scratch = Vec::new();
        let sampler = UniformSampler::new(100);
        for d in [0usize, 1, 17, 1000] {
            throw_uniform(&mut a, &mut loads_scalar, d);
            throw_uniform_batched(&sampler, &mut b, &mut loads_batched, d, &mut scratch);
            assert_eq!(loads_scalar, loads_batched);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn throw_uniform_batched_reuses_scratch() {
        let mut r = rng(301);
        let mut loads = vec![0u32; 16];
        let mut scratch = Vec::with_capacity(64);
        let sampler = UniformSampler::new(16);
        throw_uniform_batched(&sampler, &mut r, &mut loads, 64, &mut scratch);
        let ptr = scratch.as_ptr();
        throw_uniform_batched(&sampler, &mut r, &mut loads, 32, &mut scratch);
        // Shrinking reuses the allocation; no per-round realloc.
        assert_eq!(scratch.as_ptr(), ptr);
        assert_eq!(scratch.len(), 32);
        assert_eq!(loads.iter().map(|&x| x as u64).sum::<u64>(), 96);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn uniform_sampler_rejects_zero_bound() {
        let _ = UniformSampler::new(0);
    }

    #[test]
    fn geometric_tiny_p_is_finite_and_unbiased() {
        // Regression: `(1.0 - p).ln()` is exactly 0.0 for p < f64::EPSILON/2,
        // which made every sample inf → u64::MAX. With ln_1p the samples are
        // finite and the mean tracks 1/p.
        let mut r = rng(40);
        let p = 1e-17;
        let k = 2000;
        let mut sum = 0.0f64;
        for _ in 0..k {
            let g = geometric(&mut r, p);
            assert!(g < u64::MAX, "sample saturated at u64::MAX");
            sum += g as f64;
        }
        let mean = sum / k as f64;
        // sd of the sample mean is (1/p)/sqrt(k) ≈ 2.2% of the mean.
        assert!(
            (mean * p - 1.0).abs() < 0.15,
            "mean {mean:e} vs expected {:e}",
            1.0 / p
        );
    }

    #[test]
    fn geometric_sub_1e9_p_has_full_precision() {
        // In the 1e-9..1e-16 band the old denominator silently lost up to
        // ~half its digits; the mean must track 1/p tightly.
        let mut r = rng(41);
        let p = 1e-12;
        let k = 5000;
        let sum: f64 = (0..k).map(|_| geometric(&mut r, p) as f64).sum();
        let mean = sum / k as f64;
        assert!((mean * p - 1.0).abs() < 0.1, "mean {mean:e}");
    }

    #[test]
    fn binomial_stays_sane_at_sparse_regime_n() {
        // B(n, 1/n) at n = 10^8 — the sparse-regime workhorse: mean 1,
        // cheap (O(np) = O(1) gaps), and never wildly large.
        let mut r = rng(42);
        let n = 100_000_000u64;
        let p = 1.0 / n as f64;
        let trials = 20_000;
        let mut sum = 0u64;
        for _ in 0..trials {
            let b = binomial(&mut r, n, p);
            assert!(b <= 20, "B(1e8, 1e-8) produced {b}");
            sum += b;
        }
        let mean = sum as f64 / trials as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn random_assignment_entries_match_dense_stream() {
        // Same RNG stream, same configuration — just the sparse encoding.
        for (n, m) in [(16usize, 16u64), (1000, 10), (64, 300), (8, 0)] {
            let mut a = rng(500 + n as u64);
            let mut b = a.clone();
            let dense = random_assignment(&mut a, n, m);
            let entries = random_assignment_entries(&mut b, n, m);
            assert_eq!(a, b, "RNG streams diverged");
            let mut rebuilt = vec![0u32; n];
            for &(bin, load) in &entries {
                assert!(load > 0, "empty entry");
                rebuilt[bin as usize] = load;
            }
            assert_eq!(rebuilt, dense);
            assert!(entries.windows(2).all(|w| w[0].0 < w[1].0), "sorted unique");
        }
    }

    #[test]
    fn multinomial_assignment_conserves_and_sorts() {
        let mut r = rng(43);
        for (n, m) in [
            (1usize, 100u64),
            (7, 0),
            (1000, 1),
            (100_000, 4096),
            (64, 10_000),
        ] {
            let entries = random_assignment_multinomial(&mut r, n, m);
            let total: u64 = entries.iter().map(|&(_, l)| l as u64).sum();
            assert_eq!(total, m, "mass violated at n={n} m={m}");
            assert!(entries.iter().all(|&(b, l)| (b as usize) < n && l > 0));
            assert!(
                entries.windows(2).all(|w| w[0].0 < w[1].0),
                "entries must be sorted and unique"
            );
        }
    }

    #[test]
    fn multinomial_assignment_is_uniform_in_law() {
        // Small n, large m: per-bin counts must match the multinomial
        // marginals (mean m/n, sd ~ sqrt(m/n)).
        let mut r = rng(44);
        let (n, m) = (10usize, 100_000u64);
        let mut totals = vec![0u64; n];
        for _ in 0..10 {
            for (b, l) in random_assignment_multinomial(&mut r, n, m) {
                totals[b as usize] += l as u64;
            }
        }
        let expect = 10.0 * m as f64 / n as f64; // 100_000 per bin, sd ≈ 300
        for (b, &t) in totals.iter().enumerate() {
            assert!(
                (t as f64 - expect).abs() < 5.0 * 300.0,
                "bin {b}: {t} vs {expect}"
            );
        }
    }

    #[test]
    fn multinomial_assignment_sparse_regime_is_cheap_and_sparse() {
        // n = 10^8, m = 10^4: no dense vector, #occupied ≈ m, all loads tiny.
        let mut r = rng(45);
        let entries = random_assignment_multinomial(&mut r, 100_000_000, 10_000);
        let total: u64 = entries.iter().map(|&(_, l)| l as u64).sum();
        assert_eq!(total, 10_000);
        assert!(entries.len() > 9_900, "collisions are rare at this density");
        assert!(entries.iter().all(|&(_, l)| l <= 4));
    }

    #[test]
    fn random_assignment_conserves_mass() {
        let mut r = rng(11);
        let loads = random_assignment(&mut r, 64, 64);
        assert_eq!(loads.len(), 64);
        assert_eq!(loads.iter().map(|&x| x as u64).sum::<u64>(), 64);
    }

    #[test]
    fn random_assignment_zero_balls() {
        let mut r = rng(12);
        let loads = random_assignment(&mut r, 16, 0);
        assert!(loads.iter().all(|&x| x == 0));
    }
}
