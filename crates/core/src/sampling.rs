//! Exact distribution samplers used by the simulation engines.
//!
//! All samplers are *exact* (no normal approximations): experiments in this
//! workspace validate probabilistic bounds with explicit constants, so any
//! sampling bias would contaminate the measurements. The binomial sampler
//! uses geometric gap-skipping, whose expected cost is `O(np + 1)` — the
//! processes here only ever need binomials whose mean is at most `O(n)`,
//! matching the `O(n)`-per-round cost of the engines themselves.

use crate::rng::Xoshiro256pp;

/// Samples `Geometric(p)` on `{1, 2, 3, ...}`: the number of Bernoulli(`p`)
/// trials up to and including the first success.
///
/// Uses the inverse-CDF formula `ceil(ln(1-U) / ln(1-p))`, which is exact for
/// `p ∈ (0, 1)`.
#[inline]
pub fn geometric(rng: &mut Xoshiro256pp, p: f64) -> u64 {
    debug_assert!(p > 0.0 && p <= 1.0, "geometric p must be in (0, 1]");
    if p >= 1.0 {
        return 1;
    }
    let u = 1.0 - rng.next_f64(); // in (0, 1]
    let g = (u.ln() / (1.0 - p).ln()).ceil();
    if g < 1.0 {
        1
    } else {
        g as u64
    }
}

/// Samples `Binomial(n, p)` exactly via geometric gap-skipping.
///
/// Successive success positions are spaced by i.i.d. geometric gaps, so we
/// count how many gaps fit in `n` trials. Expected running time is
/// `O(n·min(p, 1-p) + 1)`; the `p > 1/2` case is mirrored.
pub fn binomial(rng: &mut Xoshiro256pp, n: u64, p: f64) -> u64 {
    debug_assert!((0.0..=1.0).contains(&p), "binomial p must be in [0, 1]");
    if n == 0 || p <= 0.0 {
        return 0;
    }
    if p >= 1.0 {
        return n;
    }
    if p > 0.5 {
        return n - binomial(rng, n, 1.0 - p);
    }
    let mut successes = 0u64;
    let mut position = 0u64;
    loop {
        let gap = geometric(rng, p);
        position = position.saturating_add(gap);
        if position > n {
            return successes;
        }
        successes += 1;
    }
}

/// Throws `d` balls independently and uniformly at random into `loads`,
/// incrementing the hit bins. This is the paper's re-assignment step: the
/// joint law is exactly `d` i.i.d. uniform bin choices (multinomial).
#[inline]
pub fn throw_uniform(rng: &mut Xoshiro256pp, loads: &mut [u32], d: usize) {
    let n = loads.len();
    debug_assert!(n > 0);
    for _ in 0..d {
        let b = rng.uniform_usize(n);
        loads[b] += 1;
    }
}

/// Throws `d` balls u.a.r. and records each destination in `dests` (cleared
/// first). Used by the Lemma-3 coupling, which must *reuse* the original
/// process's destination choices for the Tetris copy.
pub fn throw_uniform_recording(
    rng: &mut Xoshiro256pp,
    loads: &mut [u32],
    d: usize,
    dests: &mut Vec<usize>,
) {
    dests.clear();
    let n = loads.len();
    for _ in 0..d {
        let b = rng.uniform_usize(n);
        loads[b] += 1;
        dests.push(b);
    }
}

/// Samples a uniformly random composition: `m` balls into `n` bins, each ball
/// independent and uniform. Returns the load vector.
pub fn random_assignment(rng: &mut Xoshiro256pp, n: usize, m: u64) -> Vec<u32> {
    let mut loads = vec![0u32; n];
    for _ in 0..m {
        let b = rng.uniform_usize(n);
        loads[b] += 1;
    }
    loads
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng(seed: u64) -> Xoshiro256pp {
        Xoshiro256pp::seed_from(seed)
    }

    #[test]
    fn geometric_mean_is_inverse_p() {
        let mut r = rng(1);
        let p = 0.2;
        let n = 100_000;
        let sum: u64 = (0..n).map(|_| geometric(&mut r, p)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn geometric_p_one_is_always_one() {
        let mut r = rng(2);
        for _ in 0..100 {
            assert_eq!(geometric(&mut r, 1.0), 1);
        }
    }

    #[test]
    fn geometric_minimum_is_one() {
        let mut r = rng(3);
        assert!((0..10_000).all(|_| geometric(&mut r, 0.9) >= 1));
    }

    #[test]
    fn binomial_edge_cases() {
        let mut r = rng(4);
        assert_eq!(binomial(&mut r, 0, 0.5), 0);
        assert_eq!(binomial(&mut r, 100, 0.0), 0);
        assert_eq!(binomial(&mut r, 100, 1.0), 100);
    }

    #[test]
    fn binomial_never_exceeds_n() {
        let mut r = rng(5);
        for _ in 0..10_000 {
            assert!(binomial(&mut r, 20, 0.7) <= 20);
        }
    }

    #[test]
    fn binomial_mean_and_variance_small_p() {
        // This is the paper's workhorse law: B((3/4)n, 1/n) with mean 3/4.
        let mut r = rng(6);
        let n = 768u64; // (3/4) * 1024
        let p = 1.0 / 1024.0;
        let trials = 200_000;
        let samples: Vec<u64> = (0..trials).map(|_| binomial(&mut r, n, p)).collect();
        let mean = samples.iter().sum::<u64>() as f64 / trials as f64;
        let var = samples
            .iter()
            .map(|&x| (x as f64 - mean).powi(2))
            .sum::<f64>()
            / trials as f64;
        assert!((mean - 0.75).abs() < 0.01, "mean {mean}");
        // Var = np(1-p) ≈ 0.7493
        assert!((var - 0.7493).abs() < 0.02, "var {var}");
    }

    #[test]
    fn binomial_mean_large_p_uses_mirror() {
        let mut r = rng(7);
        let trials = 50_000;
        let sum: u64 = (0..trials).map(|_| binomial(&mut r, 100, 0.9)).sum();
        let mean = sum as f64 / trials as f64;
        assert!((mean - 90.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn binomial_half_is_symmetric() {
        let mut r = rng(8);
        let trials = 100_000;
        let sum: u64 = (0..trials).map(|_| binomial(&mut r, 10, 0.5)).sum();
        let mean = sum as f64 / trials as f64;
        assert!((mean - 5.0).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn throw_uniform_conserves_and_is_uniform() {
        let mut r = rng(9);
        let mut loads = vec![0u32; 10];
        throw_uniform(&mut r, &mut loads, 100_000);
        assert_eq!(loads.iter().map(|&x| x as u64).sum::<u64>(), 100_000);
        for &l in &loads {
            // Each bin expects 10_000, sd ≈ 95.
            assert!((l as f64 - 10_000.0).abs() < 500.0, "load {l}");
        }
    }

    #[test]
    fn throw_recording_matches_loads() {
        let mut r = rng(10);
        let mut loads = vec![0u32; 8];
        let mut dests = Vec::new();
        throw_uniform_recording(&mut r, &mut loads, 50, &mut dests);
        assert_eq!(dests.len(), 50);
        let mut recount = vec![0u32; 8];
        for &d in &dests {
            recount[d] += 1;
        }
        assert_eq!(recount, loads);
    }

    #[test]
    fn random_assignment_conserves_mass() {
        let mut r = rng(11);
        let loads = random_assignment(&mut r, 64, 64);
        assert_eq!(loads.len(), 64);
        assert_eq!(loads.iter().map(|&x| x as u64).sum::<u64>(), 64);
    }

    #[test]
    fn random_assignment_zero_balls() {
        let mut r = rng(12);
        let loads = random_assignment(&mut r, 16, 0);
        assert!(loads.iter().all(|&x| x == 0));
    }
}
