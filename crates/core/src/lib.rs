//! # rbb-core — Self-stabilizing repeated balls-into-bins
//!
//! Faithful implementation of the process studied in
//!
//! > L. Becchetti, A. Clementi, E. Natale, F. Pasquale, G. Posta.
//! > *Self-stabilizing repeated balls-into-bins.* SPAA 2015;
//! > Distributed Computing 32:59–68, 2019.
//!
//! `n` balls start in `n` bins in an arbitrary configuration. Every round,
//! each non-empty bin releases one ball (FIFO/LIFO/random — the load law is
//! oblivious to the choice) and the ball is re-assigned to a bin chosen
//! uniformly at random. The paper proves the process is **self-stabilizing**:
//! from any configuration it reaches a configuration with maximum load
//! `O(log n)` within `O(n)` rounds w.h.p., and then keeps the maximum load
//! `O(log n)` over any polynomially long window w.h.p.
//!
//! ## Crate map
//!
//! * [`process`] — the load-only engine (the paper's `Q(t)` dynamics).
//! * [`sparse`] — the sparse occupancy engine for the `m ≪ n` regime:
//!   bit-identical trajectories at `O(#non-empty bins)` per round and
//!   `O(m)` memory.
//! * [`sharded`] — the sharded single-trial engine for the large-`n` dense
//!   regime: bins partitioned into fixed per-shard columns with private RNG
//!   streams, bit-identical for a fixed shard count at any thread count.
//! * [`ball_process`] — the ball-identity engine (per-ball progress, delays,
//!   per-move hooks for cover-time tracking).
//! * [`tetris`] — the Tetris majorant process of Section 3 and its
//!   batched/"leaky bins" generalization.
//! * [`coupling`] — the Lemma-3 joint construction with per-round domination
//!   checking.
//! * [`markov`] — the Lemma-5 drift chain `Z_t` and its Chernoff tail.
//! * [`config`] — load configurations, legitimacy, initial-state builders.
//! * [`det_hash`] — the deterministic hasher every result-affecting map
//!   must use (enforced by `rbb-lint`).
//! * [`strategy`] — queue-selection strategies.
//! * [`metrics`] — streaming round observers (max load, empty bins,
//!   legitimacy, trajectories).
//! * [`adversary`] — the Section-4.1 fault model.
//! * [`arrivals`] / [`phases`] / [`mixing`] — analysis instrumentation:
//!   per-bin arrival series (the Appendix-B variables at scale), busy-period
//!   decomposition (the Lemma-6 phase structure), and exact/empirical
//!   mixing measurements.
//! * [`snapshot`] — serializable bit-exact engine snapshots (loads + RNG
//!   stream states + round counter) with validated restore, for the three
//!   load engines.
//! * [`weights`] — weighted balls and capacity-constrained bins: a metric
//!   overlay over the weight-oblivious dynamics, bit-identical to the unit
//!   process when all weights are 1.
//! * [`exact`] — exact finite-chain analysis for small `n` (ground truth for
//!   the engines) and the Appendix-B counterexample.
//! * [`rng`] / [`sampling`] — deterministic PRNG and exact samplers.
//!
//! ## Quick example
//!
//! ```
//! use rbb_core::prelude::*;
//!
//! // Start from the worst configuration: all 128 balls in one bin.
//! let config = Config::all_in_one(128, 128);
//! let mut process = LoadProcess::new(config, Xoshiro256pp::seed_from(7));
//! let threshold = LegitimacyThreshold::default();
//!
//! // Theorem 1(b): a legitimate configuration is reached within O(n) rounds.
//! let round = process
//!     .run_until(10 * 128, |c| threshold.is_legitimate(c))
//!     .expect("converges w.h.p.");
//! assert!(round <= 3 * 128);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod arrivals;
pub mod ball_process;
pub mod config;
pub mod coupling;
pub mod det_hash;
pub mod engine;
pub mod exact;
pub mod markov;
pub mod metrics;
pub mod mixing;
pub mod phases;
pub mod process;
pub mod rng;
pub mod sampling;
pub mod sharded;
pub mod snapshot;
pub mod sparse;
pub mod strategy;
pub mod tetris;
pub mod weights;

/// The most commonly used items, re-exported.
pub mod prelude {
    pub use crate::adversary::{Adversary, FaultSchedule};
    pub use crate::arrivals::ArrivalTracker;
    pub use crate::ball_process::{BallId, BallProcess, BallStats};
    pub use crate::config::{Config, LegitimacyThreshold};
    pub use crate::coupling::{CoupledRun, CouplingReport};
    pub use crate::det_hash::{DetHashMap, DetHashSet};
    pub use crate::engine::Engine;
    pub use crate::markov::ZChain;
    pub use crate::metrics::{
        CapacityTracker, EmptyBinsTracker, LegitimacyTracker, MaxLoadTracker, NullObserver,
        ObserverStack, RoundObserver, TrajectoryRecorder, WeightedLoadTracker,
    };
    pub use crate::phases::PhaseTracker;
    pub use crate::process::LoadProcess;
    pub use crate::rng::{SplitMix64, Xoshiro256pp};
    pub use crate::sharded::ShardedLoadProcess;
    pub use crate::snapshot::{SnapshotError, SnapshotState};
    pub use crate::sparse::SparseLoadProcess;
    pub use crate::strategy::QueueStrategy;
    pub use crate::tetris::{BatchedTetris, Tetris};
    pub use crate::weights::{Capacities, WeightOverlay, Weights};
}
