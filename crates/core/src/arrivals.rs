//! Per-bin arrival tracking: the random variables `Z_u^{(t)}` of the paper.
//!
//! The paper's step (ii) hinges on the fact that the arrival counts
//! `{Z_u^{(t)}}_t` at a fixed bin are *not* independent across rounds and
//! not even negatively associated (Appendix B proves positive association
//! for `n = 2`). [`ArrivalTracker`] reconstructs the arrival series of a
//! fixed bin from consecutive configurations via the update rule
//! `arrivals_u(t) = Q_u(t) − max(Q_u(t−1) − 1, 0)`, enabling the
//! correlation measurement at any scale (experiment E22).

use crate::config::Config;
use crate::metrics::RoundObserver;

/// Records the per-round arrival counts at one tracked bin.
#[derive(Debug, Clone)]
pub struct ArrivalTracker {
    bin: usize,
    prev_load: Option<u32>,
    arrivals: Vec<u32>,
}

impl ArrivalTracker {
    /// Tracks arrivals at `bin`. The first observed round is used only to
    /// initialize the previous load unless the initial configuration is
    /// supplied via [`ArrivalTracker::with_initial`].
    pub fn new(bin: usize) -> Self {
        Self {
            bin,
            prev_load: None,
            arrivals: Vec::new(),
        }
    }

    /// Tracks arrivals at `bin` given the load before the first observed
    /// round, so that round 1's arrivals are captured too.
    pub fn with_initial(bin: usize, initial: &Config) -> Self {
        Self {
            bin,
            prev_load: Some(initial.loads()[bin]),
            arrivals: Vec::new(),
        }
    }

    /// The tracked bin index.
    pub fn bin(&self) -> usize {
        self.bin
    }

    /// The recorded arrival series (one entry per observed round after the
    /// first, or per round including the first when initialized with the
    /// starting configuration).
    pub fn arrivals(&self) -> &[u32] {
        &self.arrivals
    }

    /// The series as `f64` (for the correlation machinery).
    pub fn series_f64(&self) -> Vec<f64> {
        self.arrivals.iter().map(|&a| a as f64).collect()
    }

    /// Fraction of observed rounds with zero arrivals (the Appendix-B
    /// event `X_t = 0`).
    pub fn zero_fraction(&self) -> f64 {
        if self.arrivals.is_empty() {
            return 0.0;
        }
        self.arrivals.iter().filter(|&&a| a == 0).count() as f64 / self.arrivals.len() as f64
    }

    /// Empirical `P(X_t = 0, X_{t+1} = 0)` over consecutive pairs.
    pub fn zero_pair_fraction(&self) -> f64 {
        if self.arrivals.len() < 2 {
            return 0.0;
        }
        let pairs = self
            .arrivals
            .windows(2)
            .filter(|w| w[0] == 0 && w[1] == 0)
            .count();
        pairs as f64 / (self.arrivals.len() - 1) as f64
    }
}

impl RoundObserver for ArrivalTracker {
    fn observe(&mut self, _round: u64, config: &Config) {
        let load = config.loads()[self.bin];
        if let Some(prev) = self.prev_load {
            self.arrivals.push(load - prev.saturating_sub(1));
        }
        self.prev_load = Some(load);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::process::LoadProcess;

    #[test]
    fn reconstructs_arrivals_exactly() {
        // Feed a hand-built sequence of configurations.
        let mut t = ArrivalTracker::with_initial(0, &Config::from_loads(vec![2, 0]));
        // Round 1: bin 0 had 2 → releases 1 → gets a arrivals: new load = 1 + a.
        t.observe(1, &Config::from_loads(vec![3, 0])); // a = 2
        t.observe(2, &Config::from_loads(vec![2, 1])); // a = 0
        t.observe(3, &Config::from_loads(vec![2, 1])); // a = 1
        assert_eq!(t.arrivals(), &[2, 0, 1]);
    }

    #[test]
    fn without_initial_skips_first_round() {
        let mut t = ArrivalTracker::new(1);
        t.observe(1, &Config::from_loads(vec![1, 1]));
        assert!(t.arrivals().is_empty());
        t.observe(2, &Config::from_loads(vec![1, 1]));
        assert_eq!(t.arrivals().len(), 1);
    }

    #[test]
    fn mean_arrival_rate_matches_busy_fraction() {
        // At equilibrium, E[arrivals at a bin] = (#non-empty)/n ≈ 0.586
        // (the measured busy fraction; above-1 backlogs keep it below 1−1/e...
        // see E03: empty fraction ≈ 0.414).
        let n = 512;
        let mut p = LoadProcess::legitimate_start(n, 3);
        p.run_silent(2000);
        let mut t = ArrivalTracker::with_initial(7, p.config());
        p.run(20_000, &mut t);
        let mean: f64 = t.series_f64().iter().sum::<f64>() / t.arrivals().len() as f64;
        assert!((mean - 0.586).abs() < 0.03, "mean arrival rate {mean}");
    }

    #[test]
    fn zero_fraction_matches_poisson_limit() {
        // Arrivals at a bin ≈ Binomial(h, 1/n) ≈ Poisson(0.586):
        // P(0) ≈ e^{-0.586} ≈ 0.557.
        let n = 512;
        let mut p = LoadProcess::legitimate_start(n, 4);
        p.run_silent(2000);
        let mut t = ArrivalTracker::with_initial(11, p.config());
        p.run(20_000, &mut t);
        assert!(
            (t.zero_fraction() - 0.557).abs() < 0.03,
            "{}",
            t.zero_fraction()
        );
    }

    #[test]
    fn zero_pair_fraction_at_least_square_of_zero_fraction() {
        // The Appendix-B phenomenon: positive association makes
        // P(0,0) ≥ P(0)² (up to noise). Check with generous tolerance.
        let n = 256;
        let mut p = LoadProcess::legitimate_start(n, 5);
        p.run_silent(2000);
        let mut t = ArrivalTracker::with_initial(3, p.config());
        p.run(50_000, &mut t);
        let p0 = t.zero_fraction();
        let p00 = t.zero_pair_fraction();
        assert!(p00 >= p0 * p0 - 0.01, "p00 {p00} vs p0² {}", p0 * p0);
    }

    #[test]
    fn series_f64_matches_raw() {
        let mut t = ArrivalTracker::with_initial(0, &Config::from_loads(vec![1]));
        t.observe(1, &Config::from_loads(vec![1]));
        assert_eq!(t.series_f64(), vec![1.0]);
    }
}
