//! Deterministic hashing for result-affecting collections.
//!
//! `std::collections::HashMap`'s default `RandomState` is seeded per
//! process, so map layout — and therefore iteration order, debug output,
//! and any float accumulation folded in map order — differs between runs.
//! That silently breaks the workspace's central guarantee: bit-identical
//! trajectories and reports from a fixed master seed. Every map or set
//! whose contents can influence a result must therefore use the
//! deterministic hasher defined here (enforced by `rbb-lint` rule
//! `det-map` and by `clippy.toml`'s disallowed-types list).
//!
//! [`DetHasher`] runs each written word through the SplitMix64 finalizer
//! (full avalanche in ~5 ALU ops), folding successive writes into the
//! running state so composite keys (tuples, `Vec<u32>` configurations)
//! hash well. It is several times faster than SipHash on small integer
//! keys. The trade-off is documented and deliberate: there is no
//! adversarial-key defense (HashDoS), which is fine because every key in
//! this workspace is an internally generated bin index, edge, or
//! configuration — never attacker-controlled input.
//!
//! Iteration order of a `DetHashMap` is still *arbitrary* (it depends on
//! hash values, capacity, and insertion history) — it is merely
//! reproducible across runs and platforms for an identical operation
//! sequence. Code must not let map order reach results unless the fold is
//! order-independent; `rbb-lint` rule `unordered-iter` polices that.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// SplitMix64 finalizer: the avalanche mix used for every written word.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic, dependency-free hasher (see the module docs).
#[derive(Debug, Default, Clone, Copy)]
pub struct DetHasher {
    hash: u64,
}

impl DetHasher {
    #[inline]
    fn combine(&mut self, word: u64) {
        self.hash = mix64(self.hash ^ word);
    }
}

impl Hasher for DetHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Byte-stream fallback (str keys, #[derive(Hash)] structs): FNV-1a
        // into the running word, then one avalanche round.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in bytes {
            h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
        self.combine(h);
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.combine(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.combine(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.combine(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.combine(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.combine(v as u64);
    }
}

/// The `BuildHasher` for [`DetHasher`]-keyed collections.
pub type BuildDetHasher = BuildHasherDefault<DetHasher>;

/// Drop-in deterministic replacement for `std::collections::HashMap`.
pub type DetHashMap<K, V> = HashMap<K, V, BuildDetHasher>;

/// Drop-in deterministic replacement for `std::collections::HashSet`.
pub type DetHashSet<K> = HashSet<K, BuildDetHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_u32_keys_are_deterministic_and_distinct() {
        let mut a = DetHasher::default();
        let mut b = DetHasher::default();
        a.write_u32(12345);
        b.write_u32(12345);
        assert_eq!(a.finish(), b.finish());
        let mut c = DetHasher::default();
        c.write_u32(12346);
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn successive_writes_fold_not_overwrite() {
        // (a, b) must differ from (b, a) and from b alone.
        let mut ab = DetHasher::default();
        ab.write_u32(1);
        ab.write_u32(2);
        let mut ba = DetHasher::default();
        ba.write_u32(2);
        ba.write_u32(1);
        let mut b = DetHasher::default();
        b.write_u32(2);
        assert_ne!(ab.finish(), ba.finish());
        assert_ne!(ab.finish(), b.finish());
    }

    #[test]
    fn composite_keys_hash_via_std_hash_impls() {
        use std::hash::{BuildHasher, Hash};
        let s = BuildDetHasher::default();
        let h = |k: &dyn Fn(&mut DetHasher)| {
            let mut hasher = s.build_hasher();
            k(&mut hasher);
            hasher.finish()
        };
        let tuple_a = h(&|hr| (3u32, 7u32).hash(hr));
        let tuple_b = h(&|hr| (7u32, 3u32).hash(hr));
        assert_ne!(tuple_a, tuple_b);
        let vec_a = h(&|hr| vec![1u32, 2, 3].hash(hr));
        let vec_b = h(&|hr| vec![1u32, 2].hash(hr));
        assert_ne!(vec_a, vec_b);
    }

    #[test]
    fn map_iteration_order_is_reproducible() {
        let build = || {
            let mut m: DetHashMap<u32, u32> = DetHashMap::default();
            for i in 0..1000u32 {
                m.insert(i.wrapping_mul(2654435761), i);
            }
            m.iter().map(|(&k, &v)| (k, v)).collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn u32_keys_spread_over_buckets() {
        // Sanity: sequential keys avalanche (no accidental identity hash).
        let mut hashes: Vec<u64> = (0..64u32)
            .map(|k| {
                let mut hr = DetHasher::default();
                hr.write_u32(k);
                hr.finish()
            })
            .collect();
        hashes.sort_unstable();
        hashes.dedup();
        assert_eq!(hashes.len(), 64);
        // Low 6 bits (bucket selector at capacity 64) hit many values.
        let mut low: Vec<u64> = (0..64u32)
            .map(|k| {
                let mut hr = DetHasher::default();
                hr.write_u32(k);
                hr.finish() & 63
            })
            .collect();
        low.sort_unstable();
        low.dedup();
        assert!(low.len() > 32, "only {} distinct buckets", low.len());
    }
}
