//! The adversarial model of Section 4.1.
//!
//! In a *faulty round* the adversary reassigns all balls to bins arbitrarily
//! (it may not create or destroy balls). The paper shows that if faults occur
//! with frequency at most once every `γ·n` rounds (`γ ≥ 6`), the cover-time
//! bound only degrades by a constant factor: by Lemma 4 each fault's effect
//! dissipates within `5n` rounds, leaving `(γ−5)·n` clean rounds per period.

use crate::config::Config;
use crate::rng::Xoshiro256pp;

/// An adversary strategy: given `m` balls and `n` bins, produce the placement
/// `placement[ball] = bin` used in a faulty round.
pub trait Adversary {
    /// Produces the post-fault placement. Implementations may use `rng`
    /// (e.g. a randomized adversary) or the current configuration.
    fn placement(
        &mut self,
        n: usize,
        m: usize,
        current: &Config,
        rng: &mut Xoshiro256pp,
    ) -> Vec<usize>;

    /// Label for experiment tables.
    fn label(&self) -> &'static str;
}

/// Converts a placement to a load [`Config`] over `n` bins.
pub fn placement_to_config(n: usize, placement: &[usize]) -> Config {
    let mut loads = vec![0u32; n];
    for &b in placement {
        loads[b] += 1;
    }
    Config::from_loads(loads)
}

/// Piles every ball into bin 0 — the maximum-skew adversary; the worst case
/// for convergence since bin 0 drains one ball per round.
#[derive(Debug, Default, Clone, Copy)]
pub struct AllInOneAdversary;

impl Adversary for AllInOneAdversary {
    fn placement(
        &mut self,
        _n: usize,
        m: usize,
        _current: &Config,
        _rng: &mut Xoshiro256pp,
    ) -> Vec<usize> {
        vec![0; m]
    }

    fn label(&self) -> &'static str {
        "all-in-one"
    }
}

/// Packs all balls evenly into the first `k` bins.
#[derive(Debug, Clone, Copy)]
pub struct PackedAdversary {
    /// Number of bins the adversary packs the balls into.
    pub k: usize,
}

impl Adversary for PackedAdversary {
    fn placement(
        &mut self,
        n: usize,
        m: usize,
        _current: &Config,
        _rng: &mut Xoshiro256pp,
    ) -> Vec<usize> {
        let k = self.k.clamp(1, n);
        (0..m).map(|i| i % k).collect()
    }

    fn label(&self) -> &'static str {
        "packed-k"
    }
}

/// Dumps every ball onto the *currently fullest* bin — an adaptive adversary
/// that amplifies existing skew.
#[derive(Debug, Default, Clone, Copy)]
pub struct FollowTheLeaderAdversary;

impl Adversary for FollowTheLeaderAdversary {
    fn placement(
        &mut self,
        _n: usize,
        m: usize,
        current: &Config,
        _rng: &mut Xoshiro256pp,
    ) -> Vec<usize> {
        let target = current
            .loads()
            .iter()
            .enumerate()
            .max_by_key(|&(_, &l)| l)
            .map(|(u, _)| u)
            .unwrap_or(0);
        vec![target; m]
    }

    fn label(&self) -> &'static str {
        "follow-the-leader"
    }
}

/// Re-throws every ball u.a.r. — the *benign* "adversary" (a fresh one-shot
/// assignment); useful as the control arm in E09.
#[derive(Debug, Default, Clone, Copy)]
pub struct RandomAdversary;

impl Adversary for RandomAdversary {
    fn placement(
        &mut self,
        n: usize,
        m: usize,
        _current: &Config,
        rng: &mut Xoshiro256pp,
    ) -> Vec<usize> {
        (0..m).map(|_| rng.uniform_usize(n)).collect()
    }

    fn label(&self) -> &'static str {
        "random"
    }
}

/// The fault clock: faults fire on rounds that are positive multiples of
/// `period` (the paper's frequency constraint is `period ≥ γ·n`, `γ ≥ 6`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSchedule {
    period: u64,
}

impl FaultSchedule {
    /// A schedule firing every `period ≥ 1` rounds.
    pub fn every(period: u64) -> Self {
        assert!(period >= 1, "fault period must be >= 1");
        Self { period }
    }

    /// The paper's parameterization: every `γ·n` rounds.
    pub fn gamma_n(gamma: u64, n: usize) -> Self {
        Self::every(gamma * n as u64)
    }

    /// Whether round `round` (1-based) is faulty.
    #[inline]
    pub fn is_faulty(&self, round: u64) -> bool {
        round > 0 && round % self.period == 0
    }

    /// Number of faults in rounds `1..=t`.
    pub fn faults_up_to(&self, t: u64) -> u64 {
        t / self.period
    }

    /// The fault period in rounds.
    pub fn period(&self) -> u64 {
        self.period
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Xoshiro256pp {
        Xoshiro256pp::seed_from(1)
    }

    #[test]
    fn all_in_one_places_everything_in_bin_zero() {
        let mut adv = AllInOneAdversary;
        let cur = Config::one_per_bin(8);
        let p = adv.placement(8, 8, &cur, &mut rng());
        assert_eq!(p, vec![0; 8]);
        let cfg = placement_to_config(8, &p);
        assert_eq!(cfg.max_load(), 8);
        assert_eq!(cfg.total_balls(), 8);
    }

    #[test]
    fn packed_spreads_over_k() {
        let mut adv = PackedAdversary { k: 3 };
        let cur = Config::one_per_bin(10);
        let p = adv.placement(10, 10, &cur, &mut rng());
        let cfg = placement_to_config(10, &p);
        assert_eq!(cfg.nonempty_bins(), 3);
        assert_eq!(cfg.total_balls(), 10);
    }

    #[test]
    fn packed_clamps_k() {
        let mut adv = PackedAdversary { k: 100 };
        let p = adv.placement(4, 4, &Config::one_per_bin(4), &mut rng());
        assert!(p.iter().all(|&b| b < 4));
    }

    #[test]
    fn follow_the_leader_targets_fullest() {
        let mut adv = FollowTheLeaderAdversary;
        let cur = Config::from_loads(vec![1, 5, 2]);
        let p = adv.placement(3, 8, &cur, &mut rng());
        assert_eq!(p, vec![1; 8]);
    }

    #[test]
    fn random_adversary_conserves_mass() {
        let mut adv = RandomAdversary;
        let p = adv.placement(16, 16, &Config::one_per_bin(16), &mut rng());
        assert_eq!(p.len(), 16);
        assert_eq!(placement_to_config(16, &p).total_balls(), 16);
    }

    #[test]
    fn fault_schedule_fires_on_multiples() {
        let s = FaultSchedule::every(10);
        assert!(!s.is_faulty(0));
        assert!(!s.is_faulty(9));
        assert!(s.is_faulty(10));
        assert!(s.is_faulty(20));
        assert_eq!(s.faults_up_to(35), 3);
    }

    #[test]
    fn gamma_n_parameterization() {
        let s = FaultSchedule::gamma_n(6, 100);
        assert_eq!(s.period(), 600);
        assert!(s.is_faulty(600));
        assert!(!s.is_faulty(599));
    }

    #[test]
    #[should_panic(expected = "period")]
    fn zero_period_rejected() {
        FaultSchedule::every(0);
    }

    #[test]
    fn labels_distinct() {
        let labels = [
            AllInOneAdversary.label(),
            PackedAdversary { k: 2 }.label(),
            FollowTheLeaderAdversary.label(),
            RandomAdversary.label(),
        ];
        let mut dedup = labels.to_vec();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
    }
}
