//! Load configurations: the state space of the repeated balls-into-bins
//! process, legitimacy predicates, and initial-configuration builders.
//!
//! Following the paper (Section 2), a configuration is a vector
//! `q = (q_1, ..., q_n)` with `Σ q_u = m` (the paper fixes `m = n`; we keep
//! `m` general for the Section-5 open question, experiment E12).
//! A configuration is **legitimate** if `M(q) ≤ β·log n` for an absolute
//! constant `β` (the paper leaves β implicit; [`LegitimacyThreshold`] makes
//! it an explicit, configurable policy).

use crate::rng::Xoshiro256pp;
use crate::sampling::random_assignment;

/// A load configuration: `loads[u]` is the number of balls in bin `u`.
///
/// Invariant (checked in debug builds and by `validate`): the total mass
/// equals the number of balls the configuration was built with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Config {
    loads: Vec<u32>,
}

impl Config {
    /// Builds a configuration from an explicit load vector.
    ///
    /// Rejects configurations whose **total** ball count exceeds `u32::MAX`:
    /// per-bin loads are `u32`, and the adversary (or plain drift) can pile
    /// every ball into one bin, so any larger total could silently wrap a
    /// bin counter in release builds. The throw paths additionally carry
    /// checked-add debug assertions as a second line of defense.
    pub fn from_loads(loads: Vec<u32>) -> Self {
        assert!(!loads.is_empty(), "a configuration needs at least one bin");
        let total: u64 = loads.iter().map(|&x| x as u64).sum();
        assert!(
            total <= u32::MAX as u64,
            "total ball count {total} exceeds u32::MAX ({}) and could overflow a single bin",
            u32::MAX
        );
        Self { loads }
    }

    /// One ball per bin — the canonical legitimate start (`M(q) = 1`).
    pub fn one_per_bin(n: usize) -> Self {
        Self::from_loads(vec![1; n])
    }

    /// The empty configuration over `n` bins (used as scratch space).
    pub fn empty(n: usize) -> Self {
        Self::from_loads(vec![0; n])
    }

    /// All `m` balls in bin 0 — the worst case for convergence
    /// (Theorem 1(b)): the bin drains at most one ball per round, so
    /// stabilization takes `Ω(m)` rounds.
    pub fn all_in_one(n: usize, m: u32) -> Self {
        let mut loads = vec![0; n];
        loads[0] = m;
        Self::from_loads(loads)
    }

    /// `m` balls split evenly over the first `k` bins (remainder to bin 0).
    pub fn packed(n: usize, m: u32, k: usize) -> Self {
        assert!(k >= 1 && k <= n);
        let mut loads = vec![0; n];
        // rbb-lint: allow(lossy-cast, reason = "k <= n is asserted above, and n fits the u32 bin-index range")
        let per = m / k as u32;
        // rbb-lint: allow(lossy-cast, reason = "k <= n is asserted above, and n fits the u32 bin-index range")
        let rem = m % k as u32;
        for l in loads.iter_mut().take(k) {
            *l = per;
        }
        loads[0] += rem;
        Self::from_loads(loads)
    }

    /// Geometric cascade: bin `i` gets `~m/2^{i+1}` balls — a skewed but not
    /// point-mass adversarial start.
    pub fn geometric_cascade(n: usize, m: u32) -> Self {
        let mut loads = vec![0; n];
        let mut left = m;
        for l in loads.iter_mut() {
            if left == 0 {
                break;
            }
            let take = (left / 2).max(1);
            *l = take;
            left -= take;
        }
        // Whatever could not be placed (tiny tail) goes to bin 0.
        loads[0] += left;
        Self::from_loads(loads)
    }

    /// `m` balls thrown independently and u.a.r. — the one-shot random start.
    ///
    /// # RNG stream
    ///
    /// Consumes exactly `m` uniform draws from `rng` (one per ball, in ball
    /// order) via [`random_assignment`].
    pub fn random(rng: &mut Xoshiro256pp, n: usize, m: u64) -> Self {
        Self::from_loads(random_assignment(rng, n, m))
    }

    /// Number of bins.
    #[inline]
    pub fn n(&self) -> usize {
        self.loads.len()
    }

    /// Total number of balls `m = Σ q_u`.
    #[inline]
    pub fn total_balls(&self) -> u64 {
        self.loads.iter().map(|&x| x as u64).sum()
    }

    /// Maximum load `M(q)`.
    #[inline]
    pub fn max_load(&self) -> u32 {
        self.loads.iter().copied().max().unwrap_or(0)
    }

    /// Number of empty bins (`a(q)` in Lemma 1).
    #[inline]
    pub fn empty_bins(&self) -> usize {
        self.loads.iter().filter(|&&x| x == 0).count()
    }

    /// Number of bins with exactly one ball (`b(q)` in Lemma 1).
    #[inline]
    pub fn singleton_bins(&self) -> usize {
        self.loads.iter().filter(|&&x| x == 1).count()
    }

    /// Number of non-empty bins (`|W|` in Lemma 3): exactly the number of
    /// balls that move in the next round.
    #[inline]
    pub fn nonempty_bins(&self) -> usize {
        self.loads.iter().filter(|&&x| x > 0).count()
    }

    /// Occupancy histogram: `hist[k]` = number of bins with load `k`.
    pub fn occupancy_histogram(&self) -> Vec<usize> {
        let max = self.max_load() as usize;
        let mut hist = vec![0usize; max + 1];
        for &l in &self.loads {
            hist[l as usize] += 1;
        }
        hist
    }

    /// Immutable view of the raw load vector.
    #[inline]
    pub fn loads(&self) -> &[u32] {
        &self.loads
    }

    /// Mutable view (engines operate in place; callers must preserve mass).
    #[inline]
    pub(crate) fn loads_mut(&mut self) -> &mut Vec<u32> {
        &mut self.loads
    }

    /// Mutable access to the raw loads, for simulation engines in sibling
    /// crates (e.g. the graph-walk processes). Callers model the *closed*
    /// process and must preserve total mass across a full round.
    #[inline]
    pub fn loads_slice_mut(&mut self) -> &mut [u32] {
        &mut self.loads
    }

    /// Consumes the configuration, returning the raw load vector.
    pub fn into_loads(self) -> Vec<u32> {
        self.loads
    }

    /// Checks structural sanity against an expected ball count.
    pub fn validate(&self, expected_balls: u64) -> Result<(), String> {
        let total = self.total_balls();
        if total != expected_balls {
            return Err(format!(
                "mass violation: {total} balls present, expected {expected_balls}"
            ));
        }
        Ok(())
    }

    /// Key structural fact used in Lemma 1: bins with ≥ 2 balls cannot
    /// outnumber empty bins when `m ≤ n` (pigeonhole), i.e.
    /// `n - (a + b) ≤ a` where `a` = empty, `b` = singletons.
    pub fn congested_bins(&self) -> usize {
        self.loads.iter().filter(|&&x| x >= 2).count()
    }
}

/// The legitimacy policy: `M(q) ≤ beta · ln(n)` (natural log, matching the
/// `O(log n)` statements; the constant absorbs the base).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LegitimacyThreshold {
    /// Multiplier `β` in `M(q) ≤ β·ln n`.
    pub beta: f64,
}

impl LegitimacyThreshold {
    /// The workspace default, `β = 4`: empirically the repeated process's
    /// steady-state max load sits around `2–3 · ln n / ln ln n`, comfortably
    /// below `4 ln n` for all n ≥ 16, while still being `Θ(log n)`.
    pub const DEFAULT_BETA: f64 = 4.0;

    /// Creates a threshold policy with the given `β > 0`.
    pub fn new(beta: f64) -> Self {
        assert!(beta > 0.0, "beta must be positive");
        Self { beta }
    }

    /// The integer load bound for `n` bins: `⌈β·ln n⌉` (at least 1).
    pub fn bound(&self, n: usize) -> u32 {
        assert!(n >= 2, "the process is defined for n >= 2");
        // rbb-lint: allow(lossy-cast, reason = "beta * ln(n) is tiny (< 100 for any feasible n); ceil of it fits u32")
        ((self.beta * (n as f64).ln()).ceil() as u32).max(1)
    }

    /// Whether configuration `q` is legitimate under this policy.
    pub fn is_legitimate(&self, q: &Config) -> bool {
        q.max_load() <= self.bound(q.n())
    }

    /// The weighted-load bound: the unit bound scaled by the mean ball
    /// weight, `⌈β·ln n⌉ · max(1, ⌈W/m⌉)` for total weight `W` over `m`
    /// balls. With unit weights (`W = m`) this is exactly
    /// [`bound`](Self::bound), so weighted legitimacy degenerates to the
    /// paper's definition; under skew it asks the same structural question —
    /// "is no bin holding more than O(log n) *average-sized* balls?"
    pub fn weighted_bound(&self, n: usize, total_weight: u64, balls: u64) -> u64 {
        let mean_weight = total_weight.div_ceil(balls.max(1)).max(1);
        u64::from(self.bound(n)) * mean_weight
    }
}

impl Default for LegitimacyThreshold {
    fn default() -> Self {
        Self::new(Self::DEFAULT_BETA)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_per_bin_properties() {
        let q = Config::one_per_bin(100);
        assert_eq!(q.n(), 100);
        assert_eq!(q.total_balls(), 100);
        assert_eq!(q.max_load(), 1);
        assert_eq!(q.empty_bins(), 0);
        assert_eq!(q.singleton_bins(), 100);
        assert_eq!(q.nonempty_bins(), 100);
        assert_eq!(q.congested_bins(), 0);
    }

    #[test]
    fn all_in_one_properties() {
        let q = Config::all_in_one(50, 50);
        assert_eq!(q.total_balls(), 50);
        assert_eq!(q.max_load(), 50);
        assert_eq!(q.empty_bins(), 49);
        assert_eq!(q.nonempty_bins(), 1);
    }

    #[test]
    fn packed_splits_evenly_with_remainder() {
        let q = Config::packed(10, 23, 4);
        assert_eq!(q.total_balls(), 23);
        assert_eq!(q.loads()[0], 5 + 3); // per=5, rem=3
        assert_eq!(q.loads()[3], 5);
        assert_eq!(q.loads()[4], 0);
    }

    #[test]
    fn geometric_cascade_conserves_mass() {
        for n in [4usize, 16, 100] {
            let q = Config::geometric_cascade(n, n as u32);
            assert_eq!(q.total_balls(), n as u64, "n={n}");
            assert!(q.loads()[0] >= q.loads()[1]);
        }
    }

    #[test]
    fn random_start_conserves_mass() {
        let mut rng = Xoshiro256pp::seed_from(5);
        let q = Config::random(&mut rng, 128, 128);
        assert_eq!(q.total_balls(), 128);
        q.validate(128).unwrap();
    }

    #[test]
    fn validate_detects_mass_violation() {
        let q = Config::one_per_bin(10);
        assert!(q.validate(11).is_err());
        assert!(q.validate(10).is_ok());
    }

    #[test]
    fn occupancy_histogram_sums_to_n() {
        let q = Config::from_loads(vec![0, 0, 1, 3, 1, 0]);
        let h = q.occupancy_histogram();
        assert_eq!(h, vec![3, 2, 0, 1]);
        assert_eq!(h.iter().sum::<usize>(), q.n());
    }

    #[test]
    fn pigeonhole_lemma1_structure() {
        // For any m <= n configuration: congested <= empty.
        let mut rng = Xoshiro256pp::seed_from(7);
        for _ in 0..50 {
            let q = Config::random(&mut rng, 64, 64);
            assert!(
                q.congested_bins() <= q.empty_bins(),
                "pigeonhole violated: {:?}",
                q.loads()
            );
        }
    }

    #[test]
    fn legitimacy_threshold_bounds() {
        let t = LegitimacyThreshold::default();
        // beta=4: bound(1024) = ceil(4 * 6.93) = 28
        assert_eq!(t.bound(1024), 28);
        assert!(t.bound(2) >= 1);
    }

    #[test]
    fn legitimacy_classification() {
        let t = LegitimacyThreshold::new(2.0);
        let n = 256;
        let legit = Config::one_per_bin(n);
        assert!(t.is_legitimate(&legit));
        let bad = Config::all_in_one(n, n as u32);
        assert!(!t.is_legitimate(&bad));
    }

    #[test]
    fn weighted_bound_degenerates_to_unit_and_scales_with_mean() {
        let t = LegitimacyThreshold::default();
        // Unit weights: W = m, mean 1 — exactly the unit bound.
        assert_eq!(t.weighted_bound(1024, 1024, 1024), u64::from(t.bound(1024)));
        // Mean weight 3 (ceil of 2.5) scales the bound.
        assert_eq!(
            t.weighted_bound(1024, 2560, 1024),
            3 * u64::from(t.bound(1024))
        );
        // Degenerate empty system: bound stays positive.
        assert_eq!(t.weighted_bound(64, 0, 0), u64::from(t.bound(64)));
    }

    #[test]
    #[should_panic(expected = "beta must be positive")]
    fn zero_beta_rejected() {
        LegitimacyThreshold::new(0.0);
    }

    #[test]
    #[should_panic]
    fn empty_config_rejected() {
        Config::from_loads(vec![]);
    }

    #[test]
    #[should_panic(expected = "could overflow a single bin")]
    fn overflowing_total_rejected() {
        // Per-bin u32 loads admit totals up to n·u32::MAX, but the process
        // can concentrate all mass in one bin — reject at construction.
        Config::from_loads(vec![u32::MAX, 1]);
    }

    #[test]
    fn u32_max_total_is_the_accepted_boundary() {
        let q = Config::from_loads(vec![u32::MAX, 0]);
        assert_eq!(q.total_balls(), u32::MAX as u64);
    }
}
