//! Mixing of the configuration chain: exact total-variation decay for
//! small `n` and empirical distribution comparison at scale.
//!
//! The paper notes the chain is non-reversible with (very likely) no
//! product-form stationary law — classical queueing techniques fail. The
//! chain is still ergodic on its finite state space; this module computes,
//! via the enumerative kernel of [`crate::exact`], the exact TV distance to
//! stationarity from any start and the resulting mixing time (experiment
//! E21), plus an empirical two-start distribution comparison usable at
//! simulation scale.

use crate::config::Config;
use crate::exact::ExactChain;
use crate::metrics::RoundObserver;

/// Exact TV-to-stationarity curve for the finite chain, from a point start.
///
/// Returns `d(t) = ‖δ_q P^t − π‖_TV` for `t = 0..=t_max`.
pub fn tv_decay(chain: &ExactChain, start: &[u32], t_max: usize) -> Vec<f64> {
    let pi = chain.stationary(1e-14, 200_000);
    let mut dist = chain.dirac(start);
    let tv =
        |d: &[f64]| -> f64 { d.iter().zip(&pi).map(|(a, b)| (a - b).abs()).sum::<f64>() / 2.0 };
    let mut out = Vec::with_capacity(t_max + 1);
    out.push(tv(&dist));
    for _ in 0..t_max {
        dist = chain.step_distribution(&dist);
        out.push(tv(&dist));
    }
    out
}

/// Exact ε-mixing time from the *worst* point start: the smallest `t` with
/// `max_q d_q(t) ≤ ε`. Returns `None` if not reached within `t_max`.
pub fn mixing_time(chain: &ExactChain, eps: f64, t_max: usize) -> Option<usize> {
    assert!(eps > 0.0 && eps < 1.0);
    // The worst starts are the extreme configurations; scanning all states
    // is exact and affordable at the sizes this kernel supports.
    let pi = chain.stationary(1e-14, 200_000);
    let mut dists: Vec<Vec<f64>> = chain.configs().iter().map(|q| chain.dirac(q)).collect();
    for t in 0..=t_max {
        let worst = dists
            .iter()
            .map(|d| d.iter().zip(&pi).map(|(a, b)| (a - b).abs()).sum::<f64>() / 2.0)
            .fold(0.0f64, f64::max);
        if worst <= eps {
            return Some(t);
        }
        if t < t_max {
            for d in &mut dists {
                *d = chain.step_distribution(d);
            }
        }
    }
    None
}

/// Streaming per-round max-load distribution collector, for empirical
/// two-start comparisons at simulation scale (where exact enumeration is
/// impossible): collect from two differently initialized processes and
/// compare with a `rbb_stats`-style TV on the normalized histograms.
#[derive(Debug, Clone, Default)]
pub struct MaxLoadDistribution {
    counts: Vec<u64>,
    rounds: u64,
}

impl MaxLoadDistribution {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Normalized distribution of the per-round max load.
    pub fn pmf(&self) -> Vec<f64> {
        if self.rounds == 0 {
            return Vec::new();
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.rounds as f64)
            .collect()
    }

    /// Rounds observed.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }
}

impl RoundObserver for MaxLoadDistribution {
    fn observe(&mut self, _round: u64, config: &Config) {
        let m = config.max_load() as usize;
        if m >= self.counts.len() {
            self.counts.resize(m + 1, 0);
        }
        self.counts[m] += 1;
        self.rounds += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::process::LoadProcess;
    use crate::rng::Xoshiro256pp;

    #[test]
    fn tv_decay_is_monotone_nonincreasing_and_vanishes() {
        let chain = ExactChain::build(3, 3);
        let decay = tv_decay(&chain, &[3, 0, 0], 60);
        assert!(decay[0] > 0.5, "point start far from stationary");
        for w in decay.windows(2) {
            // TV to stationarity is non-increasing for any chain.
            assert!(w[1] <= w[0] + 1e-12, "{} -> {}", w[0], w[1]);
        }
        assert!(
            decay.last().unwrap() < &1e-3,
            "did not mix: {:?}",
            decay.last()
        );
    }

    #[test]
    fn mixing_time_is_small_for_tiny_chain() {
        let chain = ExactChain::build(2, 2);
        let t = mixing_time(&chain, 0.25, 200).expect("mixes");
        assert!((1..50).contains(&t), "mixing time {t}");
    }

    #[test]
    fn mixing_time_monotone_in_eps() {
        let chain = ExactChain::build(3, 3);
        let loose = mixing_time(&chain, 0.25, 500).unwrap();
        let tight = mixing_time(&chain, 0.01, 500).unwrap();
        assert!(tight >= loose, "{tight} < {loose}");
    }

    #[test]
    fn mixing_time_none_when_capped() {
        let chain = ExactChain::build(4, 4);
        assert_eq!(mixing_time(&chain, 1e-9, 0), None);
    }

    #[test]
    fn empirical_distributions_from_two_starts_converge() {
        use rbb_compare::tv;
        // Two extreme starts, long runs: per-round max-load distributions
        // must coincide (the chain forgets its start in O(n) rounds).
        let n = 128;
        let mut a = LoadProcess::legitimate_start(n, 21);
        let mut b = LoadProcess::new(Config::all_in_one(n, n as u32), Xoshiro256pp::seed_from(22));
        a.run_silent(2000);
        b.run_silent(2000);
        let mut da = MaxLoadDistribution::new();
        let mut db = MaxLoadDistribution::new();
        a.run(100_000, &mut da);
        b.run(100_000, &mut db);
        let d = tv(&da.pmf(), &db.pmf());
        assert!(d < 0.05, "TV between equilibria: {d}");
    }

    /// Minimal local TV helper so the core crate stays free of a stats
    /// dependency (the stats crate has the production version).
    mod rbb_compare {
        pub fn tv(p: &[f64], q: &[f64]) -> f64 {
            let len = p.len().max(q.len());
            let get = |v: &[f64], i: usize| v.get(i).copied().unwrap_or(0.0);
            (0..len).map(|i| (get(p, i) - get(q, i)).abs()).sum::<f64>() / 2.0
        }
    }
}
