//! The repeated balls-into-bins process — sharded single-trial engine.
//!
//! [`crate::process::LoadProcess`] runs one trial on one core; at
//! `n = 10^7+` a single dense trial is the bottleneck of the large-`n`
//! stability experiments. [`ShardedLoadProcess`] partitions the bins into
//! `S` fixed shards, each owning a contiguous *column* of the load vector
//! and its **own RNG stream**, so a round decomposes into two embarrassingly
//! parallel phases joined by a barrier:
//!
//! 1. **Depart + throw** (per shard): a branchless departure scan over the
//!    shard's own column, then a batched Lemire draw of that shard's
//!    destinations — one global uniform draw per departure, from the
//!    *shard's* stream — routed into per-destination-shard outboxes.
//! 2. **Merge** (per shard): each shard applies its inbound arrivals,
//!    reading the senders' outboxes in shard-index order.
//!
//! # Partition
//!
//! Bins are sharded by a masked-hash rule: bin `b` belongs to shard
//! `b mod S` and sits at column index `b div S` (a mask and a shift when
//! `S` is a power of two). The rule is a pure function of `(b, S)`, so the
//! partition — and therefore the trajectory — depends only on the shard
//! count, never on the worker count.
//!
//! # Determinism contract
//!
//! * **Fixed shard count ⇒ bit-identical trajectories at any thread
//!   count.** Each shard's draws come from its own stream and depend only
//!   on its own column; the merge reads outboxes in shard-index order; and
//!   arrival application is commutative (pure increments). The parallel and
//!   sequential round bodies therefore produce identical states, which the
//!   unit tests pin.
//! * **`S = 1` is bit-identical to the dense engine.** Shard 0 uses the
//!   engine-convention stream (`seed_from(seed)`), and the single-shard
//!   round reduces to exactly the dense scan + batched-throw sequence.
//! * **Different shard counts are equal in law, not per seed.** For `S > 1`
//!   the round's `d` draws are split across `S` streams, so trajectories
//!   differ from the dense stream draw-for-draw while the process law — `d`
//!   i.i.d. uniform destinations per round — is unchanged
//!   (`tests/proptest_sharded.rs` pins the law-level invariants).
//!
//! # RNG streams
//!
//! Shard 0 draws from the engine-convention stream `seed_from(seed)`;
//! shard `s ≥ 1` draws from `Xoshiro256pp::stream(seed,
//! SHARD_STREAM_SALT + s)` — disjoint from the engine stream, from the
//! adversary stream (`0xADFE`), and from each other by the `stream`
//! construction.

use std::cell::OnceCell;
use std::sync::Mutex;

use rayon::prelude::*;

use crate::config::Config;
use crate::engine::Engine;
use crate::process::weighted_section;
use crate::rng::Xoshiro256pp;
use crate::sampling::UniformSampler;
use crate::snapshot::{
    SnapshotError, SnapshotState, ENGINE_SHARDED, SNAPSHOT_VERSION, SNAPSHOT_VERSION_WEIGHTED,
};
use crate::weights::{Capacities, WeightOverlay, Weights};

/// Base salt of the per-shard RNG streams: shard `s ≥ 1` draws from
/// `Xoshiro256pp::stream(seed, SHARD_STREAM_SALT + s)`. Shard 0 uses the
/// salt-free engine-convention stream so a 1-shard process is bit-identical
/// to the dense engine. Salts `SHARD_STREAM_SALT..SHARD_STREAM_SALT + S`
/// are reserved; spec-level salts must stay clear of this range (the
/// adversary's `0xADFE` and the start salts are).
pub const SHARD_STREAM_SALT: u64 = 0x5AA4_DED0;

/// Bin-count threshold below which `step_batched` runs the two phases
/// sequentially instead of through the thread pool: the parallel and
/// sequential round bodies produce identical states (pinned by unit tests),
/// so this is purely a scheduling choice — per-round thread spawns only pay
/// for themselves once a column scan is macroscopic.
const PAR_MIN_N: usize = 1 << 19;

/// Outbox row of one sender shard: `row[t]` holds the *column indices*
/// (destination-local) of the balls this shard threw into shard `t`, in
/// draw order.
type OutRow = Vec<Vec<u32>>;

/// The masked-hash partition rule: shard of `b` is `b mod S`, column index
/// is `b div S` — a mask and a shift when `S` is a power of two (the
/// performance configurations), one division otherwise (supported for
/// law-equality tests at odd shard counts).
#[derive(Debug, Clone, Copy)]
struct Router {
    count: u32,
    /// `Some((mask, shift))` when the shard count is a power of two.
    mask_shift: Option<(u32, u32)>,
}

impl Router {
    fn of(shard_count: usize) -> Self {
        assert!(
            shard_count >= 1 && shard_count <= u32::MAX as usize,
            "shard count {shard_count} out of the supported 1..=u32::MAX range"
        );
        // rbb-lint: allow(lossy-cast, reason = "shard_count <= u32::MAX is asserted above")
        let count = shard_count as u32;
        let mask_shift = shard_count
            .is_power_of_two()
            .then(|| (count - 1, count.trailing_zeros()));
        Self { count, mask_shift }
    }

    /// Maps a global bin index to `(owner shard, column index)`.
    #[inline]
    fn route(self, b: u32) -> (usize, u32) {
        match self.mask_shift {
            Some((mask, shift)) => ((b & mask) as usize, b >> shift),
            None => ((b % self.count) as usize, b / self.count),
        }
    }

    /// Inverse of [`route`](Router::route): the global bin index of column
    /// slot `idx` in shard `s`.
    #[inline]
    fn unroute(self, s: usize, idx: usize) -> usize {
        idx * self.count as usize + s
    }
}

/// One owned shard: a contiguous column of the (strided) load vector, its
/// private RNG stream, an incremental non-empty counter, and the batched
/// draw scratch.
#[derive(Debug, Clone)]
struct Shard {
    /// Column `loads[idx]` is the load of global bin `idx * S + s`.
    loads: Vec<u32>,
    /// Number of non-empty bins in this column (maintained incrementally).
    nonempty: usize,
    rng: Xoshiro256pp,
    /// Destination scratch reused by the batched path.
    dests: Vec<u32>,
}

/// Phase 1 for one shard: branchless departure scan over the column, then
/// the shard's destination draws routed into its outbox row (cleared
/// first). `batched` selects `fill_u32` vs a scalar `sample` loop — the two
/// are bit-compatible, so the choice never changes the trajectory. Returns
/// the departure count.
fn depart_and_throw(
    shard: &mut Shard,
    row: &mut OutRow,
    sampler: &UniformSampler,
    router: Router,
    batched: bool,
) -> usize {
    let mut departures = 0usize;
    let mut still = 0usize;
    for l in shard.loads.iter_mut() {
        // Branchless, like the dense hot path: at equilibrium occupancy the
        // `l > 0` branch is close to worst-case unpredictable.
        // rbb-lint: allow(lossy-cast, reason = "bool-to-u32 cast is lossless (0 or 1)")
        let occupied = (*l > 0) as u32;
        *l -= occupied;
        departures += occupied as usize;
        still += (*l > 0) as usize;
    }
    shard.nonempty = still;
    for dest in row.iter_mut() {
        dest.clear();
    }
    if batched {
        shard.dests.resize(departures, 0);
        sampler.fill_u32(&mut shard.rng, &mut shard.dests);
        for &b in &shard.dests {
            let (t, idx) = router.route(b);
            row[t].push(idx);
        }
    } else {
        for _ in 0..departures {
            // rbb-lint: allow(lossy-cast, reason = "draws are < n, and n fits the u32 index range (asserted at construction)")
            let b = sampler.sample(&mut shard.rng) as u32;
            let (t, idx) = router.route(b);
            row[t].push(idx);
        }
    }
    departures
}

/// Phase 2 for one shard: applies the inbound arrivals addressed to shard
/// `t`, reading every sender's outbox in shard-index order. Arrival
/// application is commutative, so this order is a convention, not a
/// correctness requirement.
fn apply_inbound(shard: &mut Shard, rows: &[OutRow], t: usize) {
    for row in rows {
        for &idx in &row[t] {
            let slot = &mut shard.loads[idx as usize];
            debug_assert_ne!(*slot, u32::MAX, "column slot {idx} would overflow u32");
            shard.nonempty += (*slot == 0) as usize;
            *slot += 1;
        }
    }
}

/// Sharded load-only repeated balls-into-bins simulator: law-equal to
/// [`LoadProcess`](crate::process::LoadProcess) at any shard count,
/// bit-identical to it at `S = 1`, and bit-identical to *itself* for a
/// fixed shard count at any `RAYON_NUM_THREADS` (see the module docs for
/// the full determinism contract).
///
/// ```
/// use rbb_core::prelude::*;
/// use rbb_core::sharded::ShardedLoadProcess;
///
/// let mut p = ShardedLoadProcess::legitimate_start(1024, 7, 4);
/// p.run_silent(100);
/// assert_eq!(p.balls(), 1024); // mass conserved
/// assert_eq!(p.round(), 100);
/// ```
#[derive(Debug, Clone)]
pub struct ShardedLoadProcess {
    n: usize,
    shard_count: usize,
    router: Router,
    shards: Vec<Shard>,
    /// `outboxes[s][t]`: balls thrown by shard `s` into shard `t` this
    /// round (column indices, draw order). Buffers are reused across
    /// rounds.
    outboxes: Vec<OutRow>,
    round: u64,
    balls: u64,
    /// Uniform sampler keyed on `n`, shared by every shard (draws are
    /// global destinations).
    sampler: UniformSampler,
    /// Lazily materialized dense view for `Engine::config`; invalidated on
    /// every mutation.
    dense: OnceCell<Config>,
    /// Weight overlay — `None` in the unit configuration, where every step
    /// path takes its original branch untouched.
    weighted: Option<WeightOverlay>,
    /// Observed capacity bounds ([`Capacities::Unbounded`] by default).
    capacities: Capacities,
    /// Global-destination scratch of the weighted round (per-shard draws
    /// concatenated in shard order, each in draw order).
    wdests: Vec<u32>,
}

impl ShardedLoadProcess {
    /// Creates a sharded process from an initial configuration, the
    /// scenario seed, and a shard count.
    ///
    /// Panics if `shards` is zero, exceeds `n`, or `n` exceeds the `u32`
    /// index range.
    ///
    /// # RNG stream
    ///
    /// Derives `shards` private streams from `seed`: shard 0 gets the
    /// engine-convention stream (`seed_from(seed)` — so `shards = 1`
    /// reproduces the dense engine bit-for-bit), shard `s ≥ 1` gets stream
    /// `SHARD_STREAM_SALT + s`. Each round, shard `s` consumes one uniform
    /// destination draw per ball it releases, in column order.
    pub fn new(config: Config, seed: u64, shards: usize) -> Self {
        let n = config.n();
        assert!(shards >= 1, "need at least one shard");
        assert!(
            shards <= n,
            "shard count {shards} exceeds the bin count {n}"
        );
        // Bin indices are u32 throughout the workspace; a larger n would
        // silently truncate destination draws in release builds.
        assert!(
            n <= u32::MAX as usize + 1,
            "bin count {n} exceeds the u32 index range"
        );
        let router = Router::of(shards);
        let balls = config.total_balls();
        let mut shard_vec: Vec<Shard> = (0..shards)
            .map(|s| Shard {
                loads: vec![0u32; (n - s).div_ceil(shards)],
                nonempty: 0,
                rng: shard_rng(seed, s),
                dests: Vec::new(),
            })
            .collect();
        for (b, &l) in config.loads().iter().enumerate() {
            if l > 0 {
                // rbb-lint: allow(lossy-cast, reason = "b < n, and n fits the u32 index range (asserted above)")
                let (s, idx) = router.route(b as u32);
                shard_vec[s].loads[idx as usize] = l;
                shard_vec[s].nonempty += 1;
            }
        }
        Self {
            n,
            shard_count: shards,
            router,
            shards: shard_vec,
            outboxes: vec![vec![Vec::new(); shards]; shards],
            round: 0,
            balls,
            sampler: UniformSampler::new(n as u64),
            dense: OnceCell::new(),
            weighted: None,
            capacities: Capacities::Unbounded,
            wdests: Vec::new(),
        }
    }

    /// Creates a weighted, capacity-observing sharded process.
    /// [`Weights::Unit`] (or an explicit all-ones vector) builds no overlay,
    /// so the unit configuration is the same engine as [`Self::new`]. At
    /// `shards = 1` the weighted trajectory — and every weighted metric —
    /// is bit-identical to [`LoadProcess::with_weights`]; at `shards > 1`
    /// it is law-equal, exactly as in the unit regime.
    ///
    /// [`LoadProcess::with_weights`]: crate::process::LoadProcess::with_weights
    pub fn with_weights(
        config: Config,
        seed: u64,
        shards: usize,
        weights: Weights,
        capacities: Capacities,
    ) -> Self {
        let weights = weights.normalized();
        if let Err(e) = weights.validate(config.total_balls()) {
            // rbb-lint: allow(panic, reason = "constructor contract violation, caught by spec-layer validation first")
            panic!("invalid weights: {e}");
        }
        if let Err(e) = capacities.validate(config.n()) {
            // rbb-lint: allow(panic, reason = "constructor contract violation, caught by spec-layer validation first")
            panic!("invalid capacities: {e}");
        }
        let overlay = match &weights {
            Weights::Unit => None,
            Weights::Explicit(ws) => {
                let entries = config
                    .loads()
                    .iter()
                    .enumerate()
                    .filter(|&(_, &l)| l > 0)
                    // rbb-lint: allow(lossy-cast, reason = "enumerate index < n, which fits the u32 bin-index range")
                    .map(|(b, &l)| (b as u32, l));
                Some(WeightOverlay::from_entries(entries, ws))
            }
        };
        let mut p = Self::new(config, seed, shards);
        p.weighted = overlay;
        p.capacities = capacities;
        p
    }

    /// Convenience constructor: `n` balls into `n` bins, one per bin.
    pub fn legitimate_start(n: usize, seed: u64, shards: usize) -> Self {
        Self::new(Config::one_per_bin(n), seed, shards)
    }

    /// Current round index (0 before any step).
    #[inline]
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Number of bins.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Total ball count (rounds conserve it; the incremental
    /// [`Engine::place`]/[`Engine::depart`] surface changes it).
    #[inline]
    pub fn balls(&self) -> u64 {
        self.balls
    }

    /// The fixed shard count this process was built with.
    #[inline]
    pub fn shard_count(&self) -> usize {
        self.shard_count
    }

    /// Advances one round through the scalar reference path (sequential
    /// phases, scalar draws). Bit-identical to
    /// [`step_batched`](Self::step_batched) from equal state.
    ///
    /// # RNG stream
    ///
    /// Each shard consumes one uniform draw per ball it releases, from its
    /// own stream — see [`Self::new`].
    pub fn step(&mut self) -> usize {
        if self.weighted.is_some() {
            return self.step_weighted();
        }
        self.round_sequential(false)
    }

    /// Advances one round through the batched hot path: per-shard branchless
    /// scans and batched Lemire draws, run through the thread pool once the
    /// columns are large enough to amortize it. Bit-identical to
    /// [`step`](Self::step) from equal state at any thread count.
    ///
    /// # RNG stream
    ///
    /// Identical to [`step`](Self::step): the batched sampler is
    /// draw-for-draw compatible with the scalar one, and the
    /// sequential-vs-parallel scheduling choice never touches an RNG.
    pub fn step_batched(&mut self) -> usize {
        if self.weighted.is_some() {
            return self.step_weighted();
        }
        if self.shard_count == 1 || self.n < PAR_MIN_N {
            self.round_sequential(true)
        } else {
            self.round_parallel()
        }
    }

    /// The weighted round — always sequential, always batched draws (the
    /// batched sampler is draw-for-draw compatible with the scalar one, so
    /// `step` and `step_batched` stay bit-identical on weighted engines
    /// too). Each shard's departing columns are recorded in column order
    /// and paired with that shard's draws in draw order — the canonical
    /// transport order, which at `shards = 1` is exactly the dense scan.
    fn step_weighted(&mut self) -> usize {
        let sampler = self.sampler;
        let router = self.router;
        let mut overlay = self
            .weighted
            .take()
            // rbb-lint: allow(panic, reason = "only reached behind a weighted.is_some() guard in step/step_batched")
            .expect("weighted step needs an overlay");
        overlay.srcs.clear();
        let mut dests = std::mem::take(&mut self.wdests);
        dests.clear();
        let mut departures = 0usize;
        for (s, (shard, row)) in self
            .shards
            .iter_mut()
            .zip(self.outboxes.iter_mut())
            .enumerate()
        {
            for (idx, &l) in shard.loads.iter().enumerate() {
                if l > 0 {
                    // rbb-lint: allow(lossy-cast, reason = "unroute yields a bin < n, and n fits the u32 index range (asserted at construction)")
                    overlay.srcs.push(router.unroute(s, idx) as u32);
                }
            }
            departures += depart_and_throw(shard, row, &sampler, router, true);
            // `shard.dests` still holds this shard's raw draws — global bin
            // indices in draw order — which the routing above only read.
            dests.extend_from_slice(&shard.dests);
        }
        for (t, shard) in self.shards.iter_mut().enumerate() {
            apply_inbound(shard, &self.outboxes, t);
        }
        overlay.transport(&dests);
        self.wdests = dests;
        self.weighted = Some(overlay);
        self.finish_round(departures)
    }

    /// Both phases in shard-index order on the calling thread.
    fn round_sequential(&mut self, batched: bool) -> usize {
        let sampler = self.sampler;
        let router = self.router;
        let mut departures = 0usize;
        for (shard, row) in self.shards.iter_mut().zip(self.outboxes.iter_mut()) {
            departures += depart_and_throw(shard, row, &sampler, router, batched);
        }
        for (t, shard) in self.shards.iter_mut().enumerate() {
            apply_inbound(shard, &self.outboxes, t);
        }
        self.finish_round(departures)
    }

    /// Both phases through the thread pool, one task per shard, with a
    /// barrier between them. Each task locks only its own shard's state
    /// (the mutexes exist to satisfy the `Fn` closure bound; they are
    /// uncontended by construction), so the result is identical to
    /// [`round_sequential`](Self::round_sequential) with `batched = true`
    /// at any worker count.
    fn round_parallel(&mut self) -> usize {
        let sampler = self.sampler;
        let router = self.router;
        let shard_count = self.shard_count;
        let work: Vec<Mutex<(Shard, OutRow)>> = std::mem::take(&mut self.shards)
            .into_iter()
            .zip(std::mem::take(&mut self.outboxes))
            .map(Mutex::new)
            .collect();
        let departures: usize = (0..shard_count)
            .into_par_iter()
            .map(|s| {
                // rbb-lint: allow(panic, unordered-merge, reason = "commutes: task index = shard index, so each task locks only its own uncontended shard and no cross-task state merges; poisoning would mean a sibling panicked, which rayon re-raises anyway")
                let mut guard = work[s].lock().expect("shard mutex poisoned");
                let (shard, row) = &mut *guard;
                // rbb-lint: allow(rng-in-par, reason = "shard.rng is the per-shard stream pre-salted with SHARD_STREAM_SALT at construction; tasks never share a stream")
                depart_and_throw(shard, row, &sampler, router, true)
            })
            .collect::<Vec<usize>>()
            .into_iter()
            .sum();
        let (shards, rows): (Vec<Shard>, Vec<OutRow>) = work
            .into_iter()
            // rbb-lint: allow(panic, reason = "all tasks have joined; a panicked task would have re-raised before this point")
            .map(|m| m.into_inner().expect("shard mutex poisoned"))
            .unzip();
        let cells: Vec<Mutex<Shard>> = shards.into_iter().map(Mutex::new).collect();
        let _: Vec<()> = (0..shard_count)
            .into_par_iter()
            .map(|t| {
                // rbb-lint: allow(panic, unordered-merge, reason = "commutes: task index = shard index, so each task locks only its own uncontended shard and no cross-task state merges; poisoning would mean a sibling panicked, which rayon re-raises anyway")
                let mut shard = cells[t].lock().expect("shard mutex poisoned");
                apply_inbound(&mut shard, &rows, t);
            })
            .collect();
        self.shards = cells
            .into_iter()
            // rbb-lint: allow(panic, reason = "all tasks have joined; a panicked task would have re-raised before this point")
            .map(|m| m.into_inner().expect("shard mutex poisoned"))
            .collect();
        self.outboxes = rows;
        self.finish_round(departures)
    }

    /// Closes a round: bumps the counter, invalidates the dense cache, and
    /// (in debug builds) re-checks mass conservation and the incremental
    /// non-empty counters.
    fn finish_round(&mut self, departures: usize) -> usize {
        self.round += 1;
        self.dense.take();
        debug_assert_eq!(
            self.shards
                .iter()
                .flat_map(|s| s.loads.iter())
                .map(|&l| l as u64)
                .sum::<u64>(),
            self.balls,
            "mass violated"
        );
        debug_assert!(self
            .shards
            .iter()
            .all(|s| s.nonempty == s.loads.iter().filter(|&&l| l > 0).count()));
        debug_assert!(self.weighted.as_ref().is_none_or(|o| {
            let router = self.router;
            let occupied = self.shards.iter().enumerate().flat_map(|(s, shard)| {
                shard
                    .loads
                    .iter()
                    .enumerate()
                    .filter(|&(_, &l)| l > 0)
                    // rbb-lint: allow(lossy-cast, reason = "unroute yields a global bin index < n, and n fits u32")
                    .map(move |(idx, &l)| (router.unroute(s, idx) as u32, l))
            });
            o.check_against(occupied).is_ok()
        }));
        departures
    }

    /// Captures the complete resumable state: the de-strided loads in
    /// canonical (bin-sorted) order and every shard's raw RNG stream state,
    /// in shard order. Outboxes and draw scratch are round-scoped and carry
    /// no state across rounds, so they are not captured.
    pub fn snapshot_state(&self) -> SnapshotState {
        let mut entries = Vec::new();
        for (s, shard) in self.shards.iter().enumerate() {
            for (idx, &l) in shard.loads.iter().enumerate() {
                if l > 0 {
                    // rbb-lint: allow(lossy-cast, reason = "unroute yields a bin < n, and n fits the u32 index range (asserted at construction)")
                    entries.push((self.router.unroute(s, idx) as u32, l));
                }
            }
        }
        entries.sort_unstable();
        let weighted = weighted_section(self.weighted.as_ref(), &self.capacities);
        SnapshotState {
            version: if weighted.is_some() {
                SNAPSHOT_VERSION_WEIGHTED
            } else {
                SNAPSHOT_VERSION
            },
            engine: ENGINE_SHARDED.to_string(),
            n: self.n,
            shards: self.shard_count,
            round: self.round,
            balls: self.balls,
            entries,
            rng_states: self.shards.iter().map(|s| s.rng.state()).collect(),
            weighted,
        }
    }

    /// Rebuilds a sharded process from a snapshot (validated first); the
    /// restored process resumes the snapshotted trajectory bit-identically
    /// at the snapshot's shard count.
    pub fn from_snapshot(state: &SnapshotState) -> Result<Self, SnapshotError> {
        state.validate()?;
        if state.engine != ENGINE_SHARDED {
            return Err(SnapshotError(format!(
                "expected a {ENGINE_SHARDED} snapshot, got '{}'",
                state.engine
            )));
        }
        // The seed only feeds the freshly derived streams, which the loop
        // below overwrites with the captured states.
        let mut p = Self::new(Config::from_loads(state.dense_loads()), 0, state.shards);
        for (shard, &captured) in p.shards.iter_mut().zip(&state.rng_states) {
            // rbb-lint: allow(rng-construct, reason = "restoring serialized stream states captured from a live engine snapshot, not seeding new streams")
            shard.rng = Xoshiro256pp::from_state(captured);
        }
        p.round = state.round;
        if let Some(w) = &state.weighted {
            p.capacities = w.capacities()?;
            if !w.queues.is_empty() {
                p.weighted = Some(WeightOverlay::from_queues(&w.queues));
            }
        }
        Ok(p)
    }
}

/// The RNG stream of shard `s` — see the module docs.
fn shard_rng(seed: u64, s: usize) -> Xoshiro256pp {
    if s == 0 {
        // rbb-lint: allow(rng-construct, reason = "shard 0 is the engine-convention stream, so shards = 1 is bit-identical to the dense engine; core cannot depend on rbb_sim::seed")
        Xoshiro256pp::seed_from(seed)
    } else {
        // rbb-lint: allow(rng-construct, reason = "per-shard streams are derived from the scenario seed at the documented reserved salts; core cannot depend on rbb_sim::seed")
        Xoshiro256pp::stream(seed, SHARD_STREAM_SALT + s as u64)
    }
}

impl Engine for ShardedLoadProcess {
    #[inline]
    fn step(&mut self) -> usize {
        ShardedLoadProcess::step(self)
    }

    #[inline]
    fn step_batched(&mut self) -> usize {
        ShardedLoadProcess::step_batched(self)
    }

    #[inline]
    fn round(&self) -> u64 {
        self.round
    }

    /// Materializes (and caches) the dense snapshot — `O(n)`, so per-round
    /// drivers use the cheap accessors below instead.
    fn config(&self) -> &Config {
        self.dense.get_or_init(|| {
            let mut loads = vec![0u32; self.n];
            for (s, shard) in self.shards.iter().enumerate() {
                for (idx, &l) in shard.loads.iter().enumerate() {
                    loads[self.router.unroute(s, idx)] = l;
                }
            }
            Config::from_loads(loads)
        })
    }

    #[inline]
    fn n(&self) -> usize {
        self.n
    }

    #[inline]
    fn balls(&self) -> u64 {
        self.balls
    }

    fn max_load(&self) -> u32 {
        self.shards
            .iter()
            .flat_map(|s| s.loads.iter())
            .copied()
            .max()
            .unwrap_or(0)
    }

    #[inline]
    fn empty_bins(&self) -> usize {
        self.n - self.nonempty_bins()
    }

    /// `O(S)`: the per-shard non-empty counters are maintained
    /// incrementally.
    #[inline]
    fn nonempty_bins(&self) -> usize {
        self.shards.iter().map(|s| s.nonempty).sum()
    }

    #[inline]
    fn bin_load(&self, bin: usize) -> u32 {
        debug_assert!(bin < self.n);
        // rbb-lint: allow(lossy-cast, reason = "bin < n, and n fits the u32 index range (asserted at construction)")
        let (s, idx) = self.router.route(bin as u32);
        self.shards[s].loads[idx as usize]
    }

    fn supports_faults(&self) -> bool {
        true
    }

    /// Placement-based fault: rebuilds the columns from `placement[ball] =
    /// bin`. Consumes no engine randomness, exactly like the dense engine's
    /// fault path, so post-fault trajectories stay law-equal (and, at
    /// `shards = 1`, bit-identical).
    fn apply_fault(&mut self, placement: &[usize]) {
        assert_eq!(
            placement.len() as u64,
            self.balls,
            "adversary must conserve balls"
        );
        for shard in self.shards.iter_mut() {
            shard.loads.fill(0);
            shard.nonempty = 0;
        }
        for &bin in placement {
            assert!(bin < self.n, "bin {bin} out of range 0..{}", self.n);
            // rbb-lint: allow(lossy-cast, reason = "bin < n, and n fits the u32 index range (asserted at construction)")
            let (s, idx) = self.router.route(bin as u32);
            let shard = &mut self.shards[s];
            let slot = &mut shard.loads[idx as usize];
            shard.nonempty += (*slot == 0) as usize;
            *slot += 1;
        }
        self.dense.take();
    }

    fn supports_incremental(&self) -> bool {
        true
    }

    /// Incremental arrival: one uniform destination draw from **shard 0's**
    /// stream (the engine-convention stream, so at `shards = 1` this is
    /// bit-compatible with the dense engine's `place`).
    fn place(&mut self) -> usize {
        self.place_weighted(1)
    }

    /// Same shard-0 RNG draw as [`place`](Engine::place) — the weight only
    /// feeds the overlay. A unit process accepts weight 1 only.
    fn place_weighted(&mut self, weight: u32) -> usize {
        assert!(
            self.balls < u32::MAX as u64,
            "place would overflow the u32 load bound"
        );
        assert!(
            weight == 1 || self.weighted.is_some(),
            "this process is unit-weight: only weight-1 placements are supported"
        );
        assert!(weight >= 1, "placed weight must be at least 1");
        let b = self.shards[0].rng.uniform_usize(self.n);
        // rbb-lint: allow(lossy-cast, reason = "draws are < n, and n fits the u32 index range (asserted at construction)")
        let (s, idx) = self.router.route(b as u32);
        let shard = &mut self.shards[s];
        let slot = &mut shard.loads[idx as usize];
        shard.nonempty += (*slot == 0) as usize;
        *slot += 1;
        self.balls += 1;
        if let Some(o) = &mut self.weighted {
            // rbb-lint: allow(lossy-cast, reason = "draws are < n, and n fits the u32 index range (asserted at construction)")
            o.place(b as u32, weight);
        }
        self.dense.take();
        b
    }

    fn depart(&mut self, bin: usize) -> bool {
        if bin >= self.n {
            return false;
        }
        // rbb-lint: allow(lossy-cast, reason = "bin < n, and n fits the u32 index range (asserted at construction)")
        let (s, idx) = self.router.route(bin as u32);
        let shard = &mut self.shards[s];
        let slot = &mut shard.loads[idx as usize];
        if *slot == 0 {
            return false;
        }
        *slot -= 1;
        shard.nonempty -= (*slot == 0) as usize;
        self.balls -= 1;
        if let Some(o) = &mut self.weighted {
            // rbb-lint: allow(lossy-cast, reason = "bin < n, and n fits the u32 index range (asserted at construction)")
            o.depart(bin as u32);
        }
        self.dense.take();
        true
    }

    fn weighted(&self) -> bool {
        self.weighted.is_some()
    }

    fn total_weight(&self) -> u64 {
        self.weighted
            .as_ref()
            .map_or(self.balls, WeightOverlay::total)
    }

    fn weighted_max_load(&self) -> u64 {
        match &self.weighted {
            Some(o) => o.weighted_max_load(),
            None => u64::from(Engine::max_load(self)),
        }
    }

    fn weighted_bin_load(&self, bin: usize) -> u64 {
        match &self.weighted {
            // rbb-lint: allow(lossy-cast, reason = "out-of-range bins read as empty, matching the unit path's 0 load")
            Some(o) => o.weighted_load(bin as u32),
            None => {
                if bin >= self.n {
                    return 0;
                }
                u64::from(Engine::bin_load(self, bin))
            }
        }
    }

    fn capacities(&self) -> &Capacities {
        &self.capacities
    }

    fn capacity_violations(&self) -> u64 {
        match &self.weighted {
            Some(o) => o.capacity_violations(&self.capacities),
            None => {
                if self.capacities.is_unbounded() {
                    return 0;
                }
                (0..self.n)
                    .filter(|&b| {
                        self.capacities
                            .bound(b)
                            .is_some_and(|c| u64::from(Engine::bin_load(self, b)) > c)
                    })
                    .count() as u64
            }
        }
    }

    fn snapshot(&self) -> Option<SnapshotState> {
        Some(self.snapshot_state())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::LoadProcess;

    /// Steps a dense/sharded pair in lockstep, asserting full agreement —
    /// only meaningful at `shards = 1` (the bit-identity case).
    fn assert_twins(mut dense: LoadProcess, mut sharded: ShardedLoadProcess, rounds: u64) {
        for r in 0..rounds {
            let (a, b) = if r % 3 == 0 {
                (dense.step(), sharded.step())
            } else {
                (Engine::step_batched(&mut dense), sharded.step_batched())
            };
            assert_eq!(a, b, "departure count diverged at round {r}");
            assert_eq!(Engine::max_load(&dense), Engine::max_load(&sharded));
            assert_eq!(Engine::empty_bins(&dense), Engine::empty_bins(&sharded));
            assert_eq!(dense.config(), Engine::config(&sharded), "round {r}");
        }
        assert_eq!(dense.round(), Engine::round(&sharded));
    }

    #[test]
    fn one_shard_is_bit_identical_to_dense_from_any_start() {
        for (n, m) in [(64usize, 64u32), (100, 7), (33, 200), (2, 1)] {
            let config = Config::all_in_one(n, m);
            assert_twins(
                LoadProcess::new(config.clone(), Xoshiro256pp::seed_from(9)),
                ShardedLoadProcess::new(config, 9, 1),
                120,
            );
        }
    }

    #[test]
    fn one_shard_legitimate_start_matches_dense() {
        assert_twins(
            LoadProcess::legitimate_start(128, 5),
            ShardedLoadProcess::legitimate_start(128, 5, 1),
            100,
        );
    }

    #[test]
    fn scalar_and_batched_are_bit_identical_at_every_shard_count() {
        for shards in [1usize, 2, 3, 4, 7] {
            let mut scalar = ShardedLoadProcess::legitimate_start(96, 21, shards);
            let mut batched = scalar.clone();
            for r in 0..200 {
                let a = scalar.step();
                let b = batched.step_batched();
                assert_eq!(a, b, "shards={shards} round {r}");
                assert_eq!(
                    Engine::config(&scalar),
                    Engine::config(&batched),
                    "shards={shards} round {r}"
                );
            }
        }
    }

    #[test]
    fn parallel_round_matches_sequential_round() {
        // The mutex-and-barrier parallel body must produce exactly the
        // sequential body's state, shard count and start regardless.
        for shards in [2usize, 4, 7] {
            let mut seq = ShardedLoadProcess::new(Config::all_in_one(257, 300), 3, shards);
            let mut par = seq.clone();
            for r in 0..120 {
                let a = seq.round_sequential(true);
                let b = par.round_parallel();
                assert_eq!(a, b, "shards={shards} round {r}");
                assert_eq!(
                    Engine::config(&seq),
                    Engine::config(&par),
                    "shards={shards} round {r}"
                );
            }
        }
    }

    #[test]
    fn fixed_shard_count_is_reproducible() {
        for shards in [1usize, 2, 4, 7] {
            let mut a = ShardedLoadProcess::legitimate_start(128, 42, shards);
            let mut b = ShardedLoadProcess::legitimate_start(128, 42, shards);
            a.run_silent(150);
            b.run_silent(150);
            assert_eq!(Engine::config(&a), Engine::config(&b), "shards={shards}");
        }
    }

    #[test]
    fn different_shard_counts_differ_per_seed_but_conserve_mass() {
        let mut one = ShardedLoadProcess::legitimate_start(256, 7, 1);
        let mut four = ShardedLoadProcess::legitimate_start(256, 7, 4);
        one.run_silent(60);
        four.run_silent(60);
        // Equal in law, different draw-for-draw: the trajectories diverge.
        assert_ne!(Engine::config(&one), Engine::config(&four));
        assert_eq!(one.balls(), 256);
        assert_eq!(four.balls(), 256);
        assert_eq!(Engine::config(&four).total_balls(), 256);
    }

    #[test]
    fn departures_equal_previous_nonempty_count() {
        let mut p = ShardedLoadProcess::new(Config::all_in_one(64, 40), 11, 4);
        for _ in 0..100 {
            let before = Engine::nonempty_bins(&p);
            let moved = p.step_batched();
            assert_eq!(moved, before);
        }
    }

    #[test]
    fn cheap_accessors_match_dense_view() {
        for shards in [2usize, 5] {
            let mut p = ShardedLoadProcess::new(Config::all_in_one(100, 70), 13, shards);
            p.run_silent(50);
            let dense = Engine::config(&p).clone();
            assert_eq!(Engine::max_load(&p), dense.max_load());
            assert_eq!(Engine::empty_bins(&p), dense.empty_bins());
            assert_eq!(Engine::nonempty_bins(&p), dense.nonempty_bins());
            for b in 0..100 {
                assert_eq!(Engine::bin_load(&p, b), dense.loads()[b]);
            }
        }
    }

    #[test]
    fn dense_cache_invalidates_on_step() {
        let mut p = ShardedLoadProcess::legitimate_start(32, 3, 2);
        let before = Engine::config(&p).clone();
        p.step();
        let after = Engine::config(&p);
        assert_ne!(&before, after, "stale dense snapshot served after a step");
        assert_eq!(after.total_balls(), 32);
    }

    #[test]
    fn apply_fault_matches_dense_fault_path_at_one_shard() {
        let mut dense = LoadProcess::legitimate_start(32, 21);
        let mut sharded = ShardedLoadProcess::legitimate_start(32, 21, 1);
        for _ in 0..40 {
            dense.step();
            sharded.step();
        }
        let placement: Vec<usize> = (0..32).map(|i| i % 5).collect();
        Engine::apply_fault(&mut dense, &placement);
        Engine::apply_fault(&mut sharded, &placement);
        assert_eq!(dense.config(), Engine::config(&sharded));
        assert_twins(dense, sharded, 60);
    }

    #[test]
    fn apply_fault_rebuilds_counters_at_any_shard_count() {
        let mut p = ShardedLoadProcess::legitimate_start(60, 17, 7);
        p.run_silent(30);
        let placement: Vec<usize> = (0..60).map(|i| (i * 3) % 10).collect();
        Engine::apply_fault(&mut p, &placement);
        assert_eq!(Engine::nonempty_bins(&p), 10);
        assert_eq!(Engine::config(&p).total_balls(), 60);
        // Post-fault rounds keep the counters consistent (debug asserts
        // recount them).
        p.run_silent(30);
        assert_eq!(p.balls(), 60);
    }

    #[test]
    #[should_panic(expected = "conserve")]
    fn apply_fault_rejects_mass_change() {
        let mut p = ShardedLoadProcess::legitimate_start(8, 1, 2);
        Engine::apply_fault(&mut p, &[0; 9]);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = ShardedLoadProcess::legitimate_start(8, 1, 0);
    }

    #[test]
    #[should_panic(expected = "exceeds the bin count")]
    fn more_shards_than_bins_rejected() {
        let _ = ShardedLoadProcess::legitimate_start(4, 1, 5);
    }

    #[test]
    fn snapshot_restore_resumes_bit_identically_at_any_shard_count() {
        for shards in [1usize, 3, 4] {
            let mut p = ShardedLoadProcess::new(Config::all_in_one(96, 120), 27, shards);
            p.run_silent(30);
            let snap = Engine::snapshot(&p).expect("sharded engine snapshots");
            assert_eq!(snap.rng_states.len(), shards);
            assert!(
                snap.entries.windows(2).all(|w| w[0].0 < w[1].0),
                "entries must be in canonical bin order"
            );
            let mut q = ShardedLoadProcess::from_snapshot(&snap).unwrap();
            assert_eq!(Engine::round(&q), 30);
            for _ in 0..50 {
                // Mixing the paths is fine: they are bit-identical.
                p.step();
                q.step_batched();
            }
            assert_eq!(Engine::config(&p), Engine::config(&q), "shards={shards}");
            assert_eq!(Engine::snapshot(&p), Engine::snapshot(&q));
        }
    }

    #[test]
    fn place_and_depart_maintain_shard_counters() {
        let mut p = ShardedLoadProcess::legitimate_start(60, 19, 7);
        assert!(Engine::supports_incremental(&p));
        let b = Engine::place(&mut p);
        assert!(b < 60);
        assert_eq!(p.balls(), 61);
        assert_eq!(Engine::bin_load(&p, b), 2);
        assert!(Engine::depart(&mut p, b));
        assert!(Engine::depart(&mut p, b));
        assert!(!Engine::depart(&mut p, b), "bin drained");
        assert!(!Engine::depart(&mut p, 60), "out of range is a no-op");
        assert_eq!(p.balls(), 59);
        assert_eq!(Engine::nonempty_bins(&p), 59);
        // Debug builds recount the incremental counters every round.
        p.run_silent(20);
        assert_eq!(p.balls(), 59);
    }

    #[test]
    fn one_shard_place_matches_dense_place() {
        let mut dense = LoadProcess::legitimate_start(64, 51);
        let mut sharded = ShardedLoadProcess::legitimate_start(64, 51, 1);
        for _ in 0..30 {
            assert_eq!(Engine::place(&mut dense), Engine::place(&mut sharded));
        }
        assert_twins(dense, sharded, 40);
    }

    #[test]
    fn router_is_a_bijection() {
        for shards in [1usize, 2, 3, 4, 7, 8, 13] {
            let router = Router::of(shards);
            let n = 100usize;
            let mut seen = vec![false; n];
            for b in 0..n as u32 {
                let (s, idx) = router.route(b);
                assert!(s < shards);
                let back = router.unroute(s, idx as usize);
                assert_eq!(back, b as usize);
                assert!(!seen[back]);
                seen[back] = true;
            }
            assert!(seen.iter().all(|&v| v));
        }
    }

    #[test]
    fn shards_equal_to_bins_is_supported() {
        let mut p = ShardedLoadProcess::legitimate_start(8, 5, 8);
        p.run_silent(50);
        assert_eq!(p.balls(), 8);
        assert_eq!(Engine::config(&p).total_balls(), 8);
    }

    #[test]
    fn engine_run_family_works() {
        let mut p = ShardedLoadProcess::legitimate_start(64, 11, 4);
        let hit = p.run_until(10_000, |c| c.max_load() >= 3);
        assert!(hit.is_some());
    }

    #[test]
    fn m_not_equal_n_supported() {
        for m in [7u32, 300] {
            let mut p = ShardedLoadProcess::new(Config::all_in_one(100, m), 14, 4);
            p.run_silent(100);
            assert_eq!(p.balls(), m as u64);
        }
    }

    #[test]
    fn one_shard_weighted_is_bit_identical_to_weighted_dense() {
        // The tentpole invariant at the sharded layer: at shards = 1 the
        // weighted sharded engine matches the weighted dense engine in
        // trajectory, RNG stream, and every weighted metric.
        let n = 96;
        let weights = Weights::zipf(n as u64, 1.0, 40);
        let caps = Capacities::Uniform(50);
        let mut dense = LoadProcess::with_weights(
            Config::one_per_bin(n),
            Xoshiro256pp::seed_from(81),
            weights.clone(),
            caps.clone(),
        );
        let mut sharded =
            ShardedLoadProcess::with_weights(Config::one_per_bin(n), 81, 1, weights, caps);
        assert!(Engine::weighted(&sharded));
        for r in 0..160 {
            let a = dense.step_batched();
            let b = sharded.step_batched();
            assert_eq!(a, b, "departure count diverged at round {r}");
            assert_eq!(
                Engine::weighted_max_load(&dense),
                Engine::weighted_max_load(&sharded),
                "weighted max load diverged at round {r}"
            );
            assert_eq!(
                Engine::capacity_violations(&dense),
                Engine::capacity_violations(&sharded),
                "violation count diverged at round {r}"
            );
            assert_eq!(dense.config(), Engine::config(&sharded), "round {r}");
        }
        assert_eq!(Engine::total_weight(&dense), Engine::total_weight(&sharded));
        let a = Engine::snapshot(&dense).unwrap();
        let b = Engine::snapshot(&sharded).unwrap();
        assert_eq!(a.weighted, b.weighted, "identical weighted sections");
        assert_eq!(a.entries, b.entries);
    }

    #[test]
    fn weighted_multi_shard_conserves_weight_and_is_reproducible() {
        let make = || {
            ShardedLoadProcess::with_weights(
                Config::one_per_bin(128),
                82,
                4,
                Weights::zipf(128, 1.0, 30),
                Capacities::Uniform(40),
            )
        };
        let mut a = make();
        let mut b = make();
        let total = Engine::total_weight(&a);
        for _ in 0..120 {
            // step and step_batched share the weighted round body.
            a.step();
            b.step_batched();
            assert_eq!(Engine::total_weight(&a), total);
        }
        assert_eq!(Engine::config(&a), Engine::config(&b));
        assert_eq!(Engine::weighted_max_load(&a), Engine::weighted_max_load(&b));
        assert!(Engine::weighted_max_load(&a) >= u64::from(Engine::max_load(&a)));
    }

    #[test]
    fn weighted_snapshot_round_trips_at_any_shard_count() {
        for shards in [1usize, 3, 4] {
            let mut p = ShardedLoadProcess::with_weights(
                Config::one_per_bin(60),
                83,
                shards,
                Weights::zipf(60, 1.0, 20),
                Capacities::Uniform(25),
            );
            p.run_silent(21);
            let snap = Engine::snapshot(&p).expect("sharded engine snapshots");
            assert_eq!(snap.version, SNAPSHOT_VERSION_WEIGHTED);
            let mut q = ShardedLoadProcess::from_snapshot(&snap).unwrap();
            assert_eq!(Engine::total_weight(&q), Engine::total_weight(&p));
            assert_eq!(Engine::capacities(&q), &Capacities::Uniform(25));
            for _ in 0..40 {
                p.step_batched();
                q.step_batched();
            }
            assert_eq!(Engine::config(&p), Engine::config(&q), "shards={shards}");
            assert_eq!(Engine::snapshot(&p), Engine::snapshot(&q));
        }
    }

    #[test]
    fn unit_weights_build_the_same_sharded_engine() {
        let mut plain = ShardedLoadProcess::legitimate_start(64, 84, 4);
        let mut unit = ShardedLoadProcess::with_weights(
            Config::one_per_bin(64),
            84,
            4,
            Weights::Explicit(vec![1; 64]),
            Capacities::Unbounded,
        );
        assert!(unit.weighted.is_none(), "all-ones collapses to no overlay");
        for _ in 0..80 {
            plain.step_batched();
            unit.step_batched();
        }
        assert_eq!(Engine::snapshot(&plain), Engine::snapshot(&unit));
    }

    #[test]
    fn weighted_place_draws_from_shard_zero() {
        let mut p = ShardedLoadProcess::with_weights(
            Config::one_per_bin(32),
            85,
            2,
            Weights::zipf(32, 1.0, 20),
            Capacities::Unbounded,
        );
        let total = Engine::total_weight(&p);
        let b = Engine::place_weighted(&mut p, 9);
        assert_eq!(Engine::total_weight(&p), total + 9);
        assert!(Engine::weighted_bin_load(&p, b) >= 9);
        assert!(Engine::depart(&mut p, b));
        assert_eq!(p.balls(), 32);
        p.run_silent(10);
        assert_eq!(p.balls(), 32);
    }

    #[test]
    fn shard_streams_are_decorrelated() {
        let mut r0 = shard_rng(99, 0);
        let mut r1 = shard_rng(99, 1);
        let mut r2 = shard_rng(99, 2);
        let same01 = (0..64).filter(|_| r0.next_u64() == r1.next_u64()).count();
        let same12 = (0..64).filter(|_| r1.next_u64() == r2.next_u64()).count();
        assert_eq!(same01 + same12, 0);
    }
}
