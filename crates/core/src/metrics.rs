//! Round observers: streaming metrics computed while a process runs.
//!
//! Engines call [`RoundObserver::observe`] once per round *after* the round's
//! re-assignment completes (so round `t ≥ 1` observations correspond to the
//! paper's `Q(t)`). Observers are composable via tuples, so an experiment can
//! track max load, empty-bin counts and legitimacy in one pass without
//! re-scanning the load vector more than each observer needs.

use crate::config::{Config, LegitimacyThreshold};
use crate::engine::Engine;

/// A streaming, per-round metric.
pub trait RoundObserver {
    /// Called once per completed round with the round index (1-based) and the
    /// configuration reached at the end of that round.
    fn observe(&mut self, round: u64, config: &Config);
}

/// The no-op observer, for runs where only the final state matters.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObserver;

impl RoundObserver for NullObserver {
    #[inline]
    fn observe(&mut self, _round: u64, _config: &Config) {}
}

impl<A: RoundObserver, B: RoundObserver> RoundObserver for (A, B) {
    #[inline]
    fn observe(&mut self, round: u64, config: &Config) {
        self.0.observe(round, config);
        self.1.observe(round, config);
    }
}

impl<A: RoundObserver, B: RoundObserver, C: RoundObserver> RoundObserver for (A, B, C) {
    #[inline]
    fn observe(&mut self, round: u64, config: &Config) {
        self.0.observe(round, config);
        self.1.observe(round, config);
        self.2.observe(round, config);
    }
}

impl<T: RoundObserver + ?Sized> RoundObserver for &mut T {
    #[inline]
    fn observe(&mut self, round: u64, config: &Config) {
        (**self).observe(round, config);
    }
}

/// Tracks the maximum load seen over the whole run: the paper's
/// `M_T = max_{t ≤ T} M(t)` (Lemma 3).
#[derive(Debug, Default, Clone)]
pub struct MaxLoadTracker {
    max: u32,
    argmax_round: u64,
    rounds: u64,
    sum_of_round_max: u64,
}

impl MaxLoadTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// `max_{t ≤ T} M(t)` over the observed window.
    pub fn window_max(&self) -> u32 {
        self.max
    }

    /// First round at which the window max was attained.
    pub fn argmax_round(&self) -> u64 {
        self.argmax_round
    }

    /// Mean of the per-round maximum load.
    pub fn mean_round_max(&self) -> f64 {
        if self.rounds == 0 {
            return 0.0;
        }
        self.sum_of_round_max as f64 / self.rounds as f64
    }

    /// Number of rounds observed.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Folds one round's pre-computed max load in — the allocation-free
    /// primitive behind both [`RoundObserver::observe`] and the sparse
    /// engines' [`ObserverStack::observe_engine`] path.
    #[inline]
    pub fn record(&mut self, round: u64, max_load: u32) {
        if max_load > self.max {
            self.max = max_load;
            self.argmax_round = round;
        }
        self.rounds += 1;
        self.sum_of_round_max += max_load as u64;
    }
}

impl RoundObserver for MaxLoadTracker {
    #[inline]
    fn observe(&mut self, round: u64, config: &Config) {
        self.record(round, config.max_load());
    }
}

/// Tracks the number of empty bins per round: the quantity Lemma 1/2 bounds
/// below by `n/4` (after the first round) over polynomial windows.
#[derive(Debug, Clone)]
pub struct EmptyBinsTracker {
    /// Rounds strictly before this one are ignored (the paper's bound holds
    /// from round 1 onward; pass 1 to skip nothing, 2 to skip round 1).
    from_round: u64,
    min_empty: usize,
    min_round: u64,
    sum_empty: u64,
    rounds: u64,
    violations_below_quarter: u64,
}

impl EmptyBinsTracker {
    /// Observes from round `from_round` (inclusive) onward.
    pub fn starting_at(from_round: u64) -> Self {
        Self {
            from_round,
            min_empty: usize::MAX,
            min_round: 0,
            sum_empty: 0,
            rounds: 0,
            violations_below_quarter: 0,
        }
    }

    /// Creates a tracker observing from round 1.
    pub fn new() -> Self {
        Self::starting_at(1)
    }

    /// Minimum number of empty bins over the observed window.
    pub fn min_empty(&self) -> usize {
        if self.rounds == 0 {
            0
        } else {
            self.min_empty
        }
    }

    /// Round attaining the minimum.
    pub fn min_round(&self) -> u64 {
        self.min_round
    }

    /// Mean number of empty bins per round.
    pub fn mean_empty(&self) -> f64 {
        if self.rounds == 0 {
            return 0.0;
        }
        self.sum_empty as f64 / self.rounds as f64
    }

    /// Number of observed rounds with strictly fewer than `n/4` empty bins —
    /// the event Lemma 2 proves has probability `e^{-γn}` per window.
    pub fn violations_below_quarter(&self) -> u64 {
        self.violations_below_quarter
    }

    /// Number of observed rounds.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Whether this round is inside the observed window (callers on the
    /// cheap-accessor path check before computing the empty-bin count).
    #[inline]
    pub fn observing(&self, round: u64) -> bool {
        round >= self.from_round
    }

    /// Folds one round's pre-computed empty-bin count over `n` bins in.
    #[inline]
    pub fn record(&mut self, round: u64, empty: usize, n: usize) {
        if round < self.from_round {
            return;
        }
        if empty < self.min_empty {
            self.min_empty = empty;
            self.min_round = round;
        }
        if 4 * empty < n {
            self.violations_below_quarter += 1;
        }
        self.sum_empty += empty as u64;
        self.rounds += 1;
    }
}

impl Default for EmptyBinsTracker {
    fn default() -> Self {
        Self::new()
    }
}

impl RoundObserver for EmptyBinsTracker {
    #[inline]
    fn observe(&mut self, round: u64, config: &Config) {
        self.record(round, config.empty_bins(), config.n());
    }
}

/// Tracks legitimacy: the first round a legitimate configuration is reached
/// (Theorem 1(b) convergence) and any later violations (Theorem 1(a)
/// stability).
#[derive(Debug, Clone)]
pub struct LegitimacyTracker {
    threshold: LegitimacyThreshold,
    first_legitimate: Option<u64>,
    violations_after_first: u64,
    rounds: u64,
}

impl LegitimacyTracker {
    /// Creates a tracker with the given legitimacy policy.
    pub fn new(threshold: LegitimacyThreshold) -> Self {
        Self {
            threshold,
            first_legitimate: None,
            violations_after_first: 0,
            rounds: 0,
        }
    }

    /// First observed round whose configuration was legitimate, if any.
    pub fn first_legitimate_round(&self) -> Option<u64> {
        self.first_legitimate
    }

    /// Rounds that were illegitimate *after* the first legitimate round —
    /// zero w.h.p. by Theorem 1(a).
    pub fn violations_after_first(&self) -> u64 {
        self.violations_after_first
    }

    /// Number of observed rounds.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Folds one round's pre-computed max load over `n` bins in (legitimacy
    /// is `max_load ≤ bound(n)`, exactly [`LegitimacyThreshold::is_legitimate`]).
    #[inline]
    pub fn record(&mut self, round: u64, max_load: u32, n: usize) {
        self.rounds += 1;
        let legit = max_load <= self.threshold.bound(n);
        match (self.first_legitimate, legit) {
            (None, true) => self.first_legitimate = Some(round),
            (Some(_), false) => self.violations_after_first += 1,
            _ => {}
        }
    }
}

impl RoundObserver for LegitimacyTracker {
    #[inline]
    fn observe(&mut self, round: u64, config: &Config) {
        self.record(round, config.max_load(), config.n());
    }
}

/// Tracks the **weighted** maximum load over the run — the weighted
/// counterpart of [`MaxLoadTracker`]. Weighted loads live on the engine
/// (the [`Config`] only knows ball counts), so this tracker is fed through
/// [`ObserverStack::observe_engine`]'s accessor path; on a unit engine it
/// degenerates to the unit max load ([`Engine::weighted_max_load`]'s
/// default).
#[derive(Debug, Default, Clone)]
pub struct WeightedLoadTracker {
    max: u64,
    argmax_round: u64,
    rounds: u64,
    sum_of_round_max: u64,
}

impl WeightedLoadTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// `max_{t ≤ T} W(t)` — the window maximum of the per-round weighted
    /// max load.
    pub fn window_max(&self) -> u64 {
        self.max
    }

    /// First round at which the window max was attained.
    pub fn argmax_round(&self) -> u64 {
        self.argmax_round
    }

    /// Mean of the per-round weighted maximum load.
    pub fn mean_round_max(&self) -> f64 {
        if self.rounds == 0 {
            return 0.0;
        }
        self.sum_of_round_max as f64 / self.rounds as f64
    }

    /// Number of rounds observed.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Folds one round's pre-computed weighted max load in.
    #[inline]
    pub fn record(&mut self, round: u64, weighted_max: u64) {
        if weighted_max > self.max {
            self.max = weighted_max;
            self.argmax_round = round;
        }
        self.rounds += 1;
        self.sum_of_round_max += weighted_max;
    }
}

/// Tracks capacity violations ([`Engine::capacity_violations`]): how often
/// and how badly bins exceed their bounds over a run. Capacities are
/// *observed*, never enforced, so this tracker is the whole story of a
/// capacity-constrained run. Engine-path only, like [`WeightedLoadTracker`];
/// on an unbounded engine every round records zero.
#[derive(Debug, Default, Clone)]
pub struct CapacityTracker {
    max_violations: u64,
    argmax_round: u64,
    rounds_in_violation: u64,
    sum_violations: u64,
    rounds: u64,
}

impl CapacityTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Largest per-round violation count seen.
    pub fn max_violations(&self) -> u64 {
        self.max_violations
    }

    /// First round attaining the maximum violation count.
    pub fn argmax_round(&self) -> u64 {
        self.argmax_round
    }

    /// Number of observed rounds with at least one bin over its bound.
    pub fn rounds_in_violation(&self) -> u64 {
        self.rounds_in_violation
    }

    /// Mean violating-bin count per round.
    pub fn mean_violations(&self) -> f64 {
        if self.rounds == 0 {
            return 0.0;
        }
        self.sum_violations as f64 / self.rounds as f64
    }

    /// Number of rounds observed.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Folds one round's pre-computed violating-bin count in.
    #[inline]
    pub fn record(&mut self, round: u64, violations: u64) {
        if violations > self.max_violations {
            self.max_violations = violations;
            self.argmax_round = round;
        }
        if violations > 0 {
            self.rounds_in_violation += 1;
        }
        self.sum_violations += violations;
        self.rounds += 1;
    }
}

/// A single recorded trajectory row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrajectoryPoint {
    /// Round index of this point.
    pub round: u64,
    /// Maximum load at this round.
    pub max_load: u32,
    /// Number of empty bins at this round.
    pub empty_bins: usize,
    /// Number of non-empty bins at this round.
    pub nonempty_bins: usize,
}

/// Records a (down-sampled) trajectory of summary statistics, for plotting
/// `M(t)` against the `√t` bound of \[12\] (experiment E10).
#[derive(Debug, Clone)]
pub struct TrajectoryRecorder {
    stride: u64,
    points: Vec<TrajectoryPoint>,
}

impl TrajectoryRecorder {
    /// Records every `stride`-th round (stride ≥ 1); round 1 and every
    /// multiple of `stride` are kept.
    pub fn with_stride(stride: u64) -> Self {
        assert!(stride >= 1);
        Self {
            stride,
            points: Vec::new(),
        }
    }

    /// The recorded points, in round order.
    pub fn points(&self) -> &[TrajectoryPoint] {
        &self.points
    }

    /// Consumes the recorder, returning its points.
    pub fn into_points(self) -> Vec<TrajectoryPoint> {
        self.points
    }

    /// Whether this round would be sampled (callers on the cheap-accessor
    /// path check before computing the point's statistics).
    #[inline]
    pub fn wants(&self, round: u64) -> bool {
        round == 1 || round % self.stride == 0
    }

    /// Appends a pre-computed point for a sampled round.
    #[inline]
    pub fn record(&mut self, round: u64, max_load: u32, empty_bins: usize, nonempty_bins: usize) {
        self.points.push(TrajectoryPoint {
            round,
            max_load,
            empty_bins,
            nonempty_bins,
        });
    }
}

impl RoundObserver for TrajectoryRecorder {
    #[inline]
    fn observe(&mut self, round: u64, config: &Config) {
        if self.wants(round) {
            self.record(
                round,
                config.max_load(),
                config.empty_bins(),
                config.nonempty_bins(),
            );
        }
    }
}

/// A composable stack of the standard round observers, replacing the
/// per-experiment ad-hoc closures and observer tuples: enable the metrics a
/// scenario needs, pass one value to the run loop, read the components back
/// afterwards.
///
/// ```
/// use rbb_core::prelude::*;
///
/// let mut p = LoadProcess::legitimate_start(128, 3);
/// let mut stack = ObserverStack::new().with_max_load().with_empty_bins();
/// p.run(500, &mut stack);
/// assert!(stack.max_load.as_ref().unwrap().window_max() >= 1);
/// assert!(stack.empty_bins.as_ref().unwrap().min_empty() >= 128 / 4);
/// ```
#[derive(Debug, Default, Clone)]
pub struct ObserverStack {
    /// Window max load (Theorem 1(a)), when enabled.
    pub max_load: Option<MaxLoadTracker>,
    /// Empty-bin floor (Lemmas 1–2), when enabled.
    pub empty_bins: Option<EmptyBinsTracker>,
    /// Legitimacy progress: first legitimate round + later violations
    /// (Theorem 1), when enabled.
    pub legitimacy: Option<LegitimacyTracker>,
    /// Down-sampled trajectory trace, when enabled.
    pub trace: Option<TrajectoryRecorder>,
    /// Weighted window max load, when enabled (engine path only — the
    /// dense-[`Config`] [`RoundObserver`] path has no weighted state and
    /// leaves it untouched).
    pub weighted_load: Option<WeightedLoadTracker>,
    /// Capacity-violation statistics, when enabled (engine path only, like
    /// [`ObserverStack::weighted_load`]).
    pub capacity: Option<CapacityTracker>,
}

impl ObserverStack {
    /// An empty stack: observing costs nothing until components are added.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a [`MaxLoadTracker`].
    pub fn with_max_load(mut self) -> Self {
        self.max_load = Some(MaxLoadTracker::new());
        self
    }

    /// Adds an [`EmptyBinsTracker`] (observing from round 1).
    pub fn with_empty_bins(mut self) -> Self {
        self.empty_bins = Some(EmptyBinsTracker::new());
        self
    }

    /// Adds a [`LegitimacyTracker`] with the given policy.
    pub fn with_legitimacy(mut self, threshold: LegitimacyThreshold) -> Self {
        self.legitimacy = Some(LegitimacyTracker::new(threshold));
        self
    }

    /// Adds a [`TrajectoryRecorder`] sampling every `stride`-th round.
    pub fn with_trace(mut self, stride: u64) -> Self {
        self.trace = Some(TrajectoryRecorder::with_stride(stride));
        self
    }

    /// Adds a [`WeightedLoadTracker`] (engine observation path only).
    pub fn with_weighted_load(mut self) -> Self {
        self.weighted_load = Some(WeightedLoadTracker::new());
        self
    }

    /// Adds a [`CapacityTracker`] (engine observation path only).
    pub fn with_capacity(mut self) -> Self {
        self.capacity = Some(CapacityTracker::new());
        self
    }

    /// Whether any component is enabled.
    pub fn is_empty(&self) -> bool {
        self.max_load.is_none()
            && self.empty_bins.is_none()
            && self.legitimacy.is_none()
            && self.trace.is_none()
            && self.weighted_load.is_none()
            && self.capacity.is_none()
    }

    /// Observes one completed round through the [`Engine`]'s cheap metric
    /// accessors instead of a dense [`Config`] snapshot. Values are
    /// identical to [`RoundObserver::observe`] on `engine.config()` — each
    /// statistic is computed at most once per round and only if a component
    /// needs it — but a sparse engine pays `O(#occupied)` instead of `O(n)`
    /// (and an empty stack pays nothing at all). The `rbb_sim` scenario
    /// driver observes exclusively through this method.
    pub fn observe_engine(&mut self, round: u64, engine: &dyn Engine) {
        let traced = self.trace.as_ref().is_some_and(|t| t.wants(round));
        let need_max = self.max_load.is_some() || self.legitimacy.is_some() || traced;
        let max = if need_max { engine.max_load() } else { 0 };
        let need_empty = traced || self.empty_bins.as_ref().is_some_and(|t| t.observing(round));
        let empty = if need_empty { engine.empty_bins() } else { 0 };
        if let Some(t) = &mut self.max_load {
            t.record(round, max);
        }
        if let Some(t) = &mut self.empty_bins {
            t.record(round, empty, engine.n());
        }
        if let Some(t) = &mut self.legitimacy {
            t.record(round, max, engine.n());
        }
        if let Some(t) = &mut self.trace {
            if t.wants(round) {
                t.record(round, max, empty, engine.nonempty_bins());
            }
        }
        if let Some(t) = &mut self.weighted_load {
            t.record(round, engine.weighted_max_load());
        }
        if let Some(t) = &mut self.capacity {
            t.record(round, engine.capacity_violations());
        }
    }
}

impl RoundObserver for ObserverStack {
    #[inline]
    fn observe(&mut self, round: u64, config: &Config) {
        if let Some(t) = &mut self.max_load {
            t.observe(round, config);
        }
        if let Some(t) = &mut self.empty_bins {
            t.observe(round, config);
        }
        if let Some(t) = &mut self.legitimacy {
            t.observe(round, config);
        }
        if let Some(t) = &mut self.trace {
            t.observe(round, config);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(loads: &[u32]) -> Config {
        Config::from_loads(loads.to_vec())
    }

    #[test]
    fn max_load_tracker_tracks_window_max() {
        let mut t = MaxLoadTracker::new();
        t.observe(1, &cfg(&[1, 2, 0]));
        t.observe(2, &cfg(&[3, 0, 0]));
        t.observe(3, &cfg(&[1, 1, 1]));
        assert_eq!(t.window_max(), 3);
        assert_eq!(t.argmax_round(), 2);
        assert_eq!(t.rounds(), 3);
        assert!((t.mean_round_max() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn max_load_argmax_is_first_attaining_round() {
        let mut t = MaxLoadTracker::new();
        t.observe(1, &cfg(&[5]));
        t.observe(2, &cfg(&[5]));
        assert_eq!(t.argmax_round(), 1);
    }

    #[test]
    fn empty_bins_tracker_min_and_violations() {
        let mut t = EmptyBinsTracker::new();
        t.observe(1, &cfg(&[0, 0, 1, 3])); // 2 empty of 4: ok (2 >= 1)
        t.observe(2, &cfg(&[1, 1, 1, 1])); // 0 empty: violation
        assert_eq!(t.min_empty(), 0);
        assert_eq!(t.min_round(), 2);
        assert_eq!(t.violations_below_quarter(), 1);
        assert!((t.mean_empty() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_bins_tracker_skips_early_rounds() {
        let mut t = EmptyBinsTracker::starting_at(2);
        t.observe(1, &cfg(&[1, 1])); // ignored
        assert_eq!(t.rounds(), 0);
        t.observe(2, &cfg(&[0, 2]));
        assert_eq!(t.rounds(), 1);
        assert_eq!(t.min_empty(), 1);
    }

    #[test]
    fn quarter_violation_boundary_is_strict() {
        // n = 4, exactly 1 empty bin: 4*1 == n, not a violation.
        let mut t = EmptyBinsTracker::new();
        t.observe(1, &cfg(&[0, 2, 1, 1]));
        assert_eq!(t.violations_below_quarter(), 0);
    }

    #[test]
    fn legitimacy_tracker_convergence_and_stability() {
        let thr = LegitimacyThreshold::new(1.0); // bound(16) = ceil(ln 16) = 3
        let mut t = LegitimacyTracker::new(thr);
        let n16_bad = Config::all_in_one(16, 16);
        let n16_good = Config::one_per_bin(16);
        t.observe(1, &n16_bad);
        assert_eq!(t.first_legitimate_round(), None);
        t.observe(2, &n16_good);
        assert_eq!(t.first_legitimate_round(), Some(2));
        t.observe(3, &n16_bad);
        assert_eq!(t.violations_after_first(), 1);
    }

    #[test]
    fn trajectory_recorder_strides() {
        let mut t = TrajectoryRecorder::with_stride(3);
        for r in 1..=9 {
            t.observe(r, &cfg(&[1, 0]));
        }
        let rounds: Vec<u64> = t.points().iter().map(|p| p.round).collect();
        assert_eq!(rounds, vec![1, 3, 6, 9]);
    }

    #[test]
    fn tuple_observer_composes() {
        let mut pair = (MaxLoadTracker::new(), EmptyBinsTracker::new());
        pair.observe(1, &cfg(&[0, 4]));
        assert_eq!(pair.0.window_max(), 4);
        assert_eq!(pair.1.min_empty(), 1);
    }

    #[test]
    fn null_observer_is_noop() {
        let mut o = NullObserver;
        o.observe(1, &cfg(&[1]));
    }

    #[test]
    fn observer_stack_updates_enabled_components_only() {
        let mut stack = ObserverStack::new().with_max_load().with_trace(2);
        stack.observe(1, &cfg(&[0, 4]));
        stack.observe(2, &cfg(&[2, 2]));
        let max = stack.max_load.as_ref().unwrap();
        assert_eq!(max.window_max(), 4);
        assert_eq!(max.rounds(), 2);
        assert!(stack.empty_bins.is_none());
        assert!(stack.legitimacy.is_none());
        let rounds: Vec<u64> = stack
            .trace
            .as_ref()
            .unwrap()
            .points()
            .iter()
            .map(|p| p.round)
            .collect();
        assert_eq!(rounds, vec![1, 2]);
    }

    #[test]
    fn observe_engine_matches_config_observation() {
        // The cheap-accessor path must produce the exact same statistics as
        // observing the dense configuration directly.
        use crate::process::LoadProcess;
        let mut p = LoadProcess::legitimate_start(64, 9);
        let mut via_engine = ObserverStack::new()
            .with_max_load()
            .with_empty_bins()
            .with_legitimacy(LegitimacyThreshold::default())
            .with_trace(3);
        let mut via_config = via_engine.clone();
        for _ in 0..120 {
            p.step();
            via_engine.observe_engine(p.round(), &p);
            via_config.observe(p.round(), p.config());
        }
        let (a, b) = (&via_engine, &via_config);
        assert_eq!(
            a.max_load.as_ref().unwrap().window_max(),
            b.max_load.as_ref().unwrap().window_max()
        );
        assert_eq!(
            a.max_load.as_ref().unwrap().mean_round_max(),
            b.max_load.as_ref().unwrap().mean_round_max()
        );
        assert_eq!(
            a.empty_bins.as_ref().unwrap().min_empty(),
            b.empty_bins.as_ref().unwrap().min_empty()
        );
        assert_eq!(
            a.empty_bins.as_ref().unwrap().violations_below_quarter(),
            b.empty_bins.as_ref().unwrap().violations_below_quarter()
        );
        assert_eq!(
            a.legitimacy.as_ref().unwrap().first_legitimate_round(),
            b.legitimacy.as_ref().unwrap().first_legitimate_round()
        );
        assert_eq!(
            a.trace.as_ref().unwrap().points(),
            b.trace.as_ref().unwrap().points()
        );
    }

    #[test]
    fn observer_stack_is_empty_reports_components() {
        assert!(ObserverStack::new().is_empty());
        assert!(!ObserverStack::new().with_max_load().is_empty());
        assert!(!ObserverStack::new().with_trace(2).is_empty());
        assert!(!ObserverStack::new().with_weighted_load().is_empty());
        assert!(!ObserverStack::new().with_capacity().is_empty());
    }

    #[test]
    fn weighted_load_tracker_tracks_window_max() {
        let mut t = WeightedLoadTracker::new();
        t.record(1, 10);
        t.record(2, 40);
        t.record(3, 40);
        t.record(4, 6);
        assert_eq!(t.window_max(), 40);
        assert_eq!(t.argmax_round(), 2);
        assert_eq!(t.rounds(), 4);
        assert!((t.mean_round_max() - 24.0).abs() < 1e-12);
    }

    #[test]
    fn capacity_tracker_counts_violating_rounds() {
        let mut t = CapacityTracker::new();
        t.record(1, 0);
        t.record(2, 3);
        t.record(3, 1);
        t.record(4, 0);
        assert_eq!(t.max_violations(), 3);
        assert_eq!(t.argmax_round(), 2);
        assert_eq!(t.rounds_in_violation(), 2);
        assert_eq!(t.rounds(), 4);
        assert!((t.mean_violations() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_observers_on_a_weighted_engine() {
        use crate::config::Config;
        use crate::process::LoadProcess;
        use crate::rng::Xoshiro256pp;
        use crate::weights::{Capacities, Weights};
        let n = 32;
        let mut p = LoadProcess::with_weights(
            Config::all_in_one(n, n as u32),
            Xoshiro256pp::seed_from(5),
            Weights::zipf(n as u64, 1.0, 16),
            Capacities::Uniform(4),
        );
        let mut stack = ObserverStack::new()
            .with_max_load()
            .with_weighted_load()
            .with_capacity();
        for _ in 0..200 {
            p.step();
            stack.observe_engine(p.round(), &p);
        }
        let wl = stack.weighted_load.as_ref().unwrap();
        let ml = stack.max_load.as_ref().unwrap();
        // All mass starts in one bin: the first observed weighted max is
        // near the total weight and dominates the unit max throughout.
        assert!(wl.window_max() >= u64::from(ml.window_max()));
        assert_eq!(wl.rounds(), 200);
        // A 16-weighted ball in a capacity-4 world: violations must occur.
        let cap = stack.capacity.as_ref().unwrap();
        assert!(cap.max_violations() >= 1);
        assert!(cap.rounds_in_violation() >= 1);
        assert_eq!(cap.rounds(), 200);
    }

    #[test]
    fn weighted_observers_degenerate_on_unit_engines() {
        use crate::process::LoadProcess;
        // On a unit, unbounded engine the weighted tracker mirrors the unit
        // max-load tracker and the capacity tracker stays at zero.
        let mut p = LoadProcess::legitimate_start(64, 9);
        let mut stack = ObserverStack::new()
            .with_max_load()
            .with_weighted_load()
            .with_capacity();
        for _ in 0..100 {
            p.step();
            stack.observe_engine(p.round(), &p);
        }
        let wl = stack.weighted_load.unwrap();
        let ml = stack.max_load.unwrap();
        assert_eq!(wl.window_max(), u64::from(ml.window_max()));
        assert_eq!(wl.argmax_round(), ml.argmax_round());
        let cap = stack.capacity.unwrap();
        assert_eq!(cap.max_violations(), 0);
        assert_eq!(cap.rounds_in_violation(), 0);
    }

    #[test]
    fn observer_stack_matches_standalone_trackers() {
        let mut stack = ObserverStack::new()
            .with_max_load()
            .with_empty_bins()
            .with_legitimacy(LegitimacyThreshold::default());
        let mut solo = (
            MaxLoadTracker::new(),
            EmptyBinsTracker::new(),
            LegitimacyTracker::new(LegitimacyThreshold::default()),
        );
        for (r, c) in [(1, cfg(&[0, 0, 3, 1])), (2, cfg(&[1, 1, 1, 1]))] {
            stack.observe(r, &c);
            solo.observe(r, &c);
        }
        assert_eq!(stack.max_load.unwrap().window_max(), solo.0.window_max());
        assert_eq!(stack.empty_bins.unwrap().min_empty(), solo.1.min_empty());
        assert_eq!(
            stack.legitimacy.unwrap().first_legitimate_round(),
            solo.2.first_legitimate_round()
        );
    }
}
