//! The Lemma-5 Markov chain: the single-bin drift chain behind the Tetris
//! analysis.
//!
//! `Z_t` models the load of one fixed bin in the Tetris process, started at
//! `k` and absorbed at 0:
//!
//! ```text
//! Z_t = 0                      if Z_{t-1} = 0
//! Z_t = Z_{t-1} − 1 + X_t      if Z_{t-1} ≥ 1,    X_t ~ B((3/4)n, 1/n) i.i.d.
//! ```
//!
//! Lemma 5: for any start `k` and any `t ≥ 8k`, `P_k(τ > t) ≤ e^{−t/144}`
//! where `τ = inf{t : Z_t = 0}`. The proof is a Chernoff bound on
//! `Σ X_i > (7/8)t` (with `δ = 1/6`, mean `(3/4)t`).

use crate::rng::Xoshiro256pp;
use crate::sampling::binomial;

/// The absorbed drift chain of Lemma 5.
#[derive(Debug, Clone)]
pub struct ZChain {
    n: u64,
    trials: u64,
    p: f64,
    state: u64,
    rng: Xoshiro256pp,
    t: u64,
}

impl ZChain {
    /// Creates the chain with bin-count parameter `n` (arrivals are
    /// `B(⌊3n/4⌋, 1/n)`), started at `k`.
    ///
    /// # RNG stream
    ///
    /// Takes ownership of `rng` as the chain's stream; each step consumes the
    /// draws of one exact `Binomial(floor(3n/4), 1/n)` arrival sample (a
    /// data-dependent number of geometric draws, expected `O(1)`).
    pub fn new(n: usize, k: u64, rng: Xoshiro256pp) -> Self {
        assert!(n >= 2);
        Self {
            n: n as u64,
            trials: (3 * n as u64) / 4,
            p: 1.0 / n as f64,
            state: k,
            rng,
            t: 0,
        }
    }

    /// The bin-count parameter `n` of the arrival law.
    #[inline]
    pub fn n(&self) -> usize {
        self.n as usize
    }

    /// Current state `Z_t`.
    #[inline]
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Elapsed steps `t`.
    #[inline]
    pub fn t(&self) -> u64 {
        self.t
    }

    /// Whether the chain is absorbed (`Z_t = 0`).
    #[inline]
    pub fn absorbed(&self) -> bool {
        self.state == 0
    }

    /// Advances one step; returns the new state.
    pub fn step(&mut self) -> u64 {
        if self.state > 0 {
            let x = binomial(&mut self.rng, self.trials, self.p);
            self.state = self.state - 1 + x;
        }
        self.t += 1;
        self.state
    }

    /// Runs until absorption or `cap` steps; returns the absorption time `τ`
    /// if it occurred within the cap.
    pub fn absorption_time(&mut self, cap: u64) -> Option<u64> {
        if self.absorbed() {
            return Some(self.t);
        }
        while self.t < cap {
            self.step();
            if self.absorbed() {
                return Some(self.t);
            }
        }
        None
    }

    /// Expected one-step drift while non-absorbed:
    /// `E[X] − 1 = (3/4)·⌊·⌋/n − 1 ≈ −1/4`.
    pub fn expected_drift(&self) -> f64 {
        self.trials as f64 * self.p - 1.0
    }
}

/// The Lemma-5 Chernoff tail: `e^{−t/144}`, valid for `t ≥ 8k`.
#[inline]
pub fn lemma5_tail_bound(t: u64) -> f64 {
    (-(t as f64) / 144.0).exp()
}

/// Whether Lemma 5's hypothesis `t ≥ 8k` holds.
#[inline]
pub fn lemma5_applicable(k: u64, t: u64) -> bool {
    t >= 8 * k
}

/// Samples `trials` absorption times of the chain started at `k`, capping
/// each run at `cap` steps (a `None` is recorded as `cap + 1`, which keeps
/// empirical tails conservative). Returns the sorted times.
pub fn sample_absorption_times(n: usize, k: u64, trials: usize, cap: u64, seed: u64) -> Vec<u64> {
    let mut times: Vec<u64> = (0..trials)
        .map(|i| {
            // rbb-lint: allow(rng-construct, reason = "per-trial disjoint streams for absorption sampling; core cannot depend on rbb_sim::seed")
            let rng = Xoshiro256pp::stream(seed, i as u64);
            let mut chain = ZChain::new(n, k, rng);
            chain.absorption_time(cap).unwrap_or(cap + 1)
        })
        .collect();
    times.sort_unstable();
    times
}

/// Empirical tail `P(τ > t)` from a sorted sample.
pub fn empirical_tail(sorted_times: &[u64], t: u64) -> f64 {
    if sorted_times.is_empty() {
        return 0.0;
    }
    // Index of the first element > t.
    let idx = sorted_times.partition_point(|&x| x <= t);
    (sorted_times.len() - idx) as f64 / sorted_times.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_absorbing() {
        let mut z = ZChain::new(16, 0, Xoshiro256pp::seed_from(1));
        for _ in 0..10 {
            assert_eq!(z.step(), 0);
        }
        assert!(z.absorbed());
    }

    #[test]
    fn drift_is_about_minus_quarter() {
        let z = ZChain::new(1000, 5, Xoshiro256pp::seed_from(2));
        let d = z.expected_drift();
        assert!((d + 0.25).abs() < 0.01, "drift {d}");
    }

    #[test]
    fn chain_descends_from_small_start() {
        let mut z = ZChain::new(64, 3, Xoshiro256pp::seed_from(3));
        let tau = z.absorption_time(10_000).expect("must absorb");
        assert!(tau >= 3, "needs at least k steps to absorb");
    }

    #[test]
    fn absorption_time_immediate_at_zero() {
        let mut z = ZChain::new(64, 0, Xoshiro256pp::seed_from(4));
        assert_eq!(z.absorption_time(100), Some(0));
    }

    #[test]
    fn absorption_needs_at_least_k_steps() {
        // The state decreases by at most 1 per step.
        for k in [1u64, 5, 20] {
            let mut z = ZChain::new(128, k, Xoshiro256pp::seed_from(5 + k));
            let tau = z.absorption_time(100_000).unwrap();
            assert!(tau >= k, "k={k}, tau={tau}");
        }
    }

    #[test]
    fn empirical_tail_respects_lemma5_bound_scaled() {
        // Lemma 5 is loose (rate 1/144); the true decay is much faster.
        // Check: P_1(τ > 100) ≤ e^{-100/144} ≈ 0.50 — empirically it is tiny.
        let times = sample_absorption_times(256, 1, 2000, 10_000, 6);
        let emp = empirical_tail(&times, 100);
        assert!(lemma5_applicable(1, 100));
        assert!(emp <= lemma5_tail_bound(100), "emp {emp}");
        assert!(emp < 0.01, "true tail should be tiny, got {emp}");
    }

    #[test]
    fn empirical_tail_edges() {
        let times = vec![1, 2, 3, 10];
        assert_eq!(empirical_tail(&times, 0), 1.0);
        assert_eq!(empirical_tail(&times, 2), 0.5);
        assert_eq!(empirical_tail(&times, 10), 0.0);
        assert_eq!(empirical_tail(&[], 5), 0.0);
    }

    #[test]
    fn tail_bound_decreases() {
        assert!(lemma5_tail_bound(288) < lemma5_tail_bound(144));
        assert!((lemma5_tail_bound(144) - (-1.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn applicability_condition() {
        assert!(lemma5_applicable(2, 16));
        assert!(!lemma5_applicable(2, 15));
    }

    #[test]
    fn sampled_times_are_sorted_and_capped() {
        let times = sample_absorption_times(32, 4, 100, 500, 7);
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        assert!(times.iter().all(|&t| t <= 501));
    }
}
