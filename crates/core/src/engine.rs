//! The unified simulation surface: one trait in front of every engine.
//!
//! Every process in this workspace — [`LoadProcess`], [`BallProcess`],
//! [`Tetris`], [`BatchedTetris`], the d-choice and graph-walk engines in the
//! sibling crates — advances in synchronous rounds over a load
//! [`Config`]uration. [`Engine`] captures exactly that contract, so drivers
//! (the CLI, the `rbb_sim` scenario runner, the benchmark harness) can be
//! written once against `dyn Engine` instead of once per process, and the
//! historical per-process run families (`run` / `run_silent` / `run_batched`
//! / `run_rounds_batched` / `run_until`) collapse into the provided methods
//! here.
//!
//! # Scalar vs batched
//!
//! [`Engine::step`] is the scalar reference path; [`Engine::step_batched`]
//! is the throughput path and **defaults to `step`** for engines without a
//! dedicated batched kernel. Engines that do override it (the load and ball
//! engines) guarantee the two paths are **bit-identical** from equal state —
//! same trajectory, same RNG consumption — which their unit tests pin down.
//! The provided run family therefore drives `step_batched` unconditionally:
//! callers get the fastest available kernel without choosing between
//! drifting method variants.
//!
//! [`LoadProcess`]: crate::process::LoadProcess
//! [`BallProcess`]: crate::ball_process::BallProcess
//! [`Tetris`]: crate::tetris::Tetris
//! [`BatchedTetris`]: crate::tetris::BatchedTetris

use crate::config::Config;
use crate::metrics::RoundObserver;
use crate::snapshot::SnapshotState;
use crate::weights::Capacities;

/// A round-synchronous simulation engine over a load configuration.
///
/// The required surface is object-safe (the `rbb_sim` scenario factory hands
/// out `Box<dyn Engine>`); the generic run family is provided on top of it
/// for concrete engines.
///
/// ```
/// use rbb_core::prelude::*;
///
/// let mut p = LoadProcess::legitimate_start(64, 7);
/// let mut tracker = MaxLoadTracker::new();
/// p.run(1_000, &mut tracker); // batched hot path, observer per round
/// assert_eq!(p.round(), 1_000);
/// assert!(tracker.window_max() >= 1);
/// ```
pub trait Engine {
    /// Advances one round through the scalar reference path; returns the
    /// number of balls that moved this round.
    fn step(&mut self) -> usize;

    /// Advances one round through the batched hot path. Engines with a
    /// dedicated batched kernel guarantee bit-identical trajectories to
    /// [`step`](Engine::step) from equal state; the default is `step`.
    fn step_batched(&mut self) -> usize {
        self.step()
    }

    /// Current round index (0 before any step).
    fn round(&self) -> u64;

    /// Snapshot of the current load configuration — the uniform metric
    /// surface observers and stop conditions read.
    ///
    /// For engines whose canonical state is a dense load vector this is
    /// free; the sparse engine materializes (and caches) an `O(n)` snapshot
    /// on demand. Per-round drivers should therefore prefer the cheap
    /// accessors below ([`max_load`], [`empty_bins`], [`nonempty_bins`],
    /// [`bin_load`]) — [`crate::metrics::ObserverStack::observe_engine`] and
    /// the `rbb_sim` scenario loop only touch those, so a sparse round never
    /// pays `O(n)`.
    ///
    /// [`max_load`]: Engine::max_load
    /// [`empty_bins`]: Engine::empty_bins
    /// [`nonempty_bins`]: Engine::nonempty_bins
    /// [`bin_load`]: Engine::bin_load
    fn config(&self) -> &Config;

    /// Number of bins (nodes).
    fn n(&self) -> usize {
        self.config().n()
    }

    /// Current total ball (token) count.
    fn balls(&self) -> u64 {
        self.config().total_balls()
    }

    /// Maximum load `M(q)` of the current configuration. Default reads
    /// [`config`](Engine::config); sparse engines override it with an
    /// `O(#occupied)` scan.
    fn max_load(&self) -> u32 {
        self.config().max_load()
    }

    /// Number of empty bins. Default reads [`config`](Engine::config);
    /// sparse engines answer in `O(1)` (`n − #occupied`).
    fn empty_bins(&self) -> usize {
        self.config().empty_bins()
    }

    /// Number of non-empty bins (`|W|` — exactly next round's movers).
    fn nonempty_bins(&self) -> usize {
        self.config().nonempty_bins()
    }

    /// Load of one bin. Default indexes [`config`](Engine::config); sparse
    /// engines answer from their occupancy map in `O(1)`.
    fn bin_load(&self, bin: usize) -> u32 {
        self.config().loads()[bin]
    }

    /// Indices of the currently non-empty bins, for engines that can
    /// produce the list without materializing a dense configuration (the
    /// sparse engine). `None` means "derive it from `config()`" — the
    /// `all-emptied` stop condition uses this to initialize its worklist.
    fn nonempty_bins_list(&self) -> Option<Vec<u32>> {
        None
    }

    /// Whether [`apply_fault`](Engine::apply_fault) is supported. Engines
    /// whose state cannot replay an arbitrary placement (e.g. Tetris, whose
    /// ball count is not conserved) report `false` and the scenario layer
    /// rejects adversarial specs against them.
    fn supports_faults(&self) -> bool {
        false
    }

    /// The §4.1 adversary move: reassigns every ball, `placement[ball] =
    /// bin`. Panics if unsupported ([`supports_faults`] is the guard) or if
    /// the placement does not match the engine's ball count / bin range.
    ///
    /// [`supports_faults`]: Engine::supports_faults
    fn apply_fault(&mut self, placement: &[usize]) {
        let _ = placement;
        // rbb-lint: allow(panic, reason = "guarded by supports_faults(); the scenario factory rejects faulty specs for engines without support")
        panic!("this engine does not support adversarial reassignment");
    }

    /// Whether the incremental allocation surface
    /// ([`place`](Engine::place) / [`depart`](Engine::depart)) is supported.
    /// Only the load engines (dense, sparse, sharded) implement it; engines
    /// whose state is not a plain load vector (ball identities, Tetris
    /// non-conservation) report `false` and `rbb-serve` rejects allocation
    /// requests against them.
    fn supports_incremental(&self) -> bool {
        false
    }

    /// Places one **new** ball into a bin chosen uniformly at random from
    /// the engine's own RNG stream (the sharded engine draws from shard 0's
    /// stream), between rounds; returns the chosen bin and grows the ball
    /// count by one. Panics if unsupported
    /// ([`supports_incremental`](Engine::supports_incremental) is the guard)
    /// or if the ball count would overflow the `u32` load bound.
    fn place(&mut self) -> usize {
        // rbb-lint: allow(panic, reason = "guarded by supports_incremental(); rbb-serve rejects allocation requests for engines without support")
        panic!("this engine does not support incremental placement");
    }

    /// Removes one ball from `bin`, between rounds; returns `false` (a
    /// no-op) if the bin is empty or out of range. Panics if unsupported
    /// ([`supports_incremental`](Engine::supports_incremental) is the
    /// guard).
    fn depart(&mut self, bin: usize) -> bool {
        let _ = bin;
        // rbb-lint: allow(panic, reason = "guarded by supports_incremental(); rbb-serve rejects allocation requests for engines without support")
        panic!("this engine does not support incremental departure");
    }

    /// Whether the engine carries non-unit ball weights. `false` for every
    /// engine outside the weighted configurations of the load engines; when
    /// `false`, all the `weighted_*` accessors below degenerate to their
    /// unit counterparts.
    fn weighted(&self) -> bool {
        false
    }

    /// Total weight in the system. Equals [`balls`](Engine::balls) for unit
    /// engines.
    fn total_weight(&self) -> u64 {
        self.balls()
    }

    /// Maximum **weighted** load over all bins. Equals
    /// [`max_load`](Engine::max_load) for unit engines.
    fn weighted_max_load(&self) -> u64 {
        u64::from(self.max_load())
    }

    /// Weighted load of one bin. Equals [`bin_load`](Engine::bin_load) for
    /// unit engines.
    fn weighted_bin_load(&self, bin: usize) -> u64 {
        u64::from(self.bin_load(bin))
    }

    /// The per-bin capacity bounds the engine observes —
    /// [`Capacities::Unbounded`] unless configured otherwise (only the load
    /// engines accept capacities).
    fn capacities(&self) -> &Capacities {
        &Capacities::Unbounded
    }

    /// Number of bins whose weighted load currently exceeds their capacity.
    /// 0 under [`Capacities::Unbounded`]; the default otherwise scans all
    /// `n` bins, and the sparse engine overrides it with an `O(#occupied)`
    /// scan (empty bins never violate — capacities are ≥ 1).
    fn capacity_violations(&self) -> u64 {
        let caps = self.capacities();
        if caps.is_unbounded() {
            return 0;
        }
        (0..self.n())
            .filter(|&b| caps.bound(b).is_some_and(|c| self.weighted_bin_load(b) > c))
            .count() as u64
    }

    /// Places one **new** ball of weight `weight`, the weighted counterpart
    /// of [`place`](Engine::place) — same RNG draw, same returned bin. The
    /// default accepts only weight 1 (unit engines have nowhere to record a
    /// heavier ball); weighted load engines override it.
    fn place_weighted(&mut self, weight: u32) -> usize {
        assert_eq!(
            weight, 1,
            "this engine is not weighted: only weight-1 placements are supported"
        );
        self.place()
    }

    /// The engine's bit-exact resumable state (loads + RNG stream states +
    /// round counter), for engines that support serialized snapshots — see
    /// [`crate::snapshot`]. `None` for engines without snapshot support.
    fn snapshot(&self) -> Option<SnapshotState> {
        None
    }

    /// Coverage progress for engines that track a visited-set goal
    /// (traversal / token walks): `Some(true)` once every token has visited
    /// every node. `None` for engines without a coverage notion.
    fn covered(&self) -> Option<bool> {
        None
    }

    /// Minimum per-ball walk progress, for engines that carry ball
    /// identities (`Ω(t / log n)` under FIFO). `None` for load-only engines.
    fn min_progress(&self) -> Option<u64> {
        None
    }

    /// Runs `rounds` rounds through the batched hot path, invoking
    /// `observer` after each round.
    fn run(&mut self, rounds: u64, mut observer: impl RoundObserver)
    where
        Self: Sized,
    {
        for _ in 0..rounds {
            self.step_batched();
            observer.observe(self.round(), self.config());
        }
    }

    /// Runs `rounds` rounds through the batched hot path without
    /// observation — the throughput-critical entry point.
    fn run_silent(&mut self, rounds: u64)
    where
        Self: Sized,
    {
        for _ in 0..rounds {
            self.step_batched();
        }
    }

    /// Runs until `pred` holds for the current configuration or `max_rounds`
    /// elapse; returns the round at which the predicate first held (checked
    /// before the first step, so an immediately-true predicate returns the
    /// current round).
    fn run_until(&mut self, max_rounds: u64, mut pred: impl FnMut(&Config) -> bool) -> Option<u64>
    where
        Self: Sized,
    {
        if pred(self.config()) {
            return Some(self.round());
        }
        for _ in 0..max_rounds {
            self.step_batched();
            if pred(self.config()) {
                return Some(self.round());
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ball_process::BallProcess;
    use crate::metrics::{MaxLoadTracker, NullObserver};
    use crate::process::LoadProcess;
    use crate::rng::Xoshiro256pp;
    use crate::strategy::QueueStrategy;
    use crate::tetris::{BatchedTetris, Tetris};

    /// The trait surface works through a trait object (the scenario factory
    /// depends on this).
    #[test]
    fn engines_are_object_safe() {
        let engines: Vec<Box<dyn Engine>> = vec![
            Box::new(LoadProcess::legitimate_start(16, 1)),
            Box::new(BallProcess::legitimate_start(16, 1)),
            Box::new(Tetris::new(
                Config::one_per_bin(16),
                Xoshiro256pp::seed_from(1),
            )),
            Box::new(BatchedTetris::new(
                Config::one_per_bin(16),
                0.75,
                Xoshiro256pp::seed_from(1),
            )),
        ];
        for mut e in engines {
            assert_eq!(e.round(), 0);
            assert_eq!(e.n(), 16);
            e.step();
            e.step_batched();
            assert_eq!(e.round(), 2);
            assert!(e.config().n() == 16);
        }
    }

    #[test]
    fn provided_run_family_drives_batched_path() {
        // Trait run == inherent batched stepping, bit for bit.
        let mut via_trait = LoadProcess::legitimate_start(64, 3);
        let mut by_hand = via_trait.clone();
        via_trait.run_silent(200);
        for _ in 0..200 {
            by_hand.step_batched();
        }
        assert_eq!(via_trait.config(), by_hand.config());

        let mut tracker = MaxLoadTracker::new();
        let mut observed = LoadProcess::legitimate_start(64, 3);
        observed.run(200, &mut tracker);
        assert_eq!(tracker.rounds(), 200);
        assert_eq!(observed.config(), via_trait.config());
    }

    #[test]
    fn run_until_checks_before_first_step() {
        let mut p = LoadProcess::legitimate_start(16, 4);
        assert_eq!(p.run_until(10, |_| true), Some(0));
        assert_eq!(p.round(), 0);
        assert_eq!(p.run_until(5, |c| c.max_load() > 1_000), None);
        assert_eq!(p.round(), 5);
    }

    #[test]
    fn default_apply_fault_panics_and_supports_faults_gates_it() {
        let mut t = Tetris::new(Config::one_per_bin(8), Xoshiro256pp::seed_from(5));
        assert!(!Engine::supports_faults(&t));
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            t.apply_fault(&[0; 8]);
        }));
        assert!(r.is_err());
    }

    #[test]
    fn incremental_and_snapshot_defaults_are_gated() {
        let mut t = Tetris::new(Config::one_per_bin(8), Xoshiro256pp::seed_from(5));
        assert!(!Engine::supports_incremental(&t));
        assert!(Engine::snapshot(&t).is_none());
        let place = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            t.place();
        }));
        assert!(place.is_err(), "default place must panic");
        let depart = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            t.depart(0);
        }));
        assert!(depart.is_err(), "default depart must panic");
    }

    #[test]
    fn ball_engine_reports_progress_load_engine_does_not() {
        let mut bp = BallProcess::legitimate_start(16, 6);
        bp.run(50, NullObserver);
        assert!(Engine::min_progress(&bp).expect("ball engine tracks progress") > 0);
        let lp = LoadProcess::legitimate_start(16, 6);
        assert_eq!(Engine::min_progress(&lp), None);
    }

    #[test]
    fn weighted_defaults_degenerate_to_unit() {
        let mut p = LoadProcess::legitimate_start(16, 9);
        p.run_silent(20);
        assert!(!Engine::weighted(&p));
        assert_eq!(Engine::total_weight(&p), Engine::balls(&p));
        assert_eq!(
            Engine::weighted_max_load(&p),
            u64::from(Engine::max_load(&p))
        );
        assert_eq!(
            Engine::weighted_bin_load(&p, 3),
            u64::from(Engine::bin_load(&p, 3))
        );
        assert!(Engine::capacities(&p).is_unbounded());
        assert_eq!(Engine::capacity_violations(&p), 0);
        let b = Engine::place_weighted(&mut p, 1);
        assert!(b < 16);
        let heavy = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            Engine::place_weighted(&mut p, 2);
        }));
        assert!(heavy.is_err(), "unit engines must reject weight > 1");
    }

    #[test]
    fn fault_via_trait_matches_inherent_reassign() {
        let mut a = LoadProcess::legitimate_start(8, 7);
        let mut b = a.clone();
        a.apply_fault(&[0; 8]);
        b.adversarial_reassign(Config::all_in_one(8, 8));
        assert_eq!(a.config(), b.config());

        let mut bp = BallProcess::new(
            Config::one_per_bin(4),
            QueueStrategy::Fifo,
            Xoshiro256pp::seed_from(8),
        );
        assert!(bp.supports_faults());
        bp.apply_fault(&[2, 2, 2, 2]);
        assert_eq!(bp.config().loads()[2], 4);
        bp.validate().unwrap();
    }
}
