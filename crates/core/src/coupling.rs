//! The Lemma-3 coupling between the original process and Tetris.
//!
//! Both processes start from the *same* configuration (which the lemma
//! requires to have at least `n/4` empty bins) and run in a joint probability
//! space:
//!
//! * **Case (i)** — the original process has `h ≤ (3/4)n` non-empty bins:
//!   `h` of Tetris's `(3/4)n` new balls are thrown into exactly the bins the
//!   original process's movers landed in (destination reuse); the remaining
//!   `(3/4)n − h` are thrown independently u.a.r.
//! * **Case (ii)** — `h > (3/4)n`: the Tetris round runs independently.
//!
//! As long as case (ii) never fires, Tetris *dominates* the original process
//! bin-wise (`Q̂_u(t) ≥ Q_u(t)` for every `u`, every `t`), hence
//! `M̂_T ≥ M_T`. Lemma 2 says case (ii) occurs within a `poly(n)` window only
//! with probability `e^{-γn}`. [`CoupledRun`] executes the joint process and
//! *verifies* domination every round, which is exactly experiment E04.

use crate::config::Config;
use crate::process::LoadProcess;
use crate::rng::Xoshiro256pp;
use crate::tetris::Tetris;

/// Outcome summary of a coupled run.
#[derive(Debug, Clone, PartialEq)]
pub struct CouplingReport {
    /// Rounds executed.
    pub rounds: u64,
    /// Rounds in which case (ii) applied (independent Tetris round).
    pub case_ii_rounds: u64,
    /// First round at which case (ii) applied, if any.
    pub first_case_ii: Option<u64>,
    /// Rounds (strictly before any case (ii)) where bin-wise domination
    /// failed. The lemma guarantees this is always 0; a non-zero value would
    /// falsify the coupling construction.
    pub domination_violations_before_case_ii: u64,
    /// Rounds where domination failed at any point (after case (ii) it may
    /// legitimately fail).
    pub domination_violations_total: u64,
    /// `M_T`: window max load of the original process.
    pub original_window_max: u32,
    /// `M̂_T`: window max load of the Tetris process.
    pub tetris_window_max: u32,
}

impl CouplingReport {
    /// Whether the run certifies the lemma's conclusion `M̂_T ≥ M_T` via
    /// per-round domination (vacuously true if case (ii) never fired).
    pub fn domination_certified(&self) -> bool {
        self.domination_violations_before_case_ii == 0
    }
}

/// Joint execution of the original process and its Tetris majorant.
///
/// ```
/// use rbb_core::prelude::*;
///
/// // All-in-one trivially has ≥ n/4 empty bins (the Lemma 3 precondition).
/// let run = CoupledRun::new(Config::all_in_one(64, 64), 5).unwrap();
/// let report = run.run(500);
/// assert!(report.domination_certified());
/// assert!(report.tetris_window_max >= report.original_window_max);
/// ```
#[derive(Debug, Clone)]
pub struct CoupledRun {
    original: LoadProcess,
    tetris: Tetris,
    dests: Vec<usize>,
    case_ii_rounds: u64,
    first_case_ii: Option<u64>,
    violations_before: u64,
    violations_total: u64,
    original_max: u32,
    tetris_max: u32,
}

impl CoupledRun {
    /// Starts both processes from `config`. `seed` derives two independent
    /// RNG streams (one per process; the coupling additionally shares the
    /// original's destination draws with Tetris in case (i)).
    ///
    /// Returns `Err` if the configuration violates the lemma's precondition
    /// of at least `n/4` empty bins.
    pub fn new(config: Config, seed: u64) -> Result<Self, String> {
        let n = config.n();
        if 4 * config.empty_bins() < n {
            return Err(format!(
                "Lemma 3 precondition violated: {} empty bins < n/4 = {}",
                config.empty_bins(),
                n as f64 / 4.0
            ));
        }
        Ok(Self::new_unchecked(config, seed))
    }

    /// Starts the coupling without the empty-bins precondition (useful for
    /// probing *why* the precondition is needed).
    pub fn new_unchecked(config: Config, seed: u64) -> Self {
        // rbb-lint: allow(rng-construct, reason = "the Lemma-3 coupling derives two disjoint streams from one seed; core cannot depend on rbb_sim::seed")
        let original = LoadProcess::new(config.clone(), Xoshiro256pp::stream(seed, 0));
        // rbb-lint: allow(rng-construct, reason = "second disjoint stream of the Lemma-3 coupling")
        let tetris = Tetris::new(config, Xoshiro256pp::stream(seed, 1));
        Self {
            original,
            tetris,
            dests: Vec::new(),
            case_ii_rounds: 0,
            first_case_ii: None,
            violations_before: 0,
            violations_total: 0,
            original_max: 0,
            tetris_max: 0,
        }
    }

    /// Advances both processes one coupled round; returns `true` if Tetris
    /// dominated the original bin-wise at the end of the round.
    pub fn step(&mut self) -> bool {
        let budget = self.tetris.arrivals_per_round();
        let h = self.original.config().nonempty_bins();
        if h <= budget {
            // Case (i): reuse the movers' destinations.
            self.original.step_recording(&mut self.dests);
            self.tetris.step_reusing(&self.dests);
        } else {
            // Case (ii): independent rounds.
            self.original.step();
            self.tetris.step();
            self.case_ii_rounds += 1;
            if self.first_case_ii.is_none() {
                self.first_case_ii = Some(self.original.round());
            }
        }

        let dominated = self
            .original
            .config()
            .loads()
            .iter()
            .zip(self.tetris.config().loads())
            .all(|(&q, &qt)| qt >= q);
        if !dominated {
            self.violations_total += 1;
            if self.first_case_ii.is_none() {
                self.violations_before += 1;
            }
        }
        self.original_max = self.original_max.max(self.original.config().max_load());
        self.tetris_max = self.tetris_max.max(self.tetris.config().max_load());
        dominated
    }

    /// Runs `rounds` coupled rounds and reports.
    pub fn run(mut self, rounds: u64) -> CouplingReport {
        for _ in 0..rounds {
            self.step();
        }
        CouplingReport {
            rounds,
            case_ii_rounds: self.case_ii_rounds,
            first_case_ii: self.first_case_ii,
            domination_violations_before_case_ii: self.violations_before,
            domination_violations_total: self.violations_total,
            original_window_max: self.original_max,
            tetris_window_max: self.tetris_max,
        }
    }

    /// The original process's current configuration.
    pub fn original_config(&self) -> &Config {
        self.original.config()
    }

    /// The Tetris process's current configuration.
    pub fn tetris_config(&self) -> &Config {
        self.tetris.config()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampling::random_assignment;

    /// A random n-ball configuration conditioned on ≥ n/4 empty bins
    /// (rejection sampling; overwhelmingly likely on the first try since a
    /// uniform throw leaves ~n/e empty).
    fn coupling_start(n: usize, seed: u64) -> Config {
        let mut rng = Xoshiro256pp::seed_from(seed);
        loop {
            let loads = random_assignment(&mut rng, n, n as u64);
            let c = Config::from_loads(loads);
            if 4 * c.empty_bins() >= n {
                return c;
            }
        }
    }

    #[test]
    fn precondition_enforced() {
        let bad = Config::one_per_bin(16); // zero empty bins
        assert!(CoupledRun::new(bad, 1).is_err());
        let good = Config::all_in_one(16, 16);
        assert!(CoupledRun::new(good, 1).is_ok());
    }

    #[test]
    fn domination_holds_throughout_window() {
        let n = 256;
        let run = CoupledRun::new(coupling_start(n, 2), 42).unwrap();
        let report = run.run(2000);
        assert_eq!(report.case_ii_rounds, 0, "case (ii) should not fire");
        assert_eq!(report.domination_violations_total, 0);
        assert!(report.domination_certified());
        assert!(report.tetris_window_max >= report.original_window_max);
    }

    #[test]
    fn domination_across_seeds() {
        for seed in 0..10u64 {
            let run = CoupledRun::new(coupling_start(128, seed), seed).unwrap();
            let report = run.run(500);
            assert!(report.domination_certified(), "seed {seed}: {report:?}");
            assert!(report.tetris_window_max >= report.original_window_max);
        }
    }

    #[test]
    fn case_ii_fires_without_precondition() {
        // Start from all-singleton: every bin non-empty, h = n > 3n/4, so the
        // very first round is case (ii).
        let run = CoupledRun::new_unchecked(Config::one_per_bin(64), 3);
        let report = run.run(10);
        assert!(report.case_ii_rounds >= 1);
        assert_eq!(report.first_case_ii, Some(1));
    }

    #[test]
    fn report_counts_rounds() {
        let run = CoupledRun::new(coupling_start(64, 4), 4).unwrap();
        let report = run.run(100);
        assert_eq!(report.rounds, 100);
    }

    #[test]
    fn step_reports_domination() {
        let mut run = CoupledRun::new(coupling_start(128, 5), 5).unwrap();
        for _ in 0..50 {
            assert!(run.step(), "domination must hold each round");
        }
    }
}
