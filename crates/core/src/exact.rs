//! Exact (enumerative) analysis of the process for small `n`.
//!
//! The repeated balls-into-bins chain over load configurations is finite:
//! its states are the compositions of `m` balls into `n` bins. For small
//! `n, m` we can build the exact transition kernel, compute the stationary
//! distribution by power iteration, and evaluate any functional exactly.
//! This module is the ground truth the simulation engines are validated
//! against, and it reproduces the Appendix-B counterexample *exactly*:
//! for `n = 2` started from `(1,1)`,
//! `P(X₁=0, X₂=0) = 1/8 > P(X₁=0)·P(X₂=0) = 1/4 · 3/8 = 3/32`,
//! so the per-round arrival counts at a bin are positively — not negatively —
//! associated.

use crate::config::Config;
use crate::det_hash::DetHashMap;

/// Enumerates all compositions of `m` into `n` non-negative parts, in
/// lexicographic order. There are `C(m+n-1, n-1)` of them.
pub fn compositions(m: u32, n: usize) -> Vec<Vec<u32>> {
    assert!(n >= 1);
    let mut out = Vec::new();
    let mut cur = vec![0u32; n];
    fn rec(out: &mut Vec<Vec<u32>>, cur: &mut Vec<u32>, pos: usize, left: u32) {
        if pos == cur.len() - 1 {
            cur[pos] = left;
            out.push(cur.clone());
            return;
        }
        for v in 0..=left {
            cur[pos] = v;
            rec(out, cur, pos + 1, left - v);
        }
    }
    rec(&mut out, &mut cur, 0, m);
    out
}

/// Exact factorial as `f64` (valid for `k ≤ 170`).
fn factorial(k: u32) -> f64 {
    assert!(k <= 170, "factorial overflow in f64");
    (1..=k).fold(1.0, |acc, i| acc * i as f64)
}

/// Multinomial probability of arrival vector `a` when `h = Σa` balls are each
/// thrown independently u.a.r. into `n` bins: `h! / ∏ a_u! · n^{-h}`.
pub fn multinomial_probability(a: &[u32], n: usize) -> f64 {
    let h: u32 = a.iter().sum();
    let mut p = factorial(h);
    for &au in a {
        p /= factorial(au);
    }
    p * (n as f64).powi(-(h as i32))
}

/// The exact one-round transition distribution from configuration `q`:
/// pairs `(q', P(q → q'))`.
pub fn transition_distribution(q: &[u32]) -> Vec<(Vec<u32>, f64)> {
    let n = q.len();
    let decremented: Vec<u32> = q.iter().map(|&l| l.saturating_sub(1)).collect();
    // rbb-lint: allow(lossy-cast, reason = "occupied-bin count <= n, and exact analysis is only feasible for tiny n")
    let h: u32 = q.iter().filter(|&&l| l > 0).count() as u32;
    let mut out = Vec::new();
    for a in compositions(h, n) {
        let p = multinomial_probability(&a, n);
        let next: Vec<u32> = decremented.iter().zip(&a).map(|(&d, &x)| d + x).collect();
        out.push((next, p));
    }
    // Merge duplicates (distinct arrival vectors can reach the same state
    // only via identical `a`, so no merge is needed; kept for safety).
    let mut merged: DetHashMap<Vec<u32>, f64> = DetHashMap::default();
    for (next, p) in out {
        *merged.entry(next).or_insert(0.0) += p;
    }
    let mut v: Vec<(Vec<u32>, f64)> = merged.into_iter().collect();
    v.sort_by(|a, b| a.0.cmp(&b.0));
    v
}

/// The exact finite Markov chain over all configurations of `m` balls in
/// `n` bins.
///
/// ```
/// use rbb_core::exact::ExactChain;
///
/// let chain = ExactChain::build(3, 3);
/// assert_eq!(chain.num_states(), 10); // C(5, 2) compositions
/// let pi = chain.stationary(1e-12, 10_000);
/// // πP = π: stepping the stationary law leaves it unchanged.
/// let stepped = chain.step_distribution(&pi);
/// let tv: f64 = pi.iter().zip(&stepped).map(|(a, b)| (a - b).abs()).sum::<f64>() / 2.0;
/// assert!(tv < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct ExactChain {
    n: usize,
    m: u32,
    configs: Vec<Vec<u32>>,
    index: DetHashMap<Vec<u32>, usize>,
    /// Sparse rows: `rows[i]` = list of `(j, P(i → j))`.
    rows: Vec<Vec<(usize, f64)>>,
}

impl ExactChain {
    /// Builds the full kernel. Feasible for `C(m+n-1, n-1)` up to a few
    /// thousand states (e.g. `n = m = 6` has 462 states).
    pub fn build(n: usize, m: u32) -> Self {
        let configs = compositions(m, n);
        let index: DetHashMap<Vec<u32>, usize> = configs
            .iter()
            .enumerate()
            .map(|(i, c)| (c.clone(), i))
            .collect();
        let rows = configs
            .iter()
            .map(|q| {
                transition_distribution(q)
                    .into_iter()
                    .map(|(next, p)| (index[&next], p))
                    .collect()
            })
            .collect();
        Self {
            n,
            m,
            configs,
            index,
            rows,
        }
    }

    /// Number of bins.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of balls.
    pub fn m(&self) -> u32 {
        self.m
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.configs.len()
    }

    /// The state list (lexicographic).
    pub fn configs(&self) -> &[Vec<u32>] {
        &self.configs
    }

    /// Index of a configuration.
    pub fn state_index(&self, q: &[u32]) -> Option<usize> {
        self.index.get(q).copied()
    }

    /// One exact step of a distribution over states: `out = dist · P`.
    pub fn step_distribution(&self, dist: &[f64]) -> Vec<f64> {
        assert_eq!(dist.len(), self.configs.len());
        let mut out = vec![0.0; dist.len()];
        for (i, &pi) in dist.iter().enumerate() {
            if pi == 0.0 {
                continue;
            }
            for &(j, p) in &self.rows[i] {
                out[j] += pi * p;
            }
        }
        out
    }

    /// The point distribution concentrated at `q`.
    pub fn dirac(&self, q: &[u32]) -> Vec<f64> {
        let mut d = vec![0.0; self.configs.len()];
        d[self.index[q]] = 1.0;
        d
    }

    /// Stationary distribution via power iteration to `tol` in total
    /// variation, starting from uniform. The chain is irreducible and
    /// aperiodic on its state space for `m ≥ 1, n ≥ 2`, so this converges.
    pub fn stationary(&self, tol: f64, max_iters: usize) -> Vec<f64> {
        let s = self.configs.len();
        let mut dist = vec![1.0 / s as f64; s];
        for _ in 0..max_iters {
            let next = self.step_distribution(&dist);
            let tv: f64 = dist
                .iter()
                .zip(&next)
                .map(|(a, b)| (a - b).abs())
                .sum::<f64>()
                / 2.0;
            dist = next;
            if tv < tol {
                break;
            }
        }
        dist
    }

    /// Expected maximum load under a distribution over states.
    pub fn expected_max_load(&self, dist: &[f64]) -> f64 {
        dist.iter()
            .zip(&self.configs)
            .map(|(&p, q)| p * (q.iter().max().copied().unwrap_or(0) as f64))
            .sum()
    }

    /// Probability that the max load is at least `k` under `dist`.
    pub fn prob_max_load_at_least(&self, dist: &[f64], k: u32) -> f64 {
        dist.iter()
            .zip(&self.configs)
            .filter(|(_, q)| q.iter().max().copied().unwrap_or(0) >= k)
            .map(|(&p, _)| p)
            .sum()
    }

    /// Exact distribution of the arrival count at `bin` in the next round,
    /// given the chain is currently distributed as `dist`: the arrival count
    /// at a fixed bin is `Binomial(h(q), 1/n)` conditionally on the current
    /// state `q`.
    pub fn arrival_distribution(&self, dist: &[f64], _bin: usize) -> Vec<f64> {
        let mut out = vec![0.0; self.m as usize + 1];
        for (i, &pi) in dist.iter().enumerate() {
            if pi == 0.0 {
                continue;
            }
            // rbb-lint: allow(lossy-cast, reason = "occupied-bin count <= n, and exact analysis is only feasible for tiny n")
            let h = self.configs[i].iter().filter(|&&l| l > 0).count() as u32;
            for k in 0..=h {
                out[k as usize] += pi * binom_pmf(h, 1.0 / self.n as f64, k);
            }
        }
        out
    }
}

/// Exact `Binomial(h, p)` pmf at `k` (small `h`).
pub fn binom_pmf(h: u32, p: f64, k: u32) -> f64 {
    if k > h {
        return 0.0;
    }
    let c = factorial(h) / (factorial(k) * factorial(h - k));
    c * p.powi(k as i32) * (1.0 - p).powi((h - k) as i32)
}

/// The Appendix-B exact quantities for `n = 2` started from `(1, 1)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppendixB {
    /// `P(X₁ = 0)` — no arrivals at bin 0 in round 1. Paper: 1/4.
    pub p_x1_zero: f64,
    /// `P(X₂ = 0)` — no arrivals at bin 0 in round 2. Paper: 3/8.
    pub p_x2_zero: f64,
    /// `P(X₁ = 0, X₂ = 0)`. Paper: 1/8.
    pub p_joint_zero: f64,
}

impl AppendixB {
    /// Whether the joint probability strictly exceeds the product —
    /// the counterexample to negative association.
    pub fn violates_negative_association(&self) -> bool {
        self.p_joint_zero > self.p_x1_zero * self.p_x2_zero
    }
}

/// Computes the Appendix-B quantities exactly via the generic kernel.
///
/// Round 1 from `(1,1)`: both bins move their ball; we enumerate the joint
/// destination vector to get `(X₁, next config)` jointly, then use the
/// conditional `Binomial(h, 1/2)` law of `X₂` given the round-1 config.
pub fn appendix_b_exact() -> AppendixB {
    let n = 2usize;
    let start = [1u32, 1u32];
    // Joint distribution over (config after round 1, X1): enumerate the two
    // movers' destinations.
    let mut joint: DetHashMap<(Vec<u32>, u32), f64> = DetHashMap::default();
    for d0 in 0..n {
        for d1 in 0..n {
            let p = 0.25;
            let mut cfg: Vec<u32> = start.iter().map(|&l| l - 1).collect(); // (0,0)
            cfg[d0] += 1;
            cfg[d1] += 1;
            let x1 = cfg[0]; // all balls at bin 0 arrived this round
            *joint.entry((cfg, x1)).or_insert(0.0) += p;
        }
    }

    let mut p_x1_zero = 0.0;
    let mut p_x2_zero = 0.0;
    let mut p_joint_zero = 0.0;
    // rbb-lint: allow(unordered-iter, reason = "DetHashMap order is reproducible run-to-run and the dependence is summation only; the appendix-B regression test pins the value")
    for ((cfg, x1), p) in &joint {
        // rbb-lint: allow(lossy-cast, reason = "occupied-bin count <= n, and exact analysis is only feasible for tiny n")
        let h = cfg.iter().filter(|&&l| l > 0).count() as u32;
        let p_x2_given = binom_pmf(h, 0.5, 0);
        p_x2_zero += p * p_x2_given;
        if *x1 == 0 {
            p_x1_zero += p;
            p_joint_zero += p * p_x2_given;
        }
    }

    AppendixB {
        p_x1_zero,
        p_x2_zero,
        p_joint_zero,
    }
}

/// Converts a raw state vector into a [`Config`].
pub fn state_to_config(q: &[u32]) -> Config {
    Config::from_loads(q.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compositions_count_matches_stars_and_bars() {
        // C(m+n-1, n-1)
        assert_eq!(compositions(2, 2).len(), 3);
        assert_eq!(compositions(4, 4).len(), 35);
        assert_eq!(compositions(3, 3).len(), 10);
    }

    #[test]
    fn compositions_sum_to_m() {
        for c in compositions(5, 3) {
            assert_eq!(c.iter().sum::<u32>(), 5);
        }
    }

    #[test]
    fn compositions_are_unique_and_sorted() {
        let cs = compositions(4, 3);
        let mut sorted = cs.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(cs, sorted);
    }

    #[test]
    fn multinomial_probabilities_sum_to_one() {
        for (h, n) in [(2u32, 2usize), (3, 3), (5, 4)] {
            let total: f64 = compositions(h, n)
                .iter()
                .map(|a| multinomial_probability(a, n))
                .sum();
            assert!((total - 1.0).abs() < 1e-12, "h={h} n={n}: {total}");
        }
    }

    #[test]
    fn transition_rows_are_stochastic() {
        for q in compositions(3, 3) {
            let total: f64 = transition_distribution(&q).iter().map(|(_, p)| p).sum();
            assert!((total - 1.0).abs() < 1e-12, "row {q:?} sums to {total}");
        }
    }

    #[test]
    fn transition_conserves_mass() {
        for q in compositions(4, 3) {
            for (next, _) in transition_distribution(&q) {
                assert_eq!(next.iter().sum::<u32>(), 4);
            }
        }
    }

    #[test]
    fn exact_chain_builds_and_is_stochastic() {
        let chain = ExactChain::build(3, 3);
        assert_eq!(chain.num_states(), 10);
        let uniform = vec![0.1; 10];
        let next = chain.step_distribution(&uniform);
        assert!((next.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stationary_is_fixed_point() {
        let chain = ExactChain::build(3, 3);
        let pi = chain.stationary(1e-13, 10_000);
        let pi2 = chain.step_distribution(&pi);
        let tv: f64 = pi.iter().zip(&pi2).map(|(a, b)| (a - b).abs()).sum::<f64>() / 2.0;
        assert!(tv < 1e-10, "TV after step: {tv}");
    }

    #[test]
    fn stationary_is_exchangeable() {
        // The dynamics are symmetric under bin relabeling, so the stationary
        // probability of a configuration depends only on its multiset.
        let chain = ExactChain::build(2, 2);
        let pi = chain.stationary(1e-14, 10_000);
        let i20 = chain.state_index(&[2, 0]).unwrap();
        let i02 = chain.state_index(&[0, 2]).unwrap();
        assert!((pi[i20] - pi[i02]).abs() < 1e-10);
    }

    #[test]
    fn expected_max_load_bounds() {
        let chain = ExactChain::build(4, 4);
        let pi = chain.stationary(1e-12, 10_000);
        let em = chain.expected_max_load(&pi);
        assert!((1.0..=4.0).contains(&em), "E[max load] = {em}");
    }

    #[test]
    fn prob_max_load_monotone_in_k() {
        let chain = ExactChain::build(4, 4);
        let pi = chain.stationary(1e-12, 10_000);
        let p1 = chain.prob_max_load_at_least(&pi, 1);
        let p2 = chain.prob_max_load_at_least(&pi, 2);
        let p4 = chain.prob_max_load_at_least(&pi, 4);
        assert!(p1 >= p2 && p2 >= p4);
        assert!((p1 - 1.0).abs() < 1e-12, "max load is always >= 1");
    }

    #[test]
    fn arrival_distribution_is_probability() {
        let chain = ExactChain::build(3, 3);
        let d = chain.dirac(&[1, 1, 1]);
        let arr = chain.arrival_distribution(&d, 0);
        assert!((arr.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // h = 3, so P(0 arrivals) = (2/3)^3.
        assert!((arr[0] - (2.0f64 / 3.0).powi(3)).abs() < 1e-12);
    }

    #[test]
    fn binom_pmf_sums_to_one() {
        let total: f64 = (0..=5).map(|k| binom_pmf(5, 0.3, k)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(binom_pmf(3, 0.5, 4), 0.0);
    }

    #[test]
    fn appendix_b_matches_paper_exactly() {
        let ab = appendix_b_exact();
        assert!((ab.p_x1_zero - 0.25).abs() < 1e-15, "{ab:?}");
        assert!((ab.p_x2_zero - 0.375).abs() < 1e-15, "{ab:?}");
        assert!((ab.p_joint_zero - 0.125).abs() < 1e-15, "{ab:?}");
        assert!(ab.violates_negative_association());
        // 1/8 > 3/32
        assert!(ab.p_joint_zero > ab.p_x1_zero * ab.p_x2_zero);
    }

    #[test]
    fn dirac_is_point_mass() {
        let chain = ExactChain::build(2, 2);
        let d = chain.dirac(&[1, 1]);
        assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-15);
        assert_eq!(d.iter().filter(|&&p| p > 0.0).count(), 1);
    }
}
