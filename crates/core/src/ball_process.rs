//! The repeated balls-into-bins process — ball-identity engine.
//!
//! Carries individual ball identities through FIFO/LIFO/random bin queues.
//! The *load* trajectory is identical in law to [`crate::process::LoadProcess`]
//! (the paper's strategy-obliviousness); what this engine adds is everything
//! per-ball: walk progress (number of moves — the `Ω(t/log n)` claim),
//! queueing delay, and a per-move hook that the traversal crate uses to
//! maintain visited-set bitmaps for cover-time measurement (Corollary 1).

use std::collections::VecDeque;

use crate::config::Config;
use crate::engine::Engine;
use crate::rng::Xoshiro256pp;
use crate::sampling::UniformSampler;
use crate::strategy::QueueStrategy;

/// Identifier of a ball: dense indices `0..m`.
pub type BallId = u32;

/// Per-ball accounting.
#[derive(Debug, Clone, Default)]
pub struct BallStats {
    /// Number of random-walk steps the ball has performed (times selected).
    pub moves: u64,
    /// Total rounds spent waiting in queues (excluding the move rounds).
    pub total_wait: u64,
    /// Maximum single-visit wait.
    pub max_wait: u64,
}

/// Ball-identity repeated balls-into-bins simulator.
#[derive(Debug, Clone)]
pub struct BallProcess {
    queues: Vec<VecDeque<BallId>>,
    /// Load vector kept in lock-step with `queues` so observers get O(n)
    /// snapshots without scanning queue lengths.
    config: Config,
    strategy: QueueStrategy,
    rng: Xoshiro256pp,
    round: u64,
    /// Round at which each ball entered its current bin.
    arrival_round: Vec<u64>,
    stats: Vec<BallStats>,
    /// Scratch buffer reused across rounds: (ball, destination).
    movers: Vec<(BallId, u32)>,
    /// Destination scratch for the batched hot path (empty until first use).
    batch_dests: Vec<u32>,
    /// Uniform sampler keyed on `n`, cached so the batched path does not
    /// rebuild the Lemire rejection threshold (a `u64` modulo) every round.
    sampler: UniformSampler,
}

impl BallProcess {
    /// Creates the process from an initial configuration: ball ids are
    /// assigned densely, bin by bin (bin 0 holds balls `0..q_0`, etc).
    ///
    /// # RNG stream
    ///
    /// Takes ownership of `rng` as the process's engine stream. Construction
    /// consumes no draws; each round consumes one uniform destination draw per
    /// ball released, plus one queue-position draw per non-empty bin under
    /// [`QueueStrategy::Random`].
    pub fn new(config: Config, strategy: QueueStrategy, rng: Xoshiro256pp) -> Self {
        let m = config.total_balls();
        assert!(m <= u32::MAX as u64, "ball ids are u32");
        let mut queues: Vec<VecDeque<BallId>> = Vec::with_capacity(config.n());
        let mut next: BallId = 0;
        for &q in config.loads() {
            let mut dq = VecDeque::with_capacity(q as usize);
            for _ in 0..q {
                dq.push_back(next);
                next += 1;
            }
            queues.push(dq);
        }
        let sampler = UniformSampler::new(config.n() as u64);
        Self {
            queues,
            config,
            strategy,
            rng,
            round: 0,
            arrival_round: vec![0; m as usize],
            stats: vec![BallStats::default(); m as usize],
            movers: Vec::new(),
            batch_dests: Vec::new(),
            sampler,
        }
    }

    /// Convenience: one ball per bin, FIFO.
    pub fn legitimate_start(n: usize, seed: u64) -> Self {
        Self::new(
            Config::one_per_bin(n),
            QueueStrategy::Fifo,
            // rbb-lint: allow(rng-construct, reason = "engine-convention stream for a core convenience constructor; core cannot depend on rbb_sim::seed")
            Xoshiro256pp::seed_from(seed),
        )
    }

    #[inline]
    /// Number of bins.
    pub fn n(&self) -> usize {
        self.queues.len()
    }

    #[inline]
    /// Number of balls `m` — `u64` like every other engine's ball counter
    /// (the [`Engine::balls`] unit), even though ball identities cap the
    /// practical range well below it.
    pub fn balls(&self) -> u64 {
        self.stats.len() as u64
    }

    #[inline]
    /// Current round (0 before any step).
    pub fn round(&self) -> u64 {
        self.round
    }

    #[inline]
    /// Current load configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }

    #[inline]
    /// The queue strategy in use.
    pub fn strategy(&self) -> QueueStrategy {
        self.strategy
    }

    /// Per-ball statistics.
    #[inline]
    pub fn ball_stats(&self) -> &[BallStats] {
        &self.stats
    }

    /// The queue of a bin (front = oldest).
    pub fn queue(&self, bin: usize) -> &VecDeque<BallId> {
        &self.queues[bin]
    }

    /// Advances one round. `on_move(ball, dest, round)` fires once per moved
    /// ball, after the ball's arrival at `dest` is decided.
    pub fn step_with(&mut self, mut on_move: impl FnMut(BallId, usize, u64)) -> usize {
        let n = self.queues.len();
        let round = self.round + 1;
        self.movers.clear();

        // Selection phase: every non-empty bin releases exactly one ball.
        for u in 0..n {
            let len = self.queues[u].len();
            if len == 0 {
                continue;
            }
            let idx = self.strategy.pick(len, &mut self.rng);
            let ball = match self.strategy {
                // rbb-lint: allow(panic, reason = "only non-empty bins enter the release loop")
                QueueStrategy::Fifo => self.queues[u].pop_front().expect("non-empty"),
                // rbb-lint: allow(panic, reason = "only non-empty bins enter the release loop")
                QueueStrategy::Lifo => self.queues[u].pop_back().expect("non-empty"),
                QueueStrategy::Random => {
                    // Order within the queue is irrelevant under Random, so a
                    // swap-remove keeps this O(1).
                    let last = len - 1;
                    self.queues[u].swap(idx, last);
                    // rbb-lint: allow(panic, reason = "only non-empty bins enter the release loop")
                    self.queues[u].pop_back().expect("non-empty")
                }
            };
            // rbb-lint: allow(lossy-cast, reason = "n <= u32::MAX + 1 is asserted at construction; draws are < n")
            let dest = self.rng.uniform_usize(n) as u32;
            let wait = round - 1 - self.arrival_round[ball as usize];
            let st = &mut self.stats[ball as usize];
            st.moves += 1;
            st.total_wait += wait;
            st.max_wait = st.max_wait.max(wait);
            self.movers.push((ball, dest));
        }

        // Re-assignment phase: all arrivals land simultaneously.
        let moved = self.movers.len();
        let loads = self.config.loads_mut();
        for (u, q) in self.queues.iter().enumerate() {
            // rbb-lint: allow(lossy-cast, reason = "queue length <= total balls <= u32::MAX, asserted at construction")
            loads[u] = q.len() as u32;
        }
        // `movers` is drained via index loop to appease the borrow of `self`.
        for i in 0..moved {
            let (ball, dest) = self.movers[i];
            self.queues[dest as usize].push_back(ball);
            loads[dest as usize] += 1;
            self.arrival_round[ball as usize] = round;
            on_move(ball, dest as usize, round);
        }

        self.round = round;
        moved
    }

    /// Advances one round without a per-move hook.
    pub fn step(&mut self) -> usize {
        self.step_with(|_, _, _| {})
    }

    /// Advances one round through the batched hot path. For [`Fifo`] and
    /// [`Lifo`] the queue pick consumes no randomness, so all of a round's
    /// destination draws form one contiguous batch: they are filled through
    /// a [`UniformSampler`] into a reused scratch buffer in the same bin
    /// order the scalar path draws them, making the two paths bit-identical
    /// from equal state.
    ///
    /// # Why `Random` cannot be batched
    ///
    /// Under [`Random`] the scalar path consumes the RNG stream as
    /// `pick(len₀), dest₀, pick(len₁), dest₁, …` — one queue-index draw
    /// (whose bound is the *current* queue length, itself a function of all
    /// earlier rounds) interleaved with each destination draw. A batched
    /// kernel would have to draw all destinations as one contiguous block,
    /// which permutes that stream: every draw after the first bin would see
    /// different raw words, so the trajectory would diverge from the scalar
    /// path and from the published experiment numbers. Since the workspace
    /// guarantees `step_batched ≡ step` bit-for-bit for every engine (the
    /// [`Engine`] run family is batched by default), `Random` transparently
    /// falls back to the scalar [`step_with`]; the equivalence test
    /// `batched_step_random_falls_back_to_scalar` pins the contract down.
    ///
    /// [`Fifo`]: QueueStrategy::Fifo
    /// [`Lifo`]: QueueStrategy::Lifo
    /// [`Random`]: QueueStrategy::Random
    /// [`step_with`]: BallProcess::step_with
    pub fn step_batched_with(&mut self, mut on_move: impl FnMut(BallId, usize, u64)) -> usize {
        if self.strategy == QueueStrategy::Random {
            return self.step_with(on_move);
        }
        let n = self.queues.len();
        let round = self.round + 1;
        self.movers.clear();

        // Selection phase: every non-empty bin releases exactly one ball.
        // No RNG is consumed here under FIFO/LIFO.
        for u in 0..n {
            if self.queues[u].is_empty() {
                continue;
            }
            let ball = match self.strategy {
                // rbb-lint: allow(panic, reason = "only non-empty bins enter the release loop")
                QueueStrategy::Fifo => self.queues[u].pop_front().expect("non-empty"),
                // rbb-lint: allow(panic, reason = "only non-empty bins enter the release loop")
                QueueStrategy::Lifo => self.queues[u].pop_back().expect("non-empty"),
                // rbb-lint: allow(panic, reason = "step_batched delegates Random strategies to the scalar path before this match")
                QueueStrategy::Random => unreachable!("handled by scalar fallback"),
            };
            self.movers.push((ball, 0));
        }
        let moved = self.movers.len();

        // One contiguous batch of destination draws, in mover (= bin) order.
        self.batch_dests.resize(moved, 0);
        self.sampler.fill_u32(&mut self.rng, &mut self.batch_dests);
        for i in 0..moved {
            let (ball, dest_slot) = &mut self.movers[i];
            *dest_slot = self.batch_dests[i];
            let wait = round - 1 - self.arrival_round[*ball as usize];
            let st = &mut self.stats[*ball as usize];
            st.moves += 1;
            st.total_wait += wait;
            st.max_wait = st.max_wait.max(wait);
        }

        // Re-assignment phase: all arrivals land simultaneously.
        let loads = self.config.loads_mut();
        for (u, q) in self.queues.iter().enumerate() {
            // rbb-lint: allow(lossy-cast, reason = "queue length <= total balls <= u32::MAX, asserted at construction")
            loads[u] = q.len() as u32;
        }
        for i in 0..moved {
            let (ball, dest) = self.movers[i];
            self.queues[dest as usize].push_back(ball);
            loads[dest as usize] += 1;
            self.arrival_round[ball as usize] = round;
            on_move(ball, dest as usize, round);
        }

        self.round = round;
        moved
    }

    /// Advances one round through the batched hot path, without a hook.
    pub fn step_batched(&mut self) -> usize {
        self.step_batched_with(|_, _, _| {})
    }

    /// Minimum walk progress over all balls (the quantity bounded below by
    /// `Ω(t / log n)` under FIFO).
    pub fn min_progress(&self) -> u64 {
        self.stats.iter().map(|s| s.moves).min().unwrap_or(0)
    }

    /// Mean walk progress over all balls.
    pub fn mean_progress(&self) -> f64 {
        if self.stats.is_empty() {
            return 0.0;
        }
        self.stats.iter().map(|s| s.moves).sum::<u64>() as f64 / self.stats.len() as f64
    }

    /// The §4.1 adversary: reassigns every ball to an arbitrary bin given by
    /// `placement[ball]`. Queue order after a fault is by ball id (the
    /// adversary controls placement, not intra-bin order, which is
    /// irrelevant to the analysis).
    pub fn adversarial_reassign(&mut self, placement: &[usize]) {
        assert_eq!(placement.len(), self.stats.len(), "one bin per ball");
        let n = self.queues.len();
        for q in &mut self.queues {
            q.clear();
        }
        for (ball, &bin) in placement.iter().enumerate() {
            assert!(bin < n, "bin out of range");
            self.queues[bin].push_back(ball as BallId);
            self.arrival_round[ball] = self.round;
        }
        let loads = self.config.loads_mut();
        for (u, q) in self.queues.iter().enumerate() {
            // rbb-lint: allow(lossy-cast, reason = "queue length <= total balls <= u32::MAX, asserted at construction")
            loads[u] = q.len() as u32;
        }
    }

    /// Validates internal consistency (queues vs load vector vs ball count).
    pub fn validate(&self) -> Result<(), String> {
        let total: usize = self.queues.iter().map(|q| q.len()).sum();
        if total != self.stats.len() {
            return Err(format!(
                "{total} balls in queues, expected {}",
                self.stats.len()
            ));
        }
        for (u, q) in self.queues.iter().enumerate() {
            if q.len() != self.config.loads()[u] as usize {
                return Err(format!(
                    "bin {u}: queue len {} != load {}",
                    q.len(),
                    self.config.loads()[u]
                ));
            }
        }
        let mut seen = vec![false; self.stats.len()];
        for q in &self.queues {
            for &b in q {
                if seen[b as usize] {
                    return Err(format!("ball {b} appears twice"));
                }
                seen[b as usize] = true;
            }
        }
        Ok(())
    }
}

/// The run family is provided by [`Engine`]; FIFO/LIFO get the batched
/// kernel, `Random` falls back to the bit-identical scalar path (see
/// [`BallProcess::step_batched_with`]).
impl Engine for BallProcess {
    #[inline]
    fn step(&mut self) -> usize {
        BallProcess::step(self)
    }

    #[inline]
    fn step_batched(&mut self) -> usize {
        BallProcess::step_batched(self)
    }

    #[inline]
    fn round(&self) -> u64 {
        self.round
    }

    #[inline]
    fn config(&self) -> &Config {
        &self.config
    }

    fn supports_faults(&self) -> bool {
        true
    }

    fn apply_fault(&mut self, placement: &[usize]) {
        self.adversarial_reassign(placement);
    }

    fn min_progress(&self) -> Option<u64> {
        Some(BallProcess::min_progress(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MaxLoadTracker;
    use crate::process::LoadProcess;

    #[test]
    fn construction_assigns_dense_ids() {
        let p = BallProcess::new(
            Config::from_loads(vec![2, 0, 1]),
            QueueStrategy::Fifo,
            Xoshiro256pp::seed_from(1),
        );
        assert_eq!(p.queue(0).iter().copied().collect::<Vec<_>>(), vec![0, 1]);
        assert!(p.queue(1).is_empty());
        assert_eq!(p.queue(2).iter().copied().collect::<Vec<_>>(), vec![2]);
        p.validate().unwrap();
    }

    #[test]
    fn step_conserves_balls_all_strategies() {
        for strategy in QueueStrategy::ALL {
            let mut p = BallProcess::new(
                Config::one_per_bin(64),
                strategy,
                Xoshiro256pp::seed_from(2),
            );
            for _ in 0..100 {
                p.step();
                p.validate().unwrap();
            }
        }
    }

    #[test]
    fn moved_count_equals_nonempty_bins() {
        let mut p = BallProcess::legitimate_start(32, 3);
        let nonempty_before = p.config().nonempty_bins();
        let moved = p.step();
        assert_eq!(moved, nonempty_before);
    }

    #[test]
    fn fifo_load_trajectory_matches_load_process() {
        // With the same seed, FIFO consumes RNG draws in exactly the same
        // order as the load-only engine, so trajectories coincide bit-for-bit.
        let n = 48;
        let mut bp = BallProcess::legitimate_start(n, 99);
        let mut lp = LoadProcess::legitimate_start(n, 99);
        for _ in 0..200 {
            bp.step();
            lp.step();
            assert_eq!(bp.config(), lp.config());
        }
    }

    #[test]
    fn lifo_load_trajectory_matches_load_process() {
        let n = 48;
        let mut bp = BallProcess::new(
            Config::one_per_bin(n),
            QueueStrategy::Lifo,
            Xoshiro256pp::seed_from(99),
        );
        let mut lp = LoadProcess::legitimate_start(n, 99);
        for _ in 0..200 {
            bp.step();
            lp.step();
            assert_eq!(bp.config(), lp.config());
        }
    }

    #[test]
    fn on_move_hook_fires_per_mover() {
        let mut p = BallProcess::legitimate_start(16, 4);
        let mut count = 0;
        let moved = p.step_with(|_, dest, round| {
            assert!(dest < 16);
            assert_eq!(round, 1);
            count += 1;
        });
        assert_eq!(count, moved);
    }

    #[test]
    fn progress_accumulates() {
        let mut p = BallProcess::legitimate_start(32, 5);
        p.run(100, crate::metrics::NullObserver);
        assert!(p.min_progress() > 0, "every ball should move in 100 rounds");
        assert!(p.mean_progress() <= 100.0);
        // In 100 rounds a ball moves at most once per round.
        assert!(p.ball_stats().iter().all(|s| s.moves <= 100));
    }

    #[test]
    fn wait_accounting_consistent() {
        let mut p = BallProcess::legitimate_start(16, 6);
        p.run(200, crate::metrics::NullObserver);
        for s in p.ball_stats() {
            // moves + waits cannot exceed elapsed rounds.
            assert!(s.moves + s.total_wait <= 200);
            assert!(s.max_wait <= s.total_wait || s.max_wait == 0);
        }
    }

    #[test]
    fn single_ball_performs_plain_random_walk() {
        // With m = 1 the constraint is vacuous: the ball moves every round.
        let mut p = BallProcess::new(
            Config::all_in_one(8, 1),
            QueueStrategy::Fifo,
            Xoshiro256pp::seed_from(7),
        );
        p.run(50, crate::metrics::NullObserver);
        assert_eq!(p.ball_stats()[0].moves, 50);
        assert_eq!(p.ball_stats()[0].total_wait, 0);
    }

    #[test]
    fn lifo_starves_buried_ball() {
        // All balls in one bin: under LIFO the bottom ball moves only after
        // the queue above it drains below it; under FIFO the first ball moves
        // immediately. Check FIFO moves ball 0 in round 1.
        let mut fifo = BallProcess::new(
            Config::all_in_one(8, 8),
            QueueStrategy::Fifo,
            Xoshiro256pp::seed_from(8),
        );
        fifo.step();
        assert_eq!(fifo.ball_stats()[0].moves, 1);

        let mut lifo = BallProcess::new(
            Config::all_in_one(8, 8),
            QueueStrategy::Lifo,
            Xoshiro256pp::seed_from(8),
        );
        lifo.step();
        assert_eq!(lifo.ball_stats()[7].moves, 1);
        assert_eq!(lifo.ball_stats()[0].moves, 0);
    }

    #[test]
    fn batched_step_bit_identical_for_fifo_and_lifo() {
        for strategy in [QueueStrategy::Fifo, QueueStrategy::Lifo] {
            let mut scalar = BallProcess::new(
                Config::one_per_bin(64),
                strategy,
                Xoshiro256pp::seed_from(77),
            );
            let mut batched = scalar.clone();
            for _ in 0..150 {
                let a = scalar.step();
                let b = batched.step_batched();
                assert_eq!(a, b);
                assert_eq!(scalar.config(), batched.config());
            }
            batched.validate().unwrap();
            // Per-ball accounting agrees too, not just the load vector.
            for (s, t) in scalar.ball_stats().iter().zip(batched.ball_stats()) {
                assert_eq!(s.moves, t.moves);
                assert_eq!(s.total_wait, t.total_wait);
                assert_eq!(s.max_wait, t.max_wait);
            }
        }
    }

    #[test]
    fn batched_step_random_falls_back_to_scalar() {
        // The Random strategy interleaves queue-index draws with destination
        // draws (see `step_batched_with`), so its "batched" path must be the
        // scalar path verbatim: bit-identical loads, RNG stream, and
        // per-ball accounting — including from a skewed start where queue
        // lengths (and hence pick bounds) vary wildly.
        let mut rng = Xoshiro256pp::seed_from(78);
        let skewed = Config::random(&mut rng, 32, 64);
        for start in [Config::one_per_bin(32), skewed] {
            let mut scalar = BallProcess::new(
                start.clone(),
                QueueStrategy::Random,
                Xoshiro256pp::seed_from(78),
            );
            let mut batched = scalar.clone();
            for i in 0..100 {
                // Interleave entry points: the streams must stay in lockstep.
                let (a, b) = if i % 2 == 0 {
                    (scalar.step(), batched.step_batched())
                } else {
                    (scalar.step_batched(), batched.step())
                };
                assert_eq!(a, b);
                assert_eq!(scalar.config(), batched.config());
            }
            batched.validate().unwrap();
            for (s, t) in scalar.ball_stats().iter().zip(batched.ball_stats()) {
                assert_eq!(
                    (s.moves, s.total_wait, s.max_wait),
                    (t.moves, t.total_wait, t.max_wait)
                );
            }
        }
    }

    #[test]
    fn batched_hook_fires_per_mover() {
        let mut p = BallProcess::legitimate_start(16, 79);
        let mut count = 0;
        let moved = p.step_batched_with(|_, dest, round| {
            assert!(dest < 16);
            assert_eq!(round, 1);
            count += 1;
        });
        assert_eq!(count, moved);
    }

    #[test]
    fn adversarial_reassign_all_to_one() {
        let mut p = BallProcess::legitimate_start(16, 9);
        p.run(10, crate::metrics::NullObserver);
        let placement = vec![3usize; 16];
        p.adversarial_reassign(&placement);
        p.validate().unwrap();
        assert_eq!(p.config().loads()[3], 16);
        assert_eq!(p.config().max_load(), 16);
        p.step();
        p.validate().unwrap();
    }

    #[test]
    fn max_load_tracker_via_run() {
        let mut p = BallProcess::legitimate_start(128, 10);
        let mut t = MaxLoadTracker::new();
        p.run(500, &mut t);
        assert!(t.window_max() >= 1);
        assert!(t.window_max() < 30, "load blew up: {}", t.window_max());
    }
}
