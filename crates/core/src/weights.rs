//! Weighted balls and capacity-constrained bins.
//!
//! The paper's process moves *unit* balls: every non-empty bin releases one
//! ball per round, and legitimacy bounds the ball **count** per bin. This
//! module generalizes both sides of that assumption without touching the
//! dynamics:
//!
//! * [`Weights`] assigns each ball an integer weight ≥ 1. The dynamics stay
//!   **weight-oblivious** — each non-empty bin still releases exactly one
//!   ball per round, chosen FIFO by arrival order, and the destination draw
//!   is the same uniform draw the unit process makes. Weights are therefore
//!   a *metric overlay*: they change what "load" means (weighted load,
//!   weighted legitimacy), never how many RNG draws a round consumes or in
//!   which order. The unit configuration is bit-identical to the
//!   pre-weighted engines — same trajectory, same stream, same snapshots.
//! * [`Capacities`] bounds each bin. The process does not *enforce* bounds
//!   (a uniform re-assignment cannot), it **observes** them: engines count
//!   capacity-violating bins per round, the quantity the binpacking
//!   baseline in `crates/baselines` respects by construction.
//!
//! [`WeightOverlay`] is the shared engine-side state: per-bin FIFO weight
//! queues kept in lock-step with the load vector. All three load engines
//! (dense, sparse, sharded) drive it through the same canonical transport
//! order — departing bins in ascending bin order within each RNG stream —
//! so the weighted sparse engine is bit-identical to the weighted dense
//! engine, exactly as in the unit regime.

use std::collections::VecDeque;

use crate::det_hash::DetHashMap;

/// Default maximum weight of the deterministic Zipf assignment.
pub const DEFAULT_ZIPF_W_MAX: u32 = 100;

/// Per-ball weight assignment, enumerated ball by ball in bin order over
/// the start configuration (bin 0's balls first, then bin 1's, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Weights {
    /// Every ball weighs 1 — the fast path, statically equivalent to the
    /// pre-weighted engines (no overlay is built at all).
    Unit,
    /// Explicit per-ball weights, each ≥ 1.
    Explicit(Vec<u32>),
}

impl Weights {
    /// Deterministic Zipf-skewed weights: ball `k` (0-indexed) weighs
    /// `max(1, round(w_max / (k+1)^s))`. No RNG is consumed — the skew is
    /// a fixed profile, so two runs of the same spec see identical weights
    /// regardless of engine or seed.
    pub fn zipf(balls: u64, s: f64, w_max: u32) -> Self {
        assert!(s.is_finite() && s > 0.0, "zipf exponent must be positive");
        assert!(w_max >= 1, "zipf w_max must be at least 1");
        let ws = (0..balls)
            .map(|k| {
                let scaled = f64::from(w_max) / ((k + 1) as f64).powf(s);
                // rbb-lint: allow(lossy-cast, reason = "value is clamped into [1, w_max] before the cast")
                scaled.round().clamp(1.0, f64::from(w_max)) as u32
            })
            .collect();
        Weights::Explicit(ws).normalized()
    }

    /// Whether this is the unit assignment (after [`Self::normalized`]).
    pub fn is_unit(&self) -> bool {
        matches!(self, Weights::Unit)
    }

    /// Canonicalizes: an explicit all-ones vector *is* the unit assignment,
    /// so it collapses to [`Weights::Unit`] and engines skip the overlay
    /// entirely — `explicit [1,1,…]` specs stay bit-identical to `unit`
    /// down to the snapshot bytes.
    pub fn normalized(self) -> Self {
        match self {
            Weights::Explicit(ws) if ws.iter().all(|&w| w == 1) => Weights::Unit,
            other => other,
        }
    }

    /// Total weight of `balls` balls under this assignment.
    pub fn total(&self, balls: u64) -> u64 {
        match self {
            Weights::Unit => balls,
            Weights::Explicit(ws) => ws.iter().map(|&w| u64::from(w)).sum(),
        }
    }

    /// Structural validation against a ball count: explicit vectors must
    /// cover every ball exactly once with weights ≥ 1.
    pub fn validate(&self, balls: u64) -> Result<(), String> {
        match self {
            Weights::Unit => Ok(()),
            Weights::Explicit(ws) => {
                if ws.len() as u64 != balls {
                    return Err(format!(
                        "explicit weights list {} balls, the start configuration has {balls}",
                        ws.len()
                    ));
                }
                if let Some(k) = ws.iter().position(|&w| w == 0) {
                    return Err(format!("ball {k} has weight 0 (weights must be >= 1)"));
                }
                Ok(())
            }
        }
    }
}

/// Per-bin capacity bounds, observed (not enforced) by the engines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Capacities {
    /// No bounds — the default, and the only mode the unit fast path needs.
    Unbounded,
    /// Every bin bounds its weighted load by the same value (≥ 1).
    Uniform(u64),
    /// Per-bin bounds, one per bin.
    Explicit(Vec<u64>),
}

impl Capacities {
    /// Whether no bin is bounded.
    pub fn is_unbounded(&self) -> bool {
        matches!(self, Capacities::Unbounded)
    }

    /// The bound of one bin, `None` when unbounded.
    pub fn bound(&self, bin: usize) -> Option<u64> {
        match self {
            Capacities::Unbounded => None,
            Capacities::Uniform(c) => Some(*c),
            Capacities::Explicit(cs) => cs.get(bin).copied(),
        }
    }

    /// Snapshot kind tag: `"unbounded"`, `"uniform"`, or `"explicit"`.
    pub fn kind_str(&self) -> &'static str {
        match self {
            Capacities::Unbounded => "unbounded",
            Capacities::Uniform(_) => "uniform",
            Capacities::Explicit(_) => "explicit",
        }
    }

    /// The serialized bound list: empty / one element / one per bin.
    pub fn bounds_vec(&self) -> Vec<u64> {
        match self {
            Capacities::Unbounded => Vec::new(),
            Capacities::Uniform(c) => vec![*c],
            Capacities::Explicit(cs) => cs.clone(),
        }
    }

    /// Rebuilds from the snapshot encoding of [`Self::kind_str`] +
    /// [`Self::bounds_vec`].
    pub fn from_parts(kind: &str, bounds: &[u64]) -> Result<Self, String> {
        match kind {
            "unbounded" if bounds.is_empty() => Ok(Capacities::Unbounded),
            "unbounded" => Err("unbounded capacities carry no bounds".to_string()),
            "uniform" => match bounds {
                [c] => Ok(Capacities::Uniform(*c)),
                _ => Err(format!(
                    "uniform capacities need exactly 1 bound, got {}",
                    bounds.len()
                )),
            },
            "explicit" => Ok(Capacities::Explicit(bounds.to_vec())),
            other => Err(format!(
                "unknown capacity kind '{other}' (unbounded | uniform | explicit)"
            )),
        }
    }

    /// Structural validation against a bin count.
    pub fn validate(&self, n: usize) -> Result<(), String> {
        match self {
            Capacities::Unbounded => Ok(()),
            Capacities::Uniform(c) => {
                if *c == 0 {
                    return Err("uniform capacity must be at least 1".to_string());
                }
                Ok(())
            }
            Capacities::Explicit(cs) => {
                if cs.len() != n {
                    return Err(format!(
                        "explicit capacities list {} bins, the configuration has {n}",
                        cs.len()
                    ));
                }
                if let Some(b) = cs.iter().position(|&c| c == 0) {
                    return Err(format!("bin {b} has capacity 0 (capacities must be >= 1)"));
                }
                Ok(())
            }
        }
    }
}

/// Engine-side weighted state: per-bin FIFO weight queues (front = next
/// ball to depart) plus the derived weighted-load map, both keyed on the
/// **occupied** bins only — an `m ≪ n` sparse run never pays `O(n)`.
///
/// The overlay is pure metric state: it never touches the RNG. Engines
/// keep the invariant `queue(b).len() == load(b)` for every bin (the unit
/// load vector remains the single source of truth for the dynamics) and
/// drive rounds through the two-phase [`Self::transport`], which models
/// the paper's simultaneous departures: all departing front weights are
/// popped before any arrival is pushed, so a bin that both releases and
/// receives in one round still releases its *original* front ball.
#[derive(Debug, Clone, Default)]
pub struct WeightOverlay {
    /// FIFO weight queue per occupied bin.
    queues: DetHashMap<u32, VecDeque<u32>>,
    /// Weighted load per occupied bin (sum of its queue).
    wload: DetHashMap<u32, u64>,
    /// Total weight in the system.
    total: u64,
    /// Scratch: the departing bins of the in-flight round, in canonical
    /// (ascending within each stream) order. Cleared and refilled by the
    /// engines each weighted round; never part of the resumable state.
    pub(crate) srcs: Vec<u32>,
    /// Scratch for the pop phase of [`Self::transport`]: `(dest, weight)`.
    moves: Vec<(u32, u32)>,
}

impl WeightOverlay {
    /// Builds the overlay from a sorted occupied-bin iterator and the
    /// per-ball weight vector, consumed ball by ball in bin order (the
    /// enumeration [`Weights`] documents).
    pub fn from_entries(entries: impl IntoIterator<Item = (u32, u32)>, weights: &[u32]) -> Self {
        let mut overlay = WeightOverlay::default();
        let mut next = 0usize;
        for (bin, load) in entries {
            let take = load as usize;
            assert!(
                next + take <= weights.len(),
                "weight vector shorter than the ball count"
            );
            let q: VecDeque<u32> = weights[next..next + take].iter().copied().collect();
            let w: u64 = q.iter().map(|&x| u64::from(x)).sum();
            next += take;
            overlay.total += w;
            overlay.queues.insert(bin, q);
            overlay.wload.insert(bin, w);
        }
        assert_eq!(
            next,
            weights.len(),
            "weight vector longer than the ball count"
        );
        overlay
    }

    /// Total weight currently in the system.
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Weighted load of one bin (0 when empty).
    #[inline]
    pub fn weighted_load(&self, bin: u32) -> u64 {
        self.wload.get(&bin).copied().unwrap_or(0)
    }

    /// Maximum weighted load over all bins — `O(#occupied)`.
    pub fn weighted_max_load(&self) -> u64 {
        // rbb-lint: allow(unordered-iter, reason = "max over u64 values is order-independent")
        self.wload.values().copied().max().unwrap_or(0)
    }

    /// Number of occupied bins whose weighted load exceeds its capacity —
    /// `O(#occupied)`; empty bins can never violate (capacities are ≥ 1).
    pub fn capacity_violations(&self, caps: &Capacities) -> u64 {
        if caps.is_unbounded() {
            return 0;
        }
        // rbb-lint: allow(unordered-iter, reason = "counting violators is order-independent")
        self.wload
            .iter()
            .filter(|(&bin, &w)| caps.bound(bin as usize).is_some_and(|c| w > c))
            .count() as u64
    }

    /// The round's weighted transport, pairing the `k`-th departing bin in
    /// `self.srcs` with the `k`-th destination draw in `dests`.
    /// Two-phase: every departing front weight is popped before any is
    /// pushed (simultaneous departures), preserving `total`.
    pub fn transport(&mut self, dests: &[u32]) {
        let mut srcs = std::mem::take(&mut self.srcs);
        debug_assert_eq!(srcs.len(), dests.len(), "one destination per departure");
        let mut moves = std::mem::take(&mut self.moves);
        moves.clear();
        for (&src, &dest) in srcs.iter().zip(dests) {
            let w = self.pop_front(src);
            moves.push((dest, w));
        }
        for &(dest, w) in &moves {
            self.push_back(dest, w);
        }
        // The departure list is consumed: round-scoped scratch, restored
        // empty (capacity kept) for the next round's refill.
        srcs.clear();
        self.moves = moves;
        self.srcs = srcs;
    }

    /// Incremental arrival of one ball of weight `w` into `bin`.
    pub fn place(&mut self, bin: u32, w: u32) {
        self.push_back(bin, w);
        self.total += u64::from(w);
    }

    /// Incremental departure of `bin`'s front ball; returns its weight, or
    /// `None` when the bin is empty.
    pub fn depart(&mut self, bin: u32) -> Option<u32> {
        if !self.queues.contains_key(&bin) {
            return None;
        }
        let w = self.pop_front(bin);
        self.total -= u64::from(w);
        Some(w)
    }

    /// The canonical snapshot encoding: `(bin, weights front→back)` pairs
    /// sorted by bin index.
    pub fn queues_sorted(&self) -> Vec<(u32, Vec<u32>)> {
        let mut out: Vec<(u32, Vec<u32>)> = self
            // rbb-lint: allow(unordered-iter, reason = "collected then sorted by bin before use")
            .queues
            .iter()
            .map(|(&bin, q)| (bin, q.iter().copied().collect()))
            .collect();
        out.sort_unstable_by_key(|&(bin, _)| bin);
        out
    }

    /// Rebuilds from the snapshot encoding of [`Self::queues_sorted`].
    pub fn from_queues(queues: &[(u32, Vec<u32>)]) -> Self {
        let mut overlay = WeightOverlay::default();
        // rbb-lint: allow(unordered-iter, reason = "`queues` here is the sorted snapshot slice parameter, not the map field")
        for (bin, ws) in queues {
            let q: VecDeque<u32> = ws.iter().copied().collect();
            let w: u64 = q.iter().map(|&x| u64::from(x)).sum();
            overlay.total += w;
            overlay.queues.insert(*bin, q);
            overlay.wload.insert(*bin, w);
        }
        overlay
    }

    /// Checks the lock-step invariant against a load lookup over the
    /// occupied bins: every queue length equals its bin's load and the
    /// per-bin weighted loads sum to `total`.
    pub fn check_against(&self, occupied: impl Iterator<Item = (u32, u32)>) -> Result<(), String> {
        let mut seen = 0usize;
        for (bin, load) in occupied {
            let qlen = self.queues.get(&bin).map_or(0, VecDeque::len);
            if qlen != load as usize {
                return Err(format!("bin {bin}: queue length {qlen} != load {load}"));
            }
            seen += 1;
        }
        if seen != self.queues.len() {
            return Err(format!(
                "{} weight queues but {seen} occupied bins",
                self.queues.len()
            ));
        }
        // rbb-lint: allow(unordered-iter, reason = "integer sum is order-independent")
        let sum: u64 = self.wload.values().sum();
        if sum != self.total {
            return Err(format!(
                "weighted loads sum to {sum}, total says {}",
                self.total
            ));
        }
        Ok(())
    }

    fn pop_front(&mut self, bin: u32) -> u32 {
        let q = self
            .queues
            .get_mut(&bin)
            // rbb-lint: allow(panic, reason = "engines keep queue length == load in lock-step; only non-empty bins depart")
            .expect("departing bin has a queue");
        // rbb-lint: allow(panic, reason = "queue length equals the bin load, which is > 0 for a departing bin")
        let w = q.pop_front().expect("departing bin is non-empty");
        if q.is_empty() {
            self.queues.remove(&bin);
            self.wload.remove(&bin);
        } else {
            // rbb-lint: allow(panic, reason = "wload is kept in lock-step with queues; the key exists while the queue does")
            *self.wload.get_mut(&bin).expect("wload tracks queues") -= u64::from(w);
        }
        w
    }

    fn push_back(&mut self, bin: u32, w: u32) {
        self.queues.entry(bin).or_default().push_back(w);
        *self.wload.entry(bin).or_insert(0) += u64::from(w);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_deterministic_and_skewed() {
        let a = Weights::zipf(100, 1.0, 100);
        let b = Weights::zipf(100, 1.0, 100);
        assert_eq!(a, b);
        let Weights::Explicit(ws) = &a else {
            panic!("zipf with w_max > 1 is non-unit");
        };
        assert_eq!(ws[0], 100);
        assert_eq!(ws[1], 50);
        assert!(ws.iter().all(|&w| w >= 1));
        assert!(
            ws.windows(2).all(|p| p[0] >= p[1]),
            "monotone non-increasing"
        );
    }

    #[test]
    fn zipf_with_w_max_one_collapses_to_unit() {
        assert!(Weights::zipf(50, 1.5, 1).is_unit());
    }

    #[test]
    fn normalization_collapses_all_ones() {
        assert!(Weights::Explicit(vec![1, 1, 1]).normalized().is_unit());
        assert!(!Weights::Explicit(vec![1, 2]).normalized().is_unit());
    }

    #[test]
    fn weights_validate_length_and_positivity() {
        assert!(Weights::Unit.validate(7).is_ok());
        assert!(Weights::Explicit(vec![1, 2]).validate(2).is_ok());
        assert!(Weights::Explicit(vec![1, 2]).validate(3).is_err());
        assert!(Weights::Explicit(vec![1, 0]).validate(2).is_err());
        assert_eq!(Weights::Explicit(vec![3, 4]).total(2), 7);
        assert_eq!(Weights::Unit.total(9), 9);
    }

    #[test]
    fn capacities_validate_and_round_trip_parts() {
        assert!(Capacities::Unbounded.validate(4).is_ok());
        assert!(Capacities::Uniform(0).validate(4).is_err());
        assert!(Capacities::Explicit(vec![1, 2]).validate(3).is_err());
        assert!(Capacities::Explicit(vec![1, 0, 2]).validate(3).is_err());
        for caps in [
            Capacities::Unbounded,
            Capacities::Uniform(9),
            Capacities::Explicit(vec![4, 5, 6]),
        ] {
            let back = Capacities::from_parts(caps.kind_str(), &caps.bounds_vec()).unwrap();
            assert_eq!(back, caps);
        }
        assert!(Capacities::from_parts("warped", &[]).is_err());
        assert!(Capacities::from_parts("uniform", &[]).is_err());
        assert!(Capacities::from_parts("unbounded", &[3]).is_err());
    }

    #[test]
    fn overlay_builds_in_bin_order_and_tracks_loads() {
        // Bins 0 (2 balls), 3 (1 ball): weights consumed in bin order.
        let o = WeightOverlay::from_entries([(0, 2), (3, 1)], &[10, 20, 30]);
        assert_eq!(o.total(), 60);
        assert_eq!(o.weighted_load(0), 30);
        assert_eq!(o.weighted_load(3), 30);
        assert_eq!(o.weighted_load(1), 0);
        assert_eq!(o.weighted_max_load(), 30);
        o.check_against([(0u32, 2u32), (3, 1)].into_iter()).unwrap();
    }

    #[test]
    fn transport_is_two_phase_fifo() {
        // Bin 0 = [10, 20], bin 1 = [5]. Both depart; bin 0's ball lands in
        // bin 1 and bin 1's ball lands in bin 0. Simultaneity: bin 1 must
        // release its *original* front (5), not the arriving 10.
        let mut o = WeightOverlay::from_entries([(0, 2), (1, 1)], &[10, 20, 5]);
        o.srcs.extend([0, 1]);
        o.transport(&[1, 0]);
        assert_eq!(o.total(), 35);
        assert_eq!(o.weighted_load(0), 25); // [20, 5]
        assert_eq!(o.weighted_load(1), 10); // [10]
                                            // Next round: bin 0 releases 20 (FIFO), not 5.
        o.srcs.extend([0, 1]);
        o.transport(&[0, 1]);
        assert_eq!(o.weighted_load(0), 25); // [5, 20]
        assert_eq!(o.weighted_load(1), 10);
    }

    #[test]
    fn place_and_depart_maintain_totals() {
        let mut o = WeightOverlay::from_entries([(2, 1)], &[7]);
        o.place(2, 3);
        o.place(5, 11);
        assert_eq!(o.total(), 21);
        assert_eq!(o.depart(2), Some(7), "FIFO front departs first");
        assert_eq!(o.depart(9), None, "empty bin is a no-op");
        assert_eq!(o.total(), 14);
        assert_eq!(o.weighted_load(2), 3);
    }

    #[test]
    fn snapshot_queues_round_trip() {
        let mut o = WeightOverlay::from_entries([(1, 2), (4, 1)], &[9, 8, 7]);
        o.srcs.push(1);
        o.transport(&[4]);
        let queues = o.queues_sorted();
        let back = WeightOverlay::from_queues(&queues);
        assert_eq!(back.total(), o.total());
        assert_eq!(back.queues_sorted(), queues);
        assert_eq!(back.weighted_load(4), o.weighted_load(4));
    }

    #[test]
    fn capacity_violations_count_only_exceeding_bins() {
        let o = WeightOverlay::from_entries([(0, 1), (1, 1)], &[10, 3]);
        assert_eq!(o.capacity_violations(&Capacities::Unbounded), 0);
        assert_eq!(o.capacity_violations(&Capacities::Uniform(5)), 1);
        assert_eq!(o.capacity_violations(&Capacities::Uniform(2)), 2);
        assert_eq!(o.capacity_violations(&Capacities::Explicit(vec![10, 1])), 1);
    }
}
