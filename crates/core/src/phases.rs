//! Busy-period ("phase") decomposition — the structure behind Lemma 6.
//!
//! The paper analyzes a bin's load by splitting time into *phases*: a phase
//! starts when the bin becomes non-empty and ends when it empties again.
//! Lemma 6's proof shows (i) the load at the first round of a phase is
//! `O(log n/log log n)` w.h.p. (a standard balls-into-bins event), and
//! (ii) each phase, coupled with the Lemma-5 chain, lasts `O(log n)` rounds
//! w.h.p. [`PhaseTracker`] measures both quantities empirically for a set
//! of tracked bins (experiment E20).

use crate::config::Config;
use crate::metrics::RoundObserver;

/// Statistics of the completed phases of a set of tracked bins.
#[derive(Debug, Clone)]
pub struct PhaseTracker {
    /// Tracked bin indices.
    bins: Vec<usize>,
    /// For each tracked bin: the round the current phase started, if busy.
    phase_start: Vec<Option<(u64, u32)>>,
    /// Completed phase durations (rounds from non-empty to empty again).
    durations: Vec<u64>,
    /// Load at the first round of each completed-or-ongoing phase.
    opening_loads: Vec<u32>,
    /// Peak load observed within each completed phase.
    peak_loads: Vec<u32>,
    /// Peak within the current phase, per bin.
    current_peak: Vec<u32>,
}

impl PhaseTracker {
    /// Tracks the given bins (deduplicated order preserved).
    pub fn new(bins: Vec<usize>) -> Self {
        let k = bins.len();
        Self {
            bins,
            phase_start: vec![None; k],
            durations: Vec::new(),
            opening_loads: Vec::new(),
            peak_loads: Vec::new(),
            current_peak: vec![0; k],
        }
    }

    /// Tracks the first `k` bins.
    pub fn first_k(k: usize) -> Self {
        Self::new((0..k).collect())
    }

    /// Completed phase durations.
    pub fn durations(&self) -> &[u64] {
        &self.durations
    }

    /// Loads at phase openings (first round the bin was seen non-empty).
    pub fn opening_loads(&self) -> &[u32] {
        &self.opening_loads
    }

    /// Peak loads within completed phases.
    pub fn peak_loads(&self) -> &[u32] {
        &self.peak_loads
    }

    /// Number of completed phases.
    pub fn completed(&self) -> usize {
        self.durations.len()
    }

    /// Longest completed phase (0 if none).
    pub fn max_duration(&self) -> u64 {
        self.durations.iter().copied().max().unwrap_or(0)
    }

    /// Mean completed-phase duration.
    pub fn mean_duration(&self) -> f64 {
        if self.durations.is_empty() {
            return 0.0;
        }
        self.durations.iter().sum::<u64>() as f64 / self.durations.len() as f64
    }

    /// Largest phase-opening load (0 if none observed).
    pub fn max_opening_load(&self) -> u32 {
        self.opening_loads.iter().copied().max().unwrap_or(0)
    }
}

impl RoundObserver for PhaseTracker {
    fn observe(&mut self, round: u64, config: &Config) {
        let loads = config.loads();
        for (i, &bin) in self.bins.iter().enumerate() {
            let load = loads[bin];
            match (self.phase_start[i], load) {
                (None, 0) => {}
                (None, l) => {
                    // Phase opens.
                    self.phase_start[i] = Some((round, l));
                    self.opening_loads.push(l);
                    self.current_peak[i] = l;
                }
                (Some((start, _)), 0) => {
                    // Phase closes.
                    self.durations.push(round - start);
                    self.peak_loads.push(self.current_peak[i]);
                    self.phase_start[i] = None;
                }
                (Some(_), l) => {
                    self.current_peak[i] = self.current_peak[i].max(l);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::process::LoadProcess;

    fn cfg(loads: &[u32]) -> Config {
        Config::from_loads(loads.to_vec())
    }

    #[test]
    fn tracks_a_simple_phase() {
        let mut t = PhaseTracker::new(vec![0]);
        t.observe(1, &cfg(&[0, 1])); // idle
        t.observe(2, &cfg(&[2, 0])); // opens with load 2
        t.observe(3, &cfg(&[1, 1])); // still busy
        t.observe(4, &cfg(&[0, 2])); // closes: duration 4-2 = 2
        assert_eq!(t.completed(), 1);
        assert_eq!(t.durations(), &[2]);
        assert_eq!(t.opening_loads(), &[2]);
        assert_eq!(t.peak_loads(), &[2]);
    }

    #[test]
    fn peak_inside_phase_recorded() {
        let mut t = PhaseTracker::new(vec![0]);
        t.observe(1, &cfg(&[1]));
        t.observe(2, &cfg(&[4]));
        t.observe(3, &cfg(&[0]));
        assert_eq!(t.peak_loads(), &[4]);
        assert_eq!(t.opening_loads(), &[1]);
    }

    #[test]
    fn ongoing_phase_not_counted_as_completed() {
        let mut t = PhaseTracker::new(vec![0]);
        t.observe(1, &cfg(&[3]));
        t.observe(2, &cfg(&[2]));
        assert_eq!(t.completed(), 0);
        assert_eq!(t.opening_loads(), &[3], "opening recorded immediately");
    }

    #[test]
    fn multiple_bins_tracked_independently() {
        let mut t = PhaseTracker::new(vec![0, 1]);
        t.observe(1, &cfg(&[1, 0]));
        t.observe(2, &cfg(&[0, 2]));
        t.observe(3, &cfg(&[0, 0]));
        assert_eq!(t.completed(), 2);
        // Bin 0: open r1, close r2 (dur 1); bin 1: open r2, close r3 (dur 1).
        assert_eq!(t.durations(), &[1, 1]);
    }

    #[test]
    fn phases_in_the_real_process_are_short() {
        // Lemma 6 structure: at equilibrium phases last O(log n) rounds and
        // open with O(log n/log log n) load.
        let n = 512;
        let mut p = LoadProcess::legitimate_start(n, 9);
        p.run_silent(2000);
        let mut t = PhaseTracker::first_k(64);
        p.run(50_000, &mut t);
        assert!(t.completed() > 1000, "phases: {}", t.completed());
        let ln_n = (n as f64).ln();
        assert!(
            (t.max_duration() as f64) < 20.0 * ln_n,
            "max phase duration {} vs ln n {}",
            t.max_duration(),
            ln_n
        );
        assert!(
            (t.max_opening_load() as f64) < 3.0 * ln_n / ln_n.ln().max(1.0),
            "max opening load {}",
            t.max_opening_load()
        );
        // Typical phase is very short (geometric-ish).
        assert!(
            t.mean_duration() < 6.0,
            "mean duration {}",
            t.mean_duration()
        );
    }

    #[test]
    fn empty_tracker_defaults() {
        let t = PhaseTracker::new(vec![]);
        assert_eq!(t.completed(), 0);
        assert_eq!(t.max_duration(), 0);
        assert_eq!(t.mean_duration(), 0.0);
        assert_eq!(t.max_opening_load(), 0);
    }
}
