//! Bit-exact, serializable snapshots of engine state.
//!
//! A [`SnapshotState`] captures everything a load engine needs to resume a
//! trajectory *exactly*: the occupied-bin loads, the raw 256-bit state of
//! every RNG stream the engine owns, and the round/ball counters. Restoring
//! through [`restore`] (or the per-engine `from_snapshot` constructors)
//! yields an engine whose remaining trajectory is bit-identical to the
//! uninterrupted run — the contract `tests/proptest_snapshot.rs` and the
//! `ci.sh` serve stage pin for the dense, sparse, and sharded engines.
//!
//! Scratch buffers (destination batches, shard outboxes) and derived caches
//! (dense-view memos, the Lemire sampler) are deliberately **not** part of
//! the state: they never influence the trajectory and are rebuilt from `n`
//! on restore.
//!
//! The struct serializes through the workspace serde stub, so a snapshot
//! renders as a single JSON object — the wire format `rbb-serve` uses for
//! its `snapshot`/`restore` requests and checkpoint files.

use serde::{Deserialize, Serialize, Value};

use crate::engine::Engine;
use crate::process::LoadProcess;
use crate::sharded::ShardedLoadProcess;
use crate::sparse::SparseLoadProcess;
use crate::weights::Capacities;

/// Version tag of the original (unit-weight, unbounded-capacity) layout.
/// Engines in the unit configuration still emit exactly this version with
/// byte-identical serialization, so every pre-weighted snapshot on disk
/// restores unchanged.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Version tag of the weighted layout: version 1 plus a `weighted` section
/// ([`WeightedSection`]) carrying the per-bin weight queues and the
/// capacity bounds.
pub const SNAPSHOT_VERSION_WEIGHTED: u32 = 2;

/// Engine-kind tag of [`LoadProcess`] snapshots.
pub const ENGINE_DENSE: &str = "dense";
/// Engine-kind tag of [`SparseLoadProcess`] snapshots.
pub const ENGINE_SPARSE: &str = "sparse";
/// Engine-kind tag of [`ShardedLoadProcess`] snapshots.
pub const ENGINE_SHARDED: &str = "sharded";

/// A snapshot failed to validate or restore.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotError(pub String);

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for SnapshotError {}

/// The complete, serializable state of a load engine at a round boundary.
///
/// Invariants (enforced by [`SnapshotState::validate`], which every restore
/// path runs):
///
/// * `entries` lists `(bin, load)` pairs with strictly increasing bin
///   indices, every bin `< n`, and every load `> 0` — a canonical sparse
///   encoding, identical for all three engines at equal configurations.
/// * `balls` equals the sum of the entry loads and fits a `u32` (the
///   workspace-wide ball-count bound).
/// * `rng_states` holds one xoshiro256++ state per engine stream — exactly
///   one for the dense and sparse engines, one per shard (in shard order)
///   for the sharded engine — and none of them is the all-zero fixed point.
/// * `weighted` is present exactly when `version` is
///   [`SNAPSHOT_VERSION_WEIGHTED`]; version-1 snapshots serialize without
///   the key at all, byte-identical to the pre-weighted layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotState {
    /// Layout version ([`SNAPSHOT_VERSION`] or [`SNAPSHOT_VERSION_WEIGHTED`]).
    pub version: u32,
    /// Engine kind: `"dense"`, `"sparse"`, or `"sharded"`.
    pub engine: String,
    /// Number of bins.
    pub n: usize,
    /// Shard count (1 for the dense and sparse engines).
    pub shards: usize,
    /// Rounds completed so far.
    pub round: u64,
    /// Balls currently in the system.
    pub balls: u64,
    /// Occupied bins as `(bin, load)` pairs, sorted by bin index.
    pub entries: Vec<(u32, u32)>,
    /// Raw xoshiro256++ states, one per engine stream.
    pub rng_states: Vec<[u64; 4]>,
    /// Weight queues and capacity bounds — `Some` iff the layout version is
    /// [`SNAPSHOT_VERSION_WEIGHTED`].
    pub weighted: Option<WeightedSection>,
}

/// The version-2 weighted section: per-bin FIFO weight queues plus the
/// serialized capacity bounds.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WeightedSection {
    /// `(bin, weights front→back)` per occupied bin, sorted by bin index.
    /// Empty for a unit-weight engine that only observes capacities.
    pub queues: Vec<(u32, Vec<u32>)>,
    /// Capacity kind tag: `"unbounded"`, `"uniform"`, or `"explicit"`.
    pub cap_kind: String,
    /// Capacity bounds: empty, one shared value, or one per bin.
    pub caps: Vec<u64>,
}

impl WeightedSection {
    /// The decoded capacity bounds.
    pub fn capacities(&self) -> Result<Capacities, SnapshotError> {
        Capacities::from_parts(&self.cap_kind, &self.caps).map_err(SnapshotError)
    }
}

// Serialize/Deserialize are written by hand (not derived) so that the
// optional `weighted` key is *omitted* — not rendered as `null` — when
// absent: version-1 snapshots must stay byte-identical to the pre-weighted
// layout, which the serve golden and every checkpoint on disk pin down.
impl Serialize for SnapshotState {
    fn serialize(&self) -> Value {
        let mut fields = vec![
            ("version".to_string(), self.version.serialize()),
            ("engine".to_string(), self.engine.serialize()),
            ("n".to_string(), self.n.serialize()),
            ("shards".to_string(), self.shards.serialize()),
            ("round".to_string(), self.round.serialize()),
            ("balls".to_string(), self.balls.serialize()),
            ("entries".to_string(), self.entries.serialize()),
            ("rng_states".to_string(), self.rng_states.serialize()),
        ];
        if let Some(w) = &self.weighted {
            fields.push(("weighted".to_string(), w.serialize()));
        }
        Value::Object(fields)
    }
}

impl Deserialize for SnapshotState {
    fn deserialize(value: &Value) -> Result<Self, serde::DeError> {
        let get = |key: &str| serde::field(value, key);
        Ok(Self {
            version: Deserialize::deserialize(get("version")?)
                .map_err(|e: serde::DeError| e.in_field("version"))?,
            engine: Deserialize::deserialize(get("engine")?)
                .map_err(|e: serde::DeError| e.in_field("engine"))?,
            n: Deserialize::deserialize(get("n")?).map_err(|e: serde::DeError| e.in_field("n"))?,
            shards: Deserialize::deserialize(get("shards")?)
                .map_err(|e: serde::DeError| e.in_field("shards"))?,
            round: Deserialize::deserialize(get("round")?)
                .map_err(|e: serde::DeError| e.in_field("round"))?,
            balls: Deserialize::deserialize(get("balls")?)
                .map_err(|e: serde::DeError| e.in_field("balls"))?,
            entries: Deserialize::deserialize(get("entries")?)
                .map_err(|e: serde::DeError| e.in_field("entries"))?,
            rng_states: Deserialize::deserialize(get("rng_states")?)
                .map_err(|e: serde::DeError| e.in_field("rng_states"))?,
            weighted: Deserialize::deserialize(get("weighted")?)
                .map_err(|e: serde::DeError| e.in_field("weighted"))?,
        })
    }
}

impl SnapshotState {
    /// Checks every structural invariant of the snapshot. All restore paths
    /// call this first, so a corrupted or hand-edited snapshot fails with an
    /// actionable message instead of resuming a wrong trajectory.
    pub fn validate(&self) -> Result<(), SnapshotError> {
        let err = |msg: String| Err(SnapshotError(msg));
        if self.version != SNAPSHOT_VERSION && self.version != SNAPSHOT_VERSION_WEIGHTED {
            return err(format!(
                "snapshot version {} unsupported (this build reads versions \
                 {SNAPSHOT_VERSION} and {SNAPSHOT_VERSION_WEIGHTED})",
                self.version
            ));
        }
        match (&self.weighted, self.version) {
            (None, SNAPSHOT_VERSION) | (Some(_), SNAPSHOT_VERSION_WEIGHTED) => {}
            (Some(_), _) => {
                return err(format!(
                    "version {} snapshots carry no weighted section (that is version \
                     {SNAPSHOT_VERSION_WEIGHTED})",
                    self.version
                ));
            }
            (None, _) => {
                return err(format!(
                    "version {} snapshots require a weighted section",
                    self.version
                ));
            }
        }
        if self.n == 0 {
            return err("snapshot has zero bins".to_string());
        }
        if self.n > u32::MAX as usize + 1 {
            return err(format!("bin count {} exceeds the u32 index range", self.n));
        }
        let expected_streams = match self.engine.as_str() {
            ENGINE_DENSE | ENGINE_SPARSE => {
                if self.shards != 1 {
                    return err(format!(
                        "{} engine must have shards = 1, got {}",
                        self.engine, self.shards
                    ));
                }
                1
            }
            ENGINE_SHARDED => {
                if self.shards == 0 || self.shards > self.n {
                    return err(format!(
                        "shard count {} outside 1..={} (the bin count)",
                        self.shards, self.n
                    ));
                }
                self.shards
            }
            other => {
                return err(format!(
                    "unknown engine kind '{other}' (dense | sparse | sharded)"
                ))
            }
        };
        if self.rng_states.len() != expected_streams {
            return err(format!(
                "{} engine expects {expected_streams} RNG stream(s), snapshot has {}",
                self.engine,
                self.rng_states.len()
            ));
        }
        for (i, s) in self.rng_states.iter().enumerate() {
            if *s == [0, 0, 0, 0] {
                return err(format!(
                    "RNG stream {i} is the all-zero xoshiro fixed point (corrupted snapshot)"
                ));
            }
        }
        let mut total: u64 = 0;
        let mut prev: Option<u32> = None;
        for &(bin, load) in &self.entries {
            if (bin as usize) >= self.n {
                return err(format!("entry bin {bin} out of range (n = {})", self.n));
            }
            if load == 0 {
                return err(format!("entry for bin {bin} has zero load"));
            }
            if prev.is_some_and(|p| p >= bin) {
                return err(format!(
                    "entries not strictly increasing at bin {bin} (canonical snapshots sort by bin)"
                ));
            }
            prev = Some(bin);
            total += load as u64;
        }
        if total != self.balls {
            return err(format!(
                "ball count {} disagrees with the entry total {total}",
                self.balls
            ));
        }
        if self.balls > u32::MAX as u64 {
            return err(format!(
                "ball count {} exceeds the u32 load bound",
                self.balls
            ));
        }
        if let Some(w) = &self.weighted {
            let caps = w.capacities()?;
            caps.validate(self.n).map_err(SnapshotError)?;
            if caps.is_unbounded() && w.queues.is_empty() {
                return err(
                    "weighted section is vacuous (no queues, unbounded capacities) — \
                     a unit snapshot must use version 1"
                        .to_string(),
                );
            }
            // Non-empty queues must mirror `entries` exactly: same bins,
            // queue length == load, every weight >= 1.
            if !w.queues.is_empty() {
                if w.queues.len() != self.entries.len() {
                    return err(format!(
                        "{} weight queues but {} occupied bins",
                        w.queues.len(),
                        self.entries.len()
                    ));
                }
                for (&(bin, load), (qbin, ws)) in self.entries.iter().zip(&w.queues) {
                    if *qbin != bin {
                        return err(format!(
                            "weight queue for bin {qbin} does not match entry bin {bin} \
                             (queues are sorted by bin, mirroring entries)"
                        ));
                    }
                    if ws.len() != load as usize {
                        return err(format!(
                            "bin {bin}: weight queue lists {} balls, load says {load}",
                            ws.len()
                        ));
                    }
                    if ws.contains(&0) {
                        return err(format!("bin {bin} holds a ball of weight 0"));
                    }
                }
            }
        }
        Ok(())
    }

    /// The dense load vector encoded by `entries`. Call after
    /// [`Self::validate`]; entries out of range are ignored here.
    pub(crate) fn dense_loads(&self) -> Vec<u32> {
        let mut loads = vec![0u32; self.n];
        for &(bin, load) in &self.entries {
            if let Some(slot) = loads.get_mut(bin as usize) {
                *slot = load;
            }
        }
        loads
    }
}

/// Validates `state` and rebuilds the engine it came from, boxed behind the
/// [`Engine`] trait — the daemon-side restore entry point. Dispatches on the
/// `engine` kind tag to [`LoadProcess::from_snapshot`],
/// [`SparseLoadProcess::from_snapshot`], or
/// [`ShardedLoadProcess::from_snapshot`].
pub fn restore(state: &SnapshotState) -> Result<Box<dyn Engine>, SnapshotError> {
    state.validate()?;
    match state.engine.as_str() {
        ENGINE_DENSE => Ok(Box::new(LoadProcess::from_snapshot(state)?)),
        ENGINE_SPARSE => Ok(Box::new(SparseLoadProcess::from_snapshot(state)?)),
        ENGINE_SHARDED => Ok(Box::new(ShardedLoadProcess::from_snapshot(state)?)),
        other => Err(SnapshotError(format!("unknown engine kind '{other}'"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::rng::Xoshiro256pp;

    type Corruption = (&'static str, Box<dyn Fn(&mut SnapshotState)>);

    fn valid_state() -> SnapshotState {
        SnapshotState {
            version: SNAPSHOT_VERSION,
            engine: ENGINE_DENSE.to_string(),
            n: 8,
            shards: 1,
            round: 5,
            balls: 8,
            entries: vec![(0, 3), (2, 4), (7, 1)],
            rng_states: vec![Xoshiro256pp::seed_from(1).state()],
            weighted: None,
        }
    }

    fn valid_weighted_state() -> SnapshotState {
        let mut s = valid_state();
        s.version = SNAPSHOT_VERSION_WEIGHTED;
        s.weighted = Some(WeightedSection {
            queues: vec![(0, vec![5, 1, 2]), (2, vec![1, 1, 9, 1]), (7, vec![30])],
            cap_kind: "uniform".to_string(),
            caps: vec![40],
        });
        s
    }

    #[test]
    fn valid_state_validates_and_round_trips_through_serde() {
        let state = valid_state();
        state.validate().unwrap();
        let back = SnapshotState::deserialize(&state.serialize()).unwrap();
        assert_eq!(back, state);
    }

    #[test]
    fn validation_rejects_structural_corruption() {
        let cases: Vec<Corruption> = vec![
            ("version", Box::new(|s| s.version = 99)),
            ("kind", Box::new(|s| s.engine = "warped".into())),
            ("zero bins", Box::new(|s| s.n = 0)),
            ("dense shards", Box::new(|s| s.shards = 2)),
            ("bin range", Box::new(|s| s.entries[2].0 = 8)),
            ("zero load", Box::new(|s| s.entries[1].1 = 0)),
            ("unsorted", Box::new(|s| s.entries.swap(0, 2))),
            ("ball total", Box::new(|s| s.balls = 7)),
            ("stream count", Box::new(|s| s.rng_states.clear())),
            ("zero stream", Box::new(|s| s.rng_states[0] = [0; 4])),
            (
                "v1 with weighted section",
                Box::new(|s| {
                    s.weighted = Some(WeightedSection {
                        queues: vec![],
                        cap_kind: "uniform".to_string(),
                        caps: vec![3],
                    })
                }),
            ),
        ];
        for (what, corrupt) in cases {
            let mut s = valid_state();
            corrupt(&mut s);
            assert!(s.validate().is_err(), "corruption '{what}' must be caught");
            assert!(restore(&s).is_err(), "restore must reject '{what}' too");
        }
    }

    #[test]
    fn weighted_state_validates_and_round_trips() {
        let state = valid_weighted_state();
        state.validate().unwrap();
        let back = SnapshotState::deserialize(&state.serialize()).unwrap();
        assert_eq!(back, state);
    }

    #[test]
    fn weighted_validation_rejects_section_corruption() {
        type WCorruption = (&'static str, Box<dyn Fn(&mut SnapshotState)>);
        fn weighted(s: &mut SnapshotState) -> &mut WeightedSection {
            s.weighted.as_mut().unwrap()
        }
        let cases: Vec<WCorruption> = vec![
            ("v2 without section", Box::new(|s| s.weighted = None)),
            (
                "queue count",
                Box::new(move |s| {
                    weighted(s).queues.pop();
                }),
            ),
            (
                "queue bin mismatch",
                Box::new(move |s| weighted(s).queues[1].0 = 3),
            ),
            (
                "queue length vs load",
                Box::new(move |s| weighted(s).queues[0].1.push(4)),
            ),
            (
                "zero weight",
                Box::new(move |s| weighted(s).queues[2].1[0] = 0),
            ),
            (
                "bad cap kind",
                Box::new(move |s| weighted(s).cap_kind = "warped".to_string()),
            ),
            (
                "uniform caps arity",
                Box::new(move |s| weighted(s).caps = vec![1, 2]),
            ),
            (
                "explicit caps length",
                Box::new(move |s| {
                    let w = weighted(s);
                    w.cap_kind = "explicit".to_string();
                    w.caps = vec![9; 3];
                }),
            ),
            (
                "zero capacity",
                Box::new(move |s| weighted(s).caps = vec![0]),
            ),
            (
                "vacuous section",
                Box::new(move |s| {
                    let w = weighted(s);
                    w.queues.clear();
                    w.cap_kind = "unbounded".to_string();
                    w.caps.clear();
                }),
            ),
        ];
        for (what, corrupt) in cases {
            let mut s = valid_weighted_state();
            corrupt(&mut s);
            assert!(s.validate().is_err(), "corruption '{what}' must be caught");
        }
    }

    #[test]
    fn unit_capacity_only_section_is_valid_without_queues() {
        // A unit-weight engine observing capacities snapshots with an empty
        // queue list but a real capacity bound.
        let mut s = valid_weighted_state();
        let w = s.weighted.as_mut().unwrap();
        w.queues.clear();
        s.validate().unwrap();
    }

    #[test]
    fn v1_serialization_omits_the_weighted_key() {
        // The pre-weighted byte format must be preserved exactly: no
        // `"weighted": null` key may appear on version-1 snapshots.
        let v1 = valid_state().serialize();
        let keys: Vec<&str> = v1
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert!(!keys.contains(&"weighted"), "{keys:?}");
        let v2 = valid_weighted_state().serialize();
        assert!(
            v2.as_object().unwrap().iter().any(|(k, _)| k == "weighted"),
            "version-2 snapshots must carry the weighted key"
        );
    }

    #[test]
    fn sharded_stream_count_must_match_shards() {
        let mut s = valid_state();
        s.engine = ENGINE_SHARDED.to_string();
        s.shards = 3;
        assert!(s.validate().is_err(), "3 shards need 3 streams");
        s.rng_states = (0..3).map(|i| Xoshiro256pp::stream(9, i).state()).collect();
        s.validate().unwrap();
    }

    #[test]
    fn restore_dispatches_on_the_kind_tag() {
        let state = valid_state();
        let engine = restore(&state).unwrap();
        assert_eq!(engine.n(), 8);
        assert_eq!(engine.balls(), 8);
        assert_eq!(engine.round(), 5);
        assert_eq!(
            engine.config(),
            &Config::from_loads(vec![3, 0, 4, 0, 0, 0, 0, 1])
        );
    }

    #[test]
    fn dense_loads_rebuilds_the_vector() {
        assert_eq!(valid_state().dense_loads(), vec![3, 0, 4, 0, 0, 0, 0, 1]);
    }
}
