//! The repeated balls-into-bins process — sparse occupancy engine for the
//! `m ≪ n` regime.
//!
//! [`crate::process::LoadProcess`] scans a dense `Vec<u32>` of all `n` bins
//! every round, so a round costs `O(n)` even when only a few thousand bins
//! are ever occupied. [`SparseLoadProcess`] stores **only the occupied
//! bins** — an index→load hash map plus an unordered worklist of occupied
//! indices — so one round costs `O(#non-empty bins + departures)` and
//! resident memory is `O(m)`, independent of `n`. That unlocks the regime
//! the paper's stability claims are most interesting in at scale
//! (`n = 10^8`, `m = 10^3..10^5`), where the dense engine cannot even
//! afford its own load vector comfortably.
//!
//! # Why the two engines are bit-identical
//!
//! The process consumes randomness in exactly one place: after every
//! non-empty bin releases one ball, the round's `d` departures each draw an
//! i.i.d. uniform destination over `[0, n)`. The *number* of draws depends
//! only on how many bins are non-empty — never on how the loads are stored
//! — and both engines draw through the same primitive
//! ([`Xoshiro256pp::uniform_usize`] scalar / [`UniformSampler`] batched,
//! themselves bit-compatible). So from the same seed and the same starting
//! configuration, the dense and sparse engines consume identical RNG
//! streams and traverse identical configuration trajectories, round for
//! round — including across `apply_fault` reassignments, which consume no
//! engine randomness. The cross-engine proptests (`tests/proptest_sparse.rs`)
//! pin this over the full factory matrix, fault injection included.
//!
//! # Observing without densifying
//!
//! [`Engine::config`] must hand out a dense [`Config`]; the sparse engine
//! materializes one lazily into a [`OnceCell`] cache (invalidated by every
//! mutation), so callers that genuinely need the dense view — final
//! inspection, the adversary's `placement(…, &Config, …)`, equivalence
//! tests — pay `O(n)` only when they ask. The per-round driver surface
//! ([`Engine::max_load`], [`Engine::empty_bins`], [`Engine::nonempty_bins`],
//! [`Engine::bin_load`], [`Engine::nonempty_bins_list`]) is overridden with
//! `O(#occupied)`-or-better implementations, and the `rbb_sim` scenario
//! loop and [`crate::metrics::ObserverStack::observe_engine`] read only
//! that surface.

use std::cell::OnceCell;
use std::collections::hash_map::Entry;

use crate::config::Config;
use crate::det_hash::DetHashMap;
use crate::engine::Engine;
use crate::process::weighted_section;
use crate::rng::Xoshiro256pp;
use crate::sampling::UniformSampler;
use crate::snapshot::{
    SnapshotError, SnapshotState, ENGINE_SPARSE, SNAPSHOT_VERSION, SNAPSHOT_VERSION_WEIGHTED,
};
use crate::weights::{Capacities, WeightOverlay, Weights};

/// Occupancy map type of the sparse engine: bin index → load, keyed through
/// the workspace-wide deterministic hasher ([`crate::det_hash`] — formerly
/// this module's private `BinHasher`, hoisted so every result-affecting map
/// shares one implementation). The std default (`RandomState`/SipHash)
/// would be several times slower on 4-byte keys *and* randomly seeded per
/// process, making map layout — and therefore debugging — non-reproducible.
/// Bin indices are uniform random draws, so no adversarial-key defense is
/// needed here.
type LoadMap = DetHashMap<u32, u32>;

/// Sparse load-only repeated balls-into-bins simulator: bit-identical in
/// trajectory to [`LoadProcess`](crate::process::LoadProcess) from the same
/// seed and start, at `O(#non-empty bins + departures)` per round and
/// `O(m)` memory.
///
/// ```
/// use rbb_core::prelude::*;
/// use rbb_core::sparse::SparseLoadProcess;
///
/// // 10^7 bins, 1000 balls: rounds cost O(1000), memory O(1000).
/// let mut p = SparseLoadProcess::from_entries(
///     10_000_000,
///     vec![(0, 1_000)],
///     Xoshiro256pp::seed_from(7),
/// );
/// p.run_silent(2_000);
/// assert_eq!(p.balls(), 1_000);
/// assert!(Engine::max_load(&p) >= 1);
/// ```
#[derive(Debug, Clone)]
pub struct SparseLoadProcess {
    n: usize,
    rng: Xoshiro256pp,
    round: u64,
    balls: u64,
    /// Occupied bins only: `loads[&b]` ≥ 1 always.
    loads: LoadMap,
    /// Unordered worklist of the occupied bin indices — the round's
    /// departure scan iterates this, never `[0, n)`.
    occupied: Vec<u32>,
    /// Uniform sampler keyed on `n` (cached, like the dense engine's).
    sampler: UniformSampler,
    /// Destination scratch for the batched path.
    dests: Vec<u32>,
    /// Lazily materialized dense view for `Engine::config`; invalidated on
    /// every mutation, so steady-state stepping never allocates `O(n)`.
    dense: OnceCell<Config>,
    /// Weight overlay — `None` in the unit configuration, where every step
    /// path takes its original branch untouched.
    weighted: Option<WeightOverlay>,
    /// Observed capacity bounds ([`Capacities::Unbounded`] by default).
    capacities: Capacities,
}

impl SparseLoadProcess {
    /// Creates a sparse process from occupied-bin `(bin, load)` entries —
    /// the `O(#entries)` constructor that never touches a dense vector.
    /// Duplicate bins are merged; zero loads are ignored.
    ///
    /// Panics if `n == 0`, a bin index is out of range, or the total ball
    /// count exceeds `u32::MAX` (the per-bin capacity — see
    /// [`Config::from_loads`]).
    ///
    /// # RNG stream
    ///
    /// Takes ownership of `rng` as the engine stream. Bit-compatible with the
    /// dense engine: each round consumes one uniform destination draw per ball
    /// released, in bin order.
    pub fn from_entries(
        n: usize,
        entries: impl IntoIterator<Item = (u32, u32)>,
        rng: Xoshiro256pp,
    ) -> Self {
        assert!(n > 0, "a configuration needs at least one bin");
        // Bin indices are u32 throughout the workspace; a larger n would
        // silently truncate destination draws (`as u32`) in release builds.
        assert!(
            n <= u32::MAX as usize + 1,
            "bin count {n} exceeds the u32 index range"
        );
        let mut loads = LoadMap::default();
        let mut occupied = Vec::new();
        let mut balls = 0u64;
        for (bin, load) in entries {
            assert!((bin as usize) < n, "bin {bin} out of range 0..{n}");
            if load == 0 {
                continue;
            }
            balls += load as u64;
            match loads.entry(bin) {
                Entry::Occupied(mut e) => *e.get_mut() += load,
                Entry::Vacant(e) => {
                    e.insert(load);
                    occupied.push(bin);
                }
            }
        }
        assert!(
            balls <= u32::MAX as u64,
            "total ball count {balls} exceeds u32::MAX and could overflow a single bin"
        );
        Self {
            n,
            rng,
            round: 0,
            balls,
            loads,
            occupied,
            sampler: UniformSampler::new(n as u64),
            dests: Vec::new(),
            dense: OnceCell::new(),
            weighted: None,
            capacities: Capacities::Unbounded,
        }
    }

    /// Creates a weighted, capacity-observing sparse process — the sparse
    /// counterpart of [`LoadProcess::with_weights`], bit-identical to it in
    /// trajectory, RNG stream, and weighted metrics from the same seed and
    /// start. [`Weights::Unit`] (or an explicit all-ones vector) builds no
    /// overlay, so the unit configuration is the same engine as
    /// [`Self::new`].
    ///
    /// # RNG stream
    ///
    /// Identical to [`Self::new`]: weights never touch the RNG — each round
    /// still consumes one uniform draw per departing bin, in bin order.
    ///
    /// [`LoadProcess::with_weights`]: crate::process::LoadProcess::with_weights
    pub fn with_weights(
        config: Config,
        rng: Xoshiro256pp,
        weights: Weights,
        capacities: Capacities,
    ) -> Self {
        let weights = weights.normalized();
        if let Err(e) = weights.validate(config.total_balls()) {
            // rbb-lint: allow(panic, reason = "constructor contract violation, caught by spec-layer validation first")
            panic!("invalid weights: {e}");
        }
        if let Err(e) = capacities.validate(config.n()) {
            // rbb-lint: allow(panic, reason = "constructor contract violation, caught by spec-layer validation first")
            panic!("invalid capacities: {e}");
        }
        let overlay = match &weights {
            Weights::Unit => None,
            Weights::Explicit(ws) => {
                let entries = config
                    .loads()
                    .iter()
                    .enumerate()
                    .filter(|&(_, &l)| l > 0)
                    // rbb-lint: allow(lossy-cast, reason = "enumerate index < n, which fits the u32 bin-index range")
                    .map(|(b, &l)| (b as u32, l));
                Some(WeightOverlay::from_entries(entries, ws))
            }
        };
        let mut p = Self::new(config, rng);
        p.weighted = overlay;
        p.capacities = capacities;
        p
    }

    /// Creates a sparse process from a dense configuration (collecting its
    /// non-empty bins) — the drop-in replacement for
    /// [`LoadProcess::new`](crate::process::LoadProcess::new).
    ///
    /// # RNG stream
    ///
    /// Takes ownership of `rng` as the engine stream — see
    /// [`Self::from_entries`] for the per-round draw contract.
    pub fn new(config: Config, rng: Xoshiro256pp) -> Self {
        let entries = config
            .loads()
            .iter()
            .enumerate()
            .filter(|&(_, &l)| l > 0)
            // rbb-lint: allow(lossy-cast, reason = "enumerate index < n, and from_entries asserts n fits the u32 index range")
            .map(|(b, &l)| (b as u32, l));
        Self::from_entries(config.n(), entries, rng)
    }

    /// Convenience constructor: `n` balls into `n` bins, one per bin.
    pub fn legitimate_start(n: usize, seed: u64) -> Self {
        Self::from_entries(
            n,
            // rbb-lint: allow(lossy-cast, reason = "from_entries asserts n fits the u32 index range")
            (0..n as u32).map(|b| (b, 1)),
            // rbb-lint: allow(rng-construct, reason = "engine-convention stream for a core convenience constructor; core cannot depend on rbb_sim::seed")
            Xoshiro256pp::seed_from(seed),
        )
    }

    /// Current round index (0 before any step).
    #[inline]
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Number of bins.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Total ball count (rounds conserve it; the incremental
    /// [`Engine::place`]/[`Engine::depart`] surface changes it).
    #[inline]
    pub fn balls(&self) -> u64 {
        self.balls
    }

    /// Number of occupied (non-empty) bins.
    #[inline]
    pub fn occupied_bins(&self) -> usize {
        self.loads.len()
    }

    /// Drops the dense snapshot cache; every mutation must call this.
    #[inline]
    fn invalidate(&mut self) {
        self.dense.take();
    }

    /// Departure phase: every occupied bin releases one ball; bins reaching
    /// zero leave the map and the worklist. Returns the departure count.
    fn depart_all(&mut self) -> usize {
        let loads = &mut self.loads;
        let before = self.occupied.len();
        self.occupied.retain(|&b| {
            // rbb-lint: allow(panic, reason = "worklist entries are occupied by construction")
            let slot = loads.get_mut(&b).expect("worklist entries are occupied");
            *slot -= 1;
            if *slot == 0 {
                loads.remove(&b);
                false
            } else {
                true
            }
        });
        before
    }

    /// Arrival of one ball in bin `b`.
    #[inline]
    fn arrive(&mut self, b: u32) {
        match self.loads.entry(b) {
            Entry::Occupied(mut e) => {
                let slot = e.get_mut();
                debug_assert_ne!(*slot, u32::MAX, "bin {b} load would overflow u32");
                *slot += 1;
            }
            Entry::Vacant(e) => {
                e.insert(1);
                self.occupied.push(b);
            }
        }
    }

    /// Closes a round: bumps the counter, invalidates the dense cache, and
    /// (in debug builds) re-checks mass conservation.
    fn finish_round(&mut self, departures: usize) -> usize {
        self.round += 1;
        self.invalidate();
        debug_assert_eq!(
            // rbb-lint: allow(unordered-iter, reason = "integer sum is order-independent")
            self.loads.values().map(|&l| l as u64).sum::<u64>(),
            self.balls,
            "mass violated"
        );
        debug_assert_eq!(self.loads.len(), self.occupied.len());
        debug_assert!(self.weighted.as_ref().is_none_or(|o| o
            // rbb-lint: allow(unordered-iter, reason = "check_against counts and compares per-bin; order-independent")
            .check_against(self.loads.iter().map(|(&b, &l)| (b, l)))
            .is_ok()));
        departures
    }

    /// The weighted round: same draws as the unit paths, plus the metric
    /// transport. Departing bins enter the transport in **ascending bin
    /// order** — the canonical order the dense engine's scan produces — so
    /// the weighted sparse engine stays bit-identical to the weighted dense
    /// engine even though the unit worklist is unordered.
    fn step_weighted(&mut self, batched: bool) -> usize {
        {
            let overlay = self
                .weighted
                .as_mut()
                // rbb-lint: allow(panic, reason = "only reached behind a weighted.is_some() guard in step/step_batched")
                .expect("weighted step needs an overlay");
            overlay.srcs.clear();
            overlay.srcs.extend_from_slice(&self.occupied);
            overlay.srcs.sort_unstable();
        }
        let departures = self.depart_all();
        let mut dests = std::mem::take(&mut self.dests);
        if batched {
            dests.resize(departures, 0);
            self.sampler.fill_u32(&mut self.rng, &mut dests);
        } else {
            dests.clear();
            for _ in 0..departures {
                // rbb-lint: allow(lossy-cast, reason = "n fits the u32 index range (asserted at construction); draws are < n")
                dests.push(self.rng.uniform_usize(self.n) as u32);
            }
        }
        for &b in &dests {
            self.arrive(b);
        }
        let overlay = self.weighted.as_mut();
        overlay
            // rbb-lint: allow(panic, reason = "the overlay checked above cannot vanish mid-round")
            .expect("weighted step needs an overlay")
            .transport(&dests);
        self.dests = dests;
        self.finish_round(departures)
    }

    /// Advances one round through the scalar path; returns the number of
    /// balls that moved. Consumes the RNG exactly like
    /// [`LoadProcess::step`](crate::process::LoadProcess::step): `d` scalar
    /// uniform draws, where `d` is the number of non-empty bins.
    pub fn step(&mut self) -> usize {
        if self.weighted.is_some() {
            return self.step_weighted(false);
        }
        let departures = self.depart_all();
        for _ in 0..departures {
            // rbb-lint: allow(lossy-cast, reason = "n fits the u32 index range (asserted at construction); draws are < n")
            let b = self.rng.uniform_usize(self.n) as u32;
            self.arrive(b);
        }
        self.finish_round(departures)
    }

    /// Advances one round through the batched path (destinations drawn
    /// through the cached [`UniformSampler`] into a reused scratch buffer).
    /// Bit-identical to [`step`](SparseLoadProcess::step) — and to the dense
    /// engine's batched path — from equal state.
    pub fn step_batched(&mut self) -> usize {
        if self.weighted.is_some() {
            return self.step_weighted(true);
        }
        let departures = self.depart_all();
        self.dests.resize(departures, 0);
        let mut dests = std::mem::take(&mut self.dests);
        self.sampler.fill_u32(&mut self.rng, &mut dests);
        for &b in &dests {
            self.arrive(b);
        }
        self.dests = dests;
        self.finish_round(departures)
    }

    /// Captures the complete resumable state, with entries in canonical
    /// (bin-sorted) order. The occupied-worklist *order* is not trajectory
    /// state: a round's draw count depends only on how many bins are
    /// occupied and the destinations are i.i.d., so restoring with a sorted
    /// worklist resumes the same load trajectory the snapshotted process
    /// would have taken.
    pub fn snapshot_state(&self) -> SnapshotState {
        let mut entries: Vec<(u32, u32)> = self.loads.iter().map(|(&b, &l)| (b, l)).collect();
        entries.sort_unstable();
        let weighted = weighted_section(self.weighted.as_ref(), &self.capacities);
        SnapshotState {
            version: if weighted.is_some() {
                SNAPSHOT_VERSION_WEIGHTED
            } else {
                SNAPSHOT_VERSION
            },
            engine: ENGINE_SPARSE.to_string(),
            n: self.n,
            shards: 1,
            round: self.round,
            balls: self.balls,
            entries,
            rng_states: vec![self.rng.state()],
            weighted,
        }
    }

    /// Rebuilds a sparse process from a snapshot (validated first); the
    /// restored process resumes the snapshotted trajectory bit-identically.
    pub fn from_snapshot(state: &SnapshotState) -> Result<Self, SnapshotError> {
        state.validate()?;
        if state.engine != ENGINE_SPARSE {
            return Err(SnapshotError(format!(
                "expected a {ENGINE_SPARSE} snapshot, got '{}'",
                state.engine
            )));
        }
        // rbb-lint: allow(rng-construct, reason = "restoring a serialized stream state captured from a live engine snapshot, not seeding a new stream")
        let rng = Xoshiro256pp::from_state(state.rng_states[0]);
        let mut p = Self::from_entries(state.n, state.entries.iter().copied(), rng);
        p.round = state.round;
        if let Some(w) = &state.weighted {
            p.capacities = w.capacities()?;
            if !w.queues.is_empty() {
                p.weighted = Some(WeightOverlay::from_queues(&w.queues));
            }
        }
        Ok(p)
    }
}

impl Engine for SparseLoadProcess {
    #[inline]
    fn step(&mut self) -> usize {
        SparseLoadProcess::step(self)
    }

    #[inline]
    fn step_batched(&mut self) -> usize {
        SparseLoadProcess::step_batched(self)
    }

    #[inline]
    fn round(&self) -> u64 {
        self.round
    }

    /// Materializes (and caches) the dense snapshot — `O(n)`, so per-round
    /// drivers use the cheap accessors below instead (see the module docs).
    fn config(&self) -> &Config {
        self.dense.get_or_init(|| {
            let mut loads = vec![0u32; self.n];
            // rbb-lint: allow(unordered-iter, reason = "scatter into a dense per-bin vector is order-independent")
            for (&b, &l) in &self.loads {
                loads[b as usize] = l;
            }
            Config::from_loads(loads)
        })
    }

    #[inline]
    fn n(&self) -> usize {
        self.n
    }

    #[inline]
    fn balls(&self) -> u64 {
        self.balls
    }

    fn max_load(&self) -> u32 {
        // rbb-lint: allow(unordered-iter, reason = "max over values is order-independent")
        self.loads.values().copied().max().unwrap_or(0)
    }

    #[inline]
    fn empty_bins(&self) -> usize {
        self.n - self.loads.len()
    }

    #[inline]
    fn nonempty_bins(&self) -> usize {
        self.loads.len()
    }

    #[inline]
    fn bin_load(&self, bin: usize) -> u32 {
        // rbb-lint: allow(lossy-cast, reason = "bin < n, and n fits the u32 index range (asserted at construction)")
        self.loads.get(&(bin as u32)).copied().unwrap_or(0)
    }

    fn nonempty_bins_list(&self) -> Option<Vec<u32>> {
        Some(self.occupied.clone())
    }

    fn supports_faults(&self) -> bool {
        true
    }

    /// Placement-based fault, `O(m)`: rebuilds the occupancy map from
    /// `placement[ball] = bin` without a dense detour. Consumes no engine
    /// randomness, exactly like the dense engine's fault path, so faulty
    /// trajectories stay bit-identical too.
    fn apply_fault(&mut self, placement: &[usize]) {
        assert_eq!(
            placement.len() as u64,
            self.balls,
            "adversary must conserve balls"
        );
        self.loads.clear();
        self.occupied.clear();
        for &bin in placement {
            assert!(bin < self.n, "bin {bin} out of range 0..{}", self.n);
            // rbb-lint: allow(lossy-cast, reason = "bin < n, and n fits the u32 index range (asserted at construction)")
            self.arrive(bin as u32);
        }
        self.invalidate();
    }

    fn supports_incremental(&self) -> bool {
        true
    }

    /// Incremental arrival: one uniform destination draw from the engine
    /// stream — bit-compatible with the dense engine's `place`.
    fn place(&mut self) -> usize {
        self.place_weighted(1)
    }

    /// Same RNG draw as [`place`](Engine::place) — the weight only feeds
    /// the overlay. A unit process accepts weight 1 only.
    fn place_weighted(&mut self, weight: u32) -> usize {
        assert!(
            self.balls < u32::MAX as u64,
            "place would overflow the u32 load bound"
        );
        assert!(
            weight == 1 || self.weighted.is_some(),
            "this process is unit-weight: only weight-1 placements are supported"
        );
        assert!(weight >= 1, "placed weight must be at least 1");
        // rbb-lint: allow(lossy-cast, reason = "n fits the u32 index range (asserted at construction); draws are < n")
        let b = self.rng.uniform_usize(self.n) as u32;
        self.arrive(b);
        self.balls += 1;
        if let Some(o) = &mut self.weighted {
            o.place(b, weight);
        }
        self.invalidate();
        b as usize
    }

    fn depart(&mut self, bin: usize) -> bool {
        if bin >= self.n {
            return false;
        }
        // rbb-lint: allow(lossy-cast, reason = "bin < n, and n fits the u32 index range (asserted at construction)")
        let b = bin as u32;
        let Some(slot) = self.loads.get_mut(&b) else {
            return false;
        };
        *slot -= 1;
        if *slot == 0 {
            self.loads.remove(&b);
            self.occupied.retain(|&x| x != b);
        }
        self.balls -= 1;
        if let Some(o) = &mut self.weighted {
            o.depart(b);
        }
        self.invalidate();
        true
    }

    fn weighted(&self) -> bool {
        self.weighted.is_some()
    }

    fn total_weight(&self) -> u64 {
        self.weighted
            .as_ref()
            .map_or(self.balls, WeightOverlay::total)
    }

    fn weighted_max_load(&self) -> u64 {
        match &self.weighted {
            Some(o) => o.weighted_max_load(),
            None => u64::from(Engine::max_load(self)),
        }
    }

    fn weighted_bin_load(&self, bin: usize) -> u64 {
        match &self.weighted {
            // rbb-lint: allow(lossy-cast, reason = "out-of-range bins read as empty, matching the unit path's 0 load")
            Some(o) => o.weighted_load(bin as u32),
            None => u64::from(Engine::bin_load(self, bin)),
        }
    }

    fn capacities(&self) -> &Capacities {
        &self.capacities
    }

    /// `O(#occupied)` in every mode — the overlay map for weighted runs,
    /// the occupancy map for capacity-only unit runs (empty bins never
    /// violate, so the trait default's `O(n)` scan is never needed here).
    fn capacity_violations(&self) -> u64 {
        match &self.weighted {
            Some(o) => o.capacity_violations(&self.capacities),
            None => {
                if self.capacities.is_unbounded() {
                    return 0;
                }
                // rbb-lint: allow(unordered-iter, reason = "counting violators is order-independent")
                self.loads
                    .iter()
                    .filter(|(&b, &l)| {
                        self.capacities
                            .bound(b as usize)
                            .is_some_and(|c| u64::from(l) > c)
                    })
                    .count() as u64
            }
        }
    }

    fn snapshot(&self) -> Option<SnapshotState> {
        Some(self.snapshot_state())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::LoadProcess;

    fn rng(seed: u64) -> Xoshiro256pp {
        Xoshiro256pp::seed_from(seed)
    }

    /// Steps a dense/sparse pair in lockstep, asserting full agreement.
    fn assert_twins(mut dense: LoadProcess, mut sparse: SparseLoadProcess, rounds: u64) {
        for r in 0..rounds {
            let (a, b) = if r % 3 == 0 {
                (dense.step(), sparse.step())
            } else {
                (Engine::step_batched(&mut dense), sparse.step_batched())
            };
            assert_eq!(a, b, "departure count diverged at round {r}");
            assert_eq!(Engine::max_load(&dense), Engine::max_load(&sparse));
            assert_eq!(Engine::empty_bins(&dense), Engine::empty_bins(&sparse));
            assert_eq!(dense.config(), Engine::config(&sparse), "round {r}");
        }
        assert_eq!(dense.round(), Engine::round(&sparse));
    }

    #[test]
    fn trajectory_is_bit_identical_to_dense_from_any_start() {
        for (n, m) in [(64usize, 64u32), (100, 7), (33, 200), (2, 1)] {
            let config = Config::all_in_one(n, m);
            assert_twins(
                LoadProcess::new(config.clone(), rng(9)),
                SparseLoadProcess::new(config, rng(9)),
                120,
            );
        }
    }

    #[test]
    fn legitimate_start_matches_dense() {
        assert_twins(
            LoadProcess::legitimate_start(128, 5),
            SparseLoadProcess::legitimate_start(128, 5),
            100,
        );
    }

    #[test]
    fn from_entries_merges_and_validates() {
        let p = SparseLoadProcess::from_entries(10, vec![(3, 2), (3, 1), (9, 5), (0, 0)], rng(1));
        assert_eq!(p.balls(), 8);
        assert_eq!(p.occupied_bins(), 2);
        assert_eq!(Engine::bin_load(&p, 3), 3);
        assert_eq!(Engine::bin_load(&p, 9), 5);
        assert_eq!(Engine::bin_load(&p, 0), 0);
        assert_eq!(Engine::config(&p).loads()[3], 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_entries_rejects_out_of_range_bin() {
        SparseLoadProcess::from_entries(4, vec![(4, 1)], rng(1));
    }

    #[test]
    #[should_panic(expected = "could overflow")]
    fn from_entries_rejects_overflowing_mass() {
        SparseLoadProcess::from_entries(4, vec![(0, u32::MAX), (1, 1)], rng(1));
    }

    #[test]
    fn dense_cache_invalidates_on_step() {
        let mut p = SparseLoadProcess::legitimate_start(16, 3);
        let before = Engine::config(&p).clone();
        p.step();
        let after = Engine::config(&p);
        assert_ne!(&before, after, "stale dense snapshot served after a step");
        assert_eq!(after.total_balls(), 16);
    }

    #[test]
    fn cheap_accessors_match_dense_view() {
        let mut p = SparseLoadProcess::from_entries(1000, vec![(1, 3), (997, 1)], rng(7));
        p.run_silent(50);
        let dense = Engine::config(&p).clone();
        assert_eq!(Engine::max_load(&p), dense.max_load());
        assert_eq!(Engine::empty_bins(&p), dense.empty_bins());
        assert_eq!(Engine::nonempty_bins(&p), dense.nonempty_bins());
        for b in 0..1000 {
            assert_eq!(Engine::bin_load(&p, b), dense.loads()[b]);
        }
        let mut list = Engine::nonempty_bins_list(&p).unwrap();
        list.sort_unstable();
        let expect: Vec<u32> = dense
            .loads()
            .iter()
            .enumerate()
            .filter(|&(_, &l)| l > 0)
            .map(|(b, _)| b as u32)
            .collect();
        assert_eq!(list, expect);
    }

    #[test]
    fn apply_fault_matches_dense_fault_path() {
        let mut dense = LoadProcess::legitimate_start(32, 21);
        let mut sparse = SparseLoadProcess::legitimate_start(32, 21);
        for _ in 0..40 {
            dense.step();
            sparse.step();
        }
        let placement: Vec<usize> = (0..32).map(|i| i % 5).collect();
        Engine::apply_fault(&mut dense, &placement);
        Engine::apply_fault(&mut sparse, &placement);
        assert_eq!(dense.config(), Engine::config(&sparse));
        // Post-fault trajectories keep agreeing (no RNG was consumed).
        assert_twins(dense, sparse, 60);
    }

    #[test]
    #[should_panic(expected = "conserve")]
    fn apply_fault_rejects_mass_change() {
        let mut p = SparseLoadProcess::legitimate_start(8, 1);
        Engine::apply_fault(&mut p, &[0; 9]);
    }

    #[test]
    fn snapshot_restore_resumes_bit_identically() {
        let mut p = SparseLoadProcess::from_entries(1000, vec![(3, 40), (700, 2)], rng(31));
        p.run_silent(25);
        let snap = Engine::snapshot(&p).expect("sparse engine snapshots");
        assert!(
            snap.entries.windows(2).all(|w| w[0].0 < w[1].0),
            "entries must be in canonical bin order"
        );
        let mut q = SparseLoadProcess::from_snapshot(&snap).unwrap();
        assert_eq!(Engine::round(&q), 25);
        for _ in 0..60 {
            p.step();
            q.step();
        }
        assert_eq!(Engine::config(&p), Engine::config(&q));
        assert_eq!(Engine::snapshot(&p), Engine::snapshot(&q));
    }

    #[test]
    fn place_and_depart_track_occupancy() {
        let mut p = SparseLoadProcess::from_entries(50, vec![(10, 2)], rng(41));
        assert!(Engine::supports_incremental(&p));
        let b = Engine::place(&mut p);
        assert!(b < 50);
        assert_eq!(p.balls(), 3);
        assert_eq!(Engine::bin_load(&p, b), if b == 10 { 3 } else { 1 });
        assert!(Engine::depart(&mut p, 10));
        assert!(Engine::depart(&mut p, 10) || b == 10, "bin 10 had 2 balls");
        assert!(!Engine::depart(&mut p, 50), "out of range is a no-op");
        assert!(!Engine::depart(&mut p, 49), "empty bin is a no-op");
        assert_eq!(p.occupied.len(), p.loads.len());
        assert!(p.loads.values().all(|&l| l > 0));
        p.step();
        assert_eq!(p.balls(), p.loads.values().map(|&l| l as u64).sum::<u64>());
    }

    #[test]
    fn place_matches_dense_place_bit_for_bit() {
        let mut dense = LoadProcess::legitimate_start(64, 51);
        let mut sparse = SparseLoadProcess::legitimate_start(64, 51);
        for _ in 0..30 {
            assert_eq!(Engine::place(&mut dense), Engine::place(&mut sparse));
        }
        assert_twins(dense, sparse, 40);
    }

    #[test]
    fn round_cost_tracks_occupancy_not_n() {
        // Smoke-level scale check: n = 10^7 with 500 balls must step fast
        // (a dense engine would scan 10^7 slots per round — ~10^10 slot
        // visits for this loop).
        let mut p = SparseLoadProcess::from_entries(10_000_000, vec![(0, 500)], rng(2));
        p.run_silent(1_000);
        assert_eq!(p.balls(), 500);
        assert!(p.occupied_bins() <= 500);
        assert!(Engine::empty_bins(&p) >= 10_000_000 - 500);
    }

    #[test]
    fn engine_run_family_works() {
        let mut p = SparseLoadProcess::legitimate_start(64, 11);
        let hit = p.run_until(10_000, |c| c.max_load() >= 3);
        assert!(hit.is_some());
        let mut q = SparseLoadProcess::from_entries(64, vec![(0, 64)], rng(11));
        q.run_silent(100);
        assert_eq!(q.round, 100);
        assert_eq!(q.balls(), 64);
    }

    #[test]
    fn worklist_and_map_stay_consistent_under_churn() {
        let mut p = SparseLoadProcess::from_entries(50, vec![(10, 40)], rng(13));
        for _ in 0..300 {
            p.step();
            assert_eq!(p.occupied.len(), p.loads.len());
            assert!(p.occupied.iter().all(|b| p.loads.contains_key(b)));
            assert!(p.loads.values().all(|&l| l > 0));
        }
    }

    #[test]
    fn weighted_sparse_is_bit_identical_to_weighted_dense() {
        // The tentpole invariant at the sparse layer: from the same seed,
        // start, and weights, the weighted sparse engine matches the
        // weighted dense engine in trajectory, RNG stream, and every
        // weighted metric — the sorted-departure transport reproduces the
        // dense scan order exactly.
        let n = 96;
        let weights = Weights::zipf(n as u64, 1.0, 40);
        let caps = Capacities::Uniform(50);
        let mut dense = LoadProcess::with_weights(
            Config::one_per_bin(n),
            rng(71),
            weights.clone(),
            caps.clone(),
        );
        let mut sparse =
            SparseLoadProcess::with_weights(Config::one_per_bin(n), rng(71), weights, caps);
        assert!(Engine::weighted(&sparse));
        for r in 0..160 {
            let (a, b) = if r % 3 == 0 {
                (dense.step(), sparse.step())
            } else {
                (dense.step_batched(), sparse.step_batched())
            };
            assert_eq!(a, b, "departure count diverged at round {r}");
            assert_eq!(
                Engine::weighted_max_load(&dense),
                Engine::weighted_max_load(&sparse),
                "weighted max load diverged at round {r}"
            );
            assert_eq!(
                Engine::capacity_violations(&dense),
                Engine::capacity_violations(&sparse),
                "violation count diverged at round {r}"
            );
            assert_eq!(dense.config(), Engine::config(&sparse), "round {r}");
        }
        assert_eq!(Engine::total_weight(&dense), Engine::total_weight(&sparse));
        for bin in 0..n {
            assert_eq!(
                Engine::weighted_bin_load(&dense, bin),
                Engine::weighted_bin_load(&sparse, bin)
            );
        }
        let a = Engine::snapshot(&dense).unwrap();
        let b = Engine::snapshot(&sparse).unwrap();
        assert_eq!(a.weighted, b.weighted, "identical weighted sections");
        assert_eq!(a.entries, b.entries);
    }

    #[test]
    fn weighted_snapshot_round_trips_bit_identically() {
        let mut p = SparseLoadProcess::with_weights(
            Config::one_per_bin(48),
            rng(72),
            Weights::zipf(48, 1.0, 30),
            Capacities::Uniform(25),
        );
        p.run_silent(19);
        let snap = Engine::snapshot(&p).expect("sparse engine snapshots");
        assert_eq!(snap.version, SNAPSHOT_VERSION_WEIGHTED);
        let mut q = SparseLoadProcess::from_snapshot(&snap).unwrap();
        assert_eq!(Engine::total_weight(&q), Engine::total_weight(&p));
        assert_eq!(Engine::capacities(&q), &Capacities::Uniform(25));
        for _ in 0..50 {
            p.step_batched();
            q.step_batched();
        }
        assert_eq!(Engine::config(&p), Engine::config(&q));
        assert_eq!(Engine::snapshot(&p), Engine::snapshot(&q));
    }

    #[test]
    fn unit_weights_build_the_same_sparse_engine() {
        let mut plain = SparseLoadProcess::legitimate_start(64, 73);
        let mut unit = SparseLoadProcess::with_weights(
            Config::one_per_bin(64),
            rng(73),
            Weights::Explicit(vec![1; 64]),
            Capacities::Unbounded,
        );
        assert!(unit.weighted.is_none(), "all-ones collapses to no overlay");
        for _ in 0..80 {
            plain.step_batched();
            unit.step_batched();
        }
        assert_eq!(plain.rng, unit.rng);
        assert_eq!(Engine::snapshot(&plain), Engine::snapshot(&unit));
    }

    #[test]
    fn weighted_place_and_depart_track_the_overlay() {
        let mut p = SparseLoadProcess::with_weights(
            Config::one_per_bin(32),
            rng(74),
            Weights::zipf(32, 1.0, 20),
            Capacities::Unbounded,
        );
        let total = Engine::total_weight(&p);
        let b = Engine::place_weighted(&mut p, 15);
        assert_eq!(Engine::total_weight(&p), total + 15);
        assert!(Engine::weighted_bin_load(&p, b) >= 15);
        assert!(Engine::depart(&mut p, b));
        assert_eq!(p.balls(), 32);
        p.step();
        assert_eq!(p.balls(), 32);
    }

    #[test]
    fn load_map_layout_is_reproducible_across_builds() {
        let build = || {
            let mut m = LoadMap::default();
            for i in 0..500u32 {
                m.insert(i.wrapping_mul(48_271), i + 1);
            }
            m.keys().copied().collect::<Vec<u32>>()
        };
        assert_eq!(build(), build(), "deterministic hasher, identical layout");
    }
}
