//! Deterministic, splittable pseudo-random number generation.
//!
//! Every experiment in this workspace must be bit-reproducible from a single
//! master seed, independently of thread scheduling. We therefore implement
//! the PRNG from scratch:
//!
//! * [`SplitMix64`] — a tiny 64-bit state generator used exclusively for
//!   seed derivation (it equidistributes and cannot produce correlated
//!   child seeds from sequential stream indices).
//! * [`Xoshiro256pp`] — xoshiro256++ by Blackman & Vigna, the workhorse
//!   generator used by all simulations. Fast (sub-ns per u64), 256-bit
//!   state, passes BigCrush.
//!
//! [`Xoshiro256pp`] implements [`rand::TryRng`] (infallibly, which grants
//! the blanket [`rand::Rng`] impl) and [`rand::SeedableRng`] so it composes
//! with the wider `rand` ecosystem while remaining fully under our control.

use std::convert::Infallible;

use rand::{SeedableRng, TryRng};

/// SplitMix64: used to expand a single `u64` seed into independent streams.
///
/// Reference: Steele, Lea, Flood, "Fast splittable pseudorandom number
/// generators", OOPSLA 2014. The output function is a finalizer with full
/// avalanche, so even seeds `0, 1, 2, ...` yield decorrelated outputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a raw seed. Any value (including 0) is fine.
    #[inline]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit output and advances the state.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ — the simulation generator.
///
/// State must not be all-zero; the seeding path guarantees this.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Seeds the generator by expanding `seed` through [`SplitMix64`],
    /// following the reference implementation's recommendation.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = sm.next_u64();
        }
        // SplitMix64 output of four consecutive draws is never all-zero for
        // any seed, but be defensive: an all-zero state is a fixed point.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s }
    }

    /// Derives the `stream`-th child generator from a master seed.
    ///
    /// Children for distinct `(master, stream)` pairs are statistically
    /// independent: the pair is hashed through two rounds of SplitMix64
    /// before state expansion.
    pub fn stream(master: u64, stream: u64) -> Self {
        let mut sm = SplitMix64::new(master);
        let a = sm.next_u64();
        let mut sm2 = SplitMix64::new(a ^ stream.wrapping_mul(0xD6E8_FEB8_6659_FD93));
        Self::seed_from(sm2.next_u64())
    }

    /// Returns the raw 256-bit generator state, for snapshot serialization.
    ///
    /// Pair with [`Self::from_state`]: a generator rebuilt from this value
    /// continues the exact output stream, which is what makes engine
    /// snapshot → restore → resume bit-identical to an uninterrupted run.
    #[inline]
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a state captured by [`Self::state`].
    ///
    /// This is a *resume* constructor, not a seeding path: use it only for
    /// states previously captured from a live generator (snapshot restore).
    /// Fresh streams must go through [`Self::seed_from`]/[`Self::stream`] so
    /// seed derivation stays centralized.
    ///
    /// # Panics
    ///
    /// Panics on the all-zero state — it is the generator's fixed point and
    /// can never be observed via [`Self::state`] on a validly seeded
    /// generator, so it always indicates a corrupted snapshot.
    #[inline]
    pub fn from_state(state: [u64; 4]) -> Self {
        assert!(
            state != [0, 0, 0, 0],
            "from_state: the all-zero state is the xoshiro fixed point (corrupted snapshot?)"
        );
        Self { s: state }
    }

    /// Returns the next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, bound)` using Lemire's multiply-shift rejection
    /// method (unbiased, usually a single multiplication).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`: the empty range has no uniform draw. This is
    /// a hard guard (not `debug_assert!`) — in release builds the unguarded
    /// arithmetic would silently return 0 from an empty range, and a
    /// long-running service cannot afford that class of wrong answer.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(
            bound > 0,
            "next_below: bound must be positive (a uniform draw from an empty range is undefined)"
        );
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            // Rejection threshold: 2^64 mod bound.
            let t = bound.wrapping_neg() % bound;
            while lo < t {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform index in `[0, n)` — the "choose a bin u.a.r." primitive.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` (see [`Self::next_below`]); the guard holds in
    /// release builds too.
    #[inline]
    pub fn uniform_usize(&mut self, n: usize) -> usize {
        self.next_below(n as u64) as usize
    }

    /// Uniform double in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with success probability `p`.
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.uniform_usize(i + 1);
            xs.swap(i, j);
        }
    }

    /// Standard exponential variate with the given `rate` (inverse CDF).
    ///
    /// # Panics
    ///
    /// Panics unless `rate` is finite and strictly positive. This is a hard
    /// guard (not `debug_assert!`): a non-positive or non-finite rate yields
    /// `inf`/`NaN` samples in release builds, which then poison every
    /// downstream mean silently instead of failing at the call site.
    #[inline]
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(
            rate.is_finite() && rate > 0.0,
            "exponential: rate must be finite and positive, got {rate}"
        );
        // 1 - U in (0, 1] avoids ln(0).
        // rbb-lint: allow(ln-complement, reason = "1 - next_f64() maps [0,1) onto (0,1] to dodge ln(0); committed bit-exact trajectories pin this exact expression, so the ln_1p form cannot be swapped in (see README numerical notes)")
        -(1.0 - self.next_f64()).ln() / rate
    }
}

impl TryRng for Xoshiro256pp {
    type Error = Infallible;

    #[inline]
    fn try_next_u32(&mut self) -> Result<u32, Infallible> {
        // rbb-lint: allow(lossy-cast, reason = "intentional: takes the high 32 bits of the u64 draw")
        Ok((Xoshiro256pp::next_u64(self) >> 32) as u32)
    }

    #[inline]
    fn try_next_u64(&mut self) -> Result<u64, Infallible> {
        Ok(Xoshiro256pp::next_u64(self))
    }

    fn try_fill_bytes(&mut self, dst: &mut [u8]) -> Result<(), Infallible> {
        let mut chunks = dst.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&Xoshiro256pp::next_u64(self).to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = Xoshiro256pp::next_u64(self).to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
        Ok(())
    }
}

impl SeedableRng for Xoshiro256pp {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, w) in s.iter_mut().enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
            *w = u64::from_le_bytes(b);
        }
        if s == [0, 0, 0, 0] {
            return Self::seed_from(0);
        }
        Self { s }
    }

    fn seed_from_u64(state: u64) -> Self {
        Self::seed_from(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference outputs for seed 1234567 from the public-domain
        // reference implementation.
        let mut sm = SplitMix64::new(1234567);
        let got: Vec<u64> = (0..3).map(|_| sm.next_u64()).collect();
        assert_eq!(got[0], 6457827717110365317);
        assert_eq!(got[1], 3203168211198807973);
        assert_eq!(got[2], 9817491932198370423);
    }

    #[test]
    fn splitmix_zero_seed_is_fine() {
        let mut sm = SplitMix64::new(0);
        let a = sm.next_u64();
        let b = sm.next_u64();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn xoshiro_deterministic_per_seed() {
        let mut a = Xoshiro256pp::seed_from(42);
        let mut b = Xoshiro256pp::seed_from(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn xoshiro_distinct_seeds_diverge() {
        let mut a = Xoshiro256pp::seed_from(1);
        let mut b = Xoshiro256pp::seed_from(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn stream_children_are_decorrelated() {
        let mut a = Xoshiro256pp::stream(7, 0);
        let mut b = Xoshiro256pp::stream(7, 1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn next_below_is_in_range_and_hits_all_values() {
        let mut rng = Xoshiro256pp::seed_from(3);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.next_below(7) as usize;
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn next_below_one_is_always_zero() {
        let mut rng = Xoshiro256pp::seed_from(9);
        for _ in 0..32 {
            assert_eq!(rng.next_below(1), 0);
        }
    }

    #[test]
    fn uniform_mean_is_correct() {
        let mut rng = Xoshiro256pp::seed_from(11);
        let n = 100usize;
        let trials = 200_000;
        let sum: u64 = (0..trials).map(|_| rng.uniform_usize(n) as u64).sum();
        let mean = sum as f64 / trials as f64;
        // E = 49.5, sd of mean ~ 28.9/sqrt(200k) ~ 0.065.
        assert!((mean - 49.5).abs() < 0.3, "mean {mean}");
    }

    #[test]
    fn f64_in_unit_interval_with_correct_mean() {
        let mut rng = Xoshiro256pp::seed_from(13);
        let mut sum = 0.0;
        for _ in 0..100_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 100_000.0;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn bernoulli_matches_probability() {
        let mut rng = Xoshiro256pp::seed_from(17);
        let hits = (0..100_000).filter(|_| rng.bernoulli(0.25)).count();
        let p = hits as f64 / 100_000.0;
        assert!((p - 0.25).abs() < 0.01, "p {p}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Xoshiro256pp::seed_from(19);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "astronomically unlikely");
    }

    #[test]
    fn exponential_mean_is_inverse_rate() {
        let mut rng = Xoshiro256pp::seed_from(23);
        let rate = 2.0;
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.exponential(rate)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn rng_trait_fill_bytes_covers_remainder() {
        use rand::Rng;
        let mut rng = Xoshiro256pp::seed_from(29);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn seedable_from_seed_roundtrip() {
        let seed = [7u8; 32];
        let mut a = <Xoshiro256pp as SeedableRng>::from_seed(seed);
        let mut b = <Xoshiro256pp as SeedableRng>::from_seed(seed);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn all_zero_seed_falls_back() {
        let mut rng = <Xoshiro256pp as SeedableRng>::from_seed([0u8; 32]);
        // Must not be the all-zero fixed point (which would emit only 0).
        let outputs: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert!(outputs.iter().any(|&x| x != 0));
    }

    // The zero-bound and bad-rate guards must hold in *release* builds too
    // (they were debug_assert!s that silently produced 0 / inf / NaN under
    // --release). ci.sh runs this module's tests under --release as well,
    // so these should_panic tests pin the hard-guard behavior in both
    // profiles.

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_bound_panics_in_every_profile() {
        let mut rng = Xoshiro256pp::seed_from(31);
        let _ = rng.next_below(0);
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn uniform_usize_zero_panics_in_every_profile() {
        let mut rng = Xoshiro256pp::seed_from(31);
        let _ = rng.uniform_usize(0);
    }

    #[test]
    #[should_panic(expected = "rate must be finite and positive")]
    fn exponential_zero_rate_panics_in_every_profile() {
        let mut rng = Xoshiro256pp::seed_from(37);
        let _ = rng.exponential(0.0);
    }

    #[test]
    #[should_panic(expected = "rate must be finite and positive")]
    fn exponential_negative_rate_panics_in_every_profile() {
        let mut rng = Xoshiro256pp::seed_from(37);
        let _ = rng.exponential(-1.0);
    }

    #[test]
    #[should_panic(expected = "rate must be finite and positive")]
    fn exponential_nan_rate_panics_in_every_profile() {
        let mut rng = Xoshiro256pp::seed_from(37);
        let _ = rng.exponential(f64::NAN);
    }

    #[test]
    fn exponential_boundary_rates_stay_finite() {
        // Valid-but-extreme rates. Samples are bounded by 53·ln 2 / rate
        // (u = 1 - next_f64() is at least 2^-53), so any rate down to
        // ~2.1e-307 keeps every sample finite and non-negative.
        let mut rng = Xoshiro256pp::seed_from(41);
        for rate in [1e-300, 1.0, 1e300, f64::MAX] {
            for _ in 0..100 {
                let x = rng.exponential(rate);
                assert!(x.is_finite() && x >= 0.0, "rate {rate} gave {x}");
            }
        }
        // Below that, overflow to +inf is the correct IEEE answer (the
        // distribution's mean exceeds f64::MAX) — but never NaN or negative.
        for _ in 0..100 {
            let x = rng.exponential(f64::MIN_POSITIVE);
            assert!(!x.is_nan() && x >= 0.0, "subnormal-boundary rate gave {x}");
        }
    }

    #[test]
    fn state_round_trip_resumes_the_stream() {
        let mut a = Xoshiro256pp::seed_from(43);
        for _ in 0..57 {
            a.next_u64(); // advance off the seed point
        }
        let mut b = Xoshiro256pp::from_state(a.state());
        assert_eq!(a, b);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    #[should_panic(expected = "all-zero state")]
    fn from_state_rejects_the_fixed_point() {
        let _ = Xoshiro256pp::from_state([0; 4]);
    }
}
