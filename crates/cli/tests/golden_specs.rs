//! Golden snapshot tests: the full stdout of `rbb sim --spec --quick` (and
//! `rbb ensemble --spec --quick` for ensemble specs) is pinned for **every**
//! committed `specs/*.json`, so scenario and report semantics cannot drift
//! silently. A behavior change that alters any committed spec's output must
//! update the fixture in the same commit.
//!
//! Regenerate fixtures deliberately with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p rbb-cli --test golden_specs
//! ```

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

fn repo_root() -> PathBuf {
    // Tests run with the package root (crates/cli) as CWD.
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Runs the built `rbb` binary on one spec and returns its stdout.
fn run_spec(spec: &Path) -> String {
    let is_ensemble = spec
        .file_name()
        .and_then(|f| f.to_str())
        .is_some_and(|f| f.starts_with("ensemble-"));
    let subcommand = if is_ensemble { "ensemble" } else { "sim" };
    let output = Command::new(env!("CARGO_BIN_EXE_rbb"))
        .args([subcommand, "--spec"])
        .arg(spec)
        .arg("--quick")
        // The harness guarantees thread-count invariance; pin it anyway so
        // a regression shows up here as a fixture diff, not flakiness.
        .env("RAYON_NUM_THREADS", "2")
        .output()
        .expect("rbb binary runs");
    assert!(
        output.status.success(),
        "rbb {subcommand} --spec {} failed:\n{}",
        spec.display(),
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout).expect("rbb output is UTF-8")
}

#[test]
fn every_committed_spec_matches_its_golden_fixture() {
    let specs_dir = repo_root().join("specs");
    let mut specs: Vec<PathBuf> = fs::read_dir(&specs_dir)
        .expect("specs/ exists")
        .map(|e| e.expect("readable entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    specs.sort();
    assert!(
        specs.len() >= 8,
        "expected the committed spec set, found {specs:?}"
    );

    // Sanctioned env read: a test-harness regeneration switch, not a
    // knob any simulation result depends on (clippy.toml bans the rest).
    #[allow(clippy::disallowed_methods)]
    let update = std::env::var_os("UPDATE_GOLDEN").is_some();
    let mut fixtures_seen = Vec::new();
    for spec in &specs {
        let stem = spec.file_stem().unwrap().to_str().unwrap();
        let fixture = golden_dir().join(format!("{stem}.stdout"));
        let got = run_spec(spec);
        fixtures_seen.push(format!("{stem}.stdout"));
        if update {
            fs::create_dir_all(golden_dir()).unwrap();
            fs::write(&fixture, &got).unwrap();
            continue;
        }
        let want = fs::read_to_string(&fixture).unwrap_or_else(|_| {
            panic!(
                "missing fixture {} — run UPDATE_GOLDEN=1 cargo test -p rbb-cli --test golden_specs",
                fixture.display()
            )
        });
        assert_eq!(
            got,
            want,
            "stdout drifted for {} — if intentional, regenerate the fixture",
            spec.display()
        );
    }

    // No stale fixtures: every committed .stdout corresponds to a spec.
    // In update mode, stale fixtures are removed instead (so renaming or
    // deleting a spec regenerates cleanly in one run).
    for entry in fs::read_dir(golden_dir()).expect("tests/golden exists") {
        let path = entry.unwrap().path();
        let name = path.file_name().unwrap().to_str().unwrap().to_string();
        if fixtures_seen.contains(&name) {
            continue;
        }
        if update {
            fs::remove_file(&path).unwrap();
        } else {
            panic!("stale fixture {name} has no matching spec");
        }
    }
}
