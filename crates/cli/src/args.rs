//! A tiny `--key value` argument parser (no external dependencies).

use rbb_core::det_hash::DetHashMap;

/// Parsed command-line arguments: one subcommand plus `--key value` flags.
#[derive(Debug, Clone, Default)]
pub struct Args {
    command: Option<String>,
    flags: DetHashMap<String, String>,
    /// Bare `--flag` switches (no value).
    switches: Vec<String>,
}

/// Parse failure description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Args {
    /// Parses `argv` (without the program name). The first non-flag token
    /// is the subcommand; the rest must be `--key value` pairs or known
    /// boolean switches (a `--key` followed by another `--...` or nothing).
    pub fn parse<I: IntoIterator<Item = String>>(argv: I) -> Result<Self, ParseError> {
        let tokens: Vec<String> = argv.into_iter().collect();
        let mut out = Args::default();
        let mut i = 0;
        while i < tokens.len() {
            let t = &tokens[i];
            if let Some(key) = t.strip_prefix("--") {
                if key.is_empty() {
                    return Err(ParseError("empty flag name '--'".into()));
                }
                let has_value = tokens
                    .get(i + 1)
                    .map(|v| !v.starts_with("--"))
                    .unwrap_or(false);
                if has_value {
                    out.flags.insert(key.to_string(), tokens[i + 1].clone());
                    i += 2;
                } else {
                    out.switches.push(key.to_string());
                    i += 1;
                }
            } else if out.command.is_none() {
                out.command = Some(t.clone());
                i += 1;
            } else {
                return Err(ParseError(format!("unexpected positional argument '{t}'")));
            }
        }
        Ok(out)
    }

    /// The subcommand, if any.
    pub fn command(&self) -> Option<&str> {
        self.command.as_deref()
    }

    /// Raw string flag.
    #[allow(dead_code)] // part of the parser's API surface; used in tests
    pub fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(|s| s.as_str())
    }

    /// Whether a boolean switch was passed.
    #[allow(dead_code)] // part of the parser's API surface; used in tests
    pub fn switch(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key)
    }

    /// Typed flag with default.
    pub fn get_parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ParseError> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| ParseError(format!("flag --{key}: cannot parse '{raw}'"))),
        }
    }

    /// String flag with default.
    pub fn get_str(&self, key: &str, default: &str) -> String {
        self.flags
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Args, ParseError> {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_command_and_flags() {
        let a = parse("simulate --n 1024 --rounds 5000").unwrap();
        assert_eq!(a.command(), Some("simulate"));
        assert_eq!(a.get("n"), Some("1024"));
        assert_eq!(a.get_parsed("rounds", 0u64).unwrap(), 5000);
    }

    #[test]
    fn defaults_apply() {
        let a = parse("simulate").unwrap();
        assert_eq!(a.get_parsed("n", 256usize).unwrap(), 256);
        assert_eq!(a.get_str("start", "uniform"), "uniform");
    }

    #[test]
    fn switches_without_values() {
        let a = parse("traverse --verbose --n 64").unwrap();
        assert!(a.switch("verbose"));
        assert!(!a.switch("quiet"));
        assert_eq!(a.get("n"), Some("64"));
    }

    #[test]
    fn trailing_switch() {
        let a = parse("zoo --n 128 --json").unwrap();
        assert!(a.switch("json"));
    }

    #[test]
    fn bad_value_reports_flag() {
        let a = parse("simulate --n abc").unwrap();
        let err = a.get_parsed("n", 0usize).unwrap_err();
        assert!(err.0.contains("--n"), "{err}");
    }

    #[test]
    fn rejects_double_positional() {
        assert!(parse("simulate extra").is_err());
    }

    #[test]
    fn rejects_empty_flag() {
        assert!(parse("simulate -- foo").is_err());
    }

    #[test]
    fn no_command_is_ok() {
        let a = parse("").unwrap();
        assert_eq!(a.command(), None);
    }
}
