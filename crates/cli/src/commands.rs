//! CLI subcommand implementations.

use rbb_core::adversary::{
    Adversary, AllInOneAdversary, FaultSchedule, FollowTheLeaderAdversary, RandomAdversary,
};
use rbb_core::config::{Config, LegitimacyThreshold};
use rbb_core::engine::Engine;
use rbb_core::exact::{appendix_b_exact, ExactChain};
use rbb_core::metrics::ObserverStack;
use rbb_core::mixing::mixing_time;
use rbb_core::process::LoadProcess;
use rbb_core::rng::Xoshiro256pp;
use rbb_core::sampling::random_assignment;
use rbb_core::strategy::QueueStrategy;
use rbb_graphs::{
    complete_with_loops, diameter, hypercube, random_regular, ring, spectral_gap, star, torus,
    Graph, GraphLoadProcess,
};
use rbb_sim::{fmt_f64, EnsembleSpec, HorizonSpec, ScenarioSpec, StopSpec};
use rbb_traversal::{faulty_cover_time, single_token_cover_time, ProgressReport, Traversal};

use crate::args::{Args, ParseError};

/// Builds an initial configuration from a `--start` flag value.
pub fn build_start(kind: &str, n: usize, seed: u64) -> Result<Config, ParseError> {
    match kind {
        "one-per-bin" | "uniform" => Ok(Config::one_per_bin(n)),
        "all-in-one" => Ok(Config::all_in_one(n, n as u32)),
        "random" => {
            let mut rng = Xoshiro256pp::seed_from(seed ^ 0x57A7);
            Ok(Config::from_loads(random_assignment(&mut rng, n, n as u64)))
        }
        "geometric" => Ok(Config::geometric_cascade(n, n as u32)),
        other => Err(ParseError(format!(
            "unknown --start '{other}' (one-per-bin | all-in-one | random | geometric)"
        ))),
    }
}

/// Builds a queue strategy from a `--strategy` flag value.
pub fn build_strategy(kind: &str) -> Result<QueueStrategy, ParseError> {
    match kind {
        "fifo" => Ok(QueueStrategy::Fifo),
        "lifo" => Ok(QueueStrategy::Lifo),
        "random" => Ok(QueueStrategy::Random),
        other => Err(ParseError(format!(
            "unknown --strategy '{other}' (fifo | lifo | random)"
        ))),
    }
}

/// Builds a topology from a `--kind` flag value at size ~`n`.
pub fn build_topology(kind: &str, n: usize, seed: u64) -> Result<Graph, ParseError> {
    match kind {
        "clique" => Ok(complete_with_loops(n)),
        "ring" => Ok(ring(n)),
        "torus" => {
            let side = (n as f64).sqrt().round().max(3.0) as usize;
            Ok(torus(side, side))
        }
        "hypercube" => Ok(hypercube((n as f64).log2().round().max(1.0) as u32)),
        "regular" => {
            let mut rng = Xoshiro256pp::seed_from(seed ^ 0x6E0);
            Ok(random_regular(n, 4, &mut rng))
        }
        "star" => Ok(star(n)),
        other => Err(ParseError(format!(
            "unknown --kind '{other}' (clique | ring | torus | hypercube | regular | star)"
        ))),
    }
}

/// Prints the post-run summary shared by `sim` and `simulate`.
fn print_summary(n: usize, stack: &ObserverStack, threshold: LegitimacyThreshold) {
    if let Some(max_t) = &stack.max_load {
        println!(
            "  max load over window : {} (bound 4 ln n = {})",
            max_t.window_max(),
            threshold.bound(n)
        );
        println!(
            "  mean per-round max   : {}",
            fmt_f64(max_t.mean_round_max(), 2)
        );
    }
    if let Some(empty_t) = &stack.empty_bins {
        println!(
            "  min empty bins       : {} ({}%; paper: ≥ 25%)",
            empty_t.min_empty(),
            100 * empty_t.min_empty() / n
        );
    }
    if let Some(legit_t) = &stack.legitimacy {
        match legit_t.first_legitimate_round() {
            Some(r) => println!(
                "  legitimate from round {r}; violations after: {}",
                legit_t.violations_after_first()
            ),
            None => println!("  never legitimate within the window (!)"),
        }
    }
}

/// `rbb sim` — run a declarative [`ScenarioSpec`] from a JSON file.
pub fn sim(args: &Args) -> Result<(), ParseError> {
    let path = args
        .get("spec")
        .ok_or_else(|| ParseError("sim requires --spec <file.json>".into()))?
        .to_string();
    let text = std::fs::read_to_string(&path)
        .map_err(|e| ParseError(format!("cannot read {path}: {e}")))?;
    let mut spec: ScenarioSpec =
        serde_json::from_str(&text).map_err(|e| ParseError(format!("{path}: {e}")))?;
    if let Some(seed) = args.get("seed") {
        let seed: u64 = seed
            .parse()
            .map_err(|_| ParseError(format!("--seed: cannot parse '{seed}'")))?;
        spec = spec.with_seed(seed);
    }
    let mut scenario = spec
        .scenario()
        .map_err(|e| ParseError(format!("{path}: {e}")))?;
    if args.switch("quick") {
        // Smoke mode: cap the horizon so CI can validate committed specs
        // without paying the full run. The comparison uses the *resolved*
        // horizon (factor-n horizons scale with the engine's possibly
        // rounded n, not the requested one).
        const QUICK_CAP: u64 = 2_000;
        if scenario.horizon() > QUICK_CAP {
            spec.horizon = HorizonSpec::Rounds { rounds: QUICK_CAP };
            scenario = spec
                .scenario()
                .map_err(|e| ParseError(format!("{path}: {e}")))?;
        }
    }
    let threshold = LegitimacyThreshold::default();
    let n = scenario.engine().n();
    println!(
        "scenario '{}': n = {n}, {} balls, horizon {} rounds, seed = {}",
        spec.name.as_deref().unwrap_or(&path),
        scenario.engine().balls(),
        scenario.horizon(),
        spec.seed,
    );
    let mut stack = ObserverStack::new()
        .with_max_load()
        .with_empty_bins()
        .with_legitimacy(threshold);
    if spec.is_weighted() {
        stack = stack.with_weighted_load().with_capacity();
    }
    let outcome = scenario.run_observed(&mut stack);

    println!("  rounds run           : {}", outcome.rounds);
    if spec.stop != StopSpec::Horizon {
        match outcome.stop_round {
            Some(r) => println!("  stop condition met at: round {r}"),
            None => println!("  stop condition       : not met within horizon"),
        }
    }
    if spec.adversary.is_some() {
        println!("  faults injected      : {}", outcome.faults);
    }
    print_summary(n, &stack, threshold);
    if let Some(wl) = &stack.weighted_load {
        let engine = scenario.engine();
        println!(
            "  weighted max (window): {} (scaled bound = {})",
            wl.window_max(),
            threshold.weighted_bound(n, engine.total_weight(), engine.balls()),
        );
        println!(
            "  mean weighted max    : {}",
            fmt_f64(wl.mean_round_max(), 2)
        );
    }
    if let Some(cap) = &stack.capacity {
        println!(
            "  capacity violations  : {} rounds in violation, worst {} bins over",
            cap.rounds_in_violation(),
            cap.max_violations(),
        );
    }
    if let Some(p) = scenario.engine().min_progress() {
        println!("  min token progress   : {p}");
    }
    Ok(())
}

/// `rbb ensemble` — run a declarative [`EnsembleSpec`] and print its JSON
/// report. The report is a pure function of the spec (and the flags), so
/// two invocations — at any `RAYON_NUM_THREADS` — print byte-identical
/// output; CI diffs them.
pub fn ensemble(args: &Args) -> Result<(), ParseError> {
    let path = args
        .get("spec")
        .ok_or_else(|| ParseError("ensemble requires --spec <file.json>".into()))?
        .to_string();
    let text = std::fs::read_to_string(&path)
        .map_err(|e| ParseError(format!("cannot read {path}: {e}")))?;
    let mut spec: EnsembleSpec =
        serde_json::from_str(&text).map_err(|e| ParseError(format!("{path}: {e}")))?;
    if let Some(seeds) = args.get("seeds") {
        spec.replications = seeds
            .parse()
            .map_err(|_| ParseError(format!("--seeds: cannot parse '{seeds}'")))?;
        if spec.replications == 0 {
            return Err(ParseError(
                "--seeds must be at least 1: an ensemble with zero replications has no trials to report".into(),
            ));
        }
    }
    if let Some(master) = args.get("master-seed") {
        spec.master_seed = master
            .parse()
            .map_err(|_| ParseError(format!("--master-seed: cannot parse '{master}'")))?;
    }
    if args.switch("quick") {
        // Smoke mode mirrors `rbb sim --quick`: cap the *horizon* (so CI can
        // validate committed ensembles cheaply) but keep the replication
        // count — the determinism gate wants the full seed set.
        const QUICK_CAP: u64 = 2_000;
        let scenario = spec
            .scenario
            .scenario()
            .map_err(|e| ParseError(format!("{path}: {e}")))?;
        if scenario.horizon() > QUICK_CAP {
            spec.scenario.horizon = HorizonSpec::Rounds { rounds: QUICK_CAP };
        }
    }
    let report = spec.run().map_err(|e| ParseError(format!("{path}: {e}")))?;
    println!("{}", report.to_json());
    Ok(())
}

/// `rbb simulate` — run the paper's process and summarize.
pub fn simulate(args: &Args) -> Result<(), ParseError> {
    let n: usize = args.get_parsed("n", 1024)?;
    let rounds: u64 = args.get_parsed("rounds", 100 * n as u64)?;
    let seed: u64 = args.get_parsed("seed", 1)?;
    let start = build_start(&args.get_str("start", "one-per-bin"), n, seed)?;
    let threshold = LegitimacyThreshold::default();

    println!(
        "repeated balls-into-bins: n = {n}, start = {}, {rounds} rounds, seed = {seed}",
        args.get_str("start", "one-per-bin")
    );
    let mut p = LoadProcess::new(start, Xoshiro256pp::seed_from(seed));
    let mut stack = ObserverStack::new()
        .with_max_load()
        .with_empty_bins()
        .with_legitimacy(threshold);
    p.run(rounds, &mut stack);
    print_summary(n, &stack, threshold);
    Ok(())
}

/// `rbb traverse` — multi-token traversal with optional faults.
pub fn traverse(args: &Args) -> Result<(), ParseError> {
    let n: usize = args.get_parsed("n", 512)?;
    let seed: u64 = args.get_parsed("seed", 1)?;
    let gamma: u64 = args.get_parsed("gamma", 0)?;
    let strategy = build_strategy(&args.get_str("strategy", "fifo"))?;
    let nf = n as f64;
    let cap = (500.0 * nf * nf.ln().powi(2)) as u64;

    println!(
        "multi-token traversal: n = {n}, strategy = {}",
        strategy.label()
    );
    if gamma == 0 {
        let mut t = Traversal::new(n, strategy, seed);
        let cover = t
            .run_to_cover(cap)
            .ok_or_else(|| ParseError("did not cover within cap".into()))?;
        let single = single_token_cover_time(n, seed, cap).unwrap_or(0);
        println!("  parallel cover time  : {cover} rounds");
        println!(
            "  n ln²n               : {:.0} (constant {:.2})",
            nf * nf.ln() * nf.ln(),
            cover as f64 / (nf * nf.ln() * nf.ln())
        );
        println!(
            "  single-token baseline: {single} (slowdown {:.2}×)",
            cover as f64 / single as f64
        );
        let rep = ProgressReport::from_process(t.process());
        println!(
            "  min token progress   : {} (t/ln n = {:.0}); worst wait {}",
            rep.min_moves, rep.t_over_ln_n, rep.max_wait
        );
    } else {
        let adversary = args.get_str("adversary", "all-in-one");
        let schedule = FaultSchedule::gamma_n(gamma, n);
        let mut adv: Box<dyn Adversary> = match adversary.as_str() {
            "all-in-one" => Box::new(AllInOneAdversary),
            "random" => Box::new(RandomAdversary),
            "follow-the-leader" => Box::new(FollowTheLeaderAdversary),
            other => {
                return Err(ParseError(format!(
                    "unknown --adversary '{other}' (all-in-one | random | follow-the-leader)"
                )))
            }
        };
        let r = faulty_cover_time(n, strategy, schedule, adv.as_mut(), seed, cap);
        match r.cover_time {
            Some(c) => println!(
                "  covered in {c} rounds despite {} '{adversary}' faults (every {} rounds)",
                r.faults_injected,
                schedule.period()
            ),
            None => println!(
                "  did not cover within cap ({} faults injected)",
                r.faults_injected
            ),
        }
    }
    Ok(())
}

/// `rbb topology` — constrained walks on a chosen graph with structure info.
pub fn topology(args: &Args) -> Result<(), ParseError> {
    let n: usize = args.get_parsed("n", 1024)?;
    let seed: u64 = args.get_parsed("seed", 1)?;
    let kind = args.get_str("kind", "ring");
    let graph = build_topology(&kind, n, seed)?;
    let rounds: u64 = args.get_parsed("rounds", 50 * graph.n() as u64)?;

    println!(
        "topology '{kind}': n = {}, edges = {}",
        graph.n(),
        graph.num_edges()
    );
    match graph.regular_degree() {
        Some(d) => println!("  regular, degree {d}"),
        None => println!("  irregular"),
    }
    println!("  diameter      : {:?}", diameter(&graph));
    println!(
        "  spectral gap  : {:.4} (lazy walk)",
        spectral_gap(&graph, 1500)
    );

    let mut p = GraphLoadProcess::one_per_node(graph.clone(), seed);
    let mut max_t = rbb_core::metrics::MaxLoadTracker::new();
    p.run(rounds, &mut max_t);
    let ln_n = (graph.n() as f64).ln();
    println!(
        "  after {rounds} rounds: max load {} ({} × ln n)",
        max_t.window_max(),
        fmt_f64(max_t.window_max() as f64 / ln_n, 2)
    );
    Ok(())
}

/// `rbb exact` — exact small-n analysis.
pub fn exact(args: &Args) -> Result<(), ParseError> {
    let n: usize = args.get_parsed("n", 3)?;
    if n > 6 {
        return Err(ParseError("exact analysis supports n ≤ 6".into()));
    }
    let chain = ExactChain::build(n, n as u32);
    println!("exact chain: n = m = {n}, {} states", chain.num_states());
    let pi = chain.stationary(1e-13, 200_000);
    println!(
        "  E[max load] at stationarity: {}",
        fmt_f64(chain.expected_max_load(&pi), 4)
    );
    for k in 1..=n as u32 {
        println!(
            "  P(max load ≥ {k}) = {}",
            fmt_f64(chain.prob_max_load_at_least(&pi, k), 6)
        );
    }
    if let Some(t) = mixing_time(&chain, 0.25, 100_000) {
        println!("  mixing time (ε = 1/4): {t} rounds");
    }
    let ab = appendix_b_exact();
    println!(
        "  appendix B (n = 2): P(0,0) = {} > {} = P(0)·P(0) → positively associated",
        fmt_f64(ab.p_joint_zero, 4),
        fmt_f64(ab.p_x1_zero * ab.p_x2_zero, 5)
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).unwrap()
    }

    #[test]
    fn start_builders() {
        assert_eq!(build_start("one-per-bin", 8, 0).unwrap().max_load(), 1);
        assert_eq!(build_start("all-in-one", 8, 0).unwrap().max_load(), 8);
        assert_eq!(build_start("random", 8, 0).unwrap().total_balls(), 8);
        assert!(build_start("bogus", 8, 0).is_err());
    }

    #[test]
    fn strategy_builders() {
        assert_eq!(build_strategy("fifo").unwrap(), QueueStrategy::Fifo);
        assert!(build_strategy("stack").is_err());
    }

    #[test]
    fn topology_builders() {
        for kind in ["clique", "ring", "torus", "hypercube", "regular", "star"] {
            let g = build_topology(kind, 64, 1).unwrap();
            assert!(g.is_connected(), "{kind}");
        }
        assert!(build_topology("moebius", 64, 1).is_err());
    }

    #[test]
    fn simulate_runs() {
        simulate(&args("simulate --n 64 --rounds 500")).unwrap();
    }

    #[test]
    fn traverse_runs_clean_and_faulty() {
        traverse(&args("traverse --n 32")).unwrap();
        traverse(&args("traverse --n 32 --gamma 6")).unwrap();
    }

    #[test]
    fn topology_runs() {
        topology(&args("topology --kind hypercube --n 64 --rounds 500")).unwrap();
    }

    #[test]
    fn exact_runs_and_validates_bound() {
        exact(&args("exact --n 3")).unwrap();
        assert!(exact(&args("exact --n 9")).is_err());
    }

    #[test]
    fn ensemble_rejects_zero_seeds() {
        // A committed spec with --seeds 0 must fail fast at flag validation
        // (not deep inside the runner) with a message naming the flag.
        let err = ensemble(&args(
            "ensemble --spec ../../specs/ensemble-stability.json --seeds 0",
        ))
        .unwrap_err();
        assert!(err.0.contains("--seeds must be at least 1"), "{}", err.0);
        let unparsable = ensemble(&args(
            "ensemble --spec ../../specs/ensemble-stability.json --seeds nope",
        ))
        .unwrap_err();
        assert!(unparsable.0.contains("--seeds"), "{}", unparsable.0);
    }
}
