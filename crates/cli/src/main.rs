//! `rbb` — command-line explorer for the repeated balls-into-bins
//! reproduction.
//!
//! ```text
//! rbb sim      --spec <file.json> [--seed S] [--quick]
//! rbb ensemble --spec <file.json> [--seeds N] [--master-seed S] [--quick]
//! rbb simulate [--n 1024] [--rounds R] [--start one-per-bin|all-in-one|random|geometric]
//!              [--strategy fifo|lifo|random] [--seed S]
//! rbb traverse [--n 512] [--gamma 6] [--adversary all-in-one|random|follow-the-leader]
//! rbb topology [--kind clique|ring|torus|hypercube|regular|star] [--n 1024] [--rounds R]
//! rbb exact    [--n 3]
//! ```

mod args;
mod commands;

use args::Args;

fn usage() {
    eprintln!(
        "usage: rbb <sim|ensemble|simulate|traverse|topology|exact> [--key value]...\n\
         \n\
         sim        run a declarative scenario: --spec <file.json> [--seed S] [--quick]\n\
         ensemble   run a many-seed ensemble and print its JSON report:\n\
         \u{20}          --spec <file.json> [--seeds N] [--master-seed S] [--quick]\n\
         simulate   run the paper's process and summarize load/legitimacy\n\
         traverse   multi-token traversal cover time (optional --gamma faults)\n\
         topology   constrained walks on a graph, with diameter/spectral gap\n\
         exact      exact small-n chain: stationary law, mixing, Appendix B\n\
         \n\
         common flags: --n <usize> --seed <u64> --rounds <u64>"
    );
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match Args::parse(argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            usage();
            std::process::exit(2);
        }
    };
    let result = match args.command() {
        Some("sim") => commands::sim(&args),
        Some("ensemble") => commands::ensemble(&args),
        Some("simulate") => commands::simulate(&args),
        Some("traverse") => commands::traverse(&args),
        Some("topology") => commands::topology(&args),
        Some("exact") => commands::exact(&args),
        Some(other) => {
            eprintln!("error: unknown command '{other}'");
            usage();
            std::process::exit(2);
        }
        None => {
            usage();
            std::process::exit(2);
        }
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
