//! # rbb-lint — repo-invariant static analysis for the rbb workspace
//!
//! A zero-dependency, offline analyzer enforcing the discipline the rest of
//! the workspace's guarantees rest on: determinism (no randomized hashers,
//! no hash-order-dependent results, no wall-clock or environment reads in
//! result-affecting code), RNG-stream hygiene (no entropy seeding, RNG
//! construction only at sanctioned sites, documented stream contracts), and
//! numerical safety (no catastrophic-cancellation complements, no silent
//! truncating casts, no panics in library paths).
//!
//! The analyzer is layered: [`lexer`] produces an exact, span-preserving
//! token stream (comments and string literals are their own token kinds, so
//! rules never fire inside them); [`structure`] parses it into a brace tree
//! of items, signatures, calls, and closures with a fuzz-pinned tiling
//! invariant; a facts pass distills per-function RNG/rayon behavior; and
//! [`rules`] runs token rules per file plus call-graph and repo-invariant
//! rules workspace-wide. See `crates/lint/README.md` for the architecture,
//! the known blind spots of each layer, and how to add a rule.
//!
//! Entry points: [`lint_root`] walks a workspace (repo-invariant checks
//! included; [`lint_root_opts`] can switch them off), [`lint_source`] lints
//! one string in isolation, [`self_check`] proves every rule can both fire
//! and stay quiet.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod facts;
pub mod lexer;
mod repo;
pub mod rules;
pub mod structure;

pub use rules::{lint_source, rule_info, FileReport, Finding, RuleFamily, RuleInfo, RULES};

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Run statistics accompanying the findings of [`lint_root`].
#[derive(Debug, Default, Clone, Copy)]
pub struct RunStats {
    /// Number of `.rs` files linted.
    pub files: usize,
    /// Findings suppressed by valid allow comments.
    pub suppressed: usize,
}

/// Path components that end a walk: build output, lint fixtures (which
/// contain violations on purpose), vendored stubs, VCS internals.
const SKIP_DIRS: &[&str] = &["target", "fixtures", "vendor", ".git"];

/// Recursively collects `.rs` files under `dir`, sorted for deterministic
/// report order.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name) {
                collect_rs(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Crate name (path component after `crates/`) and path-level test
/// exemption for a path relative to the workspace root.
fn classify(rel: &str) -> (String, bool) {
    let comps: Vec<&str> = rel.split('/').collect();
    let crate_name = match comps.first() {
        Some(&"crates") if comps.len() > 1 => comps[1].to_string(),
        _ => String::new(),
    };
    let testish = comps[..comps.len().saturating_sub(1)]
        .iter()
        .any(|c| matches!(*c, "tests" | "benches" | "examples"))
        || comps.first() == Some(&"tests")
        || comps.first() == Some(&"examples");
    (crate_name, testish)
}

/// Lints every `.rs` file under `root/crates`, `root/tests`, and
/// `root/examples`, including the cross-file repo-invariant checks.
/// Returns surviving findings (per-file blocks in path order, repo-orphan
/// findings last) and run statistics.
pub fn lint_root(root: &Path) -> io::Result<(Vec<Finding>, RunStats)> {
    lint_root_opts(root, true)
}

/// [`lint_root`] with the repo-invariant (`--repo` family) checks
/// switchable — `with_repo: false` restricts the run to per-file and
/// call-graph rules (the CLI's `--no-repo`).
pub fn lint_root_opts(root: &Path, with_repo: bool) -> io::Result<(Vec<Finding>, RunStats)> {
    let mut files = Vec::new();
    for sub in ["crates", "tests", "examples"] {
        let dir = root.join(sub);
        if dir.is_dir() {
            collect_rs(&dir, &mut files)?;
        }
    }
    let mut analyses = Vec::new();
    let mut stats = RunStats::default();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = fs::read_to_string(path)?;
        let (crate_name, testish) = classify(&rel);
        analyses.push(rules::analyze_source(&rel, &src, &crate_name, testish));
        stats.files += 1;
    }
    let repo = if with_repo {
        Some(repo::RepoView::load(root))
    } else {
        None
    };
    let (findings, suppressed) = rules::resolve(analyses, repo.as_ref());
    stats.suppressed = suppressed;
    Ok((findings, stats))
}

/// Locates the workspace root by walking up from `start` until a directory
/// containing both `Cargo.toml` and `crates/` is found.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// One embedded self-check sample: a rule id, a source that must trigger
/// it, and a source that must not.
struct SelfCheck {
    rule: &'static str,
    hit: &'static str,
    clean: &'static str,
}

/// Minimal hit/clean pairs per rule. All samples are linted as non-test
/// code in crate `core` (path `crates/core/src/sample.rs`).
const SELF_CHECKS: &[SelfCheck] = &[
    SelfCheck {
        rule: "det-map",
        hit: "fn f() { let m: HashMap<u32, u32> = HashMap::new(); }",
        clean: "fn f() { let m: HashMap<u32, u32, BuildDetHasher> = Default::default(); }",
    },
    SelfCheck {
        rule: "unordered-iter",
        hit: "fn f(m: &DetHashMap<u32, u32>) -> f64 { let mut s = 0.0; for (_k, v) in m.iter() { s += *v as f64; } s }",
        clean: "fn f(m: &DetHashMap<u32, u32>) -> Vec<u32> { let mut v: Vec<u32> = m.keys().copied().collect(); v.sort_unstable(); v }",
    },
    SelfCheck {
        rule: "rng-entropy",
        hit: "fn f() { let rng = Xoshiro256pp::from_entropy(); }",
        clean: "fn f(seed: u64) { let _s = seed; }",
    },
    SelfCheck {
        rule: "rng-construct",
        hit: "fn f() { let rng = Xoshiro256pp::seed_from(7); }",
        clean: "fn f(rng: &mut Xoshiro256pp) { let _ = rng; }",
    },
    SelfCheck {
        rule: "ln-complement",
        hit: "fn f(x: f64) -> f64 { (1.0 - x).ln() }",
        clean: "fn f(x: f64) -> f64 { (-x).ln_1p() }",
    },
    SelfCheck {
        rule: "exp-complement",
        hit: "fn f(x: f64) -> f64 { 1.0 - x.exp() }",
        clean: "fn f(x: f64) -> f64 { -x.exp_m1() }",
    },
    SelfCheck {
        rule: "lossy-cast",
        hit: "fn f(x: usize) -> u32 { x as u32 }",
        clean: "fn f(x: usize) -> u64 { x as u64 }",
    },
    SelfCheck {
        rule: "panic",
        hit: "fn f(x: Option<u32>) -> u32 { x.unwrap() }",
        clean: "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }",
    },
    SelfCheck {
        rule: "undocumented-stream",
        hit: "/// Draws a sample.\npub fn draw(rng: &mut Xoshiro256pp) -> u64 { rng.next_u64() }",
        clean: "/// Draws a sample.\n///\n/// # RNG stream\n///\n/// Consumes one draw from the caller's stream.\npub fn draw(rng: &mut Xoshiro256pp) -> u64 { rng.next_u64() }",
    },
    SelfCheck {
        rule: "rng-in-par",
        hit: "fn f(w: &mut Shard, n: u64) -> u64 { (0..n).into_par_iter().map(|i| w.rng.next_u64() + i).sum() }",
        clean: "fn f(seed: u64, n: u64) -> u64 { (0..n).into_par_iter().map(|i| { let mut rng = salted_rng(seed, i); rng.next_u64() }).sum() }",
    },
    SelfCheck {
        rule: "unordered-merge",
        hit: "fn f(total: &Mutex<u64>, n: u64) {\n    (0..n).into_par_iter().for_each(|_i| {\n        *total.lock().unwrap_or_else(|e| e.into_inner()) += 1;\n    });\n}",
        clean: "fn f(n: u64) -> u64 { (0..n).into_par_iter().map(|i| i * 2).sum() }",
    },
    SelfCheck {
        rule: "salt-collision",
        hit: "fn f(seed: u64) -> u64 {\n    let mut a = salted_rng(seed, 7);\n    let mut b = salted_rng(seed, 0x7);\n    a.next_u64() ^ b.next_u64()\n}",
        clean: "fn f(seed: u64) -> u64 {\n    let mut a = salted_rng(seed, 7);\n    let mut b = salted_rng(seed, 8);\n    a.next_u64() ^ b.next_u64()\n}",
    },
    SelfCheck {
        rule: "partial-cmp",
        hit: "fn f(v: &mut [f64]) { v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal)); }",
        clean: "fn f(v: &mut [f64]) { v.sort_by(f64::total_cmp); }",
    },
    SelfCheck {
        rule: "wall-clock",
        hit: "fn f() -> std::time::Instant { Instant::now() }",
        clean: "fn f(elapsed_rounds: u64) -> u64 { elapsed_rounds }",
    },
    SelfCheck {
        rule: "env-read",
        hit: "fn f() -> String { env::var(\"RBB_THREADS\").unwrap_or_default() }",
        clean: "fn f(threads: usize) -> usize { threads }",
    },
    SelfCheck {
        rule: "malformed-allow",
        hit: "// rbb-lint: allow(panic)\nfn f(x: Option<u32>) -> u32 { x.unwrap_or(1) }",
        clean: "fn f(x: u64) -> u64 { x }",
    },
    SelfCheck {
        rule: "unused-allow",
        hit: "// rbb-lint: allow(panic, reason = \"stale\")\nfn f(x: Option<u32>) -> u32 { x.unwrap_or(1) }",
        clean: "// rbb-lint: allow(panic, reason = \"checked nonempty above\")\nfn f(x: Option<u32>) -> u32 { x.unwrap() }",
    },
];

/// Verifies every rule can both fire (on its `hit` sample) and stay quiet
/// (on its `clean` sample), and that suppression works. Returns the list of
/// failures, empty on success.
pub fn self_check() -> Vec<String> {
    let mut errors = Vec::new();
    for sc in SELF_CHECKS {
        let hit = lint_source("crates/core/src/sample.rs", sc.hit, "core", false);
        if !hit.findings.iter().any(|f| f.rule == sc.rule) {
            errors.push(format!(
                "rule `{}` did not fire on its hit sample (got: {:?})",
                sc.rule,
                hit.findings.iter().map(|f| f.rule).collect::<Vec<_>>()
            ));
        }
        let clean = lint_source("crates/core/src/sample.rs", sc.clean, "core", false);
        if let Some(f) = clean.findings.iter().find(|f| f.rule == sc.rule) {
            errors.push(format!(
                "rule `{}` fired on its clean sample at {}:{} ({})",
                sc.rule, f.line, f.col, f.message
            ));
        }
    }
    // Suppression round-trip: an allow with a reason silences the finding
    // and is counted as used.
    let suppressed = lint_source(
        "crates/core/src/sample.rs",
        "fn f(x: Option<u32>) -> u32 {\n    // rbb-lint: allow(panic, reason = \"caller guarantees Some\")\n    x.unwrap()\n}\n",
        "core",
        false,
    );
    if !suppressed.findings.is_empty() || suppressed.suppressed != 1 {
        errors.push(format!(
            "suppression round-trip failed: findings={:?} suppressed={}",
            suppressed
                .findings
                .iter()
                .map(|f| f.rule)
                .collect::<Vec<_>>(),
            suppressed.suppressed
        ));
    }
    // Repo family: the file-loading path is covered by integration tests;
    // here each check fires against a deliberately skewed synthetic
    // [`repo::RepoView`] and stays quiet against a consistent one.
    {
        use facts::{EngineImplSite, Site};
        let impls = vec![(
            "crates/core/src/sample.rs".to_string(),
            EngineImplSite {
                type_name: "SampleProcess".into(),
                site: Site { line: 1, col: 1 },
            },
        )];
        let skewed = repo::RepoView {
            specs: Some(vec!["alpha".into()]),
            goldens: Some(vec!["beta".into()]),
            registry: Some((
                "crates/experiments/src/lib.rs".into(),
                "fn r() { Experiment { id: \"e99\" }; }".into(),
            )),
            experiments_md: Some("no ids here".into()),
            proptest_engines: Some(("tests/proptest_engines.rs".into(), "nothing".into())),
            bench_const: Some(("crates/bench/src/lib.rs".into(), 1, 1)),
            bench_json: Some(2),
        };
        let fired: Vec<&str> = skewed.check(&impls).iter().map(|f| f.rule).collect();
        for rule in [
            "spec-golden",
            "experiment-doc",
            "engine-proptest",
            "bench-schema",
        ] {
            if !fired.contains(&rule) {
                errors.push(format!(
                    "repo rule `{rule}` did not fire on the skewed view (got: {fired:?})"
                ));
            }
        }
        let consistent = repo::RepoView {
            specs: Some(vec!["alpha".into()]),
            goldens: Some(vec!["alpha".into()]),
            registry: Some((
                "crates/experiments/src/lib.rs".into(),
                "fn r() { Experiment { id: \"e99\" }; }".into(),
            )),
            experiments_md: Some("## E99 — documented".into()),
            proptest_engines: Some((
                "tests/proptest_engines.rs".into(),
                "check::<SampleProcess>();".into(),
            )),
            bench_const: Some(("crates/bench/src/lib.rs".into(), 1, 2)),
            bench_json: Some(2),
        };
        let quiet = consistent.check(&impls);
        if !quiet.is_empty() {
            errors.push(format!(
                "repo checks fired on the consistent view: {:?}",
                quiet.iter().map(|f| f.rule).collect::<Vec<_>>()
            ));
        }
    }
    // Rule table sanity: ids unique and non-empty docs.
    for (i, r) in RULES.iter().enumerate() {
        if RULES[..i].iter().any(|o| o.id == r.id) {
            errors.push(format!("duplicate rule id `{}`", r.id));
        }
        if r.summary.is_empty() || r.explanation.is_empty() || r.fix_hint.is_empty() {
            errors.push(format!("rule `{}` has empty documentation", r.id));
        }
    }
    errors
}

/// Escapes a string for inclusion in JSON output.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders findings and stats as a JSON document (stable field order).
pub fn to_json(findings: &[Finding], stats: &RunStats) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"col\": {}, \"message\": \"{}\", \"hint\": \"{}\"}}",
            json_escape(f.rule),
            json_escape(&f.file),
            f.line,
            f.col,
            json_escape(&f.message),
            json_escape(f.hint)
        ));
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str(&format!(
        "],\n  \"summary\": {{\"files\": {}, \"findings\": {}, \"suppressed\": {}}}\n}}\n",
        stats.files,
        findings.len(),
        stats.suppressed
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_check_passes() {
        let errors = self_check();
        assert!(
            errors.is_empty(),
            "self-check failures:\n{}",
            errors.join("\n")
        );
    }

    #[test]
    fn classify_paths() {
        assert_eq!(classify("crates/core/src/rng.rs"), ("core".into(), false));
        assert_eq!(classify("crates/core/tests/t.rs"), ("core".into(), true));
        assert_eq!(classify("crates/sim/benches/b.rs"), ("sim".into(), true));
        assert_eq!(classify("tests/determinism.rs"), (String::new(), true));
        assert_eq!(classify("examples/demo.rs"), (String::new(), true));
    }

    #[test]
    fn json_output_is_well_formed_enough() {
        let f = Finding {
            rule: "panic",
            file: "crates/core/src/a.rs".into(),
            line: 3,
            col: 7,
            message: "msg with \"quotes\"".into(),
            hint: "hint",
        };
        let s = to_json(
            &[f],
            &RunStats {
                files: 1,
                suppressed: 0,
            },
        );
        assert!(s.contains("\\\"quotes\\\""));
        assert!(s.contains("\"findings\": ["));
        assert!(s.contains("\"summary\": {\"files\": 1, \"findings\": 1, \"suppressed\": 0}"));
    }
}
