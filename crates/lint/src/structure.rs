//! A recursive-descent *structurizer* on top of the span-exact lexer.
//!
//! The token-level rules of PR 6 cannot see function boundaries, closures,
//! or call paths. This module recovers exactly as much structure as the
//! semantic rules need — no more: a brace-tree of items (`mod` / `fn` /
//! `impl` / `trait`), function signatures (name, `pub`-ness, whether the
//! parameter list takes an RNG, whether the return type constructs one,
//! whether the doc block has a `# RNG stream` section), and closure
//! boundaries annotated with whether the closure runs under a rayon
//! parallel entry point (`par_*` / `into_par_iter` / `spawn` / `join` /
//! `scope`), directly or by lexical nesting.
//!
//! Like the lexer, the structurizer is *infallible*: unbalanced braces,
//! macros, or adversarial input degrade to a best-effort tree that still
//! satisfies the **tiling invariant** pinned by `validate_tiling` (and by
//! `tests/structure_tiling.rs` over the whole workspace plus a generative
//! property test):
//!
//! * a node's children are ordered, disjoint, and nested within it;
//! * the root covers every code token exactly once — so each code token is
//!   owned by exactly one node (the deepest node containing it).
//!
//! Known blind spots (documented in `crates/lint/README.md`): turbofish
//! call sites (`.map::<_, _>(…)`) hide the callee name from the backward
//! receiver walk, and any user-defined function named `spawn` / `join` /
//! `scope` or prefixed `par_` is conservatively treated as a parallel
//! entry point.

use crate::lexer::{lex, TokKind, Token};

/// Parsed structure of one source file.
pub struct Structure {
    /// All tokens, including comments (needed for doc-section lookup).
    pub toks: Vec<Token>,
    /// Indices into `toks` of the code tokens (comments stripped).
    pub code: Vec<usize>,
    /// Root of the item tree; spans all of `code`.
    pub root: Node,
}

/// One node of the item tree. `start`/`end` are indices into
/// [`Structure::code`] — an exclusive range `[start, end)` of the code
/// tokens this node owns (including its keyword, signature, and braces).
pub struct Node {
    /// What this node is.
    pub kind: NodeKind,
    /// First owned code-token index (inclusive).
    pub start: usize,
    /// One past the last owned code-token index.
    pub end: usize,
    /// Interior of the body — between the braces for braced bodies, the
    /// expression span for expression-bodied closures. `None` for bodyless
    /// items (`mod x;`, trait method declarations).
    pub body: Option<(usize, usize)>,
    /// Nested items and closures, in source order.
    pub children: Vec<Node>,
}

/// Discriminates [`Node`]s.
pub enum NodeKind {
    /// The whole file.
    Root,
    /// `mod name { … }` or `mod name;` — carries the module name.
    Mod(String),
    /// `fn` item with its recovered signature.
    Fn(FnSig),
    /// `impl Type { … }` / `impl Trait for Type { … }`.
    Impl {
        /// Last path segment of the self type (`SparseLoadProcess`).
        type_name: String,
        /// Last path segment of the implemented trait, if any (`Engine`).
        trait_name: Option<String>,
    },
    /// `trait Name { … }` — carries the trait name.
    Trait(String),
    /// A closure (`|x| …`, `move || …`).
    Closure {
        /// Whether this closure runs under a rayon parallel entry point,
        /// directly (argument to `par_*`/`spawn`/`join`/`scope`) or by
        /// lexical nesting inside such a closure.
        parallel: bool,
        /// Parameter binding names (over-approximate for patterns).
        params: Vec<String>,
    },
}

/// Signature facts recovered for a `fn` item.
pub struct FnSig {
    /// Function name.
    pub name: String,
    /// Whether the item carries `pub` (any visibility spelled `pub…`).
    pub is_pub: bool,
    /// Whether the parameter list takes an RNG (`&mut Xoshiro256pp`,
    /// `&mut SplitMix64`, `impl Rng`, `R: Rng`-shaped, or a binding
    /// literally named `rng`).
    pub takes_rng: bool,
    /// Whether the doc block above the item contains a `# RNG stream`
    /// section heading.
    pub has_stream_doc: bool,
    /// Whether the return type names an RNG type (`-> Xoshiro256pp` etc.),
    /// i.e. the function hands a generator to its caller.
    pub constructs_rng_return: bool,
}

/// Names that put their closure arguments under rayon. `install` covers
/// `ThreadPool::install`; everything `par_`-prefixed covers the iterator
/// entry points of the vendored rayon.
fn is_par_entry(name: &str) -> bool {
    matches!(
        name,
        "spawn" | "join" | "scope" | "install" | "into_par_iter"
    ) || name.starts_with("par_")
}

/// Lexes and structurizes `src`.
pub fn structurize(src: &str) -> Structure {
    let toks = lex(src);
    let code: Vec<usize> = toks
        .iter()
        .enumerate()
        .filter(|(_, t)| t.is_code())
        .map(|(i, _)| i)
        .collect();
    let root = {
        let v = View {
            src,
            toks: &toks,
            code: &code,
        };
        parse(&v)
    };
    Structure { toks, code, root }
}

/// Checks the tiling invariant: the root covers `[0, ncode)` and every
/// node's children are ordered, disjoint, non-empty ranges nested within
/// their parent. Returns a human-readable violation on failure.
pub fn validate_tiling(root: &Node, ncode: usize) -> Result<(), String> {
    if root.start != 0 || root.end != ncode {
        return Err(format!(
            "root covers [{}, {}) but file has {} code tokens",
            root.start, root.end, ncode
        ));
    }
    check_node(root)
}

fn check_node(n: &Node) -> Result<(), String> {
    if n.start > n.end {
        return Err(format!("inverted node range [{}, {})", n.start, n.end));
    }
    if let Some((blo, bhi)) = n.body {
        if blo < n.start || bhi > n.end || blo > bhi {
            return Err(format!(
                "body [{blo}, {bhi}) escapes node [{}, {})",
                n.start, n.end
            ));
        }
    }
    let mut prev = n.start;
    for c in &n.children {
        if c.start < prev || c.end > n.end {
            return Err(format!(
                "child [{}, {}) not nested in order within [{}, {}) (prev end {})",
                c.start, c.end, n.start, n.end, prev
            ));
        }
        if c.start >= c.end {
            return Err(format!("empty child range [{}, {})", c.start, c.end));
        }
        prev = c.end;
        check_node(c)?;
    }
    Ok(())
}

/// Code-token view of a file: `code[i]` indexes into `toks`.
pub(crate) struct View<'s> {
    pub src: &'s str,
    pub toks: &'s [Token],
    pub code: &'s [usize],
}

impl View<'_> {
    pub(crate) fn t(&self, i: usize) -> &Token {
        &self.toks[self.code[i]]
    }
    pub(crate) fn s(&self, i: usize) -> &str {
        self.t(i).text(self.src)
    }
    pub(crate) fn kind(&self, i: usize) -> TokKind {
        self.t(i).kind
    }
}

/// Parses the whole file into a tree rooted at a [`NodeKind::Root`] node.
pub(crate) fn parse(v: &View) -> Node {
    let n = v.code.len();
    let mut children = Vec::new();
    parse_range(v, 0, n, false, &mut children);
    Node {
        kind: NodeKind::Root,
        start: 0,
        end: n,
        body: Some((0, n)),
        children,
    }
}

/// Scans `[lo, hi)` for items and closures, pushing child nodes onto
/// `out`. `parallel` is the lexical rayon context inherited from the
/// enclosing closure (reset to `false` inside `fn` bodies: a nested fn
/// runs wherever it is *called*, which the call-graph pass handles).
fn parse_range(v: &View, lo: usize, hi: usize, parallel: bool, out: &mut Vec<Node>) {
    let mut i = lo;
    // Start of the current modifier run (`pub`, `const`, `async`, …) so an
    // item node owns its modifiers too.
    let mut prefix: Option<usize> = None;
    while i < hi {
        let txt = v.s(i);
        match txt {
            "pub" => {
                prefix.get_or_insert(i);
                i += 1;
                if i < hi && v.s(i) == "(" {
                    i = skip_group(v, i, hi, "(", ")");
                }
            }
            "const" | "async" | "unsafe" | "extern" | "default" => {
                prefix.get_or_insert(i);
                i += 1;
            }
            "fn" => {
                let start = prefix.take().unwrap_or(i);
                i = parse_fn(v, start, i, hi, out);
            }
            "mod" => {
                let start = prefix.take().unwrap_or(i);
                i = parse_mod(v, start, i, hi, out);
            }
            "impl" => {
                let start = prefix.take().unwrap_or(i);
                i = parse_impl_or_trait(v, start, i, hi, false, out);
            }
            "trait" => {
                let start = prefix.take().unwrap_or(i);
                i = parse_impl_or_trait(v, start, i, hi, true, out);
            }
            "move" if i + 1 < hi && matches!(v.s(i + 1), "|" | "||") => {
                prefix = None;
                i = parse_closure(v, i, i + 1, lo, hi, parallel, out);
            }
            "|" | "||" if is_closure_pipe(v, i, lo) => {
                prefix = None;
                i = parse_closure(v, i, i, lo, hi, parallel, out);
            }
            _ => {
                // `extern "C" fn`: a string literal keeps the prefix alive.
                if v.kind(i) != TokKind::Str {
                    prefix = None;
                }
                i += 1;
            }
        }
    }
}

/// Parses `fn name<…>(…) -> … { … }` starting at the `fn` keyword (`kw`),
/// with the node owning tokens from `start` (the modifier run). Returns
/// the index to resume scanning at.
fn parse_fn(v: &View, start: usize, kw: usize, hi: usize, out: &mut Vec<Node>) -> usize {
    let name_i = kw + 1;
    if name_i >= hi || v.kind(name_i) != TokKind::Ident {
        // `fn(u64) -> u64` in type position — not an item.
        return kw + 1;
    }
    let name = v.s(name_i).to_string();
    let mut j = name_i + 1;
    // An `R: Rng` bound in the generics makes the fn RNG-generic; the
    // parameter taking `&mut R` then counts as an RNG param.
    let mut takes_rng = false;
    if j < hi && v.s(j) == "<" {
        let after = skip_angles(v, j, hi);
        takes_rng = (j..after).any(|k| v.s(k) == "Rng");
        j = after;
    }
    if j < hi && v.s(j) == "(" {
        let close = match_group(v, j, hi, "(", ")");
        takes_rng = takes_rng || params_take_rng(v, j + 1, close.min(hi));
        j = (close + 1).min(hi);
    }
    // Return type and where clause: scan to the body `{` or a bare `;`,
    // skipping bracketed groups so `-> [u8; 4]` cannot end the signature.
    let mut constructs_rng_return = false;
    while j < hi {
        match v.s(j) {
            "{" | ";" => break,
            "(" => j = (match_group(v, j, hi, "(", ")") + 1).min(hi),
            "[" => j = (match_group(v, j, hi, "[", "]") + 1).min(hi),
            "<" => j = skip_angles(v, j, hi),
            s => {
                if matches!(s, "Xoshiro256pp" | "SplitMix64" | "Rng") {
                    constructs_rng_return = true;
                }
                j += 1;
            }
        }
    }
    let is_pub = (start..kw).any(|k| v.s(k) == "pub");
    let sig = FnSig {
        name,
        is_pub,
        takes_rng,
        has_stream_doc: doc_has_stream_section(v, start),
        constructs_rng_return,
    };
    let (body, end) = braced_body(v, j, hi);
    let mut children = Vec::new();
    if let Some((blo, bhi)) = body {
        parse_range(v, blo, bhi, false, &mut children);
    }
    out.push(Node {
        kind: NodeKind::Fn(sig),
        start,
        end,
        body,
        children,
    });
    end
}

/// Parses `mod name { … }` or `mod name;`.
fn parse_mod(v: &View, start: usize, kw: usize, hi: usize, out: &mut Vec<Node>) -> usize {
    let name_i = kw + 1;
    if name_i >= hi || v.kind(name_i) != TokKind::Ident {
        return kw + 1;
    }
    let name = v.s(name_i).to_string();
    let (body, end) = braced_body(v, name_i + 1, hi);
    let mut children = Vec::new();
    if let Some((blo, bhi)) = body {
        parse_range(v, blo, bhi, false, &mut children);
    }
    out.push(Node {
        kind: NodeKind::Mod(name),
        start,
        end,
        body,
        children,
    });
    end
}

/// Parses `impl<…> Trait for Type { … }` / `impl Type { … }` /
/// `trait Name: Bounds { … }`. Falls back to skipping the keyword when the
/// header does not reach a `{` (e.g. `impl Trait` in type position that
/// escaped the signature scans).
fn parse_impl_or_trait(
    v: &View,
    start: usize,
    kw: usize,
    hi: usize,
    is_trait: bool,
    out: &mut Vec<Node>,
) -> usize {
    let mut j = kw + 1;
    let mut last_ident: Option<String> = None;
    let mut trait_name: Option<String> = None;
    while j < hi {
        match v.s(j) {
            "{" => break,
            ";" | ")" | "]" | "}" | "=" | "," => return kw + 1,
            "<" => j = skip_angles(v, j, hi),
            "(" => j = (match_group(v, j, hi, "(", ")") + 1).min(hi),
            "for" => {
                trait_name = last_ident.take();
                j += 1;
            }
            _ => {
                if v.kind(j) == TokKind::Ident {
                    last_ident = Some(v.s(j).to_string());
                }
                j += 1;
            }
        }
    }
    if j >= hi {
        return kw + 1;
    }
    let type_name = match last_ident {
        Some(n) => n,
        None => return kw + 1,
    };
    let (body, end) = braced_body(v, j, hi);
    let mut children = Vec::new();
    if let Some((blo, bhi)) = body {
        parse_range(v, blo, bhi, false, &mut children);
    }
    out.push(Node {
        kind: if is_trait {
            NodeKind::Trait(type_name)
        } else {
            NodeKind::Impl {
                type_name,
                trait_name,
            }
        },
        start,
        end,
        body,
        children,
    });
    end
}

/// Parses a closure starting at `node_start` (`move` or the pipe), with
/// `pipe_i` at the `|`/`||` token. Returns the resume index.
fn parse_closure(
    v: &View,
    node_start: usize,
    pipe_i: usize,
    lo: usize,
    hi: usize,
    inherited_parallel: bool,
    out: &mut Vec<Node>,
) -> usize {
    let parallel = inherited_parallel || parallel_call_context(v, node_start, lo);
    let mut params = Vec::new();
    let mut j;
    if v.s(pipe_i) == "||" {
        j = pipe_i + 1;
    } else {
        // Scan to the closing `|` at delimiter depth 0, collecting binding
        // names (idents outside type position: `:` enters a type at depth
        // 0, `,` at depth 0 leaves it).
        j = pipe_i + 1;
        let mut depth = 0usize;
        let mut in_type = false;
        while j < hi {
            match v.s(j) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    if depth == 0 {
                        break; // unbalanced — bail, closing pipe missing
                    }
                    depth -= 1;
                }
                "|" if depth == 0 => break,
                ":" if depth == 0 => in_type = true,
                "," if depth == 0 => in_type = false,
                _ => {
                    if !in_type && v.kind(j) == TokKind::Ident {
                        params.push(v.s(j).to_string());
                    }
                }
            }
            j += 1;
        }
        if j < hi && v.s(j) == "|" {
            j += 1;
        }
    }
    // Optional return-type annotation: `|x| -> u64 { … }`.
    if j < hi && v.s(j) == "->" {
        j += 1;
        while j < hi {
            match v.s(j) {
                "{" => break,
                "(" => j = (match_group(v, j, hi, "(", ")") + 1).min(hi),
                "[" => j = (match_group(v, j, hi, "[", "]") + 1).min(hi),
                "<" => j = skip_angles(v, j, hi),
                _ => j += 1,
            }
        }
    }
    let (body, end) = if j < hi && v.s(j) == "{" {
        let close = match_group(v, j, hi, "{", "}");
        (Some((j + 1, close.min(hi))), (close + 1).min(hi))
    } else {
        // Expression body: runs to a depth-0 `,` `;` or closing delimiter.
        let mut depth = 0usize;
        let mut k = j;
        while k < hi {
            match v.s(k) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                }
                "," | ";" if depth == 0 => break,
                _ => {}
            }
            k += 1;
        }
        (Some((j, k)), k)
    };
    let end = end.max(node_start + 1);
    let mut children = Vec::new();
    if let Some((blo, bhi)) = body {
        parse_range(v, blo, bhi, parallel, &mut children);
    }
    out.push(Node {
        kind: NodeKind::Closure { parallel, params },
        start: node_start,
        end,
        body,
        children,
    });
    end
}

/// Is the `|` / `||` at `i` a closure head rather than a binary operator
/// or an or-pattern? Decided from the previous code token: after a value
/// (identifier, literal, or a closing `)` `]` `}` `?`) it is an operator;
/// after a keyword that ends a non-value position, an opening delimiter,
/// or any other punctuation it opens a closure.
fn is_closure_pipe(v: &View, i: usize, lo: usize) -> bool {
    if i == lo {
        return true;
    }
    let p = i - 1;
    match v.kind(p) {
        TokKind::Ident => matches!(
            v.s(p),
            "return" | "else" | "in" | "match" | "if" | "while" | "break" | "await" | "yield"
        ),
        TokKind::Number | TokKind::Str | TokKind::Char | TokKind::Lifetime => false,
        TokKind::Punct => !matches!(v.s(p), ")" | "]" | "}" | "?"),
        _ => true,
    }
}

/// Does the closure starting at `start` sit in argument position of a
/// parallel entry-point call? Walks backwards at delimiter depth 0 to the
/// unmatched `(` of the enclosing call, then follows the receiver chain
/// (`(0..n).into_par_iter().map(|i| …)` → `map` → `into_par_iter`).
fn parallel_call_context(v: &View, start: usize, lo: usize) -> bool {
    let mut depth = 0usize;
    let mut i = start;
    while i > lo {
        i -= 1;
        match v.s(i) {
            ")" | "]" | "}" => depth += 1,
            "(" => {
                if depth == 0 {
                    return i > lo
                        && v.kind(i - 1) == TokKind::Ident
                        && callee_chain_is_par(v, i - 1, lo);
                }
                depth -= 1;
            }
            "[" | "{" => {
                if depth == 0 {
                    return false;
                }
                depth -= 1;
            }
            ";" if depth == 0 => return false,
            _ => {}
        }
    }
    false
}

/// From the callee name at `name_i`, checks the name itself and then each
/// method in the `.`-chained receiver (skipping call parens backwards).
fn callee_chain_is_par(v: &View, mut name_i: usize, lo: usize) -> bool {
    loop {
        if is_par_entry(v.s(name_i)) {
            return true;
        }
        if name_i < lo + 2 || v.s(name_i - 1) != "." {
            return false;
        }
        let r = name_i - 2;
        if v.s(r) != ")" {
            return false; // field or variable receiver — chain ends
        }
        // Skip the previous call's argument list backwards.
        let mut depth = 1usize;
        let mut k = r;
        while k > lo && depth > 0 {
            k -= 1;
            match v.s(k) {
                ")" => depth += 1,
                "(" => depth -= 1,
                _ => {}
            }
        }
        if depth != 0 || k == lo || v.kind(k - 1) != TokKind::Ident {
            return false;
        }
        name_i = k - 1;
    }
}

/// Finds a `{ … }` body starting the scan at `j` (which should already be
/// at the `{` or `;`). Returns (interior range, resume index); clamps on
/// unbalanced input.
fn braced_body(v: &View, j: usize, hi: usize) -> (Option<(usize, usize)>, usize) {
    if j < hi && v.s(j) == "{" {
        let close = match_group(v, j, hi, "{", "}");
        (Some((j + 1, close.min(hi))), (close + 1).min(hi))
    } else if j < hi && v.s(j) == ";" {
        (None, j + 1)
    } else {
        (None, j.min(hi))
    }
}

/// Forward scan from the opener at `open` to its matching closer; returns
/// the closer's index, or `hi` when unbalanced (clamped, never panics).
fn match_group(v: &View, open: usize, hi: usize, op: &str, cl: &str) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < hi {
        let s = v.s(i);
        if s == op {
            depth += 1;
        } else if s == cl {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    hi
}

/// Skips a generic-argument group starting at `<`, counting `<`/`<<`
/// against `>`/`>>` and skipping parenthesized groups (`Fn(u64) -> u64`
/// bounds). Bails (returns the offending index) at `{` or `;` so a stray
/// comparison cannot swallow a body.
fn skip_angles(v: &View, open: usize, hi: usize) -> usize {
    let mut depth = 0i64;
    let mut i = open;
    while i < hi {
        match v.s(i) {
            "<" => depth += 1,
            "<<" => depth += 2,
            ">" => depth -= 1,
            ">>" => depth -= 2,
            "(" => {
                i = match_group(v, i, hi, "(", ")");
                if i >= hi {
                    return hi;
                }
            }
            "{" | ";" => return i,
            _ => {}
        }
        i += 1;
        if depth <= 0 {
            return i;
        }
    }
    hi
}

/// Does a parameter list `[lo, hi)` (interior of the signature parens)
/// take an RNG? True for concrete RNG types, an `impl Rng` / `R: Rng`
/// bound spelled in the list, or a binding literally named `rng`.
fn params_take_rng(v: &View, lo: usize, hi: usize) -> bool {
    (lo..hi.min(v.code.len())).any(|i| {
        matches!(v.s(i), "Xoshiro256pp" | "SplitMix64" | "Rng")
            || (v.s(i) == "rng" && i + 1 < hi && v.s(i + 1) == ":")
    })
}

/// Skips one token group `op … cl` starting at `open`; resume index.
fn skip_group(v: &View, open: usize, hi: usize, op: &str, cl: &str) -> usize {
    (match_group(v, open, hi, op, cl) + 1).min(hi)
}

/// Does the doc block immediately above the item starting at code index
/// `item_start` contain a `# RNG stream` section? Walks backwards in the
/// *raw* token stream over doc comments, plain comments, and attributes.
fn doc_has_stream_section(v: &View, item_start: usize) -> bool {
    let mut r = v.code[item_start];
    while r > 0 {
        let k = r - 1;
        let t = &v.toks[k];
        match t.kind {
            TokKind::DocComment => {
                if t.text(v.src).contains("# RNG stream") {
                    return true;
                }
                r = k;
            }
            TokKind::Comment => r = k,
            TokKind::Punct if t.text(v.src) == "]" => {
                // Skip an attribute `#[…]` (or inner `#![…]`) backwards.
                let mut depth = 1usize;
                let mut j = k;
                while j > 0 && depth > 0 {
                    j -= 1;
                    match v.toks[j].text(v.src) {
                        "]" => depth += 1,
                        "[" => depth -= 1,
                        _ => {}
                    }
                }
                if depth != 0 {
                    return false;
                }
                if j > 0 && v.toks[j - 1].text(v.src) == "!" {
                    j -= 1;
                }
                if j > 0 && v.toks[j - 1].text(v.src) == "#" {
                    j -= 1;
                } else {
                    return false; // `]` that is not an attribute — stop
                }
                r = j;
            }
            _ => return false,
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree(src: &str) -> Structure {
        let s = structurize(src);
        validate_tiling(&s.root, s.code.len()).expect("tiling");
        s
    }

    fn flat<'a>(n: &'a Node, out: &mut Vec<&'a Node>) {
        for c in &n.children {
            out.push(c);
            flat(c, out);
        }
    }

    fn all_nodes(s: &Structure) -> Vec<&Node> {
        let mut out = Vec::new();
        flat(&s.root, &mut out);
        out
    }

    #[test]
    fn nested_items_form_a_tree() {
        let s = tree(
            "mod outer {\n\
             pub struct S;\n\
             impl Engine for S { fn round(&mut self) { let x = 1; } }\n\
             pub trait T { fn decl(&self); }\n\
             }\n\
             mod stub;\n",
        );
        assert_eq!(s.root.children.len(), 2);
        let outer = &s.root.children[0];
        assert!(matches!(&outer.kind, NodeKind::Mod(n) if n == "outer"));
        assert_eq!(outer.children.len(), 2);
        match &outer.children[0].kind {
            NodeKind::Impl {
                type_name,
                trait_name,
            } => {
                assert_eq!(type_name, "S");
                assert_eq!(trait_name.as_deref(), Some("Engine"));
            }
            _ => panic!("expected impl"),
        }
        let imp = &outer.children[0];
        assert_eq!(imp.children.len(), 1);
        assert!(matches!(&imp.children[0].kind, NodeKind::Fn(f) if f.name == "round"));
        match &outer.children[1].kind {
            NodeKind::Trait(n) => assert_eq!(n, "T"),
            _ => panic!("expected trait"),
        }
        // `fn decl(&self);` — bodyless but still a node owning its tokens.
        let decl = &outer.children[1].children[0];
        assert!(matches!(&decl.kind, NodeKind::Fn(f) if f.name == "decl"));
        assert!(decl.body.is_none());
        assert!(matches!(&s.root.children[1].kind, NodeKind::Mod(n) if n == "stub"));
    }

    #[test]
    fn fn_signature_facts() {
        let s = tree(
            "/// Draws.\n///\n/// # RNG stream\n///\n/// One draw.\n\
             #[inline]\npub fn draw(rng: &mut Xoshiro256pp) -> u64 { rng.next_u64() }\n\
             fn helper<R: Rng>(r: &mut R) -> [u8; 4] { [0; 4] }\n\
             pub fn make(seed: u64) -> Xoshiro256pp { Xoshiro256pp::seed_from(seed) }\n\
             fn plain(n: usize) -> usize { n }\n",
        );
        let sigs: Vec<&FnSig> = s
            .root
            .children
            .iter()
            .filter_map(|n| match &n.kind {
                NodeKind::Fn(f) => Some(f),
                _ => None,
            })
            .collect();
        assert_eq!(sigs.len(), 4);
        assert!(sigs[0].is_pub && sigs[0].takes_rng && sigs[0].has_stream_doc);
        assert!(!sigs[0].constructs_rng_return);
        assert!(!sigs[1].is_pub && sigs[1].takes_rng && !sigs[1].has_stream_doc);
        assert!(sigs[2].is_pub && !sigs[2].takes_rng && sigs[2].constructs_rng_return);
        assert!(!sigs[3].takes_rng && !sigs[3].constructs_rng_return);
    }

    #[test]
    fn closures_and_parallel_context() {
        let s = tree(
            "fn seq(v: &[u64]) -> u64 { v.iter().map(|x| x + 1).sum() }\n\
             fn par(n: u64) -> u64 { (0..n).into_par_iter().map(|i| i * 2).sum() }\n\
             fn spawned() { spawn(move || { inner(|y| y); }); }\n\
             fn both() { join(|| left(), || right()); }\n\
             fn or(a: bool, b: bool) -> bool { a || b }\n",
        );
        let nodes = all_nodes(&s);
        let closures: Vec<(bool, usize)> = nodes
            .iter()
            .filter_map(|n| match &n.kind {
                NodeKind::Closure { parallel, params } => Some((*parallel, params.len())),
                _ => None,
            })
            .collect();
        // seq: |x| not parallel; par: |i| parallel; spawned: move || parallel
        // with nested |y| inheriting; both: two parallel closures; or: none.
        assert_eq!(
            closures,
            vec![
                (false, 1),
                (true, 1),
                (true, 0),
                (true, 1),
                (true, 0),
                (true, 0)
            ]
        );
    }

    #[test]
    fn receiver_chain_walks_through_calls() {
        let s = tree("fn f(w: &W) { w.bins.par_chunks(64).for_each(|c| touch(c)); }");
        let nodes = all_nodes(&s);
        let par: Vec<bool> = nodes
            .iter()
            .filter_map(|n| match &n.kind {
                NodeKind::Closure { parallel, .. } => Some(*parallel),
                _ => None,
            })
            .collect();
        assert_eq!(par, vec![true]);
    }

    #[test]
    fn pattern_or_and_operators_are_not_closures() {
        let s = tree(
            "fn f(x: Option<u64>) -> u64 {\n\
             match x { Some(0) | None => 0, Some(v) => v }\n\
             }\n\
             fn g(a: u64, b: u64) -> u64 { a | b }\n",
        );
        assert!(all_nodes(&s)
            .iter()
            .all(|n| !matches!(n.kind, NodeKind::Closure { .. })));
    }

    #[test]
    fn expression_bodied_closures_end_at_commas() {
        let s = tree("fn f() { run(|| step(), 4, |k| grid[k / 3].get(k % 3)); }");
        let closures: Vec<(usize, usize)> = all_nodes(&s)
            .iter()
            .filter_map(|n| match &n.kind {
                NodeKind::Closure { .. } => n.body,
                _ => None,
            })
            .collect();
        assert_eq!(closures.len(), 2);
        // Bodies must not swallow the `, 4,` separator tokens.
        let s2 = &s;
        let body_text = |r: (usize, usize)| {
            (r.0..r.1)
                .map(|i| {
                    let v = View {
                        src: s2_src(),
                        toks: &s2.toks,
                        code: &s2.code,
                    };
                    v.s(i).to_string()
                })
                .collect::<Vec<_>>()
                .join(" ")
        };
        fn s2_src() -> &'static str {
            "fn f() { run(|| step(), 4, |k| grid[k / 3].get(k % 3)); }"
        }
        assert_eq!(body_text(closures[0]), "step ( )");
        assert_eq!(body_text(closures[1]), "grid [ k / 3 ] . get ( k % 3 )");
    }

    #[test]
    fn unbalanced_input_still_tiles() {
        for src in [
            "fn broken() { if x { }",
            "fn b() { } }",
            "impl Foo for { }",
            "fn c() { v.map(|x| { x) }",
            "macro_rules! m { ($x:expr) => { $x | 1 } }",
            "fn d() { let a = <T as B>::c(); a < b }",
            "trait ;",
            "mod {",
            "fn",
        ] {
            let s = structurize(src);
            validate_tiling(&s.root, s.code.len())
                .unwrap_or_else(|e| panic!("tiling failed on {src:?}: {e}"));
        }
    }

    #[test]
    fn fn_bodies_reset_parallel_context() {
        // An fn nested inside a parallel closure is not itself "parallel"
        // lexically — where it runs depends on its callers.
        let s = tree("fn f() { spawn(move || { fn helper() { g(|z| z); } helper(); }); }");
        let inner: Vec<bool> = all_nodes(&s)
            .iter()
            .filter_map(|n| match &n.kind {
                NodeKind::Closure { parallel, params } if params.len() == 1 => Some(*parallel),
                _ => None,
            })
            .collect();
        assert_eq!(inner, vec![false]);
    }
}
