//! `rbb-lint` command-line driver.
//!
//! ```text
//! rbb-lint [--root PATH] [--format text|json] [--json-out PATH]
//!          [--no-repo] [--self-check] [--list-rules]
//! ```
//!
//! Exit codes: 0 clean, 1 unsuppressed findings, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use rbb_lint::{find_root, lint_root_opts, to_json, RULES};

fn usage() -> &'static str {
    "usage: rbb-lint [--root PATH] [--format text|json] [--json-out PATH]\n\
     \u{20}               [--no-repo] [--self-check] [--list-rules]\n\
     \n\
     Lints crates/, tests/, and examples/ under the workspace root for\n\
     determinism, RNG-stream/concurrency, and numerical-safety violations,\n\
     plus cross-file repo invariants (specs vs goldens, experiment docs,\n\
     engine property coverage, bench schema).\n\
     \n\
     --root PATH     workspace root (default: found by walking up from cwd)\n\
     --format FMT    text (default) or json\n\
     --json-out PATH additionally write the JSON report to PATH (so one\n\
     \u{20}               invocation serves both the human and the artifact)\n\
     --no-repo       skip the repo-invariant (repo family) checks\n\
     --self-check    verify every rule fires/stays quiet on embedded samples\n\
     --list-rules    print the rule table (id, family, summary) and exit\n\
     \n\
     exit status: 0 clean, 1 findings, 2 error"
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut format = String::from("text");
    let mut json_out: Option<PathBuf> = None;
    let mut do_self_check = false;
    let mut list_rules = false;
    let mut with_repo = true;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root requires a path\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--format" => match args.next().as_deref() {
                Some("text") => format = "text".into(),
                Some("json") => format = "json".into(),
                other => {
                    eprintln!("--format must be text or json (got {other:?})\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--json-out" => match args.next() {
                Some(p) => json_out = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--json-out requires a path\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--no-repo" => with_repo = false,
            "--self-check" => do_self_check = true,
            "--list-rules" => list_rules = true,
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`\n{}", usage());
                return ExitCode::from(2);
            }
        }
    }

    if list_rules {
        for r in RULES {
            println!("{:20} {:8} {}", r.id, r.family().label(), r.summary);
        }
        return ExitCode::SUCCESS;
    }

    if do_self_check {
        let errors = rbb_lint::self_check();
        if errors.is_empty() {
            println!(
                "rbb-lint self-check: all {} rules fire and stay quiet",
                RULES.len()
            );
            return ExitCode::SUCCESS;
        }
        for e in &errors {
            eprintln!("self-check: {e}");
        }
        return ExitCode::from(2);
    }

    let root = match root.or_else(|| std::env::current_dir().ok().and_then(|d| find_root(&d))) {
        Some(r) => r,
        None => {
            eprintln!(
                "could not locate workspace root (no Cargo.toml + crates/ above cwd); pass --root"
            );
            return ExitCode::from(2);
        }
    };

    let (findings, stats) = match lint_root_opts(&root, with_repo) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("rbb-lint: I/O error: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &json_out {
        if let Err(e) = std::fs::write(path, to_json(&findings, &stats)) {
            eprintln!("rbb-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if format == "json" {
        print!("{}", to_json(&findings, &stats));
    } else {
        for f in &findings {
            println!(
                "{}:{}:{}: [{}] {}",
                f.file, f.line, f.col, f.rule, f.message
            );
            println!("    hint: {}", f.hint);
        }
        let verdict = if findings.is_empty() {
            "clean"
        } else {
            "FAILED"
        };
        println!(
            "rbb-lint: {} files, {} findings, {} suppressed — {}",
            stats.files,
            findings.len(),
            stats.suppressed,
            verdict
        );
    }

    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
