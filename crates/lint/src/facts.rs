//! Per-file fact extraction over the [`crate::structure`] tree.
//!
//! This is the dataflow half of the semantic analyzer: for every function
//! it records whether the body *draws* from an RNG, *constructs* one, or
//! enters rayon, plus the callee names — enough for the workspace-level
//! call-graph fixpoint in [`crate::rules`] to compute the transitive
//! versions of those facts. For every closure that runs under a rayon
//! entry point it records the draw, call, and shared-state-mutation sites
//! the `rng-in-par` / `unordered-merge` rules judge. Literal-salt stream
//! constructions and `Engine` impls are collected for `salt-collision`
//! and the `--repo` consistency checks.
//!
//! Everything here is heuristic and name-based (no type information); the
//! deliberate over- and under-approximations are listed in the "blind
//! spots" section of `crates/lint/README.md`.

use crate::structure::{Node, NodeKind, View};

/// Methods that consume randomness from a generator or sampler.
const DRAW_METHODS: &[&str] = &[
    "next_u64",
    "next_below",
    "uniform_usize",
    "next_f64",
    "bernoulli",
    "shuffle",
    "exponential",
    "sample",
    "fill_u32",
];

/// Methods that mutate state reachable from more than one rayon task:
/// lock acquisition, interior mutability, and atomic read-modify-write.
const MERGE_METHODS: &[&str] = &[
    "lock",
    "borrow_mut",
    "write",
    "store",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "compare_exchange",
    "compare_exchange_weak",
];

/// Sanctioned per-stream constructors callable by bare name or as methods:
/// the `rbb_sim::seed` helpers and the `SeedTree` derivation methods. A
/// parallel closure that derives its stream through one of these is
/// following the per-shard/per-trial discipline by construction.
const SANCTIONED_BARE: &[&str] = &[
    "engine_rng",
    "adversary_rng",
    "salted_rng",
    "xor_salted_rng",
    "trial_rng",
    "trial",
];

/// Type-qualified RNG constructors (also count as "constructs directly").
const CTOR_QUALIFIED: &[&str] = &[
    "Xoshiro256pp::seed_from",
    "Xoshiro256pp::from_seed",
    "Xoshiro256pp::seed_from_u64",
    "Xoshiro256pp::stream",
    "SplitMix64::new",
];

/// Callees whose second literal argument is a stream salt.
const SALT_CALLEES: &[&str] = &["stream", "salted_rng", "xor_salted_rng"];

/// Keywords that look like `name(` but are not calls.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "match", "for", "loop", "return", "fn", "move", "in", "as", "let", "else",
    "break", "continue", "unsafe", "do", "await", "yield", "use", "where", "impl", "pub",
];

/// Compound and plain assignment operators (for `*x = …` / `x[i] += …`).
const ASSIGN_OPS: &[&str] = &[
    "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=",
];

/// Rayon entry points (mirrors `structure::is_par_entry`).
fn is_par_entry(name: &str) -> bool {
    matches!(
        name,
        "spawn" | "join" | "scope" | "install" | "into_par_iter"
    ) || name.starts_with("par_")
}

/// A source position for anchoring findings.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Site {
    pub line: u32,
    pub col: u32,
}

/// Scope callbacks threaded in from the rule engine (facts are extracted
/// everywhere; findings fire only where the corresponding scope is
/// active).
pub(crate) struct ScopeFns<'a> {
    /// Result-crate, non-test scope at a byte offset.
    pub active: &'a dyn Fn(usize) -> bool,
    /// Same, minus the sanctioned RNG definition files (salt sites there
    /// are the definitions, not uses).
    pub salt_active: &'a dyn Fn(usize) -> bool,
    /// Whether a byte offset is test code (testish file or `#[cfg(test)]`).
    pub in_test: &'a dyn Fn(usize) -> bool,
}

/// Call-graph facts for one function.
pub(crate) struct FnFact {
    /// Names this function answers to: bare, plus `Type::name` inside an
    /// impl (with `Self::` resolved to the impl type at call sites).
    pub names: Vec<String>,
    /// Body draws from an RNG directly.
    pub draws: bool,
    /// Body constructs an RNG (sanctioned helper or type constructor).
    pub constructs: bool,
    /// Body enters rayon directly (`par_*`/`spawn`/`join`/`scope`).
    pub par_entry: bool,
    /// Callee names (bare, or `Type::name` for type-qualified calls).
    pub calls: Vec<String>,
}

/// One rayon-parallel closure with the sites the semantic rules judge.
pub(crate) struct ParClosure {
    /// Whether the closure (or a lexically enclosing parallel closure)
    /// constructs its own stream via a sanctioned constructor.
    pub sanctioned: bool,
    /// Direct RNG draw sites: (method, site, scope-active).
    pub draws: Vec<(String, Site, bool)>,
    /// Call sites: (callee name, site, scope-active).
    pub calls: Vec<(String, Site, bool)>,
    /// Shared-state mutation sites: (description, site, scope-active).
    pub merges: Vec<(String, Site, bool)>,
}

/// A call site passing a literal salt to a stream constructor.
pub(crate) struct SaltSite {
    pub value: u64,
    pub callee: String,
    pub site: Site,
    pub active: bool,
}

/// An `impl Engine for Type` site (for the `engine-proptest` repo check).
pub(crate) struct EngineImplSite {
    pub type_name: String,
    pub site: Site,
}

/// Everything extracted from one file.
#[derive(Default)]
pub(crate) struct FileFacts {
    pub fns: Vec<FnFact>,
    pub par_closures: Vec<ParClosure>,
    pub salts: Vec<SaltSite>,
    pub engine_impls: Vec<EngineImplSite>,
}

/// Extracts all facts from a structurized file.
pub(crate) fn extract(v: &View, root: &Node, scopes: &ScopeFns) -> FileFacts {
    let mut facts = FileFacts::default();
    walk(v, root, None, None, scopes, &mut facts);
    facts
}

/// Recursive tree walk. `impl_type` is the enclosing impl's self type (for
/// qualified fn names); `par_sanctioned` is `Some(sanctioned)` when inside
/// a parallel closure chain.
fn walk(
    v: &View,
    node: &Node,
    impl_type: Option<&str>,
    par_sanctioned: Option<bool>,
    scopes: &ScopeFns,
    facts: &mut FileFacts,
) {
    for child in &node.children {
        let byte = v.t(child.start).start;
        match &child.kind {
            NodeKind::Root | NodeKind::Mod(_) | NodeKind::Trait(_) => {
                walk(v, child, None, None, scopes, facts);
            }
            NodeKind::Impl {
                type_name,
                trait_name,
            } => {
                if trait_name.as_deref() == Some("Engine") && !(scopes.in_test)(byte) {
                    facts.engine_impls.push(EngineImplSite {
                        type_name: type_name.clone(),
                        site: site_of(v, child.start),
                    });
                }
                walk(v, child, Some(type_name), None, scopes, facts);
            }
            NodeKind::Fn(sig) => {
                if !(scopes.in_test)(byte) {
                    // Graph facts scan the fn's region including closure
                    // interiors (a draw inside a closure the fn runs is
                    // still a draw the fn performs) but excluding nested
                    // item declarations.
                    let mut kept = Vec::new();
                    collect_kept(child, true, &mut kept);
                    let bag = scan(v, &kept, &[], impl_type, scopes);
                    let mut names = vec![sig.name.clone()];
                    if let Some(t) = impl_type {
                        names.push(format!("{t}::{}", sig.name));
                    }
                    facts.fns.push(FnFact {
                        names,
                        draws: bag.draws_any,
                        constructs: bag.constructs,
                        par_entry: bag.par_entry,
                        calls: bag.call_names,
                    });
                    facts.salts.extend(bag.salts);
                }
                // Nested fns reset both impl and parallel context.
                walk(v, child, None, None, scopes, facts);
            }
            NodeKind::Closure { parallel, params } => {
                if *parallel {
                    // Scan only the closure's own tokens: nested closures
                    // (which inherit `parallel`) report their own sites.
                    let mut kept = Vec::new();
                    collect_kept(child, false, &mut kept);
                    let bag = scan(v, &kept, params, impl_type, scopes);
                    let sanctioned = par_sanctioned.unwrap_or(false) || bag.constructs;
                    facts.par_closures.push(ParClosure {
                        sanctioned,
                        draws: bag.draw_sites,
                        calls: bag.call_sites,
                        merges: bag.merge_sites,
                    });
                    walk(v, child, impl_type, Some(sanctioned), scopes, facts);
                } else {
                    walk(v, child, impl_type, par_sanctioned, scopes, facts);
                }
            }
        }
    }
}

fn site_of(v: &View, i: usize) -> Site {
    let t = v.t(i);
    Site {
        line: t.line,
        col: t.col,
    }
}

/// Collects the code-token indices a node owns itself: gaps between
/// children, plus (when `keep_closures`) closure descendants' own tokens.
fn collect_kept(node: &Node, keep_closures: bool, out: &mut Vec<usize>) {
    let mut pos = node.start;
    for c in &node.children {
        out.extend(pos..c.start);
        if keep_closures && matches!(c.kind, NodeKind::Closure { .. }) {
            collect_kept(c, true, out);
        }
        pos = c.end;
    }
    out.extend(pos..node.end);
}

/// Scan results for one region.
#[derive(Default)]
struct Bag {
    draws_any: bool,
    constructs: bool,
    par_entry: bool,
    call_names: Vec<String>,
    draw_sites: Vec<(String, Site, bool)>,
    call_sites: Vec<(String, Site, bool)>,
    merge_sites: Vec<(String, Site, bool)>,
    salts: Vec<SaltSite>,
}

/// Scans the kept token positions of one region. `params` are the
/// region's binding names (closure params); let-bound locals are
/// collected in a pre-pass so `*local = …` is not a shared-state merge.
fn scan(
    v: &View,
    kept: &[usize],
    params: &[String],
    impl_type: Option<&str>,
    scopes: &ScopeFns,
) -> Bag {
    let mut bag = Bag::default();
    let n = kept.len();
    let s = |p: usize| if p < n { v.s(kept[p]) } else { "" };
    let kind_ident = |p: usize| p < n && v.kind(kept[p]) == crate::lexer::TokKind::Ident;

    // Pre-pass: local bindings (params + `let` patterns).
    let mut locals: Vec<String> = params.to_vec();
    let mut p = 0;
    while p < n {
        if s(p) == "let" {
            let mut q = p + 1;
            while q < n && !matches!(s(q), "=" | ";") {
                if kind_ident(q) && !matches!(s(q), "mut" | "ref") {
                    locals.push(s(q).to_string());
                }
                q += 1;
            }
            p = q;
        } else {
            p += 1;
        }
    }

    let mut p = 0;
    while p < n {
        let cur = s(p);
        // Call expression: `name(`, `recv.name(`, `Type::name(`.
        if kind_ident(p) && s(p + 1) == "(" && !NON_CALL_KEYWORDS.contains(&cur) {
            let prev = if p > 0 { s(p - 1) } else { "" };
            if prev == "fn" {
                p += 1;
                continue;
            }
            let site = site_of(v, kept[p]);
            let active = (scopes.active)(v.t(kept[p]).start);
            let is_method = prev == ".";
            let qualifier = if prev == "::" && p >= 2 && kind_ident(p - 2) {
                let q = s(p - 2);
                let q = if q == "Self" {
                    impl_type.unwrap_or("Self")
                } else {
                    q
                };
                // Uppercase qualifier = type path; lowercase = module path
                // (call recorded bare so `seed::salted_rng` finds the fn).
                q.chars()
                    .next()
                    .filter(|c| c.is_ascii_uppercase())
                    .map(|_| q.to_string())
            } else {
                None
            };
            let call_name = match &qualifier {
                Some(q) => format!("{q}::{cur}"),
                None => cur.to_string(),
            };
            if is_method && DRAW_METHODS.contains(&cur) {
                bag.draws_any = true;
                bag.draw_sites.push((cur.to_string(), site, active));
            }
            if is_method && MERGE_METHODS.contains(&cur) {
                bag.merge_sites.push((format!(".{cur}()"), site, active));
            }
            if SANCTIONED_BARE.contains(&cur) || CTOR_QUALIFIED.contains(&call_name.as_str()) {
                bag.constructs = true;
            }
            if is_par_entry(cur) {
                bag.par_entry = true;
            }
            if SALT_CALLEES.contains(&cur) {
                if let Some(value) = literal_salt_arg(v, kept, p + 1) {
                    bag.salts.push(SaltSite {
                        value,
                        callee: cur.to_string(),
                        site,
                        active: (scopes.salt_active)(v.t(kept[p]).start),
                    });
                }
            }
            bag.call_names.push(call_name.clone());
            bag.call_sites.push((call_name, site, active));
            p += 2;
            continue;
        }
        // Deref-assign to a captured binding: `*shared = …`, `*acc += …`.
        if cur == "*"
            && kind_ident(p + 1)
            && ASSIGN_OPS.contains(&s(p + 2))
            && !locals.iter().any(|l| l == s(p + 1))
        {
            let what = format!("*{} {}", s(p + 1), s(p + 2));
            let site = site_of(v, kept[p]);
            let active = (scopes.active)(v.t(kept[p]).start);
            bag.merge_sites.push((what, site, active));
            p += 3;
            continue;
        }
        // Index-assign to a captured binding: `out[i] = …`, `loads[b] += …`.
        if kind_ident(p) && s(p + 1) == "[" && !locals.iter().any(|l| l == cur) {
            let mut depth = 1usize;
            let mut q = p + 2;
            while q < n && depth > 0 {
                match s(q) {
                    "[" => depth += 1,
                    "]" => depth -= 1,
                    _ => {}
                }
                q += 1;
            }
            if depth == 0 && q < n && ASSIGN_OPS.contains(&s(q)) {
                let what = format!("{cur}[..] {}", s(q));
                let site = site_of(v, kept[p]);
                let active = (scopes.active)(v.t(kept[p]).start);
                bag.merge_sites.push((what, site, active));
                p = q + 1;
                continue;
            }
        }
        p += 1;
    }
    bag
}

/// If the call whose `(` is at kept-position `open` passes exactly two
/// top-level arguments and the second is a single integer literal,
/// returns its value (the literal salt).
fn literal_salt_arg(v: &View, kept: &[usize], open: usize) -> Option<u64> {
    let n = kept.len();
    let s = |p: usize| if p < n { v.s(kept[p]) } else { "" };
    if s(open) != "(" {
        return None;
    }
    let mut depth = 0usize;
    let mut args: Vec<(usize, usize)> = Vec::new();
    let mut arg_start = open + 1;
    let mut p = open;
    loop {
        if p >= n {
            return None; // unbalanced
        }
        match s(p) {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth == 0 {
                    if p > arg_start {
                        args.push((arg_start, p));
                    }
                    break;
                }
            }
            "," if depth == 1 => {
                args.push((arg_start, p));
                arg_start = p + 1;
            }
            _ => {}
        }
        p += 1;
    }
    if args.len() != 2 {
        return None;
    }
    let (lo, hi) = args[1];
    if hi - lo != 1 || v.kind(kept[lo]) != crate::lexer::TokKind::Number {
        return None;
    }
    parse_int_literal(s(lo))
}

/// Parses a Rust integer literal: underscores, `0x`/`0o`/`0b` radixes, and
/// type suffixes. Returns `None` for floats or malformed input.
fn parse_int_literal(text: &str) -> Option<u64> {
    let cleaned = text.replace('_', "");
    let (radix, digits) = if let Some(r) = cleaned.strip_prefix("0x") {
        (16, r)
    } else if let Some(r) = cleaned.strip_prefix("0o") {
        (8, r)
    } else if let Some(r) = cleaned.strip_prefix("0b") {
        (2, r)
    } else {
        (10, cleaned.as_str())
    };
    let end = digits
        .find(|c: char| !c.is_digit(radix))
        .unwrap_or(digits.len());
    let (num, suffix) = digits.split_at(end);
    if num.is_empty() {
        return None;
    }
    if !suffix.is_empty()
        && !matches!(
            suffix,
            "u8" | "u16"
                | "u32"
                | "u64"
                | "u128"
                | "usize"
                | "i8"
                | "i16"
                | "i32"
                | "i64"
                | "i128"
                | "isize"
        )
    {
        return None;
    }
    u64::from_str_radix(num, radix).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structure::structurize;

    fn facts_of(src: &str) -> FileFacts {
        let st = structurize(src);
        let v = View {
            src,
            toks: &st.toks,
            code: &st.code,
        };
        let yes: &dyn Fn(usize) -> bool = &|_| true;
        let no: &dyn Fn(usize) -> bool = &|_| false;
        extract(
            &v,
            &st.root,
            &ScopeFns {
                active: yes,
                salt_active: yes,
                in_test: no,
            },
        )
    }

    #[test]
    fn fn_facts_record_draws_constructs_calls() {
        let f = facts_of(
            "impl Sampler {\n\
             fn draw(&self, rng: &mut Xoshiro256pp) -> u64 { rng.next_u64() }\n\
             fn fresh(seed: u64) -> Xoshiro256pp { Xoshiro256pp::stream(seed, 3) }\n\
             fn indirect(&self, rng: &mut Xoshiro256pp) -> u64 { self.draw(rng) }\n\
             }",
        );
        assert_eq!(f.fns.len(), 3);
        let by_name = |n: &str| f.fns.iter().find(|x| x.names[0] == n).unwrap();
        assert!(by_name("draw").draws);
        assert!(by_name("draw").names.contains(&"Sampler::draw".to_string()));
        assert!(by_name("fresh").constructs && !by_name("fresh").draws);
        let ind = by_name("indirect");
        assert!(!ind.draws && ind.calls.iter().any(|c| c == "draw"));
        assert_eq!(f.salts.len(), 1);
        assert_eq!(f.salts[0].value, 3);
    }

    #[test]
    fn par_closures_record_sites_and_sanction() {
        let f = facts_of(
            "fn a(n: u64, w: &W) -> u64 {\n\
             (0..n).into_par_iter().map(|i| w.rng.next_u64() + i).sum()\n\
             }\n\
             fn b(n: u64, seed: u64) -> u64 {\n\
             (0..n).into_par_iter().map(|i| salted_rng(seed, i).next_u64()).sum()\n\
             }\n\
             fn c(n: usize, total: &Mutex<u64>) {\n\
             (0..n).into_par_iter().for_each(|i| { *total.lock().unwrap() += i as u64; });\n\
             }",
        );
        assert_eq!(f.par_closures.len(), 3);
        let unsanctioned = &f.par_closures[0];
        assert!(!unsanctioned.sanctioned);
        assert_eq!(unsanctioned.draws.len(), 1);
        let sanctioned = &f.par_closures[1];
        assert!(sanctioned.sanctioned);
        let merging = &f.par_closures[2];
        assert!(merging.merges.iter().any(|(w, _, _)| w == ".lock()"));
    }

    #[test]
    fn locals_are_not_shared_state() {
        let f = facts_of(
            "fn a(n: usize) {\n\
             (0..n).into_par_iter().for_each(|i| {\n\
             let mut acc = 0u64; acc += 1; let mut v = vec![0; 4]; v[i] = 1; *(&mut acc) = 2;\n\
             });\n\
             }",
        );
        // `acc` and `v` are let-bound inside the closure; none of the
        // mutations touch shared state. (`*(&mut acc)` has a non-ident
        // after `*`, so the deref heuristic skips it too.)
        assert!(f.par_closures[0].merges.is_empty());
    }

    #[test]
    fn salt_literals_parse_radixes_and_suffixes() {
        assert_eq!(parse_int_literal("42"), Some(42));
        assert_eq!(parse_int_literal("0xADFE"), Some(0xADFE));
        assert_eq!(parse_int_literal("0x5EED_BA11"), Some(0x5EED_BA11));
        assert_eq!(parse_int_literal("7u64"), Some(7));
        assert_eq!(parse_int_literal("0b101"), Some(5));
        assert_eq!(parse_int_literal("1.5"), None);
        assert_eq!(parse_int_literal("1e9"), None);
    }

    #[test]
    fn non_literal_salts_are_ignored() {
        let f = facts_of(
            "fn mk(seed: u64, s: usize) -> Xoshiro256pp {\n\
             Xoshiro256pp::stream(seed, BASE + s as u64)\n\
             }",
        );
        assert!(f.salts.is_empty());
    }

    #[test]
    fn engine_impls_are_collected() {
        let f = facts_of(
            "impl Engine for SparseLoadProcess { fn round(&mut self) {} }\n\
             impl SparseLoadProcess { fn new() {} }\n\
             impl Display for SparseLoadProcess {}",
        );
        assert_eq!(f.engine_impls.len(), 1);
        assert_eq!(f.engine_impls[0].type_name, "SparseLoadProcess");
    }
}
