//! The `--repo` rule family: cross-file invariants the compiler can't see.
//!
//! Each check compares two artifacts that must stay in sync:
//!
//! * `spec-golden` — every committed `specs/*.json` scenario has a golden
//!   stdout fixture under `crates/cli/tests/golden/`, and vice versa (an
//!   orphan golden means the spec it pinned was deleted without its
//!   byte-diff gate).
//! * `experiment-doc` — every experiment id registered in
//!   `crates/experiments/src/lib.rs` is mentioned in `EXPERIMENTS.md`.
//! * `engine-proptest` — every `impl Engine for T` type name appears in
//!   `tests/proptest_engines.rs`, the law-equality property suite.
//! * `bench-schema` — `BENCH.json`'s `schema_version` matches the bench
//!   crate's `SCHEMA_VERSION` constant.
//!
//! A [`RepoView`] is loaded once per run; each side of a comparison that
//! is missing entirely (e.g. a fixture mini-root with no `specs/` at all)
//! disables that check, so single-file linting and synthetic test trees
//! stay quiet. Findings anchored in `.rs` files route through the normal
//! suppression machinery; findings anchored in data files (specs,
//! goldens) are structurally unsuppressible — fix the tree, not the lint.

use std::fs;
use std::path::Path;

use crate::facts::EngineImplSite;
use crate::lexer::{lex, TokKind};
use crate::rules::{rule_info, Finding};

/// Snapshot of the repo-level artifacts the `--repo` checks compare.
#[derive(Default)]
pub(crate) struct RepoView {
    /// Stems of `specs/*.json` (`None` when the directory is absent).
    pub specs: Option<Vec<String>>,
    /// Stems of `crates/cli/tests/golden/*.stdout`.
    pub goldens: Option<Vec<String>>,
    /// `(path, source)` of the experiment registry.
    pub registry: Option<(String, String)>,
    /// Content of `EXPERIMENTS.md`.
    pub experiments_md: Option<String>,
    /// `(path, content)` of `tests/proptest_engines.rs`.
    pub proptest_engines: Option<(String, String)>,
    /// `(path, line, value)` of the bench crate's `SCHEMA_VERSION` const.
    pub bench_const: Option<(String, u32, u64)>,
    /// `schema_version` value read from `BENCH.json`.
    pub bench_json: Option<u64>,
}

impl RepoView {
    /// Loads the view from a workspace root. Missing artifacts load as
    /// `None` (disabling the corresponding check), never as an error.
    pub fn load(root: &Path) -> RepoView {
        let stems = |dir: &Path, ext: &str| -> Option<Vec<String>> {
            let mut out: Vec<String> = fs::read_dir(dir)
                .ok()?
                .filter_map(|e| e.ok())
                .filter_map(|e| {
                    let p = e.path();
                    (p.extension().and_then(|x| x.to_str()) == Some(ext))
                        .then(|| p.file_stem()?.to_str().map(str::to_string))
                        .flatten()
                })
                .collect();
            out.sort();
            Some(out)
        };
        let read = |rel: &str| -> Option<(String, String)> {
            fs::read_to_string(root.join(rel))
                .ok()
                .map(|src| (rel.to_string(), src))
        };
        let registry = read("crates/experiments/src/lib.rs");
        let proptest_engines = read("tests/proptest_engines.rs");
        let bench_const =
            read("crates/bench/src/lib.rs").and_then(|(p, src)| find_schema_const(&p, &src));
        let bench_json = fs::read_to_string(root.join("BENCH.json"))
            .ok()
            .and_then(|s| find_json_u64(&s, "schema_version"));
        RepoView {
            specs: stems(&root.join("specs"), "json"),
            goldens: stems(&root.join("crates/cli/tests/golden"), "stdout"),
            registry,
            experiments_md: fs::read_to_string(root.join("EXPERIMENTS.md")).ok(),
            proptest_engines,
            bench_json,
            bench_const,
        }
    }

    /// Runs every enabled check. `engine_impls` are the
    /// `impl Engine for T` sites collected per file: `(path, site)`.
    pub fn check(&self, engine_impls: &[(String, EngineImplSite)]) -> Vec<Finding> {
        let mut out = Vec::new();
        self.check_spec_golden(&mut out);
        self.check_experiment_doc(&mut out);
        self.check_engine_proptest(engine_impls, &mut out);
        self.check_bench_schema(&mut out);
        out
    }

    fn check_spec_golden(&self, out: &mut Vec<Finding>) {
        let (Some(specs), Some(goldens)) = (&self.specs, &self.goldens) else {
            return;
        };
        for s in specs {
            if !goldens.contains(s) {
                out.push(finding(
                    "spec-golden",
                    format!("specs/{s}.json"),
                    1,
                    1,
                    format!(
                        "spec `{s}` has no golden fixture crates/cli/tests/golden/{s}.stdout \
                         (its output is not byte-diffed by CI)"
                    ),
                ));
            }
        }
        for g in goldens {
            if !specs.contains(g) {
                out.push(finding(
                    "spec-golden",
                    format!("crates/cli/tests/golden/{g}.stdout"),
                    1,
                    1,
                    format!("orphan golden fixture: specs/{g}.json does not exist"),
                ));
            }
        }
    }

    fn check_experiment_doc(&self, out: &mut Vec<Finding>) {
        let (Some((reg_path, reg_src)), Some(md)) = (&self.registry, &self.experiments_md) else {
            return;
        };
        for (id, line, col) in registry_ids(reg_src) {
            if !contains_word_ci(md, &id) {
                out.push(finding(
                    "experiment-doc",
                    reg_path.clone(),
                    line,
                    col,
                    format!(
                        "experiment `{id}` is registered but never mentioned in EXPERIMENTS.md"
                    ),
                ));
            }
        }
    }

    fn check_engine_proptest(&self, impls: &[(String, EngineImplSite)], out: &mut Vec<Finding>) {
        let Some((pt_path, pt_src)) = &self.proptest_engines else {
            return;
        };
        for (file, im) in impls {
            if !contains_word(pt_src, &im.type_name) {
                out.push(finding(
                    "engine-proptest",
                    file.clone(),
                    im.site.line,
                    im.site.col,
                    format!(
                        "engine `{}` implements Engine but never appears in {pt_path}",
                        im.type_name
                    ),
                ));
            }
        }
    }

    fn check_bench_schema(&self, out: &mut Vec<Finding>) {
        let (Some((path, line, konst)), Some(json)) = (&self.bench_const, self.bench_json) else {
            return;
        };
        if *konst != json {
            out.push(finding(
                "bench-schema",
                path.clone(),
                *line,
                1,
                format!(
                    "SCHEMA_VERSION is {konst} but BENCH.json records schema_version {json} \
                     (regenerate BENCH.json or bump in lockstep)"
                ),
            ));
        }
    }
}

fn finding(rule: &'static str, file: String, line: u32, col: u32, message: String) -> Finding {
    Finding {
        rule,
        file,
        line,
        col,
        message,
        hint: rule_info(rule).map_or("", |r| r.fix_hint),
    }
}

/// Extracts `(id, line, col)` triples from the experiment registry source
/// by the token pattern `id : "eNN"`.
fn registry_ids(src: &str) -> Vec<(String, u32, u32)> {
    let toks = lex(src);
    let code: Vec<usize> = (0..toks.len()).filter(|&i| toks[i].is_code()).collect();
    let mut out = Vec::new();
    for w in code.windows(3) {
        let (a, b, c) = (&toks[w[0]], &toks[w[1]], &toks[w[2]]);
        if a.kind == TokKind::Ident
            && a.text(src) == "id"
            && b.text(src) == ":"
            && c.kind == TokKind::Str
        {
            let lit = c.text(src).trim_matches('"');
            if !lit.is_empty() {
                out.push((lit.to_string(), c.line, c.col));
            }
        }
    }
    out
}

/// Case-sensitive word-boundary containment (boundary = not `[A-Za-z0-9]`
/// and not `_`), so `LoadProcess` does not match inside
/// `ShardedLoadProcess`.
fn contains_word(hay: &str, needle: &str) -> bool {
    contains_word_impl(hay, needle, false)
}

/// Case-insensitive variant for experiment ids (`e01` matches `E01`); `_`
/// is treated as a boundary so `e01_stability` counts as a mention.
fn contains_word_ci(hay: &str, needle: &str) -> bool {
    contains_word_impl(hay, needle, true)
}

fn contains_word_impl(hay: &str, needle: &str, ci: bool) -> bool {
    if needle.is_empty() {
        return false;
    }
    let (h, n) = if ci {
        (hay.to_ascii_lowercase(), needle.to_ascii_lowercase())
    } else {
        (hay.to_string(), needle.to_string())
    };
    let boundary = |c: Option<char>| match c {
        None => true,
        Some(c) => {
            if ci {
                !c.is_ascii_alphanumeric()
            } else {
                !(c.is_ascii_alphanumeric() || c == '_')
            }
        }
    };
    let mut from = 0;
    while let Some(at) = h[from..].find(&n) {
        let at = from + at;
        if boundary(h[..at].chars().next_back()) && boundary(h[at + n.len()..].chars().next()) {
            return true;
        }
        from = at + 1;
    }
    false
}

/// Finds `SCHEMA_VERSION` in the bench crate source by token pattern
/// (`const SCHEMA_VERSION : <ty> = <number>`), returning `(path, line,
/// value)`.
fn find_schema_const(path: &str, src: &str) -> Option<(String, u32, u64)> {
    let toks = lex(src);
    let code: Vec<usize> = (0..toks.len()).filter(|&i| toks[i].is_code()).collect();
    for (pos, &ci) in code.iter().enumerate() {
        let t = &toks[ci];
        if t.kind == TokKind::Ident && t.text(src) == "SCHEMA_VERSION" {
            // Scan forward a few tokens for `= <number>`.
            for w in pos + 1..(pos + 6).min(code.len()) {
                let u = &toks[code[w]];
                if u.text(src) == "=" {
                    let vtok = &toks[*code.get(w + 1)?];
                    if vtok.kind == TokKind::Number {
                        let value: u64 = vtok
                            .text(src)
                            .replace('_', "")
                            .trim_end_matches(|c: char| c.is_ascii_alphabetic())
                            .parse()
                            .ok()?;
                        return Some((path.to_string(), t.line, value));
                    }
                }
            }
        }
    }
    None
}

/// Extracts an unsigned integer field value from a flat JSON document by
/// key (enough for `BENCH.json`'s top-level `schema_version`).
fn find_json_u64(json: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\"");
    let at = json.find(&pat)?;
    let rest = json[at + pat.len()..].trim_start().strip_prefix(':')?;
    let rest = rest.trim_start();
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facts::Site;

    fn view() -> RepoView {
        RepoView {
            specs: Some(vec!["alpha".into(), "beta".into()]),
            goldens: Some(vec!["alpha".into(), "gamma".into()]),
            registry: Some((
                "crates/experiments/src/lib.rs".into(),
                "fn registry() { Experiment { id: \"e01\", title: \"t\" }; \
                 Experiment { id: \"e02\", title: \"u\" }; }"
                    .into(),
            )),
            experiments_md: Some("## E01 — stability\nonly the first".into()),
            proptest_engines: Some((
                "tests/proptest_engines.rs".into(),
                "let e = LoadProcess::new();".into(),
            )),
            bench_const: Some(("crates/bench/src/lib.rs".into(), 26, 1)),
            bench_json: Some(2),
        }
    }

    #[test]
    fn all_four_checks_fire() {
        let impls = vec![
            (
                "crates/core/src/lib.rs".to_string(),
                EngineImplSite {
                    type_name: "LoadProcess".into(),
                    site: Site { line: 1, col: 1 },
                },
            ),
            (
                "crates/core/src/sharded.rs".to_string(),
                EngineImplSite {
                    type_name: "ShardedLoadProcess".into(),
                    site: Site { line: 2, col: 1 },
                },
            ),
        ];
        let findings = view().check(&impls);
        let rules: Vec<(&str, &str)> = findings.iter().map(|f| (f.rule, f.file.as_str())).collect();
        assert!(rules.contains(&("spec-golden", "specs/beta.json")));
        assert!(rules.contains(&("spec-golden", "crates/cli/tests/golden/gamma.stdout")));
        assert!(rules.contains(&("experiment-doc", "crates/experiments/src/lib.rs")));
        assert!(rules.contains(&("engine-proptest", "crates/core/src/sharded.rs")));
        assert!(rules.contains(&("bench-schema", "crates/bench/src/lib.rs")));
        // LoadProcess appears word-bounded in the proptest source; e01 is
        // mentioned (case-insensitively) in EXPERIMENTS.md.
        assert!(!rules
            .iter()
            .any(|(r, f)| *r == "engine-proptest" && f.ends_with("lib.rs")));
        assert_eq!(
            findings
                .iter()
                .filter(|f| f.rule == "experiment-doc")
                .count(),
            1
        );
    }

    #[test]
    fn missing_sides_disable_checks() {
        let empty = RepoView::default();
        assert!(empty.check(&[]).is_empty());
        let mut half = RepoView {
            specs: Some(vec!["alpha".into()]),
            ..RepoView::default()
        };
        assert!(half.check(&[]).is_empty(), "specs without goldens dir");
        half.goldens = Some(Vec::new());
        assert_eq!(half.check(&[]).len(), 1);
    }

    #[test]
    fn word_boundaries() {
        assert!(contains_word("uses LoadProcess here", "LoadProcess"));
        assert!(!contains_word("ShardedLoadProcess", "LoadProcess"));
        assert!(!contains_word("LoadProcess2", "LoadProcess"));
        assert!(contains_word_ci("## E01 — stability", "e01"));
        assert!(contains_word_ci("e01_stability module", "e01"));
        assert!(!contains_word_ci("e012", "e01"));
    }

    #[test]
    fn json_and_const_scanners() {
        assert_eq!(
            find_json_u64("{\n  \"schema_version\": 3,\n}", "schema_version"),
            Some(3)
        );
        let c = find_schema_const("p", "pub const SCHEMA_VERSION: u32 = 7;\n");
        assert_eq!(c, Some(("p".into(), 1, 7)));
    }
}
