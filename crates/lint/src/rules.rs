//! The rule engine: repo-specific invariants checked over the token stream.
//!
//! Every rule has an id, a one-line summary, a full explanation, and a fix
//! hint (see [`RULES`]). Findings are suppressed per-site with an allow
//! comment whose grammar is:
//!
//! ```text
//! // rbb-lint: allow(rule-id[, rule-id…], reason = "why this site is safe")
//! ```
//!
//! The reason is mandatory. A comment on its own line applies to the next
//! line that contains code; a trailing comment applies to its own line.
//! Malformed allows and allows that match no finding are themselves
//! findings (`malformed-allow`, `unused-allow`), so suppressions cannot rot
//! silently.
//!
//! ## Scoping
//!
//! Result-affecting crates are `core`, `sim`, `stats`, `serve`, and
//! `baselines`: a determinism or numerical bug there changes reported
//! trajectories and statistics (for `serve`, the responses and checkpoints
//! a daemon session hands back; for `baselines`, the comparator curves
//! experiments plot against the process).
//! Most rules fire only in those crates and only in non-test code — files
//! under `tests/`, `benches/`, or `examples/` directories, and regions
//! under `#[cfg(test)]`, are exempt. Entropy rules fire everywhere
//! including tests: a nondeterministically seeded test is flaky by
//! construction.

use crate::facts::{self, FileFacts};
use crate::lexer::{lex, TokKind, Token};
use crate::repo::RepoView;
use crate::structure::{self, NodeKind, View};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Crates whose code can affect reported results.
const RESULT_CRATES: &[&str] = &["core", "sim", "stats", "serve", "baselines"];

/// Which analysis layer a rule runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleFamily {
    /// Pattern over the token stream of one file.
    Token,
    /// Needs the structurizer + workspace call-graph facts.
    Semantic,
    /// Cross-file repo invariant (the `--repo` family).
    Repo,
    /// Polices the suppression machinery itself.
    Meta,
}

impl RuleFamily {
    /// Short label for the `--list-rules` table.
    pub fn label(self) -> &'static str {
        match self {
            RuleFamily::Token => "token",
            RuleFamily::Semantic => "semantic",
            RuleFamily::Repo => "repo",
            RuleFamily::Meta => "meta",
        }
    }
}

/// Static description of one rule.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Stable identifier used in output and allow comments.
    pub id: &'static str,
    /// One-line summary for `--list-rules` and the README table.
    pub summary: &'static str,
    /// Why the pattern is hazardous in this repo.
    pub explanation: &'static str,
    /// What to do instead.
    pub fix_hint: &'static str,
}

impl RuleInfo {
    /// The analysis layer this rule belongs to.
    pub fn family(&self) -> RuleFamily {
        match self.id {
            "undocumented-stream" | "rng-in-par" | "unordered-merge" | "salt-collision" => {
                RuleFamily::Semantic
            }
            "spec-golden" | "experiment-doc" | "engine-proptest" | "bench-schema" => {
                RuleFamily::Repo
            }
            "malformed-allow" | "unused-allow" => RuleFamily::Meta,
            _ => RuleFamily::Token,
        }
    }

    /// Whether an allow comment may name this rule. Meta rules police the
    /// suppression machinery; `spec-golden` anchors in data files where no
    /// allow comment can live — for all of these, fix the tree instead.
    pub fn suppressible(&self) -> bool {
        !matches!(self.id, "malformed-allow" | "unused-allow" | "spec-golden")
    }
}

/// The rule registry. Order is the order findings are reported in per file.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "det-map",
        summary: "std HashMap/HashSet with the default RandomState in result-affecting crates",
        explanation: "RandomState is seeded per process, so map layout and iteration order \
                      differ between runs, breaking bit-identical trajectories and reports.",
        fix_hint: "use rbb_core::det_hash::{DetHashMap, DetHashSet} (or pass BuildDetHasher \
                   explicitly as the third type parameter)",
    },
    RuleInfo {
        id: "unordered-iter",
        summary: "iteration over a hash map/set whose order can reach results",
        explanation: "even with a deterministic hasher, map order depends on capacity and \
                      insertion history; folding floats or emitting output in map order makes \
                      results depend on incidental layout.",
        fix_hint: "collect into a Vec and sort before consuming (the sanctioned worklist \
                   pattern), or justify order-independence in an allow reason",
    },
    RuleInfo {
        id: "rng-entropy",
        summary: "entropy-based RNG seeding or OS randomness",
        explanation: "from_entropy/thread_rng/OsRng-style sources make runs unreproducible; \
                      every random stream in this repo must derive from the master seed.",
        fix_hint: "derive a stream from the ScenarioSpec master seed via rbb_sim::seed",
    },
    RuleInfo {
        id: "rng-construct",
        summary: "RNG constructed outside the sanctioned construction sites",
        explanation: "ad-hoc Xoshiro256pp/SplitMix64 construction scatters stream-derivation \
                      logic and invites seed collisions between subsystems.",
        fix_hint: "route through rbb_sim::seed helpers (engine_rng, adversary_rng, salted_rng, \
                   SeedTree) or add the site to the sanctioned list if it is one",
    },
    RuleInfo {
        id: "ln-complement",
        summary: "(1.0 - x).ln()-style complement feeding a log/power",
        explanation: "for small x, 1.0 - x rounds to 1.0 and the logarithm loses all \
                      precision (catastrophic cancellation); this exact bug class produced \
                      wrong geometric samples before PR 5.",
        fix_hint: "use (-x).ln_1p() for ln(1-x), x.ln_1p() for ln(1+x), or a guarded \
                   complement via exact integer counts",
    },
    RuleInfo {
        id: "exp-complement",
        summary: "1.0 - exp(x)-style complement",
        explanation: "for x near 0, exp(x) is near 1 and the subtraction cancels; the \
                      result has few correct digits.",
        fix_hint: "use -x.exp_m1() for 1 - e^x",
    },
    RuleInfo {
        id: "lossy-cast",
        summary: "truncating `as` cast to a narrow unsigned type",
        explanation: "`as u32`/`as u16`/`as u8` silently wraps out-of-range values; a bin \
                      count or round index that outgrows the target type corrupts results \
                      instead of failing.",
        fix_hint: "use try_from with an expect carrying an invariant message, or justify \
                   the bound in an allow reason",
    },
    RuleInfo {
        id: "panic",
        summary: "unwrap/expect/panic! in non-test result-affecting code",
        explanation: "library code in core/sim/stats is driven by user-supplied specs; a \
                      panic tears down a whole ensemble run instead of reporting a usable \
                      error.",
        fix_hint: "return a Result, use unwrap_or/match, or annotate with an allow whose \
                   reason states the invariant that makes the panic unreachable",
    },
    RuleInfo {
        id: "undocumented-stream",
        summary: "pub fn with an RNG parameter lacking a `# RNG stream` doc section",
        explanation: "stream discipline is part of a sampler's contract: callers must know \
                      how many draws a call consumes and from which stream, or two \
                      subsystems will silently share or skew a stream. (Signature-accurate \
                      successor of PR 6's token-level `rng-doc`.)",
        fix_hint: "add a `# RNG stream` section to the doc comment describing the draws \
                   consumed and the stream expected",
    },
    RuleInfo {
        id: "partial-cmp",
        summary: "partial_cmp on floats (NaN-unwrapping comparator)",
        explanation: "sort_by(|a, b| a.partial_cmp(b).unwrap()) panics on NaN and orders \
                      nothing deterministically if NaN slips through.",
        fix_hint: "use f64::total_cmp, and assert input is NaN-free at the boundary",
    },
    RuleInfo {
        id: "wall-clock",
        summary: "wall-clock time read in result-affecting code",
        explanation: "Instant::now/SystemTime::now make control flow or output depend on \
                      machine speed; results must be a pure function of the spec and seed.",
        fix_hint: "thread timing through the caller (bench/CLI layers may measure; \
                   core/sim/stats must not; serve measures only through its Clock \
                   abstraction, whose monotonic impl carries the sanctioned allows)",
    },
    RuleInfo {
        id: "env-read",
        summary: "environment variable read in result-affecting code",
        explanation: "std::env::var makes results depend on ambient machine state that is \
                      not captured in the ScenarioSpec, breaking reproduction from a spec \
                      file alone.",
        fix_hint: "plumb configuration through ScenarioSpec / function parameters",
    },
    RuleInfo {
        id: "rng-in-par",
        summary: "RNG draw reachable inside a rayon closure without a sanctioned stream",
        explanation: "a draw under rayon consumes from whatever stream the task happens to \
                      share, so the trajectory depends on work-stealing order; every \
                      parallel task must derive its own stream (per-shard or per-trial) \
                      from the master seed.",
        fix_hint: "construct the task's stream inside the closure via rbb_sim::seed \
                   (salted_rng, SeedTree::trial_rng) or a salted Xoshiro256pp::stream, or \
                   justify the pre-salted state in an allow reason",
    },
    RuleInfo {
        id: "unordered-merge",
        summary: "shared-state mutation inside a rayon closure without a commutes reason",
        explanation: "Mutex/RefCell/atomic mutation from parallel tasks applies updates in \
                      scheduling order; unless the update commutes exactly, the result \
                      depends on thread timing and the byte-diff determinism gate breaks.",
        fix_hint: "return per-task values and merge in deterministic order after the join \
                   (the PR 7 shard pattern), or add an allow whose reason starts with \
                   `commutes:` and argues order-independence",
    },
    RuleInfo {
        id: "salt-collision",
        summary: "two stream constructions passing the same literal salt",
        explanation: "two subsystems salting the same master seed with the same literal \
                      share one RNG stream: their draws interleave nondeterministically \
                      with call order and correlate results that must be independent.",
        fix_hint: "give each subsystem a distinct documented salt (see the salt registry \
                   in rbb_sim::seed)",
    },
    RuleInfo {
        id: "spec-golden",
        summary: "specs/*.json and crates/cli/tests/golden/*.stdout out of sync",
        explanation: "a spec without a golden is not byte-diffed by CI, so its output can \
                      drift silently; an orphan golden pins output of a spec that no \
                      longer exists.",
        fix_hint: "run the spec with UPDATE_GOLDEN=1 to create its fixture, or delete the \
                   orphan golden together with its spec",
    },
    RuleInfo {
        id: "experiment-doc",
        summary: "registered experiment missing from EXPERIMENTS.md",
        explanation: "EXPERIMENTS.md is the map from paper claims to measured records; an \
                      undocumented experiment id leaves its table unexplained and its \
                      claim unpinned.",
        fix_hint: "add the experiment id to EXPERIMENTS.md (at minimum to the index \
                   table) describing what it measures",
    },
    RuleInfo {
        id: "engine-proptest",
        summary: "Engine impl not exercised by tests/proptest_engines.rs",
        explanation: "the engine law-equality property suite is what keeps every engine \
                      bit-compatible in law with the dense reference; an engine outside \
                      it can drift without failing CI.",
        fix_hint: "add the engine type to the matrix in tests/proptest_engines.rs (or the \
                   engine-name constant it checks)",
    },
    RuleInfo {
        id: "bench-schema",
        summary: "BENCH.json schema_version disagrees with the bench crate constant",
        explanation: "the perf gate parses BENCH.json by schema; a version skew means the \
                      committed baseline and the harness disagree about field meaning.",
        fix_hint: "regenerate BENCH.json with the current harness, or bump SCHEMA_VERSION \
                   and the artifact in lockstep",
    },
    RuleInfo {
        id: "malformed-allow",
        summary: "rbb-lint allow comment that does not parse or lacks a reason",
        explanation: "an unparseable suppression silently suppresses nothing; a reason-less \
                      one hides the justification the next reader needs.",
        fix_hint: "use: // rbb-lint: allow(rule-id, reason = \"...\") with a non-empty \
                   reason and known rule ids",
    },
    RuleInfo {
        id: "unused-allow",
        summary: "rbb-lint allow comment that suppressed nothing",
        explanation: "stale suppressions accumulate and mask future real findings at the \
                      same site.",
        fix_hint: "delete the allow comment (the code it excused has changed)",
    },
];

/// Looks up a rule by id.
pub fn rule_info(id: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.id == id)
}

/// One lint finding, pre-suppression.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule id (an entry of [`RULES`]).
    pub rule: &'static str,
    /// Display path of the file.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
    /// Site-specific message.
    pub message: String,
    /// The rule's fix hint.
    pub hint: &'static str,
}

/// Per-file lint outcome.
#[derive(Debug, Default)]
pub struct FileReport {
    /// Findings that survived suppression.
    pub findings: Vec<Finding>,
    /// Number of findings suppressed by allow comments.
    pub suppressed: usize,
}

/// Where a rule applies.
struct Scope {
    /// If false, only `RESULT_CRATES`.
    all_crates: bool,
    /// If false, skip `tests/`/`benches/`/`examples/` files and
    /// `#[cfg(test)]` regions.
    include_tests: bool,
    /// Path suffixes exempt from the rule (sanctioned definition sites).
    exempt: &'static [&'static str],
}

const SCOPE_RESULT: Scope = Scope {
    all_crates: false,
    include_tests: false,
    exempt: &[],
};

/// Lint context for one file.
struct Ctx<'a> {
    src: &'a str,
    /// Full token stream (comments included).
    toks: Vec<Token>,
    /// Indices into `toks` of code tokens (non-comment).
    code: Vec<usize>,
    path: &'a str,
    crate_name: &'a str,
    /// Path-level test exemption (tests/, benches/, examples/).
    testish: bool,
    /// Byte ranges under `#[cfg(test)]`.
    test_regions: Vec<(usize, usize)>,
}

impl<'a> Ctx<'a> {
    fn new(path: &'a str, src: &'a str, crate_name: &'a str, testish: bool) -> Self {
        let toks = lex(src);
        let code: Vec<usize> = (0..toks.len()).filter(|&i| toks[i].is_code()).collect();
        let mut ctx = Ctx {
            src,
            toks,
            code,
            path,
            crate_name,
            testish,
            test_regions: Vec::new(),
        };
        ctx.test_regions = ctx.find_test_regions();
        ctx
    }

    /// Code token at code-index `i`, if any.
    fn t(&self, i: usize) -> Option<&Token> {
        self.code.get(i).map(|&fi| &self.toks[fi])
    }

    /// Text of code token `i` ("" past the end).
    fn s(&self, i: usize) -> &str {
        self.t(i).map_or("", |t| t.text(self.src))
    }

    fn kind(&self, i: usize) -> Option<TokKind> {
        self.t(i).map(|t| t.kind)
    }

    fn in_test_region(&self, byte: usize) -> bool {
        self.test_regions
            .iter()
            .any(|&(s, e)| s <= byte && byte < e)
    }

    fn active(&self, scope: &Scope, byte: usize) -> bool {
        if !scope.all_crates && !RESULT_CRATES.contains(&self.crate_name) {
            return false;
        }
        if scope.exempt.iter().any(|e| self.path.ends_with(e)) {
            return false;
        }
        if !scope.include_tests && (self.testish || self.in_test_region(byte)) {
            return false;
        }
        true
    }

    /// Detects `#[cfg(test)]`-attributed items (incl. `cfg(all(test, …))`)
    /// by token pattern, returning the byte range of each item.
    fn find_test_regions(&self) -> Vec<(usize, usize)> {
        let mut regions = Vec::new();
        let n = self.code.len();
        let mut i = 0;
        while i + 4 < n {
            if self.s(i) == "#"
                && self.s(i + 1) == "["
                && self.s(i + 2) == "cfg"
                && self.s(i + 3) == "("
            {
                // Scan the balanced cfg(...) group for a `test` ident.
                let mut depth = 1usize;
                let mut j = i + 4;
                let mut has_test = false;
                while j < n && depth > 0 {
                    match self.s(j) {
                        "(" => depth += 1,
                        ")" => depth -= 1,
                        "test" => has_test = true,
                        _ => {}
                    }
                    j += 1;
                }
                // Expect the closing `]`.
                if has_test && self.s(j) == "]" {
                    let start = self.t(i).map_or(0, |t| t.start);
                    // Skip any further attributes between cfg and the item.
                    let mut k = j + 1;
                    while self.s(k) == "#" && self.s(k + 1) == "[" {
                        let mut d = 1usize;
                        let mut m = k + 2;
                        while m < n && d > 0 {
                            match self.s(m) {
                                "[" => d += 1,
                                "]" => d -= 1,
                                _ => {}
                            }
                            m += 1;
                        }
                        k = m;
                    }
                    // Item body: to the matching `}` of its first `{`, or to
                    // `;` for declaration-only items.
                    let mut end = None;
                    let mut m = k;
                    while m < n && m < k + 64 {
                        match self.s(m) {
                            "{" => {
                                let close = self.match_brace(m);
                                end = Some(self.t(close).map_or(self.src.len(), |t| t.end));
                                break;
                            }
                            ";" => {
                                end = Some(self.t(m).map_or(self.src.len(), |t| t.end));
                                break;
                            }
                            _ => m += 1,
                        }
                    }
                    if let Some(e) = end {
                        regions.push((start, e));
                        i = m;
                    }
                }
                i = j.max(i + 1);
            } else {
                i += 1;
            }
        }
        regions
    }

    /// Code index of the `}` matching the `{` at code index `open`
    /// (clamped to the last token on unbalanced input).
    fn match_brace(&self, open: usize) -> usize {
        let mut depth = 0usize;
        let mut i = open;
        while let Some(_t) = self.t(i) {
            match self.s(i) {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return i;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        self.code.len().saturating_sub(1)
    }
}

/// A parsed suppression comment.
struct Allow {
    rules: Vec<String>,
    /// Line the allow applies to.
    target_line: u32,
    /// Line of the comment itself (for unused-allow reporting).
    comment_line: u32,
    col: u32,
    used: bool,
}

/// Stream-constructor definition files: the salt values there are the
/// registry, not competing uses.
const SCOPE_SALT: Scope = Scope {
    all_crates: false,
    include_tests: false,
    exempt: &["crates/sim/src/seed.rs", "crates/core/src/rng.rs"],
};

/// Phase-1 output for one file: raw findings (token + structure rules),
/// the parsed suppressions, meta findings, and extracted facts for the
/// workspace resolve pass.
pub(crate) struct FileAnalysis {
    pub path: String,
    raw: Vec<Finding>,
    allows: Vec<Allow>,
    meta: Vec<Finding>,
    pub facts: FileFacts,
}

/// Phase 1: lexes, structurizes, and runs every single-file rule over one
/// source file. `path` is the display path, `crate_name` the component
/// after `crates/` ("" for repo-level tests), `testish` the path-level
/// test exemption. Cross-file rules fire later, in [`resolve`].
pub(crate) fn analyze_source(
    path: &str,
    src: &str,
    crate_name: &str,
    testish: bool,
) -> FileAnalysis {
    let ctx = Ctx::new(path, src, crate_name, testish);
    let mut raw: Vec<Finding> = Vec::new();

    rule_det_map(&ctx, &mut raw);
    rule_unordered_iter(&ctx, &mut raw);
    rule_rng_entropy(&ctx, &mut raw);
    rule_rng_construct(&ctx, &mut raw);
    rule_ln_complement(&ctx, &mut raw);
    rule_exp_complement(&ctx, &mut raw);
    rule_lossy_cast(&ctx, &mut raw);
    rule_panic(&ctx, &mut raw);
    rule_partial_cmp(&ctx, &mut raw);
    rule_wall_clock(&ctx, &mut raw);
    rule_env_read(&ctx, &mut raw);

    // Structure pass: reuse the token stream already lexed for the token
    // rules; the structurizer only re-walks indices.
    let view = View {
        src: ctx.src,
        toks: &ctx.toks,
        code: &ctx.code,
    };
    let root = structure::parse(&view);
    rule_undocumented_stream(&ctx, &root, &mut raw);

    let active = |b: usize| ctx.active(&SCOPE_RESULT, b);
    let salt_active = |b: usize| ctx.active(&SCOPE_SALT, b);
    let in_test = |b: usize| ctx.testish || ctx.in_test_region(b);
    let facts = facts::extract(
        &view,
        &root,
        &facts::ScopeFns {
            active: &active,
            salt_active: &salt_active,
            in_test: &in_test,
        },
    );

    let (allows, meta) = parse_allows(&ctx);
    FileAnalysis {
        path: path.to_string(),
        raw,
        allows,
        meta,
        facts,
    }
}

/// Phase 2: joins per-file analyses into workspace findings — runs the
/// call-graph fixpoint, fires the semantic rules (`rng-in-par`,
/// `unordered-merge`, `salt-collision`), folds in repo-invariant findings,
/// and applies suppressions. Returns the final findings (per-file blocks
/// in input order, repo orphans last) and the total suppressed count.
pub(crate) fn resolve(
    mut analyses: Vec<FileAnalysis>,
    repo: Option<&RepoView>,
) -> (Vec<Finding>, usize) {
    // --- Call graph: flatten fns, index by every name they answer to. ---
    let mut flat: Vec<(usize, usize)> = Vec::new(); // (analysis idx, fn idx)
    let mut byname: HashMap<&str, Vec<usize>> = HashMap::new();
    for (ai, a) in analyses.iter().enumerate() {
        for (fi, f) in a.facts.fns.iter().enumerate() {
            let gid = flat.len();
            flat.push((ai, fi));
            for n in &f.names {
                byname.entry(n.as_str()).or_default().push(gid);
            }
        }
    }
    // Monotone boolean fixpoint: a fn draws*/constructs*/enters-rayon* if
    // it does so directly or any resolvable callee does. Name resolution
    // is exact-match over the registered names (bare and `Type::name`), so
    // unresolvable callees contribute nothing — a documented blind spot.
    let n = flat.len();
    let mut draws: Vec<bool> = Vec::with_capacity(n);
    let mut constructs: Vec<bool> = Vec::with_capacity(n);
    let mut rayon: Vec<bool> = Vec::with_capacity(n);
    let mut edges: Vec<Vec<usize>> = Vec::with_capacity(n);
    for &(ai, fi) in &flat {
        let f = &analyses[ai].facts.fns[fi];
        draws.push(f.draws);
        constructs.push(f.constructs);
        rayon.push(f.par_entry);
        edges.push(
            f.calls
                .iter()
                .filter_map(|c| byname.get(c.as_str()))
                .flatten()
                .copied()
                .collect(),
        );
    }
    loop {
        let mut changed = false;
        for g in 0..n {
            for &cg in &edges[g] {
                if draws[cg] && !draws[g] {
                    draws[g] = true;
                    changed = true;
                }
                if constructs[cg] && !constructs[g] {
                    constructs[g] = true;
                    changed = true;
                }
                if rayon[cg] && !rayon[g] {
                    rayon[g] = true;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    // (draws-transitively, constructs-transitively, enters-rayon-transitively)
    let name_flags = |name: &str| -> (bool, bool, bool) {
        let mut f = (false, false, false);
        if let Some(ids) = byname.get(name) {
            for &g in ids {
                f.0 |= draws[g];
                f.1 |= constructs[g];
                f.2 |= rayon[g];
            }
        }
        f
    };

    // --- Semantic rules over the par-closure and salt facts. ---
    let mut extra: Vec<Vec<Finding>> = (0..analyses.len()).map(|_| Vec::new()).collect();
    for (ai, a) in analyses.iter().enumerate() {
        for pc in &a.facts.par_closures {
            // A closure is sanctioned if it (or a lexically enclosing
            // parallel closure) constructs a stream, directly or via a
            // callee that constructs* one.
            let sanctioned =
                pc.sanctioned || pc.calls.iter().any(|(name, _, _)| name_flags(name).1);
            if !sanctioned {
                let mut lines: HashSet<u32> = HashSet::new();
                for (method, site, active) in &pc.draws {
                    if *active && lines.insert(site.line) {
                        extra[ai].push(Finding {
                            rule: "rng-in-par",
                            file: a.path.clone(),
                            line: site.line,
                            col: site.col,
                            message: format!(
                                "RNG draw `.{method}()` inside a parallel closure \
                                 that constructs no per-task stream"
                            ),
                            hint: rule_info("rng-in-par").map_or("", |r| r.fix_hint),
                        });
                    }
                }
                for (callee, site, active) in &pc.calls {
                    let (d, c, r) = name_flags(callee);
                    if *active && d && !c && lines.insert(site.line) {
                        let tail = if r {
                            ", and it fans out under rayon itself"
                        } else {
                            ""
                        };
                        extra[ai].push(Finding {
                            rule: "rng-in-par",
                            file: a.path.clone(),
                            line: site.line,
                            col: site.col,
                            message: format!(
                                "call to `{callee}` draws from an RNG inside a \
                                 parallel closure that constructs no per-task stream{tail}"
                            ),
                            hint: rule_info("rng-in-par").map_or("", |r| r.fix_hint),
                        });
                    }
                }
            }
            for (what, site, active) in &pc.merges {
                if *active {
                    extra[ai].push(Finding {
                        rule: "unordered-merge",
                        file: a.path.clone(),
                        line: site.line,
                        col: site.col,
                        message: format!(
                            "shared-state mutation via `{what}` inside a parallel closure"
                        ),
                        hint: rule_info("unordered-merge").map_or("", |r| r.fix_hint),
                    });
                }
            }
        }
    }

    // salt-collision: group literal salts workspace-wide; two distinct
    // sites sharing a value share a stream. BTreeMap keeps emission
    // deterministic.
    let mut by_salt: BTreeMap<u64, Vec<(usize, String, u32, u32)>> = BTreeMap::new();
    for (ai, a) in analyses.iter().enumerate() {
        for s in a.facts.salts.iter().filter(|s| s.active) {
            by_salt.entry(s.value).or_default().push((
                ai,
                s.callee.clone(),
                s.site.line,
                s.site.col,
            ));
        }
    }
    for (value, mut sites) in by_salt {
        sites.sort_by_key(|s| (s.0, s.2, s.3));
        let distinct: HashSet<(usize, u32)> = sites.iter().map(|s| (s.0, s.2)).collect();
        if distinct.len() < 2 {
            continue;
        }
        for (i, (ai, callee, line, col)) in sites.iter().enumerate() {
            let Some((oa, _, oline, _)) = sites
                .iter()
                .enumerate()
                .find(|(j, s)| *j != i && (s.0, s.2) != (*ai, *line))
                .map(|(_, s)| s)
            else {
                continue;
            };
            extra[*ai].push(Finding {
                rule: "salt-collision",
                file: analyses[*ai].path.clone(),
                line: *line,
                col: *col,
                message: format!(
                    "literal salt {value:#x} in `{callee}` is also used at {}:{oline}",
                    analyses[*oa].path
                ),
                hint: rule_info("salt-collision").map_or("", |r| r.fix_hint),
            });
        }
    }

    // --- Repo invariants: route file-anchored findings to their file so
    // suppressions apply; the rest (data-file anchors) become orphans. ---
    let mut orphans: Vec<Finding> = Vec::new();
    if let Some(repo) = repo {
        let impls: Vec<(String, facts::EngineImplSite)> = analyses
            .iter()
            .flat_map(|a| {
                a.facts.engine_impls.iter().map(|e| {
                    (
                        a.path.clone(),
                        facts::EngineImplSite {
                            type_name: e.type_name.clone(),
                            site: e.site,
                        },
                    )
                })
            })
            .collect();
        for f in repo.check(&impls) {
            match analyses.iter().position(|a| a.path == f.file) {
                Some(ai) => extra[ai].push(f),
                None => orphans.push(f),
            }
        }
    }

    // --- Suppression + assembly, per file in input order. ---
    let mut findings: Vec<Finding> = Vec::new();
    let mut suppressed = 0usize;
    for (ai, a) in analyses.iter_mut().enumerate() {
        let mut block: Vec<Finding> = Vec::new();
        for f in a.raw.drain(..).chain(extra[ai].drain(..)) {
            let hit = a
                .allows
                .iter_mut()
                .find(|al| al.target_line == f.line && al.rules.iter().any(|r| r == f.rule));
            match hit {
                Some(al) => {
                    al.used = true;
                    suppressed += 1;
                }
                None => block.push(f),
            }
        }
        block.append(&mut a.meta);
        for al in &a.allows {
            if !al.used {
                block.push(Finding {
                    rule: "unused-allow",
                    file: a.path.clone(),
                    line: al.comment_line,
                    col: al.col,
                    message: format!(
                        "allow({}) suppressed no finding on line {}",
                        al.rules.join(", "),
                        al.target_line
                    ),
                    hint: rule_info("unused-allow").map_or("", |r| r.fix_hint),
                });
            }
        }
        block.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
        findings.append(&mut block);
    }
    orphans.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });
    findings.append(&mut orphans);
    (findings, suppressed)
}

/// Lints one file's source in isolation (no repo invariants; the call
/// graph sees only this file). `path` is the display path, `crate_name`
/// the component after `crates/` ("" for repo-level tests), `testish` the
/// path-level test exemption.
pub fn lint_source(path: &str, src: &str, crate_name: &str, testish: bool) -> FileReport {
    let a = analyze_source(path, src, crate_name, testish);
    let (findings, suppressed) = resolve(vec![a], None);
    FileReport {
        findings,
        suppressed,
    }
}

/// Parses every `rbb-lint:` comment; returns valid allows and malformed-
/// allow findings.
fn parse_allows(ctx: &Ctx) -> (Vec<Allow>, Vec<Finding>) {
    let mut allows = Vec::new();
    let mut meta = Vec::new();
    for (fi, tok) in ctx.toks.iter().enumerate() {
        if tok.kind != TokKind::Comment {
            continue;
        }
        let text = tok.text(ctx.src);
        let Some(at) = text.find("rbb-lint:") else {
            continue;
        };
        let body = text[at + "rbb-lint:".len()..].trim();
        let fail = |msg: String, meta: &mut Vec<Finding>| {
            meta.push(Finding {
                rule: "malformed-allow",
                file: ctx.path.to_string(),
                line: tok.line,
                col: tok.col,
                message: msg,
                hint: rule_info("malformed-allow").map_or("", |r| r.fix_hint),
            });
        };
        let Some(inner) = body
            .strip_prefix("allow(")
            .and_then(|r| r.trim_end().strip_suffix(')'))
        else {
            fail(
                "expected `rbb-lint: allow(rule, reason = \"...\")`".to_string(),
                &mut meta,
            );
            continue;
        };
        let mut rules = Vec::new();
        let mut reason: Option<String> = None;
        let mut bad = false;
        let mut rest = inner.trim();
        while !rest.is_empty() {
            if let Some(r) = rest.strip_prefix("reason") {
                let r = r.trim_start();
                let Some(r) = r.strip_prefix('=') else {
                    fail("expected `=` after `reason`".to_string(), &mut meta);
                    bad = true;
                    break;
                };
                let r = r.trim_start();
                let Some(r) = r.strip_prefix('"') else {
                    fail("reason must be a quoted string".to_string(), &mut meta);
                    bad = true;
                    break;
                };
                let Some(close) = r.find('"') else {
                    fail("unterminated reason string".to_string(), &mut meta);
                    bad = true;
                    break;
                };
                reason = Some(r[..close].to_string());
                rest = r[close + 1..].trim_start().trim_start_matches(',').trim();
            } else {
                let end = rest.find(',').unwrap_or(rest.len());
                let name = rest[..end].trim();
                if rule_info(name).is_none() {
                    fail(format!("unknown rule `{name}`"), &mut meta);
                    bad = true;
                    break;
                }
                if !rule_info(name).is_some_and(|r| r.suppressible()) {
                    fail(format!("rule `{name}` cannot be suppressed"), &mut meta);
                    bad = true;
                    break;
                }
                rules.push(name.to_string());
                rest = rest[end..].trim_start_matches(',').trim();
            }
        }
        if bad {
            continue;
        }
        if rules.is_empty() {
            fail("allow lists no rules".to_string(), &mut meta);
            continue;
        }
        match reason.as_deref() {
            None => {
                fail("allow is missing `reason = \"...\"`".to_string(), &mut meta);
                continue;
            }
            Some("") => {
                fail("allow reason is empty".to_string(), &mut meta);
                continue;
            }
            Some(_) => {}
        }
        // Target: own line if code precedes the comment on it; otherwise the
        // next line that contains code.
        let trailing = ctx.toks[..fi]
            .iter()
            .rev()
            .take_while(|t| t.line == tok.line)
            .any(|t| t.is_code());
        let target_line = if trailing {
            tok.line
        } else {
            ctx.toks[fi + 1..]
                .iter()
                .find(|t| t.is_code())
                .map_or(tok.line, |t| t.line)
        };
        allows.push(Allow {
            rules,
            target_line,
            comment_line: tok.line,
            col: tok.col,
            used: false,
        });
    }
    (allows, meta)
}

fn push(out: &mut Vec<Finding>, ctx: &Ctx, rule: &'static str, tok: &Token, message: String) {
    out.push(Finding {
        rule,
        file: ctx.path.to_string(),
        line: tok.line,
        col: tok.col,
        message,
        hint: rule_info(rule).map_or("", |r| r.fix_hint),
    });
}

/// Counts top-level commas of the balanced `<…>` group opening at code
/// index `lt`. Returns `None` if the group does not close sanely (treated
/// as not-a-generic-argument-list).
fn angle_commas(ctx: &Ctx, lt: usize) -> Option<usize> {
    debug_assert_eq!(ctx.s(lt), "<");
    let mut angle = 1i32;
    let mut inner = 0i32; // parens + brackets
    let mut commas = 0usize;
    let mut i = lt + 1;
    while i < lt + 160 {
        let s = ctx.s(i);
        if s.is_empty() {
            return None;
        }
        match s {
            "<" => angle += 1,
            "<<" => angle += 2,
            ">" => angle -= 1,
            ">>" => angle -= 2,
            "(" | "[" => inner += 1,
            ")" | "]" => inner -= 1,
            "," if angle == 1 && inner == 0 => commas += 1,
            ";" | "{" => return None,
            _ => {}
        }
        if angle <= 0 {
            return Some(commas);
        }
        i += 1;
    }
    None
}

/// R1: std HashMap/HashSet with the default hasher in result crates.
fn rule_det_map(ctx: &Ctx, out: &mut Vec<Finding>) {
    const SCOPE: Scope = Scope {
        all_crates: false,
        include_tests: false,
        exempt: &["crates/core/src/det_hash.rs"],
    };
    let mut in_use = false;
    for i in 0..ctx.code.len() {
        match ctx.s(i) {
            "use" => in_use = true,
            ";" => in_use = false,
            name @ ("HashMap" | "HashSet") => {
                if in_use {
                    continue; // imports are inert; uses are what we police
                }
                let tok = *ctx.t(i).expect("index in range");
                if !ctx.active(&SCOPE, tok.start) {
                    continue;
                }
                let need = if name == "HashMap" { 2 } else { 1 };
                // `Name<...>` directly, or `Name::<...>` turbofish: a hasher
                // type parameter (comma count >= need) is fine.
                let lt = if ctx.s(i + 1) == "<" {
                    Some(i + 1)
                } else if ctx.s(i + 1) == "::" && ctx.s(i + 2) == "<" {
                    Some(i + 2)
                } else {
                    None
                };
                let ok = lt.is_some_and(|l| angle_commas(ctx, l).is_some_and(|c| c >= need));
                if !ok {
                    push(
                        out,
                        ctx,
                        "det-map",
                        &tok,
                        format!("std {name} with the default RandomState hasher"),
                    );
                }
            }
            _ => {}
        }
    }
}

/// Map-ish type names whose iteration order is hash-dependent. `Det*` are
/// reproducible but still arbitrary-order, so they count too.
const MAP_TYPES: &[&str] = &["HashMap", "HashSet", "DetHashMap", "DetHashSet"];

const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
];

/// R2: iteration over hash-ordered collections.
fn rule_unordered_iter(ctx: &Ctx, out: &mut Vec<Finding>) {
    // Pass 1: build the registry of names with map-ish types in this file —
    // local type aliases, then bindings/params/fields.
    let mut map_types: Vec<String> = MAP_TYPES.iter().map(|s| s.to_string()).collect();
    let n = ctx.code.len();
    for i in 0..n {
        if ctx.s(i) == "type" && ctx.kind(i + 1) == Some(TokKind::Ident) && ctx.s(i + 2) == "=" {
            let mut j = i + 3;
            while j < n && ctx.s(j) != ";" {
                if map_types.iter().any(|m| m == ctx.s(j)) {
                    map_types.push(ctx.s(i + 1).to_string());
                    break;
                }
                j += 1;
            }
        }
    }
    let is_map_type = |s: &str| map_types.iter().any(|m| m == s);
    let mut names: Vec<String> = Vec::new();
    let mut register = |name: &str| {
        if !name.is_empty() && !names.iter().any(|n| n == name) {
            names.push(name.to_string());
        }
    };
    for i in 0..n {
        // `name : [& ['a] mut]* MapType` — params, struct fields, let-with-
        // annotation all share this shape.
        if ctx.kind(i) == Some(TokKind::Ident) && ctx.s(i + 1) == ":" {
            let mut j = i + 2;
            while matches!(ctx.s(j), "&" | "mut") || ctx.kind(j) == Some(TokKind::Lifetime) {
                j += 1;
            }
            if is_map_type(ctx.s(j)) {
                register(ctx.s(i));
            }
        }
        // `let [mut] name = MapType…` (type inferred from the constructor).
        if ctx.s(i) == "let" {
            let mut j = i + 1;
            if ctx.s(j) == "mut" {
                j += 1;
            }
            if ctx.kind(j) == Some(TokKind::Ident)
                && ctx.s(j + 1) == "="
                && is_map_type(ctx.s(j + 2))
            {
                register(ctx.s(j));
            }
        }
    }

    // Pass 2: flag `name.iter()`-style calls and `for … in …name…` headers.
    let mut flagged_lines: Vec<u32> = Vec::new();
    let mut emit = |ctx: &Ctx, out: &mut Vec<Finding>, tok: &Token, what: String| {
        if flagged_lines.contains(&tok.line) {
            return; // one finding per line is enough signal
        }
        flagged_lines.push(tok.line);
        push(out, ctx, "unordered-iter", tok, what);
    };
    for i in 0..n {
        let tok = match ctx.t(i) {
            Some(t) => *t,
            None => continue,
        };
        if !ctx.active(&SCOPE_RESULT, tok.start) {
            continue;
        }
        // `name . iter_method (`
        if ctx.kind(i) == Some(TokKind::Ident)
            && names.iter().any(|nm| nm == ctx.s(i))
            && ctx.s(i + 1) == "."
            && ITER_METHODS.contains(&ctx.s(i + 2))
            && ctx.s(i + 3) == "("
            && !is_worklist(ctx, i)
        {
            emit(
                ctx,
                out,
                &tok,
                format!("hash-order iteration: {}.{}()", ctx.s(i), ctx.s(i + 2)),
            );
        }
        // `for pat in header {` with a registered name in the header.
        if ctx.s(i) == "for" && ctx.s(i + 1) != "<" {
            let mut depth = 0i32;
            let mut j = i + 1;
            let mut in_at = None;
            while j < n && j < i + 50 {
                match ctx.s(j) {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "in" if depth == 0 => {
                        in_at = Some(j);
                        break;
                    }
                    "{" | ";" => break,
                    _ => {}
                }
                j += 1;
            }
            if let Some(start) = in_at {
                let mut j = start + 1;
                let mut depth = 0i32;
                while j < n && j < start + 80 {
                    match ctx.s(j) {
                        "(" | "[" => depth += 1,
                        ")" | "]" => depth -= 1,
                        "{" if depth == 0 => break,
                        ";" => break,
                        s if ctx.kind(j) == Some(TokKind::Ident)
                            && names.iter().any(|nm| nm == s)
                            && !is_worklist(ctx, j) =>
                        {
                            let ft = *ctx.t(j).expect("index in range");
                            emit(ctx, out, &ft, format!("hash-order iteration over `{s}`"));
                            break;
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
        }
    }
}

/// The sanctioned worklist pattern: the iteration is collected and sorted
/// before use, making the hash order immaterial. Heuristic: a `collect`
/// within the same statement and a `sort*` call within the next three
/// lines.
fn is_worklist(ctx: &Ctx, at: usize) -> bool {
    let line = ctx.t(at).map_or(0, |t| t.line);
    let mut has_collect = false;
    let mut j = at;
    while j < at + 60 {
        match ctx.s(j) {
            "" | ";" => break,
            "collect" => {
                has_collect = true;
                break;
            }
            _ => j += 1,
        }
    }
    if !has_collect {
        return false;
    }
    let mut k = j;
    while let Some(t) = ctx.t(k) {
        if t.line > line + 3 {
            break;
        }
        if ctx.s(k).starts_with("sort") {
            return true;
        }
        k += 1;
    }
    false
}

/// R3: entropy-based seeding, anywhere (tests included).
fn rule_rng_entropy(ctx: &Ctx, out: &mut Vec<Finding>) {
    const SCOPE: Scope = Scope {
        all_crates: true,
        include_tests: true,
        exempt: &[],
    };
    const BANNED: &[&str] = &[
        "from_entropy",
        "try_from_entropy",
        "thread_rng",
        "ThreadRng",
        "OsRng",
        "getrandom",
    ];
    for i in 0..ctx.code.len() {
        let tok = match ctx.t(i) {
            Some(t) => *t,
            None => continue,
        };
        if !ctx.active(&SCOPE, tok.start) || ctx.kind(i) != Some(TokKind::Ident) {
            continue;
        }
        let s = ctx.s(i);
        if BANNED.contains(&s) {
            push(
                out,
                ctx,
                "rng-entropy",
                &tok,
                format!("entropy source `{s}`"),
            );
        } else if s == "rand" && ctx.s(i + 1) == "::" && ctx.s(i + 2) == "random" {
            push(
                out,
                ctx,
                "rng-entropy",
                &tok,
                "entropy source `rand::random`".to_string(),
            );
        }
    }
}

/// R3b: RNG construction outside the sanctioned sites.
fn rule_rng_construct(ctx: &Ctx, out: &mut Vec<Finding>) {
    const SCOPE: Scope = Scope {
        all_crates: false,
        include_tests: false,
        exempt: &["crates/core/src/rng.rs", "crates/sim/src/seed.rs"],
    };
    const CTORS: &[(&str, &[&str])] = &[
        (
            "Xoshiro256pp",
            &[
                "seed_from",
                "from_seed",
                "seed_from_u64",
                "stream",
                "from_state",
            ],
        ),
        ("SplitMix64", &["new"]),
    ];
    for i in 0..ctx.code.len() {
        let tok = match ctx.t(i) {
            Some(t) => *t,
            None => continue,
        };
        if !ctx.active(&SCOPE, tok.start) {
            continue;
        }
        for (ty, ctors) in CTORS {
            if ctx.s(i) == *ty && ctx.s(i + 1) == "::" && ctors.contains(&ctx.s(i + 2)) {
                push(
                    out,
                    ctx,
                    "rng-construct",
                    &tok,
                    format!("RNG constructed via {}::{}", ty, ctx.s(i + 2)),
                );
            }
        }
    }
}

/// R4a: `(… 1.0 - x …).ln()`-style complement feeding a log/power.
fn rule_ln_complement(ctx: &Ctx, out: &mut Vec<Finding>) {
    const SINKS: &[&str] = &["ln", "log", "log2", "log10", "powf"];
    for i in 2..ctx.code.len() {
        if !(ctx.s(i) == "."
            && ctx.kind(i + 1) == Some(TokKind::Ident)
            && SINKS.contains(&ctx.s(i + 1))
            && ctx.s(i + 2) == "("
            && ctx.s(i - 1) == ")")
        {
            continue;
        }
        let tok = match ctx.t(i + 1) {
            Some(t) => *t,
            None => continue,
        };
        if !ctx.active(&SCOPE_RESULT, tok.start) {
            continue;
        }
        // Walk back to the `(` matching the receiver's `)`.
        let close = i - 1;
        let mut depth = 0i32;
        let mut open = None;
        let mut j = close;
        loop {
            match ctx.s(j) {
                ")" => depth += 1,
                "(" => {
                    depth -= 1;
                    if depth == 0 {
                        open = Some(j);
                        break;
                    }
                }
                _ => {}
            }
            if j == 0 {
                break;
            }
            j -= 1;
        }
        let Some(open) = open else { continue };
        // Inside the group, at its top level: literal one followed by `-`.
        let mut depth = 0i32;
        for k in open + 1..close {
            match ctx.s(k) {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                one @ ("1.0" | "1." | "1" | "1f64" | "1.0f64")
                    if depth == 0 && ctx.s(k + 1) == "-" =>
                {
                    push(
                        out,
                        ctx,
                        "ln-complement",
                        &tok,
                        format!(
                            "({one} - …).{}() loses precision for small arguments",
                            ctx.s(i + 1)
                        ),
                    );
                    break;
                }
                _ => {}
            }
        }
    }
}

/// R4b: `1.0 - …exp()…` complement.
fn rule_exp_complement(ctx: &Ctx, out: &mut Vec<Finding>) {
    for i in 0..ctx.code.len() {
        let one = ctx.s(i);
        if !matches!(one, "1.0" | "1." | "1" | "1f64" | "1.0f64") || ctx.s(i + 1) != "-" {
            continue;
        }
        let tok = match ctx.t(i) {
            Some(t) => *t,
            None => continue,
        };
        if !ctx.active(&SCOPE_RESULT, tok.start) {
            continue;
        }
        let mut depth = 0i32;
        let mut j = i + 2;
        while j < i + 40 {
            match ctx.s(j) {
                "" | ";" | "{" => break,
                "(" | "[" => depth += 1,
                ")" | "]" => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                }
                "," if depth == 0 => break,
                "." if depth == 0 && ctx.s(j + 1) == "exp" && ctx.s(j + 2) == "(" => {
                    push(
                        out,
                        ctx,
                        "exp-complement",
                        &tok,
                        format!("{one} - exp(…) cancels catastrophically near 0"),
                    );
                    break;
                }
                _ => {}
            }
            j += 1;
        }
    }
}

/// R4c: truncating casts to narrow unsigned types.
fn rule_lossy_cast(ctx: &Ctx, out: &mut Vec<Finding>) {
    for i in 0..ctx.code.len() {
        if ctx.s(i) != "as" || !matches!(ctx.s(i + 1), "u32" | "u16" | "u8") {
            continue;
        }
        let tok = match ctx.t(i) {
            Some(t) => *t,
            None => continue,
        };
        if !ctx.active(&SCOPE_RESULT, tok.start) {
            continue;
        }
        push(
            out,
            ctx,
            "lossy-cast",
            &tok,
            format!("truncating cast `as {}`", ctx.s(i + 1)),
        );
    }
}

/// R5: panic policy for result crates.
fn rule_panic(ctx: &Ctx, out: &mut Vec<Finding>) {
    const MACROS: &[&str] = &["panic", "todo", "unimplemented", "unreachable"];
    for i in 0..ctx.code.len() {
        let tok = match ctx.t(i) {
            Some(t) => *t,
            None => continue,
        };
        if !ctx.active(&SCOPE_RESULT, tok.start) {
            continue;
        }
        let s = ctx.s(i);
        if matches!(s, "unwrap" | "expect")
            && i >= 1
            && ctx.s(i.wrapping_sub(1)) == "."
            && ctx.s(i + 1) == "("
        {
            let ft = *ctx.t(i).expect("index in range");
            push(out, ctx, "panic", &ft, format!(".{s}() in non-test code"));
        } else if MACROS.contains(&s) && ctx.s(i + 1) == "!" {
            push(out, ctx, "panic", &tok, format!("{s}! in non-test code"));
        }
    }
}

/// R6 (v2): pub fns with an RNG parameter must document their stream
/// contract. Structure-based successor of PR 6's token-level `rng-doc` —
/// the signature facts come from the structurizer, so `fn` pointer types,
/// generic bounds, and attribute noise no longer confuse the match.
fn rule_undocumented_stream(ctx: &Ctx, root: &structure::Node, out: &mut Vec<Finding>) {
    let mut stack: Vec<&structure::Node> = vec![root];
    while let Some(node) = stack.pop() {
        stack.extend(node.children.iter());
        let NodeKind::Fn(sig) = &node.kind else {
            continue;
        };
        if !(sig.is_pub && sig.takes_rng && !sig.has_stream_doc) {
            continue;
        }
        let Some(&fi) = ctx.code.get(node.start) else {
            continue;
        };
        let tok = ctx.toks[fi];
        if !ctx.active(&SCOPE_RESULT, tok.start) {
            continue;
        }
        push(
            out,
            ctx,
            "undocumented-stream",
            &tok,
            format!(
                "pub fn `{}` takes an RNG but has no `# RNG stream` doc section",
                sig.name
            ),
        );
    }
}

/// R7: NaN-unsafe float comparison.
fn rule_partial_cmp(ctx: &Ctx, out: &mut Vec<Finding>) {
    for i in 0..ctx.code.len() {
        if ctx.s(i) != "partial_cmp" {
            continue;
        }
        let tok = match ctx.t(i) {
            Some(t) => *t,
            None => continue,
        };
        if !ctx.active(&SCOPE_RESULT, tok.start) {
            continue;
        }
        push(
            out,
            ctx,
            "partial-cmp",
            &tok,
            "partial_cmp on floats (panics or misorders on NaN)".to_string(),
        );
    }
}

/// R8: wall-clock reads.
fn rule_wall_clock(ctx: &Ctx, out: &mut Vec<Finding>) {
    for i in 0..ctx.code.len() {
        if !matches!(ctx.s(i), "Instant" | "SystemTime")
            || ctx.s(i + 1) != "::"
            || ctx.s(i + 2) != "now"
        {
            continue;
        }
        let tok = match ctx.t(i) {
            Some(t) => *t,
            None => continue,
        };
        if !ctx.active(&SCOPE_RESULT, tok.start) {
            continue;
        }
        push(
            out,
            ctx,
            "wall-clock",
            &tok,
            format!("{}::now() in result-affecting code", ctx.s(i)),
        );
    }
}

/// R9: environment reads.
fn rule_env_read(ctx: &Ctx, out: &mut Vec<Finding>) {
    for i in 0..ctx.code.len() {
        if ctx.s(i) != "env" || ctx.s(i + 1) != "::" {
            continue;
        }
        if !matches!(ctx.s(i + 2), "var" | "var_os" | "vars" | "vars_os") {
            continue;
        }
        let tok = match ctx.t(i) {
            Some(t) => *t,
            None => continue,
        };
        if !ctx.active(&SCOPE_RESULT, tok.start) {
            continue;
        }
        push(
            out,
            ctx,
            "env-read",
            &tok,
            format!("env::{}() in result-affecting code", ctx.s(i + 2)),
        );
    }
}
