//! A hand-rolled, span-preserving Rust lexer.
//!
//! `rbb-lint` deliberately stops at the token level: a full parser (or a
//! `rustc` driver) would be far more code, a nightly toolchain dependency,
//! or both — and every rule the repo needs can be phrased over a token
//! stream as long as that stream is *exactly* right about what is code and
//! what is a comment, string, raw string, char, or lifetime. Getting those
//! five right is the entire job of this module; the classic failure mode of
//! grep-based lint scripts (flagging `unwrap` inside a doc example or a
//! string literal) is impossible here because doc comments and literals are
//! their own token kinds.
//!
//! Invariants (pinned by `tests/lexer_roundtrip.rs` over every `.rs` file
//! in the workspace, plus a generative property test):
//!
//! * tokens are non-overlapping, strictly increasing byte ranges;
//! * every byte outside a token is ASCII whitespace;
//! * concatenating gap bytes and token texts reproduces the input exactly.
//!
//! The lexer never fails: unterminated literals or stray bytes degrade to a
//! best-effort token that still satisfies the invariants above (a linter
//! must keep scanning a broken file, not abort the run).

/// What a token is. Comments are real tokens (so suppression annotations
/// and doc sections can be inspected); rules that match code patterns skip
/// them via [`Token::is_code`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including `r#raw` identifiers).
    Ident,
    /// Lifetime or loop label (`'a`, `'static`).
    Lifetime,
    /// Integer or float literal, with suffix if any.
    Number,
    /// String literal: `"…"`, `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`.
    Str,
    /// Char or byte literal: `'x'`, `b'\n'`.
    Char,
    /// Punctuation, longest-match (`::`, `->`, `..=`, `>>`, …).
    Punct,
    /// Non-doc comment (`// …`, `/* … */`).
    Comment,
    /// Doc comment (`/// …`, `//! …`, `/** … */`, `/*! … */`).
    DocComment,
}

/// One lexed token: kind plus byte span and 1-based position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Token kind.
    pub kind: TokKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line of the first byte.
    pub line: u32,
    /// 1-based column (in bytes) of the first byte.
    pub col: u32,
}

impl Token {
    /// The token's text within `src`.
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        &src[self.start..self.end]
    }

    /// Whether rules should pattern-match this token (not a comment).
    pub fn is_code(&self) -> bool {
        !matches!(self.kind, TokKind::Comment | TokKind::DocComment)
    }
}

/// Multi-byte punctuation, longest first so maximal munch is a prefix scan.
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "..",
];

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src` into tokens. Infallible; see the module docs.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        line_start: 0,
        out: Vec::new(),
    }
    .run()
}

struct Lexer<'s> {
    src: &'s [u8],
    pos: usize,
    line: u32,
    line_start: usize,
    out: Vec<Token>,
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Token> {
        // A leading shebang (`#!/usr/bin/env …`) is stripped by rustc before
        // lexing; treat it as a comment so its payload (which may contain
        // unbalanced quotes) cannot derail the rest of the file. `#![…]` at
        // the top of a file is an inner attribute, not a shebang.
        if self.src.starts_with(b"#!") && self.src.get(2) != Some(&b'[') {
            while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
                self.pos += 1;
            }
            self.emit(TokKind::Comment, 0);
        }
        while self.pos < self.src.len() {
            let b = self.src[self.pos];
            match b {
                b'\n' => {
                    self.pos += 1;
                    self.line += 1;
                    self.line_start = self.pos;
                }
                _ if b.is_ascii_whitespace() => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(self.pos),
                b'\'' => self.char_or_lifetime(),
                _ if b.is_ascii_digit() => self.number(),
                _ if is_ident_start(b) => self.ident_or_prefixed_literal(),
                _ => self.punct(),
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn emit(&mut self, kind: TokKind, start: usize) {
        let col = (start - self.line_start) as u32 + 1;
        self.out.push(Token {
            kind,
            start,
            end: self.pos,
            line: self.line,
            col,
        });
    }

    /// Emit with a line/col captured before a possibly multi-line token.
    fn emit_at(&mut self, kind: TokKind, start: usize, line: u32, col: u32) {
        self.out.push(Token {
            kind,
            start,
            end: self.pos,
            line,
            col,
        });
    }

    fn advance_line_state(&mut self, from: usize) {
        for i in from..self.pos {
            if self.src[i] == b'\n' {
                self.line += 1;
                self.line_start = i + 1;
            }
        }
    }

    fn line_comment(&mut self) {
        let start = self.pos;
        while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
            self.pos += 1;
        }
        let text = &self.src[start..self.pos];
        // `////…` is a plain comment by rustdoc's rules; `///` and `//!` doc.
        let doc =
            (text.starts_with(b"///") && !text.starts_with(b"////")) || text.starts_with(b"//!");
        let kind = if doc {
            TokKind::DocComment
        } else {
            TokKind::Comment
        };
        self.emit(kind, start);
    }

    fn block_comment(&mut self) {
        let start = self.pos;
        let (line, col) = (self.line, (start - self.line_start) as u32 + 1);
        let text_start = self.pos;
        self.pos += 2;
        let mut depth = 1usize;
        while self.pos < self.src.len() && depth > 0 {
            if self.src[self.pos..].starts_with(b"/*") {
                depth += 1;
                self.pos += 2;
            } else if self.src[self.pos..].starts_with(b"*/") {
                depth -= 1;
                self.pos += 2;
            } else {
                self.pos += 1;
            }
        }
        self.advance_line_state(text_start);
        let text = &self.src[start..self.pos];
        let doc = (text.starts_with(b"/**") && !text.starts_with(b"/***") && text.len() > 4)
            || text.starts_with(b"/*!");
        let kind = if doc {
            TokKind::DocComment
        } else {
            TokKind::Comment
        };
        self.emit_at(kind, start, line, col);
    }

    /// A `"…"` string starting at `start` (the quote may be preceded by a
    /// prefix the caller already consumed; `start` points at the prefix).
    fn string(&mut self, start: usize) {
        let (line, col) = (self.line, (start - self.line_start) as u32 + 1);
        debug_assert_eq!(self.src[self.pos], b'"');
        self.pos += 1;
        while self.pos < self.src.len() {
            match self.src[self.pos] {
                b'\\' => self.pos = (self.pos + 2).min(self.src.len()),
                b'"' => {
                    self.pos += 1;
                    break;
                }
                _ => self.pos += 1,
            }
        }
        self.advance_line_state(start);
        self.emit_at(TokKind::Str, start, line, col);
    }

    /// A raw string `r##"…"##` whose `r`/`br` prefix begins at `start`;
    /// `self.pos` points at the first `#` or the quote.
    fn raw_string(&mut self, start: usize) {
        let (line, col) = (self.line, (start - self.line_start) as u32 + 1);
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.pos += 1;
        }
        if self.peek(0) == Some(b'"') {
            self.pos += 1;
            loop {
                match self.peek(0) {
                    None => break,
                    Some(b'"') => {
                        let tail = &self.src[self.pos + 1..];
                        if tail.len() >= hashes && tail[..hashes].iter().all(|&c| c == b'#') {
                            self.pos += 1 + hashes;
                            break;
                        }
                        self.pos += 1;
                    }
                    Some(_) => self.pos += 1,
                }
            }
        }
        self.advance_line_state(start);
        self.emit_at(TokKind::Str, start, line, col);
    }

    fn char_or_lifetime(&mut self) {
        let start = self.pos;
        self.pos += 1; // the opening quote
        match self.peek(0) {
            Some(b'\\') => {
                // Escaped char literal: skip escape, then scan to the close
                // (handles \u{…} and friends).
                self.pos += 2;
                while self.pos < self.src.len() && self.src[self.pos] != b'\'' {
                    self.pos += 1;
                }
                self.pos = (self.pos + 1).min(self.src.len());
                self.emit(TokKind::Char, start);
            }
            Some(b) if is_ident_start(b) => {
                // `'a'` (char) vs `'a` / `'static` (lifetime): consume the
                // ident run, then look for a closing quote.
                let mut j = self.pos;
                while j < self.src.len() && is_ident_continue(self.src[j]) {
                    j += 1;
                }
                if self.src.get(j) == Some(&b'\'') && j == self.pos + 1 {
                    self.pos = j + 1;
                    self.emit(TokKind::Char, start);
                } else {
                    self.pos = j;
                    self.emit(TokKind::Lifetime, start);
                }
            }
            Some(_) => {
                // Non-ident char literal: `'('`, `' '`, `'.'`.
                self.pos += 1;
                if self.peek(0) == Some(b'\'') {
                    self.pos += 1;
                }
                self.emit(TokKind::Char, start);
            }
            None => self.emit(TokKind::Punct, start),
        }
    }

    fn number(&mut self) {
        let start = self.pos;
        if self.src[self.pos..].starts_with(b"0x")
            || self.src[self.pos..].starts_with(b"0o")
            || self.src[self.pos..].starts_with(b"0b")
        {
            self.pos += 2;
            while self
                .peek(0)
                .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
            {
                self.pos += 1;
            }
            self.emit(TokKind::Number, start);
            return;
        }
        let digits = |lx: &mut Self| {
            while lx.peek(0).is_some_and(|b| b.is_ascii_digit() || b == b'_') {
                lx.pos += 1;
            }
        };
        digits(self);
        // Fractional part — but not `1..n` (range) or `1.method()`.
        if self.peek(0) == Some(b'.')
            && self.peek(1) != Some(b'.')
            && !self.peek(1).is_some_and(is_ident_start)
        {
            self.pos += 1;
            digits(self);
        }
        // Exponent.
        if matches!(self.peek(0), Some(b'e' | b'E'))
            && (self.peek(1).is_some_and(|b| b.is_ascii_digit())
                || (matches!(self.peek(1), Some(b'+' | b'-'))
                    && self.peek(2).is_some_and(|b| b.is_ascii_digit())))
        {
            self.pos += 2;
            digits(self);
        }
        // Type suffix (`u32`, `f64`, `usize`).
        while self.peek(0).is_some_and(is_ident_continue) {
            self.pos += 1;
        }
        self.emit(TokKind::Number, start);
    }

    fn ident_or_prefixed_literal(&mut self) {
        let start = self.pos;
        while self.peek(0).is_some_and(is_ident_continue) {
            self.pos += 1;
        }
        let text = &self.src[start..self.pos];
        match (text, self.peek(0)) {
            // Raw identifier `r#name` (but not a raw string `r#"…"`).
            (b"r", Some(b'#')) if self.peek(1).is_some_and(is_ident_start) => {
                self.pos += 1;
                while self.peek(0).is_some_and(is_ident_continue) {
                    self.pos += 1;
                }
                self.emit(TokKind::Ident, start);
            }
            (b"r" | b"br" | b"rb" | b"cr", Some(b'"' | b'#')) => self.raw_string(start),
            // C-string literals (Rust 1.77+): `c"…"` and, above, `cr#"…"#`.
            (b"b" | b"c", Some(b'"')) => self.string(start),
            (b"b", Some(b'\'')) => {
                // Byte char literal `b'x'` / `b'\n'`.
                self.pos += 1;
                if self.peek(0) == Some(b'\\') {
                    self.pos += 2;
                    while self.pos < self.src.len() && self.src[self.pos] != b'\'' {
                        self.pos += 1;
                    }
                    self.pos = (self.pos + 1).min(self.src.len());
                } else {
                    // One full character (broken files may hold a multibyte
                    // char here; stay on a char boundary), then the close.
                    self.pos = (self.pos + 1).min(self.src.len());
                    while self.peek(0).is_some_and(|b| (0x80..0xC0).contains(&b)) {
                        self.pos += 1;
                    }
                    if self.peek(0) == Some(b'\'') {
                        self.pos += 1;
                    }
                }
                self.emit(TokKind::Char, start);
            }
            _ => self.emit(TokKind::Ident, start),
        }
    }

    fn punct(&mut self) {
        let start = self.pos;
        let rest = &self.src[self.pos..];
        for p in PUNCTS {
            if rest.starts_with(p.as_bytes()) {
                self.pos += p.len();
                self.emit(TokKind::Punct, start);
                return;
            }
        }
        // Single byte (possibly a stray non-ASCII byte; UTF-8 continuation
        // bytes are >= 0x80 and classified as ident, so this is ASCII).
        self.pos += 1;
        self.emit(TokKind::Punct, start);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn strings_and_comments_are_not_code() {
        let src = r##"let s = "a.unwrap() // not code"; // real comment
let r = r#"panic!("x")"#; /* block /* nested */ done */"##;
        let toks = kinds(src);
        let idents: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Ident)
            .map(|(_, s)| s.as_str())
            .collect();
        assert_eq!(idents, ["let", "s", "let", "r"]);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Str).count(), 2);
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokKind::Comment).count(),
            2
        );
    }

    #[test]
    fn doc_comments_are_distinguished() {
        let src = "/// doc\n//! inner\n//// plain\n// plain\nfn f() {}\n";
        let toks = lex(src);
        let docs = toks
            .iter()
            .filter(|t| t.kind == TokKind::DocComment)
            .count();
        let plains = toks.iter().filter(|t| t.kind == TokKind::Comment).count();
        assert_eq!(docs, 2);
        assert_eq!(plains, 2);
    }

    #[test]
    fn lifetimes_vs_chars() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; let p = '('; }";
        let toks = kinds(src);
        let lifes = toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).count();
        let chars = toks.iter().filter(|(k, _)| *k == TokKind::Char).count();
        assert_eq!(lifes, 2);
        assert_eq!(chars, 3);
    }

    #[test]
    fn numbers_with_suffixes_ranges_and_floats() {
        let src = "let a = 1.0f64; let b = 0x_FF; let c = 1..n; let d = 2.5e-3; let e = 1_000u32;";
        let nums: Vec<String> = kinds(src)
            .into_iter()
            .filter(|(k, _)| *k == TokKind::Number)
            .map(|(_, s)| s)
            .collect();
        assert_eq!(nums, ["1.0f64", "0x_FF", "1", "2.5e-3", "1_000u32"]);
    }

    #[test]
    fn maximal_munch_puncts() {
        let src = "a::b->c >>= d .. e ..= f >> g";
        let puncts: Vec<String> = kinds(src)
            .into_iter()
            .filter(|(k, _)| *k == TokKind::Punct)
            .map(|(_, s)| s)
            .collect();
        assert_eq!(puncts, ["::", "->", ">>=", "..", "..=", ">>"]);
    }

    #[test]
    fn roundtrip_reconstruction() {
        let src = "/// doc\nfn main() { let s = r#\"x\"#; // c\n  let y = 'a'; }\n";
        let toks = lex(src);
        let mut rebuilt = String::new();
        let mut prev = 0usize;
        for t in &toks {
            assert!(t.start >= prev, "overlap");
            assert!(src[prev..t.start].bytes().all(|b| b.is_ascii_whitespace()));
            rebuilt.push_str(&src[prev..t.start]);
            rebuilt.push_str(t.text(src));
            prev = t.end;
        }
        rebuilt.push_str(&src[prev..]);
        assert_eq!(rebuilt, src);
    }

    #[test]
    fn raw_identifiers() {
        let src = "let r#type = 1; let rb = r\"raw\";";
        let toks = kinds(src);
        assert!(toks.contains(&(TokKind::Ident, "r#type".to_string())));
        assert!(toks.contains(&(TokKind::Str, "r\"raw\"".to_string())));
    }

    #[test]
    fn c_string_literals_are_strings() {
        let src = r###"let a = c"from_entropy() not code"; let b = cr#"panic!("x")"#; let c = cr"plain";"###;
        let toks = kinds(src);
        let strs: Vec<String> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Str)
            .map(|(_, s)| s.clone())
            .collect();
        assert_eq!(strs.len(), 3, "c-string prefixes must lex as Str: {toks:?}");
        assert!(strs[0].starts_with("c\""));
        assert!(strs[1].starts_with("cr#\""));
        assert!(strs[2].starts_with("cr\""));
        // No spurious identifiers from inside the literals.
        assert!(!toks
            .iter()
            .any(|(k, s)| *k == TokKind::Ident && s == "from_entropy"));
    }

    #[test]
    fn leading_shebang_is_a_comment() {
        let src = "#!/usr/bin/env -S cargo +'nightly' \"q\nfn main() { let x = 1; }\n";
        let toks = lex(src);
        assert_eq!(toks[0].kind, TokKind::Comment);
        assert_eq!(toks[0].text(src), "#!/usr/bin/env -S cargo +'nightly' \"q");
        let idents: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text(src))
            .collect();
        assert_eq!(idents, ["fn", "main", "let", "x"]);
        // `#![…]` at file start is an inner attribute, not a shebang.
        let attr = "#![forbid(unsafe_code)]\nfn f() {}\n";
        let toks = lex(attr);
        assert_eq!(toks[0].kind, TokKind::Punct);
        assert_eq!(toks[0].text(attr), "#");
    }

    #[test]
    fn unterminated_literals_do_not_panic() {
        for src in ["let s = \"abc", "let s = r#\"abc", "let c = '", "/* open"] {
            let toks = lex(src);
            assert!(!toks.is_empty());
            assert!(toks.iter().all(|t| t.end <= src.len()));
        }
    }
}
