//! Golden-output tests for the `rbb-lint` binary: exact text and JSON
//! renderings over a committed miniature workspace, plus exit-code and
//! `--list-rules` / `--self-check` contracts.
//!
//! Regenerate the goldens after an intentional output change with
//! `UPDATE_GOLDEN=1 cargo test -p rbb-lint --test golden_output`.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

use rbb_lint::RULES;

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden")
}

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_rbb-lint"))
        .args(args)
        .output()
        .expect("spawn rbb-lint")
}

fn check_golden(name: &str, got: &str) {
    let path = golden_dir().join(name);
    // Sanctioned env read: a test-harness regeneration switch, mirroring
    // the golden_specs.rs convention (clippy.toml bans the rest).
    #[allow(clippy::disallowed_methods)]
    let update = std::env::var_os("UPDATE_GOLDEN").is_some();
    if update {
        std::fs::write(&path, got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {path:?} ({e}); run with UPDATE_GOLDEN=1"));
    assert_eq!(
        got, want,
        "output drifted from {path:?}; rerun with UPDATE_GOLDEN=1 if intentional"
    );
}

#[test]
fn text_output_matches_golden_and_exits_1() {
    let root = golden_dir().join("root");
    let out = run(&["--root", root.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "violations must exit 1");
    check_golden("expected.txt", &String::from_utf8(out.stdout).unwrap());
}

#[test]
fn json_output_matches_golden_and_exits_1() {
    let root = golden_dir().join("root");
    let out = run(&["--root", root.to_str().unwrap(), "--format", "json"]);
    assert_eq!(out.status.code(), Some(1), "violations must exit 1");
    check_golden("expected.json", &String::from_utf8(out.stdout).unwrap());
}

#[test]
fn clean_root_exits_0() {
    let root = golden_dir().join("clean_root");
    let out = run(&["--root", root.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("clean"), "stdout: {stdout}");
    assert!(stdout.contains("0 findings"), "stdout: {stdout}");
}

#[test]
fn list_rules_covers_every_rule() {
    let out = run(&["--list-rules"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).unwrap();
    for rule in RULES {
        assert!(
            stdout.contains(rule.id),
            "--list-rules is missing `{}`",
            rule.id
        );
        assert!(
            stdout.contains(rule.family().label()),
            "--list-rules is missing family `{}`",
            rule.family().label()
        );
    }
    check_golden("list_rules.txt", &stdout);
}

#[test]
fn no_repo_still_reports_file_rules() {
    let root = golden_dir().join("root");
    let out = run(&["--root", root.to_str().unwrap(), "--no-repo"]);
    assert_eq!(
        out.status.code(),
        Some(1),
        "file-rule violations still exit 1"
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("rng-in-par"), "stdout: {stdout}");
}

#[test]
fn self_check_exits_0() {
    let out = run(&["--self-check"]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn unknown_flag_exits_2() {
    let out = run(&["--frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
}
