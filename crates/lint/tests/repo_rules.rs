//! Repo-invariant (`--repo` family) rules over committed mini-root trees
//! under `tests/fixtures/repo/<rule>/{hit,clean}/`: each hit tree skews
//! exactly one artifact pair, each clean tree keeps it in sync. These
//! rules compare files across the workspace, so the single-file fixture
//! corpus in `fixtures.rs` cannot cover them.

use std::path::{Path, PathBuf};

use rbb_lint::{lint_root, lint_root_opts, Finding};

fn repo_root(rule: &str, case: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/repo")
        .join(rule)
        .join(case)
}

fn findings(rule: &str, case: &str) -> Vec<Finding> {
    let (findings, _) = lint_root(&repo_root(rule, case)).expect("lint mini-root");
    findings
}

fn assert_only(rule: &str, got: &[Finding]) {
    assert!(
        got.iter().all(|f| f.rule == rule),
        "expected only `{rule}` findings, got {:?}",
        got.iter()
            .map(|f| (f.rule, f.file.as_str()))
            .collect::<Vec<_>>()
    );
}

#[test]
fn spec_golden_fires_both_directions_and_stays_quiet_in_sync() {
    let hit = findings("spec-golden", "hit");
    assert_only("spec-golden", &hit);
    let files: Vec<&str> = hit.iter().map(|f| f.file.as_str()).collect();
    assert!(
        files.contains(&"specs/alpha.json"),
        "spec without golden must be flagged at the spec: {files:?}"
    );
    assert!(
        files.contains(&"crates/cli/tests/golden/beta.stdout"),
        "orphan golden must be flagged at the golden: {files:?}"
    );
    assert!(findings("spec-golden", "clean").is_empty());
}

#[test]
fn experiment_doc_fires_per_missing_id_and_stays_quiet_when_documented() {
    let hit = findings("experiment-doc", "hit");
    assert_only("experiment-doc", &hit);
    assert_eq!(hit.len(), 1, "only e02 is undocumented: {hit:?}");
    assert!(hit[0].message.contains("e02"));
    assert_eq!(hit[0].file, "crates/experiments/src/lib.rs");
    assert!(findings("experiment-doc", "clean").is_empty());
}

#[test]
fn engine_proptest_fires_at_the_impl_site_and_stays_quiet_when_listed() {
    let hit = findings("engine-proptest", "hit");
    assert_only("engine-proptest", &hit);
    assert_eq!(hit.len(), 1, "{hit:?}");
    assert_eq!(hit[0].file, "crates/core/src/engine.rs");
    assert!(hit[0].message.contains("FooProcess"));
    assert!(findings("engine-proptest", "clean").is_empty());
}

#[test]
fn engine_proptest_findings_route_through_suppression() {
    // The finding anchors in a linted .rs file, so a reasoned allow on the
    // impl line suppresses it like any code-anchored finding.
    let (findings, stats) =
        lint_root(&repo_root("engine-proptest", "suppressed")).expect("lint mini-root");
    assert!(
        findings.is_empty(),
        "allow on the impl line must suppress: {findings:?}"
    );
    assert_eq!(stats.suppressed, 1);
}

#[test]
fn bench_schema_fires_on_skew_and_stays_quiet_on_match() {
    let hit = findings("bench-schema", "hit");
    assert_only("bench-schema", &hit);
    assert_eq!(hit.len(), 1, "{hit:?}");
    assert_eq!(hit[0].file, "crates/bench/src/lib.rs");
    assert!(findings("bench-schema", "clean").is_empty());
}

#[test]
fn no_repo_flag_disables_the_family() {
    for rule in [
        "spec-golden",
        "experiment-doc",
        "engine-proptest",
        "bench-schema",
    ] {
        let (findings, _) = lint_root_opts(&repo_root(rule, "hit"), false).expect("lint mini-root");
        assert!(
            findings.is_empty(),
            "`{rule}` hit tree must be quiet without repo checks: {findings:?}"
        );
    }
}
