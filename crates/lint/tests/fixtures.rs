//! Fixture-corpus tests: every rule has a hit, a clean, and (for the
//! suppressible rules) a suppressed fixture under `tests/fixtures/<rule>/`,
//! plus false-positive cases proving the lexer keeps rules out of strings,
//! comments, macros, and raw strings.

use std::fs;
use std::path::{Path, PathBuf};

use rbb_lint::{lint_source, FileReport, RuleFamily, RULES};

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Lints a fixture as non-test code in crate `core`, the strictest scope.
fn lint_fixture(path: &Path) -> FileReport {
    let src = fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path:?}: {e}"));
    let rel = format!(
        "crates/core/src/fixture_{}.rs",
        path.file_stem().unwrap().to_str().unwrap()
    );
    lint_source(&rel, &src, "core", false)
}

/// Meta rules police the suppression machinery itself and therefore cannot
/// be suppressed; they have no `suppressed.rs` fixture.
const META_RULES: &[&str] = &["malformed-allow", "unused-allow"];

/// Repo-family rules compare cross-file artifacts, so a single-file
/// fixture cannot exercise them; they have mini-root trees under
/// `tests/fixtures/repo/` driven by `tests/repo_rules.rs` instead.
fn is_repo_rule(id: &str) -> bool {
    RULES
        .iter()
        .any(|r| r.id == id && r.family() == RuleFamily::Repo)
}

#[test]
fn every_rule_has_a_firing_hit_fixture() {
    for rule in RULES {
        if is_repo_rule(rule.id) {
            continue;
        }
        let path = fixtures_dir().join(rule.id).join("hit.rs");
        assert!(path.is_file(), "missing fixture {path:?}");
        let report = lint_fixture(&path);
        assert!(
            report.findings.iter().any(|f| f.rule == rule.id),
            "rule `{}` did not fire on its hit fixture (got: {:?})",
            rule.id,
            report.findings.iter().map(|f| f.rule).collect::<Vec<_>>()
        );
    }
}

#[test]
fn every_rule_has_a_silent_clean_fixture() {
    for rule in RULES {
        if is_repo_rule(rule.id) {
            continue;
        }
        let path = fixtures_dir().join(rule.id).join("clean.rs");
        assert!(path.is_file(), "missing fixture {path:?}");
        let report = lint_fixture(&path);
        assert!(
            report.findings.is_empty(),
            "clean fixture for `{}` produced findings: {:?}",
            rule.id,
            report
                .findings
                .iter()
                .map(|f| (f.rule, f.line))
                .collect::<Vec<_>>()
        );
    }
}

#[test]
fn every_suppressible_rule_has_a_suppressed_fixture() {
    for rule in RULES {
        if is_repo_rule(rule.id) {
            continue;
        }
        let path = fixtures_dir().join(rule.id).join("suppressed.rs");
        if META_RULES.contains(&rule.id) {
            assert!(
                !path.exists(),
                "meta rule `{}` must not have a suppressed fixture",
                rule.id
            );
            continue;
        }
        assert!(path.is_file(), "missing fixture {path:?}");
        let report = lint_fixture(&path);
        assert!(
            report.findings.is_empty(),
            "suppressed fixture for `{}` still reports: {:?}",
            rule.id,
            report
                .findings
                .iter()
                .map(|f| (f.rule, f.line))
                .collect::<Vec<_>>()
        );
        assert!(
            report.suppressed >= 1,
            "suppressed fixture for `{}` suppressed nothing (unused allow should have fired)",
            rule.id
        );
    }
}

#[test]
fn meta_rules_cannot_be_suppressed() {
    let path = fixtures_dir()
        .join("malformed-allow")
        .join("unsuppressible.rs");
    let report = lint_fixture(&path);
    assert!(
        report.findings.iter().any(|f| f.rule == "malformed-allow"),
        "an allow naming a meta rule must itself be malformed, got {:?}",
        report.findings.iter().map(|f| f.rule).collect::<Vec<_>>()
    );
}

#[test]
fn no_fixture_directory_is_orphaned() {
    // Every `<rule>/` directory corresponds to a live rule, so renamed or
    // retired rules cannot leave stale fixtures behind.
    let special = ["false_positives", "golden", "repo"];
    for entry in fs::read_dir(fixtures_dir()).unwrap() {
        let entry = entry.unwrap();
        if !entry.path().is_dir() {
            continue;
        }
        let name = entry.file_name().into_string().unwrap();
        if special.contains(&name.as_str()) {
            continue;
        }
        assert!(
            RULES.iter().any(|r| r.id == name),
            "fixture directory `{name}` does not match any rule id"
        );
    }
}

#[test]
fn violations_inside_literals_and_comments_do_not_fire() {
    for case in ["strings", "comments", "macros", "raw_strings", "cstrings"] {
        let path = fixtures_dir()
            .join("false_positives")
            .join(format!("{case}.rs"));
        let report = lint_fixture(&path);
        assert!(
            report.findings.is_empty(),
            "false-positive case `{case}` produced findings: {:?}",
            report
                .findings
                .iter()
                .map(|f| (f.rule, f.line))
                .collect::<Vec<_>>()
        );
        assert_eq!(
            report.suppressed, 0,
            "false-positive case `{case}` should not consume suppressions"
        );
    }
}

#[test]
fn lexer_recovers_after_tricky_raw_strings() {
    // A raw string containing a fake terminator must not swallow the rest
    // of the file: the genuine violation after it still fires.
    let path = fixtures_dir().join("false_positives").join("canary.rs");
    let report = lint_fixture(&path);
    let rules: Vec<&str> = report.findings.iter().map(|f| f.rule).collect();
    assert_eq!(
        rules,
        ["rng-entropy"],
        "canary expects exactly the post-raw-string violation"
    );
}
