//! Structurizer tiling property: on every `.rs` file in the workspace —
//! vendored stubs and the deliberately nasty lint fixtures included — the
//! node tree produced by `structurize` owns every code token exactly once
//! (children tile their parent's range, sibling ranges are disjoint and
//! ordered, nothing is dropped). A fuzz pass extends the invariant, plus
//! "never panics", to adversarial brace/pipe/keyword soup, which is where
//! closure-versus-bitor disambiguation and unbalanced delimiters live.

use std::fs;
use std::path::{Path, PathBuf};

use proptest::prelude::*;
use rbb_lint::structure::{structurize, validate_tiling};

fn assert_tiles(src: &str, origin: &str) {
    let s = structurize(src);
    validate_tiling(&s.root, s.code.len())
        .unwrap_or_else(|e| panic!("{origin}: tiling violated: {e}"));
}

/// Collects every `.rs` under `dir`, skipping only build output and VCS
/// internals — vendor/ and the lint fixtures are deliberately included.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if name != "target" && name != ".git" {
                collect_rs(&path, out);
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

#[test]
fn every_workspace_file_tiles() {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = rbb_lint::find_root(manifest).expect("workspace root");
    let mut files = Vec::new();
    collect_rs(&root, &mut files);
    assert!(
        files.len() > 100,
        "suspiciously few files found under {root:?}: {}",
        files.len()
    );
    for path in &files {
        let src = fs::read_to_string(path).unwrap();
        assert_tiles(&src, &path.display().to_string());
    }
}

/// Tokens chosen to stress the structurizer: item keywords, closure pipes
/// versus bit-or, generics angles versus comparisons, every delimiter
/// (balanced or not), parallel-iterator method names, and string/comment
/// openers so node boundaries land next to non-code tokens.
const SOUP: &[&str] = &[
    "fn",
    "mod",
    "impl",
    "trait",
    "for",
    "move",
    "return",
    "match",
    "else",
    "in",
    "let",
    "pub",
    "f",
    "x",
    "Rng",
    "rng",
    "into_par_iter",
    "map",
    "spawn",
    "|",
    "||",
    "&",
    "&&",
    ":",
    "::",
    ",",
    ";",
    "->",
    "=>",
    "<",
    ">",
    "<<",
    ">>",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    "#",
    "!",
    "=",
    "0",
    "1.0",
    "\"s\"",
    "'a",
    "// c\n",
    "/* b */",
    ".",
    "?",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// `structurize` is infallible and tiling-sound on arbitrary token soup.
    #[test]
    fn fuzzed_soup_tiles(picks in proptest::collection::vec(any::<u8>(), 0..120)) {
        let src: String = picks
            .iter()
            .flat_map(|&b| [SOUP[b as usize % SOUP.len()], " "])
            .collect();
        assert_tiles(&src, "fuzz");
    }
}
