//! Lexer round-trip property: on every `.rs` file in the workspace —
//! including the vendored stubs and the deliberately tricky lint fixtures —
//! the token stream tiles the source exactly: spans are in order, disjoint,
//! and everything between tokens is whitespace. A fuzz pass extends the
//! same invariant (plus "never panics") to adversarial character soup.

use std::fs;
use std::path::{Path, PathBuf};

use proptest::prelude::*;
use rbb_lint::lexer::lex;

/// Asserts the tiling invariant and returns the number of tokens.
fn assert_roundtrip(src: &str, origin: &str) -> usize {
    let tokens = lex(src);
    let mut pos = 0usize;
    for (i, t) in tokens.iter().enumerate() {
        assert!(
            t.start >= pos,
            "{origin}: token {i} overlaps predecessor (start {} < pos {pos})",
            t.start
        );
        assert!(
            t.end > t.start,
            "{origin}: token {i} has an empty span at {}",
            t.start
        );
        assert!(
            src[pos..t.start].chars().all(char::is_whitespace),
            "{origin}: non-whitespace dropped in gap {pos}..{}",
            t.start
        );
        assert!(
            src.is_char_boundary(t.start) && src.is_char_boundary(t.end),
            "{origin}: token {i} span {}..{} splits a char",
            t.start,
            t.end
        );
        pos = t.end;
    }
    assert!(
        src[pos..].chars().all(char::is_whitespace),
        "{origin}: non-whitespace dropped after last token"
    );
    tokens.len()
}

/// Collects every `.rs` under `dir`, skipping only build output and VCS
/// internals — vendor/ and the lint fixtures are deliberately included.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if name != "target" && name != ".git" {
                collect_rs(&path, out);
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

#[test]
fn every_workspace_file_roundtrips() {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = rbb_lint::find_root(manifest).expect("workspace root");
    let mut files = Vec::new();
    collect_rs(&root, &mut files);
    assert!(
        files.len() > 100,
        "suspiciously few files found under {root:?}: {}",
        files.len()
    );
    let mut total = 0usize;
    for path in &files {
        let src = fs::read_to_string(path).unwrap();
        total += assert_roundtrip(&src, &path.display().to_string());
    }
    assert!(total > 10_000, "suspiciously few tokens: {total}");
}

/// Characters chosen to hit every tricky lexer path: string/char/raw-string
/// delimiters, comment openers, prefixes (`c` covers c-string literals and
/// the `cr` raw variant), escapes, multibyte text.
const ALPHABET: &[char] = &[
    '"', '\'', '#', 'r', 'b', 'c', '/', '*', '\\', '\n', ' ', 'x', '0', '1', '.', '_', '!', '<',
    '>', '=', '(', ')', '{', '}', 'é', '→', 'λ',
];

/// Regression pins for the PR 8 lexer fixes: c-string literals in all
/// spellings and a leading shebang, each of which previously fractured
/// into punct-plus-ident tokens.
#[test]
fn c_strings_and_shebang_roundtrip() {
    for src in [
        "let a = c\"text\";",
        "let b = cr\"raw\";",
        "let c = cr#\"raw \" inner\"#;",
        "let d = cr##\"nested \"# still\"##;",
        "#!/usr/bin/env cargo\nfn main() {}",
        "#!/usr/bin/env cargo\n// comment\nc\"both fixes in one file\";",
    ] {
        assert_roundtrip(src, src);
    }
    // A shebang-lookalike inner attribute must still lex as punctuation.
    assert_roundtrip("#![forbid(unsafe_code)]", "inner attribute");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The lexer is infallible and span-sound on arbitrary character soup.
    #[test]
    fn fuzzed_soup_roundtrips(picks in proptest::collection::vec(any::<u8>(), 0..200)) {
        let src: String = picks
            .iter()
            .map(|&b| ALPHABET[b as usize % ALPHABET.len()])
            .collect();
        assert_roundtrip(&src, "fuzz");
    }
}
