use std::env;

pub fn threads() -> String {
    env::var("RBB_THREADS").unwrap_or_default()
}
