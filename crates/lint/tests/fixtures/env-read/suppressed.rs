use std::env;

pub fn threads() -> String {
    // rbb-lint: allow(env-read, reason = "mirrors the rayon stub's sanctioned thread-count override")
    env::var("RBB_THREADS").unwrap_or_default()
}
