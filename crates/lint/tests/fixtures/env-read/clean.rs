pub fn threads(configured: usize) -> usize {
    configured
}
