fn registry() {
    Experiment { id: "e01" };
    Experiment { id: "e02" };
}
