// no engines exercised yet
