struct FooProcess;

// rbb-lint: allow(engine-proptest, reason = "bit-compatibility is pinned by the dedicated conformance suite instead")
impl Engine for FooProcess {
    fn round(&mut self) {}
}
