// no engines exercised yet
