fn matrix() { check::<FooProcess>(); }
