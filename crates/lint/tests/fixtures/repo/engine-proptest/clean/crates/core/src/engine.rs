struct FooProcess;

impl Engine for FooProcess {
    fn round(&mut self) {}
}
