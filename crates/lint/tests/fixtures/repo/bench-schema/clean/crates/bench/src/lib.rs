pub const SCHEMA_VERSION: u32 = 1;
