use std::collections::HashMap;

pub struct Loads {
    by_bin: HashMap<u64, u32>,
}

pub fn build() -> HashMap<u64, u32> {
    HashMap::new()
}
