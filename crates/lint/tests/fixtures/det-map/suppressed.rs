use std::collections::HashMap;

// rbb-lint: allow(det-map, reason = "handed to an external API that demands the std hasher")
pub fn interop() -> HashMap<u64, u32> {
    Default::default()
}
