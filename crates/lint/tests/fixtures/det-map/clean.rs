use rbb_core::det_hash::{BuildDetHasher, DetHashMap};
use std::collections::HashMap;

pub struct Loads {
    by_bin: DetHashMap<u64, u32>,
    aux: HashMap<u64, u32, BuildDetHasher>,
}

pub fn build() -> DetHashMap<u64, u32> {
    DetHashMap::default()
}
