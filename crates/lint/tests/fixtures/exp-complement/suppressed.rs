pub fn pinned(x: f64) -> f64 {
    // rbb-lint: allow(exp-complement, reason = "argument is bounded away from 0 by the caller; form kept for readability")
    1.0 - x.exp()
}
