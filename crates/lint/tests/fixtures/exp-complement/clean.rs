pub fn hit_probability(x: f64) -> f64 {
    -x.exp_m1()
}
