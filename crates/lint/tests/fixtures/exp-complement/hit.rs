pub fn hit_probability(x: f64) -> f64 {
    1.0 - x.exp()
}
