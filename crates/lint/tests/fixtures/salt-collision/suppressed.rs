/// A deliberate shared stream (coupling construction) carries an allow at
/// both sites.
fn coupled(seed: u64) -> (Xoshiro256pp, Xoshiro256pp) {
    // rbb-lint: allow(salt-collision, reason = "coupling argument: both chains must consume the identical arrival stream")
    let chain_a = salted_rng(seed, 9);
    // rbb-lint: allow(salt-collision, reason = "coupling argument: both chains must consume the identical arrival stream")
    let chain_b = salted_rng(seed, 9);
    (chain_a, chain_b)
}
