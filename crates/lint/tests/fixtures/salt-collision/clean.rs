/// Distinct salts per subsystem: independent streams.
fn build(seed: u64) -> (Xoshiro256pp, Xoshiro256pp, Xoshiro256pp) {
    let topology = salted_rng(seed, 0x2A);
    let arrivals = salted_rng(seed, 43);
    let faults = xor_salted_rng(seed, 44);
    (topology, arrivals, faults)
}

/// Non-literal salts are out of scope for the collision check (the
/// call-site value is not statically known).
fn per_shard(seed: u64, shard: u64) -> Xoshiro256pp {
    salted_rng(seed, shard)
}
