/// Two subsystems salting the master seed with the same literal share a
/// stream — the radix spelling does not save them.
fn build(seed: u64) -> (Xoshiro256pp, Xoshiro256pp) {
    let topology = salted_rng(seed, 0x2A);
    let arrivals = salted_rng(seed, 42);
    (topology, arrivals)
}
