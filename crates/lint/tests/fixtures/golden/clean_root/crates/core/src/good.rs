use rbb_core::det_hash::DetHashMap;

pub fn table() -> DetHashMap<u64, u32> {
    DetHashMap::default()
}

pub fn survival_log(x: f64) -> f64 {
    (-x).ln_1p()
}
