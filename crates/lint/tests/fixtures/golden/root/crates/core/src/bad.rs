use rbb_core::rng::Xoshiro256pp;
use std::collections::HashMap;

pub fn fresh() -> Xoshiro256pp {
    Xoshiro256pp::from_entropy()
}

pub fn table() -> HashMap<u64, u32> {
    HashMap::new()
}

pub fn survival_log(x: f64) -> f64 {
    (1.0 - x).ln()
}

pub fn first(xs: &[u64]) -> u64 {
    // rbb-lint: allow(panic, reason = "constructor asserts non-empty")
    *xs.first().unwrap()
}
