use rbb_core::rng::Xoshiro256pp;
use std::collections::HashMap;

pub fn fresh() -> Xoshiro256pp {
    Xoshiro256pp::from_entropy()
}

pub fn table() -> HashMap<u64, u32> {
    HashMap::new()
}

pub fn survival_log(x: f64) -> f64 {
    (1.0 - x).ln()
}

pub fn first(xs: &[u64]) -> u64 {
    // rbb-lint: allow(panic, reason = "constructor asserts non-empty")
    *xs.first().unwrap()
}

pub fn parallel_draw(rng: &mut Xoshiro256pp, n: u64) -> u64 {
    (0..n).into_par_iter().map(|i| rng.next_u64() ^ i).sum()
}

pub fn racy_count(total: &Mutex<u64>, n: u64) {
    (0..n).into_par_iter().for_each(|_i| {
        *total.lock().unwrap_or_else(|e| e.into_inner()) += 1;
    });
}

pub fn colliding_streams(seed: u64) -> (Xoshiro256pp, Xoshiro256pp) {
    let topology = salted_rng(seed, 5);
    let arrivals = salted_rng(seed, 0x5);
    (topology, arrivals)
}
