use std::time::Instant;

pub fn stamp() -> Instant {
    // rbb-lint: allow(wall-clock, reason = "progress reporting only; never enters a result")
    Instant::now()
}
