pub fn stamp(elapsed_rounds: u64) -> u64 {
    elapsed_rounds
}
