pub fn f(x: Option<u32>) -> u32 {
    // rbb-lint: allow(panic, reason = "caller guarantees Some")
    x.unwrap()
}
