pub fn f(x: Option<u32>) -> u32 {
    // rbb-lint: allow(panic, reason = "stale: the unwrap below was removed last quarter")
    x.unwrap_or(1)
}
