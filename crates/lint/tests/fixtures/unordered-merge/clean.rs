use rayon::prelude::*;

/// Per-task values merged by the reduction — no shared state touched
/// inside the closures.
fn fold_after_join(n: u64) -> u64 {
    (0..n).into_par_iter().map(|i| i * 2).sum()
}

/// Sequential mutation of a local is not a merge.
fn sequential_total(n: u64) -> u64 {
    let mut total = 0u64;
    for i in 0..n {
        total += i;
    }
    total
}
