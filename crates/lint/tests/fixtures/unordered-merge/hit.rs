use rayon::prelude::*;

/// Tasks race on one accumulator: the lock order (and, for floats, the
/// sum) would depend on scheduling.
fn racy_total(total: &Mutex<u64>, n: u64) {
    (0..n).into_par_iter().for_each(|i| {
        *total.lock().unwrap_or_else(|e| e.into_inner()) += i;
    });
}

/// Atomic read-modify-write is just as order-dependent for non-commuting
/// updates.
fn racy_atomic(hits: &AtomicU64, n: u64) {
    (0..n).into_par_iter().for_each(|_i| {
        hits.fetch_add(1, Ordering::Relaxed);
    });
}
