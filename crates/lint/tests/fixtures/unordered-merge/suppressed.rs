use rayon::prelude::*;

/// Saturating max commutes, so the merge order is immaterial.
fn max_depth(deepest: &AtomicU64, n: u64) {
    (0..n).into_par_iter().for_each(|i| {
        // rbb-lint: allow(unordered-merge, reason = "commutes: fetch_max is order-independent — the final value is the max regardless of interleaving")
        deepest.fetch_max(i, Ordering::Relaxed);
    });
}
