use rbb_core::rng::Xoshiro256pp;

/// Engine generator for `seed`.
///
/// # RNG stream
///
/// The engine-convention stream of `seed`; consumes no draws.
pub fn start(seed: u64) -> Xoshiro256pp {
    // rbb-lint: allow(rng-construct, reason = "core cannot depend on rbb_sim::seed; this is the sanctioned engine convention")
    Xoshiro256pp::seed_from(seed)
}
