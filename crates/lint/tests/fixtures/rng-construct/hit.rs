use rbb_core::rng::Xoshiro256pp;

/// Engine generator for `seed`.
///
/// # RNG stream
///
/// The engine-convention stream of `seed`; consumes no draws.
pub fn start(seed: u64) -> Xoshiro256pp {
    Xoshiro256pp::seed_from(seed)
}
