use rbb_core::rng::Xoshiro256pp;

/// Draws one sample.
///
/// # RNG stream
///
/// Consumes exactly one draw from the caller's stream.
pub fn draw(rng: &mut Xoshiro256pp) -> u64 {
    rng.next_u64()
}
