use rbb_core::rng::Xoshiro256pp;

/// Draws one sample.
pub fn draw(rng: &mut Xoshiro256pp) -> u64 {
    rng.next_u64()
}
