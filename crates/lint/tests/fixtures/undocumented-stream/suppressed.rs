use rbb_core::rng::Xoshiro256pp;

/// Draws one sample.
// rbb-lint: allow(undocumented-stream, reason = "private-by-convention helper documented at the call site")
pub fn draw(rng: &mut Xoshiro256pp) -> u64 {
    rng.next_u64()
}
