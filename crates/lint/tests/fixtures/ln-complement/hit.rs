pub fn survival_log(x: f64) -> f64 {
    (1.0 - x).ln()
}
