pub fn pinned(x: f64) -> f64 {
    // rbb-lint: allow(ln-complement, reason = "committed bit-exact trajectories pin this exact expression")
    (1.0 - x).ln()
}
