pub fn survival_log(x: f64) -> f64 {
    (-x).ln_1p()
}
