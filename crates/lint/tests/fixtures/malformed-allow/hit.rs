pub fn f(x: Option<u32>) -> u32 {
    // rbb-lint: allow(panic)
    x.unwrap_or(1)
}
