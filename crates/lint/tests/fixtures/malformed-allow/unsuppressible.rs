pub fn f(x: Option<u32>) -> u32 {
    // rbb-lint: allow(malformed-allow, reason = "trying to silence the meta rule")
    // rbb-lint: allow(panic)
    x.unwrap_or(1)
}
