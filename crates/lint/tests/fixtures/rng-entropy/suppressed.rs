use rbb_core::rng::Xoshiro256pp;

/// Entropy-seeded generator for the interactive demo.
///
/// # RNG stream
///
/// Non-reproducible by design; never feeds a recorded result.
pub fn jitter_demo() -> Xoshiro256pp {
    // rbb-lint: allow(rng-entropy, reason = "interactive demo binary; results are never recorded")
    Xoshiro256pp::from_entropy()
}
