use rbb_core::rng::Xoshiro256pp;

pub fn fresh() -> Xoshiro256pp {
    Xoshiro256pp::from_entropy()
}
