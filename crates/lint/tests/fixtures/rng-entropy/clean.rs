use rbb_core::rng::Xoshiro256pp;

/// Advances the caller's stream.
///
/// # RNG stream
///
/// Consumes exactly one draw.
pub fn run(rng: &mut Xoshiro256pp) -> u64 {
    rng.next_u64()
}
