pub fn docs() -> Vec<&'static str> {
    vec![
        "never call Xoshiro256pp::from_entropy() in result code",
        "prefer ln_1p over (1.0 - x).ln()",
        "HashMap::new() is banned; x.unwrap() too",
        "std::time::Instant::now() and env::var(\"X\") stay out of results",
    ]
}
