// A comment mentioning Xoshiro256pp::from_entropy() and HashMap::new().
/* block comment: (1.0 - x).ln() and v.sort_by(|a, b| a.partial_cmp(b))
   /* nested: x.unwrap() and Instant::now() and env::var("T") */
   still inside the outer comment: 1.0 - x.exp()
*/
/// Doc comment quoting `x as u32` and `SystemTime::now()`.
pub fn quiet() -> u64 {
    42
}
