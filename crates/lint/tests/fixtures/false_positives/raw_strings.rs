pub fn snippets() -> Vec<&'static str> {
    vec![
        r"plain raw: x.unwrap() and HashMap::new()",
        r#"hash raw: "quoted" Xoshiro256pp::from_entropy()"#,
        r##"double-hash raw: r#"inner"# and (1.0 - x).ln()"##,
    ]
}

pub fn bytes() -> &'static [u8] {
    br#"byte raw: Instant::now() env::var("X")"#
}
