use rbb_core::rng::Xoshiro256pp;

pub fn tricky() -> &'static str {
    r##"a raw string with a fake terminator "# inside"##
}

/// Entropy canary behind the tricky raw string above.
///
/// # RNG stream
///
/// Non-reproducible by design; exists to prove the lexer recovered.
pub fn canary() -> Xoshiro256pp {
    Xoshiro256pp::from_entropy()
}
