macro_rules! tally {
    ($name:ident, $t:ty) => {
        pub fn $name(x: $t) -> $t {
            x
        }
    };
}

tally!(rounds, u64);

pub fn report(n: u64) -> String {
    format!("{{literal braces}} n={n} (see unwrap docs, not a call)")
}
