#!/usr/bin/env cargo
// The shebang above must lex as a comment, not as `#` `!` punctuation
// that could glue onto the next item. C-string literals (Rust 1.77+)
// must lex as strings end-to-end, so the violations spelled inside them
// never fire.

fn c_literals() -> usize {
    let a = c"Xoshiro256pp::from_entropy()";
    let b = c"HashMap::new() and Instant::now()";
    let c = cr"1.0 - x.exp() inside a raw c-string";
    let d = cr#"env::var("RBB_THREADS") with "quotes""#;
    let e = b"SplitMix64::new(0) as bytes";
    let f = br#"partial_cmp inside raw bytes"#;
    a.to_bytes().len()
        + b.to_bytes().len()
        + c.len()
        + d.len()
        + e.len()
        + f.len()
}
