pub fn bin_index(x: usize) -> u64 {
    x as u64
}
