pub fn bin_index(x: usize) -> u32 {
    // rbb-lint: allow(lossy-cast, reason = "validate() bounds n by u32::MAX before this point")
    x as u32
}
