pub fn bin_index(x: usize) -> u32 {
    x as u32
}
