use rayon::prelude::*;

/// Each task derives its own stream from the master seed, so the
/// trajectory is independent of scheduling.
fn per_task_stream(seed: u64, n: u64) -> u64 {
    (0..n)
        .into_par_iter()
        .map(|i| {
            let mut rng = salted_rng(seed, i);
            rng.next_u64()
        })
        .sum()
}

fn make_stream(seed: u64, salt: u64) -> Xoshiro256pp {
    salted_rng(seed, salt)
}

/// The sanctioned constructor is a callee; constructs* still sanctions
/// the closure.
fn per_task_stream_via_helper(seed: u64, n: u64) -> u64 {
    (0..n)
        .into_par_iter()
        .map(|i| {
            let mut rng = make_stream(seed, i);
            rng.next_u64()
        })
        .sum()
}
