use rayon::prelude::*;

struct Shard {
    rng: Xoshiro256pp,
}

fn draw_from(shard: &mut Shard) -> u64 {
    shard.rng.next_u64()
}

fn pre_salted(shards: &mut [Mutex<Shard>], n: usize) -> u64 {
    (0..n)
        .into_par_iter()
        .map(|s| {
            // rbb-lint: allow(panic, unordered-merge, reason = "commutes: task s is the only locker of shard s, so no cross-task state merges")
            let mut shard = shards[s].lock().expect("uncontended");
            // rbb-lint: allow(rng-in-par, reason = "shard.rng was salted per shard at construction; tasks never share a stream")
            draw_from(&mut shard)
        })
        .sum()
}
