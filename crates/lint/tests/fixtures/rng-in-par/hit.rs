use rayon::prelude::*;

struct Shard {
    rng: Xoshiro256pp,
}

/// Draws one value per task straight from a captured shard — the stream
/// position each task sees depends on work-stealing order.
fn direct_draw(w: &mut Shard, n: u64) -> u64 {
    (0..n).into_par_iter().map(|i| w.rng.next_u64() ^ i).sum()
}

fn helper(rng: &mut Xoshiro256pp) -> u64 {
    rng.next_u64()
}

/// The draw is one call deep; the call-graph pass still reaches it.
fn transitive_draw(w: &mut Shard, n: u64) -> u64 {
    (0..n).into_par_iter().map(|_i| helper(&mut w.rng)).sum()
}
