pub fn ascending(v: &mut [f64]) {
    // rbb-lint: allow(partial-cmp, reason = "inputs proven NaN-free by the assert one frame up")
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
}
