pub fn ascending(v: &mut [f64]) {
    v.sort_by(f64::total_cmp);
}
