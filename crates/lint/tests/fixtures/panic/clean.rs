pub fn first(xs: &[u64]) -> u64 {
    xs.first().copied().unwrap_or(0)
}
