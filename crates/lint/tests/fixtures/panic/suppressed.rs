pub fn first(xs: &[u64]) -> u64 {
    // rbb-lint: allow(panic, reason = "caller asserts non-empty in the constructor")
    *xs.first().unwrap()
}
