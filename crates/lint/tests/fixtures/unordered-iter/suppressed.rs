use rbb_core::det_hash::DetHashMap;

pub fn max_load(m: &DetHashMap<u64, u32>) -> u32 {
    // rbb-lint: allow(unordered-iter, reason = "max is order-independent over the values")
    m.values().copied().max().unwrap_or(0)
}
