use rbb_core::det_hash::DetHashMap;

pub fn bins(m: &DetHashMap<u64, u32>) -> Vec<u64> {
    let mut v: Vec<u64> = m.keys().copied().collect();
    v.sort_unstable();
    v
}
