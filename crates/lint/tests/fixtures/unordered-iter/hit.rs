use rbb_core::det_hash::DetHashMap;

pub fn total(m: &DetHashMap<u64, u32>) -> f64 {
    let mut s = 0.0;
    for v in m.values() {
        s += *v as f64;
    }
    s
}
