//! A closed Jackson network on the clique — the classical queueing-theory
//! comparator the paper's related-work section discusses ([30, 31]).
//!
//! `m` customers circulate among `n` exponential-server (rate 1) stations;
//! on service completion a customer routes to a station chosen u.a.r.
//! Time is continuous, so events are *sequential* — exactly the structural
//! difference the paper highlights: the sequential chain is reversible-ish
//! with a product-form stationary distribution, whereas the paper's parallel
//! process is not. Experiment E19 compares their stationary max loads.
//!
//! Simulation: since all service rates are equal, the next completion occurs
//! after `Exp(k)` time where `k` is the number of busy stations, at a
//! uniformly random busy station (superposition of Poisson processes).

use rbb_core::config::Config;
use rbb_core::rng::Xoshiro256pp;
use rbb_stats::IntHistogram;

/// Event-driven closed Jackson network on the complete graph.
#[derive(Debug, Clone)]
pub struct JacksonNetwork {
    loads: Vec<u32>,
    /// Busy stations, in arbitrary order, for O(1) uniform selection.
    busy: Vec<u32>,
    /// `position[u]` = index of `u` in `busy`, or `usize::MAX` if idle.
    position: Vec<usize>,
    time: f64,
    events: u64,
    rng: Xoshiro256pp,
}

impl JacksonNetwork {
    /// Creates the network from an initial configuration.
    ///
    /// # RNG stream
    ///
    /// Each [`Self::step`] consumes three draws: one exponential holding
    /// time, one `uniform_usize` over the busy stations, and one
    /// `uniform_usize` for the routing destination. Callers hand over a
    /// stream derived from the master seed.
    pub fn new(config: Config, rng: Xoshiro256pp) -> Self {
        let loads = config.into_loads();
        let n = loads.len();
        let mut busy = Vec::new();
        let mut position = vec![usize::MAX; n];
        for (u, &l) in loads.iter().enumerate() {
            if l > 0 {
                position[u] = busy.len();
                // rbb-lint: allow(lossy-cast, reason = "station index < n, and n fits u32 by the Config invariant")
                busy.push(u as u32);
            }
        }
        Self {
            loads,
            busy,
            position,
            time: 0.0,
            events: 0,
            rng,
        }
    }

    /// One customer per station.
    pub fn legitimate_start(n: usize, seed: u64) -> Self {
        // rbb-lint: allow(rng-construct, reason = "baseline convenience constructor seeded by the caller's master seed; baselines sits below rbb_sim::seed in the crate graph")
        Self::new(Config::one_per_bin(n), Xoshiro256pp::seed_from(seed))
    }

    /// Simulated (continuous) time elapsed.
    #[inline]
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Number of service-completion events processed.
    #[inline]
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Current loads.
    #[inline]
    pub fn loads(&self) -> &[u32] {
        &self.loads
    }

    /// Current maximum load.
    pub fn max_load(&self) -> u32 {
        self.loads.iter().copied().max().unwrap_or(0)
    }

    /// Number of busy stations.
    #[inline]
    pub fn busy_stations(&self) -> usize {
        self.busy.len()
    }

    fn mark_idle(&mut self, u: usize) {
        let idx = self.position[u];
        debug_assert!(idx != usize::MAX);
        // rbb-lint: allow(panic, reason = "mark_idle is only called for a station found in the busy list, so the list is non-empty")
        let last = *self.busy.last().expect("busy non-empty");
        self.busy.swap_remove(idx);
        if (last as usize) != u {
            self.position[last as usize] = idx;
        }
        self.position[u] = usize::MAX;
    }

    fn mark_busy(&mut self, u: usize) {
        debug_assert_eq!(self.position[u], usize::MAX);
        self.position[u] = self.busy.len();
        // rbb-lint: allow(lossy-cast, reason = "station index < n, and n fits u32 by the Config invariant")
        self.busy.push(u as u32);
    }

    /// Processes one service completion; returns `(station, destination)`.
    /// Panics if the network is empty (no customers).
    pub fn step(&mut self) -> (usize, usize) {
        let k = self.busy.len();
        assert!(k > 0, "no busy stations: the network has no customers");
        // Superposition of k unit-rate Poisson clocks.
        self.time += self.rng.exponential(k as f64);
        let u = self.busy[self.rng.uniform_usize(k)] as usize;
        self.loads[u] -= 1;
        if self.loads[u] == 0 {
            self.mark_idle(u);
        }
        let v = self.rng.uniform_usize(self.loads.len());
        if self.loads[v] == 0 {
            self.mark_busy(v);
        }
        self.loads[v] += 1;
        self.events += 1;
        (u, v)
    }

    /// Runs `events` completions, recording the max load after each into a
    /// histogram (an event-averaged stationary estimate after burn-in).
    pub fn run_events(&mut self, events: u64) -> IntHistogram {
        let mut hist = IntHistogram::new();
        for _ in 0..events {
            self.step();
            hist.add(self.max_load() as usize);
        }
        hist
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        for (u, &l) in self.loads.iter().enumerate() {
            let busy = self.position[u] != usize::MAX;
            if busy != (l > 0) {
                return Err(format!("station {u}: load {l} but busy={busy}"));
            }
            if busy && self.busy[self.position[u]] as usize != u {
                return Err(format!("station {u}: busy index mismatch"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conserves_customers() {
        let mut j = JacksonNetwork::legitimate_start(32, 1);
        for _ in 0..1000 {
            j.step();
            j.validate().unwrap();
            assert_eq!(j.loads().iter().map(|&x| x as u64).sum::<u64>(), 32);
        }
    }

    #[test]
    fn time_advances() {
        let mut j = JacksonNetwork::legitimate_start(16, 2);
        let t0 = j.time();
        j.step();
        assert!(j.time() > t0);
        assert_eq!(j.events(), 1);
    }

    #[test]
    fn single_customer_walks() {
        let mut j = JacksonNetwork::new(Config::all_in_one(8, 1), Xoshiro256pp::seed_from(3));
        for _ in 0..100 {
            j.step();
            assert_eq!(j.max_load(), 1);
            assert_eq!(j.busy_stations(), 1);
        }
    }

    #[test]
    fn event_rate_matches_busy_count() {
        // With k busy stations, inter-event time is Exp(k): with n=100 all
        // busy initially, mean inter-event ≈ 1/busy.
        let mut j = JacksonNetwork::legitimate_start(100, 4);
        let events = 20_000;
        for _ in 0..events {
            j.step();
        }
        // After many events time should be ≈ events / E[busy]; busy hovers
        // around n(1 - e^{-m/n}-ish); just sanity-check the order.
        let rate = events as f64 / j.time();
        assert!(rate > 30.0 && rate < 110.0, "rate {rate}");
    }

    #[test]
    fn stationary_max_load_is_logarithmic_scale() {
        let n = 256;
        let mut j = JacksonNetwork::legitimate_start(n, 5);
        // Burn in, then measure.
        for _ in 0..50_000 {
            j.step();
        }
        let hist = j.run_events(100_000);
        let mean_max = hist.mean();
        // Product-form geometric-ish tails: mean max load ~ O(log n).
        assert!(
            mean_max > 2.0 && mean_max < 4.0 * (n as f64).ln(),
            "mean max {mean_max}"
        );
    }

    #[test]
    #[should_panic(expected = "no busy stations")]
    fn empty_network_panics() {
        let mut j = JacksonNetwork::new(Config::empty(4), Xoshiro256pp::seed_from(6));
        j.step();
    }
}
