//! # rbb-baselines — every comparator the paper cites
//!
//! * [`oneshot`](mod@oneshot) — classical one-shot balls-into-bins
//!   (`Θ(log n/log log n)` max load; the Section-5 tightness question).
//! * [`dchoice`] — the repeated `d`-choice process of \[36\] (`d = 1` is the
//!   paper's process; `d = 2` shows the power of two choices).
//! * [`independent`] — unconstrained parallel random walks (no
//!   one-release-per-round constraint): isolates the queueing correlation.
//! * [`sqrt_bound`] — the prior `O(√t)` bound of \[12\] as an explicit curve.
//! * [`binpack`] — greedy first-fit-decreasing packing with a
//!   rebalancing-cost-under-churn metric: the centralized comparator for
//!   the weighted regime (E27).
//! * [`jackson`] — a closed Jackson network on the clique (\[30\]): the
//!   sequential, product-form cousin from classical queueing theory.
//! * [`sequential`] — the sequentialized (random firing order) update of
//!   the paper's process: the discrete bridge between the two.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binpack;
pub mod dchoice;
pub mod independent;
pub mod jackson;
pub mod oneshot;
pub mod sequential;
pub mod sqrt_bound;

pub use binpack::{first_fit_decreasing, rebalancing_cost_under_churn, ChurnReport, Packing};
pub use dchoice::DChoiceProcess;
pub use independent::IndependentWalks;
pub use jackson::JacksonNetwork;
pub use oneshot::{oneshot, oneshot_max_load, oneshot_max_load_distribution, predicted_max_load};
pub use sequential::SequentialProcess;
pub use sqrt_bound::SqrtBound;
