//! The prior-work `O(√t)` bound of \[12\] (Becchetti et al., SODA 2015) as an
//! explicit comparison curve.
//!
//! Before this paper, the best maximum-load bound for the repeated process
//! after `t` rounds on regular graphs was of order `√t` (a
//! "standard-deviation" bound from the non-positive drift). Experiment E10
//! plots the measured trajectory `M(t)` against both this curve and the
//! paper's `β·ln n` to visualize how much sharper Theorem 1 is.

/// The `O(√t)` curve: `M(0) + c·√t` with explicit constant `c`.
///
/// The constant in \[12\] is unspecified; `c = 1` already dominates the
/// empirical trajectory, and any `c > 0` diverges from `Θ(log n)` as
/// `t → ∞` — the comparison is about *shape*.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SqrtBound {
    /// Additive offset (the initial max load).
    pub m0: f64,
    /// Multiplier on `√t`.
    pub c: f64,
}

impl SqrtBound {
    /// The bound with `c = 1` from initial max load `m0`.
    pub fn unit(m0: f64) -> Self {
        Self { m0, c: 1.0 }
    }

    /// Evaluates the bound at round `t`.
    pub fn at(&self, t: u64) -> f64 {
        self.m0 + self.c * (t as f64).sqrt()
    }

    /// The first round at which this bound exceeds `level` (the crossover
    /// round against a flat `β ln n` line): `t* = ((level − m0)/c)²`.
    pub fn crossover(&self, level: f64) -> u64 {
        if level <= self.m0 {
            return 0;
        }
        (((level - self.m0) / self.c).powi(2)).ceil() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbb_core::engine::Engine;

    #[test]
    fn bound_grows_like_sqrt() {
        let b = SqrtBound::unit(1.0);
        assert!((b.at(100) - 11.0).abs() < 1e-12);
        assert!((b.at(400) - 21.0).abs() < 1e-12);
        // Quadrupling t doubles the sqrt part.
        let g1 = b.at(400) - b.m0;
        let g2 = b.at(1600) - b.m0;
        assert!((g2 / g1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn crossover_inverts_at() {
        let b = SqrtBound { m0: 2.0, c: 0.5 };
        let level = 12.0;
        let t = b.crossover(level);
        assert!(b.at(t) >= level);
        assert!(b.at(t.saturating_sub(2)) < level + 1.0);
    }

    #[test]
    fn crossover_below_offset_is_zero() {
        let b = SqrtBound { m0: 5.0, c: 1.0 };
        assert_eq!(b.crossover(4.0), 0);
    }

    #[test]
    fn sqrt_bound_dominates_measured_trajectory() {
        // The point of E10 in miniature: the real process's M(t) stays far
        // below m0 + sqrt(t) for moderately large t.
        use rbb_core::metrics::TrajectoryRecorder;
        use rbb_core::process::LoadProcess;
        let n = 256;
        let mut p = LoadProcess::legitimate_start(n, 1);
        let mut rec = TrajectoryRecorder::with_stride(100);
        p.run(20_000, &mut rec);
        let bound = SqrtBound::unit(1.0);
        for pt in rec.points().iter().filter(|p| p.round >= 400) {
            assert!(
                (pt.max_load as f64) < bound.at(pt.round),
                "M({}) = {} exceeded sqrt bound {}",
                pt.round,
                pt.max_load,
                bound.at(pt.round)
            );
        }
    }
}
