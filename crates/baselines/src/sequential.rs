//! Sequentialized repeated balls-into-bins — the discrete-time bridge to
//! the Jackson network.
//!
//! The paper attributes the analysis difficulty to *parallelism*: all bins
//! fire simultaneously, so the chain is non-reversible with no product-form
//! stationary law, unlike the (sequential) closed Jackson network. This
//! baseline isolates that difference: per "macro-round", bins fire **one at
//! a time in a random order**, and each ball's landing is visible to the
//! bins that fire after it. Comparing max loads against the synchronous
//! engine measures how much the parallel update actually changes behavior
//! (answer: very little — the delta is analytic, not quantitative).

use rbb_core::config::Config;
use rbb_core::metrics::RoundObserver;
use rbb_core::rng::Xoshiro256pp;

/// Sequential-update repeated balls-into-bins.
#[derive(Debug, Clone)]
pub struct SequentialProcess {
    config: Config,
    rng: Xoshiro256pp,
    round: u64,
    /// Firing order scratch (shuffled each macro-round).
    order: Vec<u32>,
}

impl SequentialProcess {
    /// Creates the process.
    ///
    /// # RNG stream
    ///
    /// Each macro-round consumes one shuffle of the firing order (`n − 1`
    /// draws) plus one `uniform_usize` per firing bin, interleaved in
    /// firing order. Callers hand over a stream derived from the master
    /// seed.
    pub fn new(config: Config, rng: Xoshiro256pp) -> Self {
        let n = config.n();
        Self {
            config,
            rng,
            round: 0,
            // rbb-lint: allow(lossy-cast, reason = "bin index < n, and n fits u32 by the Config invariant")
            order: (0..n as u32).collect(),
        }
    }

    /// One ball per bin start.
    pub fn legitimate_start(n: usize, seed: u64) -> Self {
        // rbb-lint: allow(rng-construct, reason = "baseline convenience constructor seeded by the caller's master seed; baselines sits below rbb_sim::seed in the crate graph")
        Self::new(Config::one_per_bin(n), Xoshiro256pp::seed_from(seed))
    }

    /// Current configuration.
    #[inline]
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// Current macro-round.
    #[inline]
    pub fn round(&self) -> u64 {
        self.round
    }

    /// One macro-round: every bin takes one turn, in a fresh random order,
    /// with immediate landings. A bin fires iff it is non-empty *when its
    /// turn comes* — balls that landed earlier in the same macro-round
    /// count (the natural sequential semantics). Returns the number of
    /// balls moved.
    pub fn step(&mut self) -> usize {
        self.rng.shuffle(&mut self.order);
        let n = self.config.n();
        let mut moved = 0;
        for i in 0..n {
            let u = self.order[i] as usize;
            let loads = self.config.loads_slice_mut();
            if loads[u] > 0 {
                loads[u] -= 1;
                let dest = self.rng.uniform_usize(n);
                self.config.loads_slice_mut()[dest] += 1;
                moved += 1;
            }
        }
        self.round += 1;
        moved
    }

    /// Runs `rounds` macro-rounds with an observer.
    pub fn run(&mut self, rounds: u64, mut observer: impl RoundObserver) {
        for _ in 0..rounds {
            self.step();
            observer.observe(self.round, &self.config);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbb_core::engine::Engine;
    use rbb_core::metrics::MaxLoadTracker;
    use rbb_core::process::LoadProcess;

    #[test]
    fn conserves_mass() {
        let mut p = SequentialProcess::legitimate_start(64, 1);
        for _ in 0..200 {
            p.step();
            assert_eq!(p.config().total_balls(), 64);
        }
    }

    #[test]
    fn every_bin_fires_at_most_once() {
        // From one-per-bin, at most n moves happen per macro-round.
        let mut p = SequentialProcess::legitimate_start(32, 2);
        let moved = p.step();
        assert!(moved <= 32);
        assert!(moved >= 16, "most bins should fire from the full start");
    }

    #[test]
    fn max_load_stays_logarithmic() {
        let n = 512;
        let mut p = SequentialProcess::legitimate_start(n, 3);
        let mut t = MaxLoadTracker::new();
        p.run(2000, &mut t);
        let bound = 4.0 * (n as f64).ln();
        assert!((t.window_max() as f64) < bound, "max {}", t.window_max());
    }

    #[test]
    fn sequential_close_to_synchronous() {
        // The headline comparison: window max loads of the two update
        // disciplines agree within a small factor.
        let n = 512;
        let rounds = 2000;
        let mut seq = SequentialProcess::legitimate_start(n, 4);
        let mut ts = MaxLoadTracker::new();
        seq.run(rounds, &mut ts);
        let mut par = LoadProcess::legitimate_start(n, 4);
        let mut tp = MaxLoadTracker::new();
        par.run(rounds, &mut tp);
        let ratio = ts.window_max() as f64 / tp.window_max() as f64;
        assert!(ratio > 0.5 && ratio < 2.0, "ratio {ratio}");
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = SequentialProcess::legitimate_start(32, 5);
        let mut b = SequentialProcess::legitimate_start(32, 5);
        for _ in 0..100 {
            a.step();
            b.step();
        }
        assert_eq!(a.config(), b.config());
    }
}
