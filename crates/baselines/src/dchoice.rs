//! The repeated `d`-choice process (reference \[36\], Czumaj & Stemann):
//! like the paper's process, but each re-assigned ball samples `d` bins
//! u.a.r. and joins the least loaded.
//!
//! For `d = 1` this is exactly the paper's process; for `d = 2` the
//! power-of-two-choices effect drives the maximum load down to
//! `O(log log n)`-scale. Experiment E14 contrasts the two.

use rbb_core::config::Config;
use rbb_core::engine::Engine;
use rbb_core::rng::Xoshiro256pp;

/// Repeated balls-into-bins with `d` uniform choices per re-assignment.
#[derive(Debug, Clone)]
pub struct DChoiceProcess {
    config: Config,
    rng: Xoshiro256pp,
    d: usize,
    round: u64,
    /// Scratch: destinations chosen this round (applied synchronously).
    arrivals: Vec<u32>,
}

impl DChoiceProcess {
    /// Creates the process with `d ≥ 1` choices.
    ///
    /// # RNG stream
    ///
    /// Each round consumes `d` `uniform_usize` draws per non-empty bin, in
    /// bin order. Callers hand over a stream derived from the master seed.
    pub fn new(config: Config, d: usize, rng: Xoshiro256pp) -> Self {
        assert!(d >= 1, "need at least one choice");
        let n = config.n();
        Self {
            config,
            rng,
            d,
            round: 0,
            arrivals: vec![0; n],
        }
    }

    /// One ball per bin start.
    pub fn legitimate_start(n: usize, d: usize, seed: u64) -> Self {
        // rbb-lint: allow(rng-construct, reason = "baseline convenience constructor seeded by the caller's master seed; baselines sits below rbb_sim::seed in the crate graph")
        Self::new(Config::one_per_bin(n), d, Xoshiro256pp::seed_from(seed))
    }

    /// Number of choices `d`.
    #[inline]
    pub fn d(&self) -> usize {
        self.d
    }

    /// Current configuration.
    #[inline]
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// Current round.
    #[inline]
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Advances one round; returns the number of movers.
    ///
    /// Synchronous semantics: every ball observes the *start-of-round* loads
    /// when comparing its `d` candidate bins (arrivals of the same round are
    /// not visible), matching the parallel model of the paper.
    pub fn step(&mut self) -> usize {
        let n = self.config.n();
        self.arrivals.iter_mut().for_each(|a| *a = 0);
        let mut moved = 0usize;
        {
            let loads = self.config.loads();
            for u in 0..n {
                if loads[u] == 0 {
                    continue;
                }
                moved += 1;
                // Pick the least loaded of d uniform candidates (ties ->
                // first sampled, matching the classical greedy tie-break).
                let mut best = self.rng.uniform_usize(n);
                let mut best_load = loads[best];
                for _ in 1..self.d {
                    let c = self.rng.uniform_usize(n);
                    if loads[c] < best_load {
                        best = c;
                        best_load = loads[c];
                    }
                }
                self.arrivals[best] += 1;
            }
        }
        let loads = self.config.loads_slice_mut();
        for (load, &arrived) in loads.iter_mut().zip(&self.arrivals).take(n) {
            if *load > 0 {
                *load -= 1;
            }
            *load += arrived;
        }
        self.round += 1;
        moved
    }
}

/// The run family is provided by [`Engine`]; the d-choice kernel has no
/// batched variant (candidate draws depend on live loads), so
/// `step_batched` defaults to the scalar step.
impl Engine for DChoiceProcess {
    #[inline]
    fn step(&mut self) -> usize {
        DChoiceProcess::step(self)
    }

    #[inline]
    fn round(&self) -> u64 {
        self.round
    }

    #[inline]
    fn config(&self) -> &Config {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbb_core::metrics::MaxLoadTracker;

    #[test]
    fn conserves_balls() {
        let mut p = DChoiceProcess::legitimate_start(64, 2, 1);
        for _ in 0..200 {
            p.step();
            assert_eq!(p.config().total_balls(), 64);
        }
    }

    #[test]
    fn d1_behaves_like_original() {
        // d = 1 is the paper's process: max load stays logarithmic.
        let n = 256;
        let mut p = DChoiceProcess::legitimate_start(n, 1, 2);
        let mut t = MaxLoadTracker::new();
        p.run(2000, &mut t);
        assert!(t.window_max() < 24, "d=1 max load {}", t.window_max());
    }

    #[test]
    fn two_choices_beats_one_choice() {
        let n = 1024;
        let rounds = 3000;
        let mut one = DChoiceProcess::legitimate_start(n, 1, 3);
        let mut t1 = MaxLoadTracker::new();
        one.run(rounds, &mut t1);
        let mut two = DChoiceProcess::legitimate_start(n, 2, 3);
        let mut t2 = MaxLoadTracker::new();
        two.run(rounds, &mut t2);
        assert!(
            t2.window_max() < t1.window_max(),
            "d=2 ({}) should beat d=1 ({})",
            t2.window_max(),
            t1.window_max()
        );
        // Power of two choices, parallel flavor: collisions among same-round
        // arrivals keep it above the sequential O(log log n), but it stays
        // well below the d=1 logarithmic level.
        assert!(t2.window_max() <= 10, "d=2 max load {}", t2.window_max());
    }

    #[test]
    fn rejects_zero_choices() {
        let result = std::panic::catch_unwind(|| {
            DChoiceProcess::legitimate_start(8, 0, 4);
        });
        assert!(result.is_err());
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = DChoiceProcess::legitimate_start(32, 2, 5);
        let mut b = DChoiceProcess::legitimate_start(32, 2, 5);
        for _ in 0..100 {
            a.step();
            b.step();
        }
        assert_eq!(a.config(), b.config());
    }
}
