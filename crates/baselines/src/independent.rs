//! Unconstrained independent parallel random walks: every ball moves every
//! round (no one-per-bin release constraint).
//!
//! This is the idealized comparator the paper's introduction contrasts with:
//! without the constraint, per-round occupancies are a fresh one-shot throw
//! of all `m` balls, so the max load is `Θ(log n/log log n)` each round and
//! arrivals across rounds are independent. The delta between this process
//! and the constrained one isolates the effect of the queueing correlation.

use rbb_core::config::Config;
use rbb_core::metrics::RoundObserver;
use rbb_core::rng::Xoshiro256pp;
use rbb_core::sampling::throw_uniform;

/// Independent (unconstrained) parallel walks on the clique.
#[derive(Debug, Clone)]
pub struct IndependentWalks {
    config: Config,
    rng: Xoshiro256pp,
    round: u64,
    balls: u64,
}

impl IndependentWalks {
    /// Creates the process.
    ///
    /// # RNG stream
    ///
    /// Each round consumes one uniform draw per ball (a fresh one-shot
    /// throw of all `m` balls). Callers hand over a stream derived from
    /// the master seed.
    pub fn new(config: Config, rng: Xoshiro256pp) -> Self {
        let balls = config.total_balls();
        Self {
            config,
            rng,
            round: 0,
            balls,
        }
    }

    /// One ball per bin start.
    pub fn legitimate_start(n: usize, seed: u64) -> Self {
        // rbb-lint: allow(rng-construct, reason = "baseline convenience constructor seeded by the caller's master seed; baselines sits below rbb_sim::seed in the crate graph")
        Self::new(Config::one_per_bin(n), Xoshiro256pp::seed_from(seed))
    }

    /// Current configuration.
    #[inline]
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// Current round.
    #[inline]
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Advances one round: every ball re-throws independently.
    pub fn step(&mut self) {
        let loads = self.config.loads_slice_mut();
        loads.iter_mut().for_each(|l| *l = 0);
        throw_uniform(&mut self.rng, loads, self.balls as usize);
        self.round += 1;
    }

    /// Runs `rounds` rounds with an observer.
    pub fn run(&mut self, rounds: u64, mut observer: impl RoundObserver) {
        for _ in 0..rounds {
            self.step();
            observer.observe(self.round, &self.config);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbb_core::engine::Engine;
    use rbb_core::metrics::MaxLoadTracker;

    #[test]
    fn conserves_mass() {
        let mut p = IndependentWalks::legitimate_start(64, 1);
        for _ in 0..50 {
            p.step();
            assert_eq!(p.config().total_balls(), 64);
        }
    }

    #[test]
    fn every_round_is_fresh_oneshot() {
        // Max load each round should be in the one-shot range, i.e. small.
        let n = 1024;
        let mut p = IndependentWalks::legitimate_start(n, 2);
        let mut t = MaxLoadTracker::new();
        p.run(1000, &mut t);
        // One-shot max for n=1024 is ~5-7; over 1000 rounds the window max
        // creeps to ~8-10 but stays well below e.g. 15.
        assert!(t.window_max() <= 15, "window max {}", t.window_max());
        assert!(t.window_max() >= 4);
    }

    #[test]
    fn rounds_count() {
        let mut p = IndependentWalks::legitimate_start(16, 3);
        p.run(7, rbb_core::metrics::NullObserver);
        assert_eq!(p.round(), 7);
    }

    #[test]
    fn constrained_process_not_wildly_worse() {
        // Sanity cross-check of the paper's headline: the constrained
        // process's window max load is within a constant factor of the
        // unconstrained one (both Θ(log)-family).
        let n = 512;
        let rounds = 1000;
        let mut ind = IndependentWalks::legitimate_start(n, 4);
        let mut ti = MaxLoadTracker::new();
        ind.run(rounds, &mut ti);
        let mut con = rbb_core::process::LoadProcess::legitimate_start(n, 4);
        let mut tc = MaxLoadTracker::new();
        con.run(rounds, &mut tc);
        assert!(
            (tc.window_max() as f64) < 4.0 * ti.window_max() as f64,
            "constrained {} vs independent {}",
            tc.window_max(),
            ti.window_max()
        );
    }
}
