//! Greedy first-fit-decreasing bin packing — the centralized comparator
//! for the weighted regime (experiment E27).
//!
//! The weighted repeated process keeps the maximum *weighted* load bounded
//! with no coordination: every bin applies the same local one-release rule,
//! and a churned ball perturbs only the bins it visits. The classical
//! alternative is a central packer that recomputes a near-optimal
//! assignment after every change. FFD is the canonical such packer
//! (11/9·OPT + 6/9 bins, Dósa 2007); what it buys in packing quality it
//! pays in **rebalancing cost**: a single weight change can relocate a
//! constant fraction of all balls. [`rebalancing_cost_under_churn`]
//! measures that cost so E27 can plot it against the process's O(1)
//! per-round per-bin movement.

use rbb_core::rng::Xoshiro256pp;

/// A complete assignment of weighted balls to capacity-`cap` bins.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packing {
    /// `assignment[k]` = bin of ball `k`.
    pub assignment: Vec<u32>,
    /// Per-bin packed weight.
    pub loads: Vec<u64>,
    /// Capacity every bin respects.
    pub cap: u64,
}

impl Packing {
    /// Number of bins holding at least one ball.
    pub fn bins_used(&self) -> usize {
        self.loads.iter().filter(|&&l| l > 0).count()
    }

    /// Maximum packed weight over all bins.
    pub fn max_load(&self) -> u64 {
        self.loads.iter().copied().max().unwrap_or(0)
    }

    /// Balls assigned to different bins in `self` vs `other` (same arity).
    pub fn moves_versus(&self, other: &Packing) -> u64 {
        self.assignment
            .iter()
            .zip(&other.assignment)
            .filter(|(a, b)| a != b)
            .count() as u64
    }
}

/// Deterministic first-fit-decreasing: sort balls by weight descending
/// (ties broken by ball index, so equal-weight inputs pack identically on
/// every run), then place each ball in the lowest-indexed bin with room.
///
/// Returns `None` if some ball fits in no bin — callers choose `bins`/`cap`
/// feasibility; this function never panics on infeasible input.
pub fn first_fit_decreasing(weights: &[u32], bins: usize, cap: u64) -> Option<Packing> {
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by_key(|&k| (core::cmp::Reverse(weights[k]), k));
    let mut loads = vec![0u64; bins];
    let mut assignment = vec![0u32; weights.len()];
    for k in order {
        let w = u64::from(weights[k]);
        let bin = loads.iter().position(|&l| l + w <= cap)?;
        loads[bin] += w;
        // rbb-lint: allow(lossy-cast, reason = "bin < bins <= u32 bin-index domain shared with Config loads")
        assignment[k] = bin as u32;
    }
    Some(Packing {
        assignment,
        loads,
        cap,
    })
}

/// Minimum bin count FFD needs for `weights` at capacity `cap`, i.e. the
/// classical bin-packing objective. `None` if a single ball exceeds `cap`.
pub fn ffd_bins_used(weights: &[u32], cap: u64) -> Option<usize> {
    if weights.is_empty() {
        return Some(0);
    }
    first_fit_decreasing(weights, weights.len(), cap).map(|p| p.bins_used())
}

/// Rebalancing cost of full repacking over a churn sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnReport {
    /// Churn events applied.
    pub events: u64,
    /// Balls (other than the churned one) relocated, summed over events.
    pub total_moves: u64,
    /// Worst single-event relocation count.
    pub max_moves: u64,
}

impl ChurnReport {
    /// Mean collateral moves per churn event.
    pub fn mean_moves(&self) -> f64 {
        if self.events == 0 {
            return 0.0;
        }
        self.total_moves as f64 / self.events as f64
    }
}

/// Applies `events` churn events — each replaces one uniformly chosen
/// ball's weight with a fresh uniform draw from `1..=w_max` — repacking
/// from scratch with FFD after each, and counts how many *other* balls
/// change bins (the collateral rebalancing the process never pays).
///
/// Returns `None` on empty input, `w_max == 0`, or if any repack becomes
/// infeasible for the given `bins`/`cap`.
///
/// # RNG stream
///
/// Consumes exactly two draws per event from `rng`: one `uniform_usize`
/// for the churned ball and one `next_below` for its replacement weight.
/// Callers derive `rng` from the master seed (E27 salts a dedicated
/// stream); this function constructs no stream of its own.
pub fn rebalancing_cost_under_churn(
    weights: &[u32],
    bins: usize,
    cap: u64,
    w_max: u32,
    events: u64,
    rng: &mut Xoshiro256pp,
) -> Option<ChurnReport> {
    if weights.is_empty() || w_max == 0 {
        return None;
    }
    let mut weights = weights.to_vec();
    let mut current = first_fit_decreasing(&weights, bins, cap)?;
    let mut report = ChurnReport {
        events: 0,
        total_moves: 0,
        max_moves: 0,
    };
    for _ in 0..events {
        let ball = rng.uniform_usize(weights.len());
        // rbb-lint: allow(lossy-cast, reason = "next_below(w_max as u64) < w_max <= u32::MAX")
        weights[ball] = 1 + rng.next_below(u64::from(w_max)) as u32;
        let next = first_fit_decreasing(&weights, bins, cap)?;
        let mut moves = next.moves_versus(&current);
        // The churned ball's own relocation is forced, not collateral.
        if next.assignment[ball] != current.assignment[ball] {
            moves -= 1;
        }
        report.events += 1;
        report.total_moves += moves;
        report.max_moves = report.max_moves.max(moves);
        current = next;
    }
    Some(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packs_the_textbook_example() {
        // Weights {7,6,4,4,3} at cap 10: FFD uses 7+3, 6+4, 4 = 3 bins
        // (optimal).
        let p = first_fit_decreasing(&[7, 6, 4, 4, 3], 5, 10).unwrap();
        assert_eq!(p.bins_used(), 3);
        assert!(p.loads.iter().all(|&l| l <= 10));
        assert_eq!(p.loads.iter().sum::<u64>(), 24);
    }

    #[test]
    fn assignment_respects_capacity_and_mass() {
        let weights = [9u32, 1, 4, 1, 25, 2, 8, 8, 8];
        let p = first_fit_decreasing(&weights, 4, 30).unwrap();
        let mut recount = vec![0u64; 4];
        for (k, &bin) in p.assignment.iter().enumerate() {
            recount[bin as usize] += u64::from(weights[k]);
        }
        assert_eq!(recount, p.loads);
        assert!(p.max_load() <= 30);
    }

    #[test]
    fn infeasible_inputs_return_none() {
        // A ball bigger than cap fits nowhere.
        assert!(first_fit_decreasing(&[11], 3, 10).is_none());
        // Mass exceeds bins * cap.
        assert!(first_fit_decreasing(&[6, 6, 6], 2, 10).is_none());
        assert!(ffd_bins_used(&[11], 10).is_none());
    }

    #[test]
    fn bins_used_is_within_the_ffd_guarantee() {
        // 11/9 * OPT + 6/9; OPT >= ceil(mass/cap).
        let weights: Vec<u32> = (1..=60).map(|k| 1 + (97 * k) % 40).collect();
        let cap = 64u64;
        let used = ffd_bins_used(&weights, cap).unwrap();
        let mass: u64 = weights.iter().map(|&w| u64::from(w)).sum();
        let opt_lb = mass.div_ceil(cap);
        assert!(used as u64 >= opt_lb);
        assert!((used as f64) <= (11.0 / 9.0) * opt_lb as f64 + 6.0 / 9.0 + 1.0);
    }

    #[test]
    fn equal_weights_pack_deterministically() {
        let a = first_fit_decreasing(&[5; 12], 6, 10).unwrap();
        let b = first_fit_decreasing(&[5; 12], 6, 10).unwrap();
        assert_eq!(a, b);
        // Ties broken by index: balls 0,1 share bin 0, balls 2,3 bin 1, …
        assert_eq!(a.assignment, vec![0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5]);
    }

    #[test]
    fn churn_is_deterministic_per_seed() {
        let weights = [3u32; 24];
        let mut r1 = Xoshiro256pp::seed_from(9);
        let mut r2 = Xoshiro256pp::seed_from(9);
        let a = rebalancing_cost_under_churn(&weights, 24, 12, 8, 200, &mut r1).unwrap();
        let b = rebalancing_cost_under_churn(&weights, 24, 12, 8, 200, &mut r2).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.events, 200);
    }

    #[test]
    fn churn_relocations_are_collateral_damage() {
        // Tightly packed equal weights: bumping one ball's weight reshuffles
        // the decreasing order, so FFD relocates balls it did not touch.
        let weights = [4u32; 32];
        let mut rng = Xoshiro256pp::seed_from(11);
        let report = rebalancing_cost_under_churn(&weights, 32, 9, 9, 300, &mut rng).unwrap();
        assert!(
            report.total_moves > 0,
            "full repacking should move untouched balls"
        );
        assert!(report.max_moves >= 1);
        assert!(report.mean_moves() > 0.0);
    }

    #[test]
    fn churn_rejects_degenerate_inputs() {
        let mut rng = Xoshiro256pp::seed_from(1);
        assert!(rebalancing_cost_under_churn(&[], 4, 10, 5, 10, &mut rng).is_none());
        assert!(rebalancing_cost_under_churn(&[3], 1, 10, 0, 10, &mut rng).is_none());
        // cap 4, w_max 9: some draw eventually exceeds cap -> infeasible.
        assert!(rebalancing_cost_under_churn(&[2, 2], 2, 4, 9, 500, &mut rng).is_none());
    }
}
