//! The classical one-shot balls-into-bins baseline.
//!
//! Throwing `m` balls into `n` bins once, independently and u.a.r., yields
//! maximum load `Θ(log n / log log n)` w.h.p. for `m = n` — the comparison
//! point the paper's Section 5 raises when asking whether the repeated
//! process's `O(log n)` bound can be sharpened to `O(log n/log log n)`.

use rbb_core::config::Config;
use rbb_core::rng::Xoshiro256pp;
use rbb_core::sampling::random_assignment;
use rbb_stats::IntHistogram;

/// One one-shot throw: returns the resulting configuration.
///
/// # RNG stream
///
/// Consumes exactly `m` uniform draws from `rng`, one per ball.
pub fn oneshot(n: usize, m: u64, rng: &mut Xoshiro256pp) -> Config {
    Config::from_loads(random_assignment(rng, n, m))
}

/// Maximum load of a single one-shot throw.
///
/// # RNG stream
///
/// Consumes exactly `m` uniform draws from `rng` (one [`oneshot`] throw).
pub fn oneshot_max_load(n: usize, m: u64, rng: &mut Xoshiro256pp) -> u32 {
    oneshot(n, m, rng).max_load()
}

/// Distribution of the one-shot max load over `trials` independent throws.
pub fn oneshot_max_load_distribution(n: usize, m: u64, trials: usize, seed: u64) -> IntHistogram {
    let mut hist = IntHistogram::new();
    for i in 0..trials {
        // rbb-lint: allow(rng-construct, reason = "per-trial stream salted by trial index from the caller's master seed; baselines sits below rbb_sim::seed in the crate graph")
        let mut rng = Xoshiro256pp::stream(seed, i as u64);
        hist.add(oneshot_max_load(n, m, &mut rng) as usize);
    }
    hist
}

/// The asymptotic prediction for `m = n`: `ln n / ln ln n` (leading order).
pub fn predicted_max_load(n: usize) -> f64 {
    rbb_stats::oneshot_max_load_estimate(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oneshot_conserves_mass() {
        let mut rng = Xoshiro256pp::seed_from(1);
        let c = oneshot(100, 100, &mut rng);
        assert_eq!(c.total_balls(), 100);
    }

    #[test]
    fn max_load_at_least_ceiling_average() {
        let mut rng = Xoshiro256pp::seed_from(2);
        // m = 4n: max load >= 4 by pigeonhole.
        assert!(oneshot_max_load(50, 200, &mut rng) >= 4);
    }

    #[test]
    fn max_load_matches_theory_scale() {
        let n = 4096;
        let hist = oneshot_max_load_distribution(n, n as u64, 100, 3);
        let mean = hist.mean();
        let pred = predicted_max_load(n);
        // Θ(ln n/ln ln n): allow a wide multiplicative window; for n = 4096
        // prediction ≈ 3.9, empirical mean ≈ 6–7 (second-order terms).
        assert!(mean > pred && mean < 3.0 * pred, "mean {mean}, pred {pred}");
    }

    #[test]
    fn distribution_is_tight() {
        // One-shot max load concentrates on 2-3 adjacent values.
        let hist = oneshot_max_load_distribution(1024, 1024, 200, 4);
        let lo = hist.quantile(0.05).unwrap();
        let hi = hist.quantile(0.95).unwrap();
        assert!(hi - lo <= 3, "spread {lo}..{hi}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = oneshot_max_load_distribution(256, 256, 50, 7);
        let b = oneshot_max_load_distribution(256, 256, 50, 7);
        assert_eq!(a, b);
    }
}
