//! E24 — window-length scaling of the max load (the "any polynomial"
//! quantifier of Theorem 1, probed directly).
//!
//! Theorem 1(a) holds for windows of *any* polynomial length with the same
//! `O(log n)` bound (the constant absorbs the exponent `c`). Extreme-value
//! heuristics for the near-geometric stationary tail predict the window max
//! grows like `a + b·ln T` in the window length `T` — logarithmically, so
//! any `T = n^c` costs only `c·b·ln n` extra, preserving `O(log n)`. We fix
//! `n` and sweep `T` over four decades to measure exactly that.

use rbb_core::engine::Engine;
use rbb_core::metrics::MaxLoadTracker;
use rbb_core::process::LoadProcess;
use rbb_sim::{fmt_f64, sweep_par_seeded, Table};
use rbb_stats::{log_fit, Summary};

use crate::common::{header, ExpContext};

/// One row of the E24 table.
#[derive(Debug, Clone, serde::Serialize)]
pub struct E24Row {
    /// Number of bins (fixed across the sweep).
    pub n: usize,
    /// Window length.
    pub window: u64,
    /// Mean window max over trials.
    pub mean_window_max: f64,
    /// `mean / ln n`.
    pub ratio_to_ln_n: f64,
}

/// Computes the window sweep at fixed `n`. The longest window is four
/// decades past the shortest, so the trial grid is maximally uneven — the
/// shape the work-stealing [`sweep_par_seeded`] fan-out exists for.
pub fn compute(ctx: &ExpContext, n: usize, windows: &[u64], trials: usize) -> Vec<E24Row> {
    sweep_par_seeded(
        ctx.seeds,
        windows,
        trials,
        |window| format!("w{window}-n{n}"),
        |&window, _i, seed| {
            let mut p = LoadProcess::legitimate_start(n, seed);
            p.run_silent(4 * n as u64); // equilibrate first
            let mut t = MaxLoadTracker::new();
            p.run(window, &mut t);
            t.window_max()
        },
    )
    .into_iter()
    .map(|(window, maxes)| {
        let s = Summary::from_iter(maxes.iter().map(|&x| x as f64));
        E24Row {
            n,
            window,
            mean_window_max: s.mean(),
            ratio_to_ln_n: s.mean() / (n as f64).ln(),
        }
    })
    .collect()
}

/// Runs and prints E24.
pub fn run(ctx: &ExpContext) {
    header(
        "e24",
        "window-length scaling of the max load (Theorem 1(a)'s quantifier)",
        "the window max grows only logarithmically in the window length T, so any poly(n) window stays O(log n)",
    );
    let n = ctx.pick(1024, 256);
    let windows: Vec<u64> = ctx.pick(
        vec![1_000, 10_000, 100_000, 1_000_000, 10_000_000],
        vec![1_000, 10_000],
    );
    let trials = ctx.pick(5, 2);
    let rows = compute(ctx, n, &windows, trials);

    println!(
        "n = {n} (ln n = {:.2}), equilibrated start\n",
        (n as f64).ln()
    );
    let mut table = Table::new(["window T", "mean window max", "mean/ln n"]);
    for r in &rows {
        table.row([
            r.window.to_string(),
            fmt_f64(r.mean_window_max, 2),
            fmt_f64(r.ratio_to_ln_n, 3),
        ]);
    }
    print!("{}", table.render());

    if rows.len() >= 3 {
        let xs: Vec<f64> = rows.iter().map(|r| r.window as f64).collect();
        let ys: Vec<f64> = rows.iter().map(|r| r.mean_window_max).collect();
        let fit = log_fit(&xs, &ys);
        println!(
            "\nlog fit: window max ≈ {} + {}·ln T   (R² = {})",
            fmt_f64(fit.intercept, 2),
            fmt_f64(fit.slope, 2),
            fmt_f64(fit.r_squared, 4)
        );
        println!(
            "paper: a poly window T = n^c multiplies ln T by c, adding only {}·c·ln n — \
             the O(log n) claim survives every polynomial exponent; the slow ln T growth is \
             also why the paper conjectures the poly-window max strictly exceeds the one-shot \
             log n/log log n level.",
            fmt_f64(fit.slope, 2)
        );
    }
    let _ = ctx.sink.write_json("rows", &rows);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn growth_in_window_is_logarithmic() {
        let ctx = ExpContext::for_tests("e24");
        let rows = compute(&ctx, 256, &[1_000, 10_000, 100_000], 2);
        // Monotone, but slow: 100x window adds only a few units.
        assert!(rows[2].mean_window_max >= rows[0].mean_window_max);
        assert!(
            rows[2].mean_window_max - rows[0].mean_window_max < 8.0,
            "grew too fast: {} -> {}",
            rows[0].mean_window_max,
            rows[2].mean_window_max
        );
    }

    #[test]
    fn log_fit_slope_is_small() {
        let ctx = ExpContext::for_tests("e24");
        let rows = compute(&ctx, 256, &[1_000, 10_000, 100_000], 2);
        let xs: Vec<f64> = rows.iter().map(|r| r.window as f64).collect();
        let ys: Vec<f64> = rows.iter().map(|r| r.mean_window_max).collect();
        let fit = log_fit(&xs, &ys);
        assert!(fit.slope >= 0.0 && fit.slope < 2.0, "slope {}", fit.slope);
    }
}
