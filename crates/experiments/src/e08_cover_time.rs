//! E08 — Corollary 1: parallel cover time O(n log² n).
//!
//! Multi-token traversal on the clique under FIFO: the parallel cover time
//! (every token visits every node) is `O(n log² n)` w.h.p., a single log
//! factor above the single-token baseline `O(n log n)`. We sweep `n`,
//! measure both, fit the power law, and report the ratio
//! `parallel / (n ln² n)` which should be flat in `n`.

use rbb_core::strategy::QueueStrategy;
use rbb_sim::{fmt_f64, run_trials_seeded, Table};
use rbb_stats::{power_fit, Summary};
use rbb_traversal::{single_token_cover_time, Traversal};

use crate::common::{header, ExpContext};

/// One row of the E08 table.
#[derive(Debug, Clone, serde::Serialize)]
pub struct E08Row {
    /// Number of nodes/tokens.
    pub n: usize,
    /// Trials.
    pub trials: usize,
    /// Mean parallel cover time.
    pub mean_parallel: f64,
    /// Worst parallel cover time.
    pub worst_parallel: u64,
    /// Mean single-token cover time.
    pub mean_single: f64,
    /// `mean_parallel / (n ln² n)` — Corollary 1 predicts a flat constant.
    pub parallel_over_nlog2n: f64,
    /// `mean_parallel / mean_single` — predicted Θ(log n).
    pub slowdown_vs_single: f64,
}

/// Computes the cover-time table.
pub fn compute(ctx: &ExpContext, sizes: &[usize], trials: usize) -> Vec<E08Row> {
    sizes
        .iter()
        .map(|&n| {
            let nf = n as f64;
            let cap = (200.0 * nf * nf.ln().powi(2)) as u64;
            let scope = ctx.seeds.scope(&format!("n{n}"));
            let parallel: Vec<u64> = run_trials_seeded(scope, trials, |_i, seed| {
                let mut t = Traversal::new(n, QueueStrategy::Fifo, seed);
                t.run_to_cover(cap).expect("cover within generous cap")
            });
            let single_scope = ctx.seeds.scope(&format!("single-n{n}"));
            let single: Vec<u64> = run_trials_seeded(single_scope, trials, |_i, seed| {
                single_token_cover_time(n, seed, cap).expect("single token covers")
            });
            let p = Summary::from_iter(parallel.iter().map(|&x| x as f64));
            let s = Summary::from_iter(single.iter().map(|&x| x as f64));
            E08Row {
                n,
                trials,
                mean_parallel: p.mean(),
                worst_parallel: p.max() as u64,
                mean_single: s.mean(),
                parallel_over_nlog2n: p.mean() / (nf * nf.ln() * nf.ln()),
                slowdown_vs_single: p.mean() / s.mean(),
            }
        })
        .collect()
}

/// Runs and prints E08.
pub fn run(ctx: &ExpContext) {
    header(
        "e08",
        "parallel cover time of multi-token traversal (Corollary 1)",
        "the n-token random-walk protocol on the clique covers in O(n log² n) rounds w.h.p.",
    );
    let sizes: Vec<usize> = ctx.pick(vec![128, 256, 512, 1024, 2048], vec![64, 128]);
    let trials = ctx.pick(10, 3);
    let rows = compute(ctx, &sizes, trials);

    let mut table = Table::new([
        "n",
        "trials",
        "mean parallel cover",
        "worst",
        "mean single cover",
        "parallel/(n ln^2 n)",
        "slowdown (par/single)",
    ]);
    for r in &rows {
        table.row([
            r.n.to_string(),
            r.trials.to_string(),
            fmt_f64(r.mean_parallel, 0),
            r.worst_parallel.to_string(),
            fmt_f64(r.mean_single, 0),
            fmt_f64(r.parallel_over_nlog2n, 3),
            fmt_f64(r.slowdown_vs_single, 2),
        ]);
    }
    print!("{}", table.render());

    if rows.len() >= 3 {
        let xs: Vec<f64> = rows.iter().map(|r| r.n as f64).collect();
        let ys: Vec<f64> = rows.iter().map(|r| r.mean_parallel).collect();
        let fit = power_fit(&xs, &ys);
        println!(
            "\npower fit: parallel cover ≈ {}·n^{}   (R² = {})",
            fmt_f64(fit.coeff, 3),
            fmt_f64(fit.exponent, 3),
            fmt_f64(fit.r_squared, 4)
        );
        println!(
            "paper: n log² n has local log-log slope 1 + 2/ln n ≈ {} over this range; \
             the flat parallel/(n ln² n) column is the sharper check.",
            fmt_f64(1.0 + 2.0 / (rows[rows.len() / 2].n as f64).ln(), 3)
        );
    }
    let _ = ctx.sink.write_json("rows", &rows);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_and_ratio_is_order_one() {
        let ctx = ExpContext::for_tests("e08");
        let rows = compute(&ctx, &[64, 128], 3);
        for r in &rows {
            assert!(r.mean_parallel > 0.0);
            assert!(
                r.parallel_over_nlog2n > 0.1 && r.parallel_over_nlog2n < 3.0,
                "n={}: ratio {}",
                r.n,
                r.parallel_over_nlog2n
            );
            assert!(r.slowdown_vs_single > 1.0, "parallel must be slower");
        }
    }

    #[test]
    fn slowdown_grows_with_n() {
        let ctx = ExpContext::for_tests("e08");
        let rows = compute(&ctx, &[32, 256], 3);
        assert!(
            rows[1].slowdown_vs_single > rows[0].slowdown_vs_single * 0.9,
            "slowdown should trend up: {} vs {}",
            rows[0].slowdown_vs_single,
            rows[1].slowdown_vs_single
        );
    }
}
