//! E21 — mixing of the configuration chain.
//!
//! The paper stresses that the chain is non-reversible and almost certainly
//! lacks a product-form stationary distribution, putting it outside
//! classical queueing analysis; self-stabilization is nonetheless a
//! statement that the chain forgets its start fast. We quantify this two
//! ways: exactly (the enumerative kernel for small `n`: TV decay curve and
//! ε-mixing times), and empirically at scale (TV between per-round
//! max-load distributions from opposite extreme starts after an O(n)
//! burn-in — near zero, as Theorem 1(b) predicts).

use rbb_core::config::Config;
use rbb_core::engine::Engine;
use rbb_core::exact::ExactChain;
use rbb_core::mixing::{mixing_time, tv_decay, MaxLoadDistribution};
use rbb_core::process::LoadProcess;
use rbb_core::rng::Xoshiro256pp;
use rbb_sim::{fmt_f64, Table};
use rbb_stats::tv_distance;

use crate::common::{header, ExpContext};

/// Exact mixing summary for one small chain.
#[derive(Debug, Clone, serde::Serialize)]
pub struct E21Exact {
    /// Bins = balls.
    pub n: usize,
    /// Number of states in the chain.
    pub states: usize,
    /// TV to stationarity after 1, 2, 4, 8, 16 steps from the worst point
    /// start used in the decay curve (all-in-one).
    pub decay: Vec<f64>,
    /// Exact ε = 1/4 mixing time over all starts.
    pub t_mix_quarter: usize,
    /// Exact ε = 0.01 mixing time.
    pub t_mix_hundredth: usize,
}

/// Computes exact mixing for small sizes.
pub fn compute_exact(sizes: &[usize]) -> Vec<E21Exact> {
    sizes
        .iter()
        .map(|&n| {
            let chain = ExactChain::build(n, n as u32);
            let mut start = vec![0u32; n];
            start[0] = n as u32;
            let full = tv_decay(&chain, &start, 16);
            let decay = [1usize, 2, 4, 8, 16].iter().map(|&t| full[t]).collect();
            E21Exact {
                n,
                states: chain.num_states(),
                decay,
                t_mix_quarter: mixing_time(&chain, 0.25, 10_000).expect("mixes"),
                t_mix_hundredth: mixing_time(&chain, 0.01, 10_000).expect("mixes"),
            }
        })
        .collect()
}

/// Empirical two-start TV at scale.
#[derive(Debug, Clone, serde::Serialize)]
pub struct E21Empirical {
    /// Bins = balls.
    pub n: usize,
    /// Burn-in rounds applied to both runs.
    pub burn_in: u64,
    /// Measurement window.
    pub window: u64,
    /// TV between per-round max-load distributions (legitimate start vs
    /// all-in-one start).
    pub tv: f64,
}

/// Computes the empirical comparison.
pub fn compute_empirical(ctx: &ExpContext, n: usize, window: u64) -> E21Empirical {
    let burn_in = 4 * n as u64;
    let seed = ctx.seeds.scope(&format!("emp-n{n}")).master();
    let mut a = LoadProcess::legitimate_start(n, seed);
    let mut b = LoadProcess::new(
        Config::all_in_one(n, n as u32),
        Xoshiro256pp::seed_from(seed ^ 0xFFFF),
    );
    a.run_silent(burn_in);
    b.run_silent(burn_in);
    let mut da = MaxLoadDistribution::new();
    let mut db = MaxLoadDistribution::new();
    a.run(window, &mut da);
    b.run(window, &mut db);
    E21Empirical {
        n,
        burn_in,
        window,
        tv: tv_distance(&da.pmf(), &db.pmf()),
    }
}

/// Runs and prints E21.
pub fn run(ctx: &ExpContext) {
    header(
        "e21",
        "mixing of the configuration chain",
        "the non-reversible chain forgets any start: exact TV decay (small n) and two-start agreement at scale",
    );
    let sizes: Vec<usize> = ctx.pick(vec![2, 3, 4, 5], vec![2, 3]);
    let exact = compute_exact(&sizes);

    let mut table = Table::new([
        "n",
        "states",
        "TV@1",
        "TV@2",
        "TV@4",
        "TV@8",
        "TV@16",
        "t_mix(1/4)",
        "t_mix(0.01)",
    ]);
    for r in &exact {
        table.row([
            r.n.to_string(),
            r.states.to_string(),
            fmt_f64(r.decay[0], 3),
            fmt_f64(r.decay[1], 3),
            fmt_f64(r.decay[2], 3),
            fmt_f64(r.decay[3], 3),
            fmt_f64(r.decay[4], 4),
            r.t_mix_quarter.to_string(),
            r.t_mix_hundredth.to_string(),
        ]);
    }
    print!("{}", table.render());

    let n = ctx.pick(1024, 128);
    let window = ctx.pick(200_000u64, 20_000);
    let emp = compute_empirical(ctx, n, window);
    println!(
        "\nempirical at n = {}: TV between max-load distributions from opposite extreme starts \
         after {} burn-in rounds = {} (≈ 0: the start is forgotten within O(n) rounds).",
        emp.n,
        emp.burn_in,
        fmt_f64(emp.tv, 4)
    );
    let _ = ctx.sink.write_json("exact", &exact);
    let _ = ctx.sink.write_json("empirical", &emp);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_mixing_is_fast() {
        let rows = compute_exact(&[2, 3]);
        for r in &rows {
            assert!(r.t_mix_quarter <= r.t_mix_hundredth);
            assert!(r.t_mix_hundredth < 100, "t_mix {}", r.t_mix_hundredth);
            // Decay is monotone along the sampled checkpoints.
            for w in r.decay.windows(2) {
                assert!(w[1] <= w[0] + 1e-12);
            }
        }
    }

    #[test]
    fn empirical_tv_is_tiny() {
        let ctx = ExpContext::for_tests("e21");
        let emp = compute_empirical(&ctx, 128, 50_000);
        assert!(emp.tv < 0.06, "TV {}", emp.tv);
    }
}
