//! E13 — Section 5 open question: general graphs.
//!
//! The paper conjectures the maximum load stays logarithmic for a long
//! period on any *regular* graph, and notes that even rings are open. We run
//! the constrained parallel walk on ring, torus, hypercube, random 4-regular
//! and the clique (with self-loops — exactly the paper's process) at matched
//! `n`, and report window max loads; non-regular controls (star) show how
//! irregularity breaks the conjecture.

use rbb_core::metrics::ObserverStack;
use rbb_sim::{fmt_f64, run_trials_seeded, ScenarioSpec, Table, TopologySpec};
use rbb_stats::Summary;

use crate::common::{header, ExpContext};

/// One row of the E13 table.
#[derive(Debug, Clone, serde::Serialize)]
pub struct E13Row {
    /// Topology label.
    pub topology: String,
    /// Number of nodes.
    pub n: usize,
    /// Regular degree, if regular.
    pub degree: Option<usize>,
    /// Window length.
    pub window: u64,
    /// Mean window max load.
    pub mean_window_max: f64,
    /// `mean / ln n`.
    pub ratio_to_ln_n: f64,
}

fn topology_spec(name: &str) -> TopologySpec {
    match name {
        // Through the *graph* engine (neighbor sampler), keeping every row
        // of the table on the same sampling footing — and the historical
        // RNG stream.
        "clique+loops" => TopologySpec::CompleteGraph,
        "ring" => TopologySpec::Ring,
        "torus" => TopologySpec::Torus,
        "hypercube" => TopologySpec::Hypercube,
        // The historical per-trial graph stream: `seed ^ 0x6EA9`.
        "random-4-regular" => TopologySpec::RandomRegular {
            degree: 4,
            salt: 0x6EA9,
        },
        "star" => TopologySpec::Star,
        other => panic!("unknown topology {other}"),
    }
}

/// All topologies in the sweep.
pub const TOPOLOGIES: [&str; 6] = [
    "clique+loops",
    "hypercube",
    "torus",
    "random-4-regular",
    "ring",
    "star",
];

/// The declarative scenario behind one E13 cell: the load-only constrained
/// walk on the named topology for `window_factor · n` rounds (the factor
/// horizon tracks the builder's rounding of `n`, as before).
pub fn spec_for(name: &str, n: usize, window_factor: u64) -> ScenarioSpec {
    ScenarioSpec::builder(n)
        .name("e13-graphs")
        .topology(topology_spec(name))
        .horizon_factor(window_factor)
        .build()
}

/// Computes the topology table at size ~`n` (exact for powers of two /
/// perfect squares; the builders round as needed).
///
/// Note the clique row runs through [`TopologySpec::Complete`]'s graph
/// engine — the same uniform-destination walk as the dedicated load engine,
/// drawn through the neighbor sampler, exactly as E13 always did.
pub fn compute(ctx: &ExpContext, n: usize, trials: usize, window_factor: u64) -> Vec<E13Row> {
    TOPOLOGIES
        .iter()
        .map(|&name| {
            let scope = ctx.seeds.scope(&format!("{name}-n{n}"));
            let maxes: Vec<u32> = run_trials_seeded(scope, trials, |_i, seed| {
                let mut scenario = spec_for(name, n, window_factor)
                    .scenario_seeded(seed)
                    .expect("valid spec");
                let mut stack = ObserverStack::new().with_max_load();
                scenario.run_observed(&mut stack);
                stack.max_load.expect("enabled").window_max()
            });
            // Rebuild once to report structure (deterministic topologies).
            let g = topology_spec(name).build(n, 0);
            let actual_n = g.n();
            let s = Summary::from_iter(maxes.iter().map(|&x| x as f64));
            E13Row {
                topology: name.to_string(),
                n: actual_n,
                degree: g.regular_degree(),
                window: window_factor * actual_n as u64,
                mean_window_max: s.mean(),
                ratio_to_ln_n: s.mean() / (actual_n as f64).ln(),
            }
        })
        .collect()
}

/// Runs and prints E13.
pub fn run(ctx: &ExpContext) {
    header(
        "e13",
        "constrained parallel walks on general graphs (Section 5 open question)",
        "conjecture: max load stays logarithmic on regular graphs; rings are the hard open case",
    );
    let n = ctx.pick(1024, 256);
    let trials = ctx.pick(10, 3);
    let window_factor = ctx.pick(100, 20);
    let rows = compute(ctx, n, trials, window_factor);

    let mut table = Table::new([
        "topology",
        "n",
        "degree",
        "window",
        "mean window max",
        "mean/ln n",
    ]);
    for r in &rows {
        table.row([
            r.topology.clone(),
            r.n.to_string(),
            r.degree.map(|d| d.to_string()).unwrap_or("-".into()),
            r.window.to_string(),
            fmt_f64(r.mean_window_max, 2),
            fmt_f64(r.ratio_to_ln_n, 3),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nregular topologies stay O(log n)-flat (supporting the conjecture); \
         the star (non-regular control) concentrates load at the hub."
    );
    let _ = ctx.sink.write_json("rows", &rows);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regular_graphs_stay_logarithmic() {
        let ctx = ExpContext::for_tests("e13");
        let rows = compute(&ctx, 256, 2, 10);
        for r in rows.iter().filter(|r| r.degree.is_some()) {
            assert!(
                r.ratio_to_ln_n < 6.0,
                "{}: ratio {}",
                r.topology,
                r.ratio_to_ln_n
            );
        }
    }

    #[test]
    fn star_is_worst() {
        let ctx = ExpContext::for_tests("e13");
        let rows = compute(&ctx, 256, 2, 10);
        let star = rows.iter().find(|r| r.topology == "star").unwrap();
        let clique = rows.iter().find(|r| r.topology == "clique+loops").unwrap();
        assert!(
            star.mean_window_max > clique.mean_window_max,
            "star {} vs clique {}",
            star.mean_window_max,
            clique.mean_window_max
        );
    }

    #[test]
    fn topologies_build_at_256() {
        for t in TOPOLOGIES {
            let g = topology_spec(t).build(256, 1);
            assert!(g.is_connected(), "{t} disconnected");
        }
    }
}
