//! E13 — Section 5 open question: general graphs.
//!
//! The paper conjectures the maximum load stays logarithmic for a long
//! period on any *regular* graph, and notes that even rings are open. We run
//! the constrained parallel walk on ring, torus, hypercube, random 4-regular
//! and the clique (with self-loops — exactly the paper's process) at matched
//! `n`, and report window max loads; non-regular controls (star) show how
//! irregularity breaks the conjecture.

use rbb_core::metrics::MaxLoadTracker;
use rbb_core::rng::Xoshiro256pp;
use rbb_graphs::{
    complete_with_loops, hypercube, random_regular, ring, star, torus, Graph, GraphLoadProcess,
};
use rbb_sim::{fmt_f64, run_trials_seeded, Table};
use rbb_stats::Summary;

use crate::common::{header, ExpContext};

/// One row of the E13 table.
#[derive(Debug, Clone, serde::Serialize)]
pub struct E13Row {
    /// Topology label.
    pub topology: String,
    /// Number of nodes.
    pub n: usize,
    /// Regular degree, if regular.
    pub degree: Option<usize>,
    /// Window length.
    pub window: u64,
    /// Mean window max load.
    pub mean_window_max: f64,
    /// `mean / ln n`.
    pub ratio_to_ln_n: f64,
}

fn build_topology(name: &str, n: usize, seed: u64) -> Graph {
    match name {
        "clique+loops" => complete_with_loops(n),
        "ring" => ring(n),
        "torus" => {
            let side = (n as f64).sqrt().round() as usize;
            torus(side, side)
        }
        "hypercube" => hypercube((n as f64).log2().round() as u32),
        "random-4-regular" => {
            let mut rng = Xoshiro256pp::seed_from(seed ^ 0x6EA9);
            random_regular(n, 4, &mut rng)
        }
        "star" => star(n),
        other => panic!("unknown topology {other}"),
    }
}

/// All topologies in the sweep.
pub const TOPOLOGIES: [&str; 6] = [
    "clique+loops",
    "hypercube",
    "torus",
    "random-4-regular",
    "ring",
    "star",
];

/// Computes the topology table at size ~`n` (exact for powers of two /
/// perfect squares; the builders round as needed).
pub fn compute(ctx: &ExpContext, n: usize, trials: usize, window_factor: u64) -> Vec<E13Row> {
    TOPOLOGIES
        .iter()
        .map(|&name| {
            let scope = ctx.seeds.scope(&format!("{name}-n{n}"));
            let maxes: Vec<u32> = run_trials_seeded(scope, trials, |_i, seed| {
                let g = build_topology(name, n, seed);
                let mut p = GraphLoadProcess::one_per_node(&g, seed);
                let mut t = MaxLoadTracker::new();
                p.run(window_factor * g.n() as u64, &mut t);
                t.window_max()
            });
            // Rebuild once to report structure (deterministic topologies).
            let g = build_topology(name, n, 0);
            let actual_n = g.n();
            let s = Summary::from_iter(maxes.iter().map(|&x| x as f64));
            E13Row {
                topology: name.to_string(),
                n: actual_n,
                degree: g.regular_degree(),
                window: window_factor * actual_n as u64,
                mean_window_max: s.mean(),
                ratio_to_ln_n: s.mean() / (actual_n as f64).ln(),
            }
        })
        .collect()
}

/// Runs and prints E13.
pub fn run(ctx: &ExpContext) {
    header(
        "e13",
        "constrained parallel walks on general graphs (Section 5 open question)",
        "conjecture: max load stays logarithmic on regular graphs; rings are the hard open case",
    );
    let n = ctx.pick(1024, 256);
    let trials = ctx.pick(10, 3);
    let window_factor = ctx.pick(100, 20);
    let rows = compute(ctx, n, trials, window_factor);

    let mut table = Table::new([
        "topology",
        "n",
        "degree",
        "window",
        "mean window max",
        "mean/ln n",
    ]);
    for r in &rows {
        table.row([
            r.topology.clone(),
            r.n.to_string(),
            r.degree.map(|d| d.to_string()).unwrap_or("-".into()),
            r.window.to_string(),
            fmt_f64(r.mean_window_max, 2),
            fmt_f64(r.ratio_to_ln_n, 3),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nregular topologies stay O(log n)-flat (supporting the conjecture); \
         the star (non-regular control) concentrates load at the hub."
    );
    let _ = ctx.sink.write_json("rows", &rows);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regular_graphs_stay_logarithmic() {
        let ctx = ExpContext::for_tests("e13");
        let rows = compute(&ctx, 256, 2, 10);
        for r in rows.iter().filter(|r| r.degree.is_some()) {
            assert!(
                r.ratio_to_ln_n < 6.0,
                "{}: ratio {}",
                r.topology,
                r.ratio_to_ln_n
            );
        }
    }

    #[test]
    fn star_is_worst() {
        let ctx = ExpContext::for_tests("e13");
        let rows = compute(&ctx, 256, 2, 10);
        let star = rows.iter().find(|r| r.topology == "star").unwrap();
        let clique = rows.iter().find(|r| r.topology == "clique+loops").unwrap();
        assert!(
            star.mean_window_max > clique.mean_window_max,
            "star {} vs clique {}",
            star.mean_window_max,
            clique.mean_window_max
        );
    }

    #[test]
    fn topologies_build_at_256() {
        for t in TOPOLOGIES {
            let g = build_topology(t, 256, 1);
            assert!(g.is_connected(), "{t} disconnected");
        }
    }
}
