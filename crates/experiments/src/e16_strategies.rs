//! E16 — strategy obliviousness (Section 2, footnote 2).
//!
//! The paper's results hold for *any* queue-selection strategy because the
//! load process does not depend on which ball a bin releases. We verify this
//! two ways: (a) statistically — FIFO/LIFO/random window-max distributions
//! coincide within confidence intervals; (b) exactly — with a shared seed
//! the FIFO and LIFO load trajectories are bit-identical (they consume the
//! RNG identically), which the unit tests of `rbb-core` also pin down.

use rbb_core::ball_process::BallProcess;
use rbb_core::config::Config;
use rbb_core::metrics::ObserverStack;
use rbb_core::rng::Xoshiro256pp;
use rbb_core::strategy::QueueStrategy;
use rbb_sim::{fmt_f64, run_trials_seeded, ScenarioSpec, StrategySpec, Table};
use rbb_stats::{mean_ci, Summary};

use crate::common::{header, ExpContext};

/// One row of the E16 table.
#[derive(Debug, Clone, serde::Serialize)]
pub struct E16Row {
    /// Strategy label.
    pub strategy: String,
    /// Number of bins.
    pub n: usize,
    /// Trials.
    pub trials: usize,
    /// Mean window max.
    pub mean_window_max: f64,
    /// 95% CI half-width of the mean.
    pub ci_half_width: f64,
}

/// The declarative scenario behind one E16 cell: the ball-identity engine
/// under the given queue strategy over a `100·n` window.
pub fn spec_for(n: usize, strategy: QueueStrategy) -> ScenarioSpec {
    ScenarioSpec::builder(n)
        .name("e16-strategies")
        .strategy(StrategySpec::from_core(strategy))
        .horizon_factor(100)
        .build()
}

/// Computes per-strategy window-max summaries. All strategies share the same
/// per-trial seeds (same scope), so differences are strategy-only.
pub fn compute(ctx: &ExpContext, n: usize, trials: usize) -> Vec<E16Row> {
    QueueStrategy::ALL
        .iter()
        .map(|&strategy| {
            let scope = ctx.seeds.scope(&format!("n{n}")); // shared across strategies
            let maxes: Vec<u32> = run_trials_seeded(scope, trials, |_i, seed| {
                let mut scenario = spec_for(n, strategy)
                    .scenario_seeded(seed)
                    .expect("valid spec");
                let mut stack = ObserverStack::new().with_max_load();
                scenario.run_observed(&mut stack);
                stack.max_load.expect("enabled").window_max()
            });
            let s = Summary::from_iter(maxes.iter().map(|&x| x as f64));
            let ci = mean_ci(&s, 0.95);
            E16Row {
                strategy: strategy.label().to_string(),
                n,
                trials,
                mean_window_max: s.mean(),
                ci_half_width: ci.width() / 2.0,
            }
        })
        .collect()
}

/// Exact check: FIFO and LIFO load trajectories coincide bit-for-bit under a
/// shared seed. Returns the number of rounds compared.
pub fn exact_invariance_check(n: usize, rounds: u64, seed: u64) -> u64 {
    let mut fifo = BallProcess::new(
        Config::one_per_bin(n),
        QueueStrategy::Fifo,
        Xoshiro256pp::seed_from(seed),
    );
    let mut lifo = BallProcess::new(
        Config::one_per_bin(n),
        QueueStrategy::Lifo,
        Xoshiro256pp::seed_from(seed),
    );
    for t in 0..rounds {
        fifo.step();
        lifo.step();
        assert_eq!(
            fifo.config(),
            lifo.config(),
            "trajectories diverged at round {t}"
        );
    }
    rounds
}

/// Runs and prints E16.
pub fn run(ctx: &ExpContext) {
    header(
        "e16",
        "queue-strategy obliviousness (Section 2)",
        "the load process is identical for FIFO/LIFO/random selection; max-load distributions coincide",
    );
    let n = ctx.pick(1024, 256);
    let trials = ctx.pick(30, 5);
    let rows = compute(ctx, n, trials);

    let mut table = Table::new(["strategy", "n", "trials", "mean window max", "95% CI ±"]);
    for r in &rows {
        table.row([
            r.strategy.clone(),
            r.n.to_string(),
            r.trials.to_string(),
            fmt_f64(r.mean_window_max, 3),
            fmt_f64(r.ci_half_width, 3),
        ]);
    }
    print!("{}", table.render());

    let rounds = exact_invariance_check(128, 2000, ctx.seeds.master());
    println!(
        "\nexact check: FIFO and LIFO load trajectories bit-identical for {rounds} rounds under a shared seed."
    );
    println!("(FIFO/LIFO consume the RNG identically; `random` differs in draws but not in law.)");
    let _ = ctx.sink.write_json("rows", &rows);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distributions_overlap() {
        let ctx = ExpContext::for_tests("e16");
        let rows = compute(&ctx, 256, 8);
        let means: Vec<f64> = rows.iter().map(|r| r.mean_window_max).collect();
        let spread = means.iter().cloned().fold(f64::MIN, f64::max)
            - means.iter().cloned().fold(f64::MAX, f64::min);
        // Means within 2 units of each other at this size.
        assert!(spread < 2.0, "strategy means spread {spread}: {means:?}");
    }

    #[test]
    fn exact_invariance_holds() {
        assert_eq!(exact_invariance_check(64, 500, 7), 500);
    }

    #[test]
    fn fifo_and_lifo_rows_identical() {
        // Shared seeds + identical RNG consumption ⇒ identical samples.
        let ctx = ExpContext::for_tests("e16");
        let rows = compute(&ctx, 128, 4);
        let fifo = rows.iter().find(|r| r.strategy == "fifo").unwrap();
        let lifo = rows.iter().find(|r| r.strategy == "lifo").unwrap();
        assert_eq!(fifo.mean_window_max, lifo.mean_window_max);
    }
}
