//! E25 — the sparse regime: `m ≪ n` at scales the dense engine cannot
//! reach.
//!
//! The paper defines the process for any `m ≤ n` and its stability /
//! self-stabilization claims are most interesting at scale, but an `O(n)`-
//! per-round engine caps experiments near `n ~ 10^5`. The sparse occupancy
//! engine (`rbb_core::sparse`, `engine: "sparse"` at the spec layer) runs a
//! round in `O(#non-empty bins)` with `O(m)` memory, so this experiment
//! probes `n ∈ {10^6, 10^7, 10^8}`:
//!
//! * **Stability** (`m ∈ {10^3, 10^5}`, random start): window max load
//!   over a fixed window, with the empirical probability that it crosses
//!   the `⌈4 ln n⌉` legitimacy bound (Wilson 95% upper bound). With `m ≪ n`
//!   collisions are rare, so the max load should sit far *below* the
//!   `m = n` regime's `Θ(log n / log log n)` level — near the pure
//!   one-shot balls-into-bins maximum for `m` balls.
//! * **Convergence** (`m = 10^3`, all-in-one start, stop at legitimacy):
//!   Theorem 1(b)'s `O(n)` bound is wildly loose here — bin 0 drains one
//!   ball per round, so stabilization takes `≈ m − 4 ln n` rounds,
//!   *independent of n*. The table reports the measured stop round and its
//!   ratio to `m`.
//!
//! Every cell is a declarative [`EnsembleSpec`] over a spec with
//! `engine: "sparse"`; because the sparse engine is bit-identical in
//! trajectory to the dense one (see `crates/sim/src/spec.rs`), the tables
//! would be unchanged cell-for-cell under `engine: "dense"` — the unit
//! tests pin exactly that at test sizes.

use rbb_sim::{
    fmt_f64, EngineSpec, EnsembleSpec, MetricKind, MetricSpec, ScenarioSpec, StartSpec, StopSpec,
};

use crate::common::{header, ExpContext};

/// Salt of the random-start stream (`seed ^ salt`), fixed so committed
/// numbers regenerate.
const START_SALT: u64 = 0x5AA5E;

/// Stability window (rounds) per cell — fixed, not `O(n)`: the sparse
/// regime's cost scale is `m`, not `n`.
const STABILITY_WINDOW: u64 = 2_000;

/// One row of the stability table.
#[derive(Debug, Clone, serde::Serialize)]
pub struct E25StabilityRow {
    /// Number of bins.
    pub n: usize,
    /// Number of balls (`m ≪ n`).
    pub m: u64,
    /// Mean window max load over the ensemble.
    pub mean_window_max: f64,
    /// The legitimacy bound `⌈4 ln n⌉`.
    pub bound: u32,
    /// Empirical `P(window max > bound)`.
    pub p_violation: f64,
    /// Wilson 95% upper bound on that probability.
    pub p_violation_hi: f64,
}

/// One row of the convergence table.
#[derive(Debug, Clone, serde::Serialize)]
pub struct E25ConvergenceRow {
    /// Number of bins.
    pub n: usize,
    /// Number of balls.
    pub m: u64,
    /// Mean round at which legitimacy was first reached.
    pub mean_stop_round: f64,
    /// `mean_stop_round / m` — the drain-rate prediction says ≈ 1.
    pub stop_over_m: f64,
    /// Trials that failed to converge within the horizon.
    pub missing: u64,
}

/// The declarative scenario behind one stability cell: `m` balls thrown
/// u.a.r. (multinomial fast-path init) into `n` bins, sparse engine, fixed
/// window.
pub fn stability_spec(n: usize, m: u64) -> ScenarioSpec {
    ScenarioSpec::builder(n)
        .name("e25-sparse-stability")
        .balls(m)
        .start(StartSpec::RandomMultinomial { salt: START_SALT })
        .engine(EngineSpec::Sparse)
        .horizon_rounds(STABILITY_WINDOW)
        .build()
}

/// The declarative scenario behind one convergence cell: all `m` balls in
/// bin 0, run until legitimate.
pub fn convergence_spec(n: usize, m: u64) -> ScenarioSpec {
    ScenarioSpec::builder(n)
        .name("e25-sparse-convergence")
        .balls(m)
        .start(StartSpec::AllInOne)
        .engine(EngineSpec::Sparse)
        .stop(StopSpec::Legitimate)
        .horizon_rounds(4 * m + 1_000)
        .build()
}

/// Computes the stability table (one streaming ensemble per `(n, m)` cell).
pub fn compute_stability(
    ctx: &ExpContext,
    grid: &[(usize, u64)],
    trials: usize,
) -> Vec<E25StabilityRow> {
    grid.iter()
        .map(|&(n, m)| {
            let bound = (4.0 * (n as f64).ln()).ceil() as u32;
            let report = EnsembleSpec::new(
                stability_spec(n, m),
                ctx.seeds.scope(&format!("stab-n{n}-m{m}")).master(),
                trials,
            )
            .with_metrics(vec![MetricSpec::with_thresholds(
                MetricKind::WindowMaxLoad,
                vec![bound as f64 + 1.0],
            )])
            .run()
            .expect("valid ensemble");
            let wml = report
                .metric(MetricKind::WindowMaxLoad)
                .expect("requested metric");
            let tail = wml.tail_at(bound as f64 + 1.0).expect("requested tail");
            E25StabilityRow {
                n,
                m,
                mean_window_max: wml.mean,
                bound,
                p_violation: tail.probability,
                p_violation_hi: tail.wilson.hi,
            }
        })
        .collect()
}

/// Computes the convergence table.
pub fn compute_convergence(
    ctx: &ExpContext,
    grid: &[(usize, u64)],
    trials: usize,
) -> Vec<E25ConvergenceRow> {
    grid.iter()
        .map(|&(n, m)| {
            let report = EnsembleSpec::new(
                convergence_spec(n, m),
                ctx.seeds.scope(&format!("conv-n{n}-m{m}")).master(),
                trials,
            )
            .with_metrics(vec![MetricSpec::plain(MetricKind::StopRound)])
            .run()
            .expect("valid ensemble");
            let sr = report.metric(MetricKind::StopRound).expect("requested");
            E25ConvergenceRow {
                n,
                m,
                mean_stop_round: sr.mean,
                stop_over_m: sr.mean / m as f64,
                missing: sr.missing,
            }
        })
        .collect()
}

/// Runs and prints E25.
pub fn run(ctx: &ExpContext) {
    header(
        "e25",
        "the sparse regime (m ≪ n) at engine-breaking scale",
        "stability holds with room to spare and convergence is Θ(m) — not Θ(n) — when m ≪ n",
    );
    let stab_grid: Vec<(usize, u64)> = if ctx.quick {
        vec![(1 << 20, 256), (1 << 20, 4_096)]
    } else {
        vec![
            (1_000_000, 1_000),
            (1_000_000, 100_000),
            (10_000_000, 1_000),
            (10_000_000, 100_000),
            (100_000_000, 1_000),
            (100_000_000, 100_000),
        ]
    };
    let conv_grid: Vec<(usize, u64)> = if ctx.quick {
        vec![(1 << 20, 256)]
    } else {
        vec![
            (1_000_000, 1_000),
            (10_000_000, 1_000),
            (100_000_000, 1_000),
        ]
    };
    let trials = ctx.pick(5, 2);

    let stab = compute_stability(ctx, &stab_grid, trials);
    println!("stability: window max load over {STABILITY_WINDOW} rounds, random start\n");
    let mut table = rbb_sim::Table::new([
        "n",
        "m",
        "mean window max",
        "bound 4 ln n",
        "P(viol)",
        "wilson hi",
    ]);
    for r in &stab {
        table.row([
            r.n.to_string(),
            r.m.to_string(),
            fmt_f64(r.mean_window_max, 2),
            r.bound.to_string(),
            fmt_f64(r.p_violation, 3),
            fmt_f64(r.p_violation_hi, 3),
        ]);
    }
    print!("{}", table.render());

    let conv = compute_convergence(ctx, &conv_grid, trials);
    println!("\nconvergence: all-in-one start, stop at first legitimate configuration\n");
    let mut table = rbb_sim::Table::new(["n", "m", "mean stop round", "stop / m", "missing"]);
    for r in &conv {
        table.row([
            r.n.to_string(),
            r.m.to_string(),
            fmt_f64(r.mean_stop_round, 1),
            fmt_f64(r.stop_over_m, 3),
            r.missing.to_string(),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nfinding: with m ≪ n the window max sits far below the 4 ln n bound (collisions are \
         rare, so loads look like a one-shot throw of m balls), and convergence from the point \
         mass tracks m — bin 0 drains one ball per round — independent of n. Rounds cost \
         O(#occupied), so n = 10^8 runs as fast as n = 10^6 at equal m."
    );
    let _ = ctx.sink.write_json("stability", &stab);
    let _ = ctx.sink.write_json("convergence", &conv);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbb_sim::EngineSpec;

    #[test]
    fn sparse_tables_are_bit_identical_to_dense_engine() {
        // The experiment's entire premise: the engine choice is invisible
        // in the numbers. Run one stability cell both ways at test size.
        let ctx = ExpContext::for_tests("e25");
        let n = 1 << 14;
        let m = 64;
        let master = ctx.seeds.scope("equiv").master();
        let mk = |engine: EngineSpec| {
            let mut spec = stability_spec(n, m);
            spec.engine = Some(engine);
            EnsembleSpec::new(spec, master, 3)
                .with_metrics(vec![MetricSpec::plain(MetricKind::WindowMaxLoad)])
                .run()
                .unwrap()
        };
        let sparse = mk(EngineSpec::Sparse);
        let dense = mk(EngineSpec::Dense);
        assert_eq!(sparse.to_json(), dense.to_json());
    }

    #[test]
    fn stability_stays_below_bound_at_quick_sizes() {
        let ctx = ExpContext::for_tests("e25");
        let rows = compute_stability(&ctx, &[(1 << 16, 64), (1 << 16, 512)], 2);
        for r in &rows {
            assert!(r.mean_window_max >= 1.0);
            assert!(
                r.mean_window_max < r.bound as f64,
                "n={} m={}: {} >= bound {}",
                r.n,
                r.m,
                r.mean_window_max,
                r.bound
            );
            assert_eq!(r.p_violation, 0.0);
        }
        // More balls → higher (or equal) max load.
        assert!(rows[1].mean_window_max >= rows[0].mean_window_max);
    }

    #[test]
    fn convergence_tracks_m_not_n() {
        let ctx = ExpContext::for_tests("e25");
        let rows = compute_convergence(&ctx, &[(1 << 14, 200), (1 << 16, 200)], 2);
        for r in &rows {
            assert_eq!(r.missing, 0, "n={}: did not converge", r.n);
            // Drain-rate prediction: about m - 4 ln n rounds, never more
            // than the 4m horizon and at least m - bound.
            let bound = (4.0 * (r.n as f64).ln()).ceil();
            assert!(r.mean_stop_round >= r.m as f64 - bound - 1.0);
            assert!(r.stop_over_m < 2.0, "stop/m = {}", r.stop_over_m);
        }
        // Quadrupling n barely moves the stop round (it only enters via ln n).
        let gap = (rows[0].mean_stop_round - rows[1].mean_stop_round).abs();
        assert!(
            gap < 60.0,
            "stop rounds {} vs {}",
            rows[0].mean_stop_round,
            rows[1].mean_stop_round
        );
    }
}
