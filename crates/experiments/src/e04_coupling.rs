//! E04 — Lemma 3: the Tetris coupling dominates.
//!
//! Running the original process and Tetris in the joint space of Lemma 3
//! (destination reuse in case (i), independence in case (ii)), Tetris must
//! dominate the original bin-wise in every round where case (ii) has not yet
//! fired — hence `M̂_T ≥ M_T`. We run the coupled pair from random starts
//! with ≥ n/4 empty bins and report domination and case-(ii) statistics.

use rbb_core::config::Config;
use rbb_core::coupling::CoupledRun;
use rbb_core::rng::Xoshiro256pp;
use rbb_core::sampling::random_assignment;
use rbb_sim::{fmt_f64, run_trials_seeded, Table};
use rbb_stats::Summary;

use crate::common::{header, ExpContext};

/// One row of the E04 table.
#[derive(Debug, Clone, serde::Serialize)]
pub struct E04Row {
    /// Number of bins/balls.
    pub n: usize,
    /// Window length.
    pub window: u64,
    /// Trials.
    pub trials: usize,
    /// Trials in which case (ii) ever fired (paper: probability e^{-γn}).
    pub case_ii_trials: usize,
    /// Total domination violations before any case (ii) (must be 0).
    pub violations: u64,
    /// Mean window max of the original process.
    pub mean_original_max: f64,
    /// Mean window max of the Tetris majorant.
    pub mean_tetris_max: f64,
    /// Trials where `M̂_T ≥ M_T` held.
    pub dominated_trials: usize,
}

fn coupling_start(n: usize, seed: u64) -> Config {
    let mut rng = Xoshiro256pp::seed_from(seed ^ 0x1234_5678);
    loop {
        let c = Config::from_loads(random_assignment(&mut rng, n, n as u64));
        if 4 * c.empty_bins() >= n {
            return c;
        }
    }
}

/// Computes the coupling table.
pub fn compute(ctx: &ExpContext, sizes: &[usize], trials: usize) -> Vec<E04Row> {
    sizes
        .iter()
        .map(|&n| {
            let window = 100 * n as u64;
            let scope = ctx.seeds.scope(&format!("n{n}"));
            let reports = run_trials_seeded(scope, trials, |_i, seed| {
                let run = CoupledRun::new(coupling_start(n, seed), seed)
                    .expect("start satisfies the Lemma 3 precondition");
                run.run(window)
            });
            let orig = Summary::from_iter(reports.iter().map(|r| r.original_window_max as f64));
            let tet = Summary::from_iter(reports.iter().map(|r| r.tetris_window_max as f64));
            E04Row {
                n,
                window,
                trials,
                case_ii_trials: reports.iter().filter(|r| r.case_ii_rounds > 0).count(),
                violations: reports
                    .iter()
                    .map(|r| r.domination_violations_before_case_ii)
                    .sum(),
                mean_original_max: orig.mean(),
                mean_tetris_max: tet.mean(),
                dominated_trials: reports
                    .iter()
                    .filter(|r| r.tetris_window_max >= r.original_window_max)
                    .count(),
            }
        })
        .collect()
}

/// Runs and prints E04.
pub fn run(ctx: &ExpContext) {
    header(
        "e04",
        "Tetris stochastically dominates the original process (Lemma 3)",
        "coupled bin-wise domination holds every round unless case (ii) fires, which has probability ≤ T·e^{-γn}",
    );
    let sizes: Vec<usize> = ctx.pick(vec![256, 512, 1024, 2048, 4096], vec![128, 256]);
    let trials = ctx.pick(10, 3);
    let rows = compute(ctx, &sizes, trials);

    let mut table = Table::new([
        "n",
        "window",
        "trials",
        "case-ii trials",
        "violations",
        "mean M_T (orig)",
        "mean M^_T (tetris)",
        "dominated",
    ]);
    for r in &rows {
        table.row([
            r.n.to_string(),
            r.window.to_string(),
            r.trials.to_string(),
            r.case_ii_trials.to_string(),
            r.violations.to_string(),
            fmt_f64(r.mean_original_max, 2),
            fmt_f64(r.mean_tetris_max, 2),
            format!("{}/{}", r.dominated_trials, r.trials),
        ]);
    }
    print!("{}", table.render());
    println!("\npaper: violations = 0, case-ii ≈ never (e^{{-γn}}), and M^_T ≥ M_T throughout.");
    let _ = ctx.sink.write_json("rows", &rows);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domination_certified_everywhere() {
        let ctx = ExpContext::for_tests("e04");
        let rows = compute(&ctx, &[128, 256], 4);
        for r in &rows {
            assert_eq!(r.violations, 0, "n={}", r.n);
            assert_eq!(r.case_ii_trials, 0, "n={}", r.n);
            assert_eq!(r.dominated_trials, r.trials);
            assert!(r.mean_tetris_max >= r.mean_original_max);
        }
    }

    #[test]
    fn start_generator_meets_precondition() {
        for seed in 0..20 {
            let c = coupling_start(64, seed);
            assert!(4 * c.empty_bins() >= 64);
            assert_eq!(c.total_balls(), 64);
        }
    }
}
