//! E17 — per-token progress Ω(t / log n) under FIFO (Section 4).
//!
//! Theorem 1 + FIFO imply every ball performs at least `Ω(t/log n)` steps of
//! its random walk over any `t = poly(n)` rounds w.h.p. We run the identity
//! engine, report min/mean progress and the normalized ratio
//! `min_moves / (t/ln n)`, and contrast with LIFO (which can starve a token
//! and breaks the guarantee's proof, though rarely its statement from
//! legitimate starts).

use rbb_core::ball_process::BallProcess;
use rbb_core::config::Config;
use rbb_core::engine::Engine;
use rbb_core::metrics::NullObserver;
use rbb_core::rng::Xoshiro256pp;
use rbb_core::strategy::QueueStrategy;
use rbb_sim::{fmt_f64, run_trials_seeded, Table};
use rbb_stats::Summary;
use rbb_traversal::ProgressReport;

use crate::common::{header, ExpContext};

/// One row of the E17 table.
#[derive(Debug, Clone, serde::Serialize)]
pub struct E17Row {
    /// Number of bins/tokens.
    pub n: usize,
    /// Strategy label.
    pub strategy: String,
    /// Rounds `t`.
    pub rounds: u64,
    /// Mean over trials of the min-token progress.
    pub mean_min_progress: f64,
    /// Mean duty cycle (mean moves / t).
    pub mean_duty_cycle: f64,
    /// `mean_min_progress / (t / ln n)` — bounded below by a constant.
    pub min_progress_ratio: f64,
    /// Worst single-visit wait observed anywhere.
    pub worst_wait: u64,
}

/// Computes the progress table.
pub fn compute(
    ctx: &ExpContext,
    sizes: &[usize],
    strategies: &[QueueStrategy],
    trials: usize,
) -> Vec<E17Row> {
    let mut rows = Vec::new();
    for &strategy in strategies {
        for &n in sizes {
            let t = (20.0 * n as f64 * (n as f64).ln()) as u64;
            let scope = ctx.seeds.scope(&format!("{}-n{n}", strategy.label()));
            let reports: Vec<(u64, f64, f64, u64)> =
                run_trials_seeded(scope, trials, |_i, seed| {
                    let mut p = BallProcess::new(
                        Config::one_per_bin(n),
                        strategy,
                        Xoshiro256pp::seed_from(seed),
                    );
                    p.run(t, NullObserver);
                    let r = ProgressReport::from_process(&p);
                    (
                        r.min_moves,
                        r.mean_duty_cycle(),
                        r.min_progress_ratio(),
                        r.max_wait,
                    )
                });
            let mins = Summary::from_iter(reports.iter().map(|r| r.0 as f64));
            let duty = Summary::from_iter(reports.iter().map(|r| r.1));
            let ratio = Summary::from_iter(reports.iter().map(|r| r.2));
            rows.push(E17Row {
                n,
                strategy: strategy.label().to_string(),
                rounds: t,
                mean_min_progress: mins.mean(),
                mean_duty_cycle: duty.mean(),
                min_progress_ratio: ratio.mean(),
                worst_wait: reports.iter().map(|r| r.3).max().unwrap_or(0),
            });
        }
    }
    rows
}

/// Runs and prints E17.
pub fn run(ctx: &ExpContext) {
    header(
        "e17",
        "per-token walk progress under FIFO (Section 4)",
        "every ball performs Ω(t/log n) random-walk steps over any t = poly(n) rounds w.h.p.",
    );
    let sizes: Vec<usize> = ctx.pick(vec![256, 1024, 4096], vec![128, 256]);
    let strategies = [QueueStrategy::Fifo, QueueStrategy::Lifo];
    let trials = ctx.pick(10, 3);
    let rows = compute(ctx, &sizes, &strategies, trials);

    let mut table = Table::new([
        "strategy",
        "n",
        "t (rounds)",
        "mean min progress",
        "min/(t/ln n)",
        "duty cycle",
        "worst wait",
    ]);
    for r in &rows {
        table.row([
            r.strategy.clone(),
            r.n.to_string(),
            r.rounds.to_string(),
            fmt_f64(r.mean_min_progress, 0),
            fmt_f64(r.min_progress_ratio, 2),
            fmt_f64(r.mean_duty_cycle, 3),
            r.worst_wait.to_string(),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\npaper: FIFO ratio bounded below by a constant (measured ≫ 1 since waits are short); \
         duty cycle ≈ 0.586 (the measured busy-bin fraction, cf. E03); FIFO worst wait = O(log n)."
    );
    let _ = ctx.sink.write_json("rows", &rows);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_ratio_bounded_below() {
        let ctx = ExpContext::for_tests("e17");
        let rows = compute(&ctx, &[128], &[QueueStrategy::Fifo], 3);
        assert!(
            rows[0].min_progress_ratio > 1.0,
            "ratio {}",
            rows[0].min_progress_ratio
        );
    }

    #[test]
    fn duty_cycle_near_busy_fraction() {
        let ctx = ExpContext::for_tests("e17");
        let rows = compute(&ctx, &[256], &[QueueStrategy::Fifo], 3);
        assert!(
            (rows[0].mean_duty_cycle - 0.586).abs() < 0.03,
            "duty {}",
            rows[0].mean_duty_cycle
        );
    }

    #[test]
    fn fifo_waits_are_short() {
        let ctx = ExpContext::for_tests("e17");
        let rows = compute(&ctx, &[256], &[QueueStrategy::Fifo], 3);
        // FIFO wait is bounded by the load seen on arrival = O(log n).
        assert!(rows[0].worst_wait < 30, "worst wait {}", rows[0].worst_wait);
    }
}
