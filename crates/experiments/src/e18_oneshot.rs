//! E18 — one-shot baseline vs the repeated process (Section 5 tightness).
//!
//! One-shot balls-into-bins has max load `Θ(log n/log log n)` w.h.p.; the
//! paper proves `O(log n)` for the repeated process over poly windows and
//! conjectures the truth may exceed `log n/log log n` within such windows.
//! We compare (a) the one-shot max-load distribution, (b) the repeated
//! process's *per-round* max load at equilibrium, and (c) its max over a
//! `100n` window — the gap between (b)/(a) and (c) is the window effect.

use rbb_baselines::oneshot_max_load_distribution;
use rbb_core::engine::Engine;
use rbb_core::metrics::MaxLoadTracker;
use rbb_core::process::LoadProcess;
use rbb_sim::{fmt_f64, run_trials_seeded, Table};
use rbb_stats::{oneshot_max_load_estimate, Summary};

use crate::common::{header, ExpContext};

/// One row of the E18 table.
#[derive(Debug, Clone, serde::Serialize)]
pub struct E18Row {
    /// Number of bins/balls.
    pub n: usize,
    /// Mean one-shot max load.
    pub oneshot_mean: f64,
    /// Analytic leading-order `ln n / ln ln n`.
    pub oneshot_theory: f64,
    /// Repeated process: mean per-round max at equilibrium.
    pub repeated_round_mean: f64,
    /// Repeated process: mean max over the 100n window.
    pub repeated_window_mean: f64,
    /// Window/one-shot ratio.
    pub window_over_oneshot: f64,
}

/// Computes the comparison table.
pub fn compute(ctx: &ExpContext, sizes: &[usize], trials: usize) -> Vec<E18Row> {
    sizes
        .iter()
        .map(|&n| {
            let oneshot = oneshot_max_load_distribution(
                n,
                n as u64,
                trials * 10,
                ctx.seeds.scope(&format!("os-n{n}")).master(),
            );
            let scope = ctx.seeds.scope(&format!("rep-n{n}"));
            let reps: Vec<(f64, u32)> = run_trials_seeded(scope, trials, |_i, seed| {
                let mut p = LoadProcess::legitimate_start(n, seed);
                // Burn-in to equilibrium, then measure.
                p.run_silent(4 * n as u64);
                let mut t = MaxLoadTracker::new();
                p.run(100 * n as u64, &mut t);
                (t.mean_round_max(), t.window_max())
            });
            let round_mean = Summary::from_iter(reps.iter().map(|r| r.0)).mean();
            let window_mean = Summary::from_iter(reps.iter().map(|r| r.1 as f64)).mean();
            E18Row {
                n,
                oneshot_mean: oneshot.mean(),
                oneshot_theory: oneshot_max_load_estimate(n),
                repeated_round_mean: round_mean,
                repeated_window_mean: window_mean,
                window_over_oneshot: window_mean / oneshot.mean(),
            }
        })
        .collect()
}

/// Runs and prints E18.
pub fn run(ctx: &ExpContext) {
    header(
        "e18",
        "one-shot baseline vs the repeated process (Section 5)",
        "one-shot max is Θ(log n/log log n); the repeated process matches it per round and pays a window premium",
    );
    let sizes: Vec<usize> = ctx.pick(vec![256, 1024, 4096, 16384], vec![128, 512]);
    let trials = ctx.pick(10, 3);
    let rows = compute(ctx, &sizes, trials);

    let mut table = Table::new([
        "n",
        "one-shot mean max",
        "ln n/ln ln n",
        "repeated per-round mean max",
        "repeated window max (100n)",
        "window/one-shot",
    ]);
    for r in &rows {
        table.row([
            r.n.to_string(),
            fmt_f64(r.oneshot_mean, 2),
            fmt_f64(r.oneshot_theory, 2),
            fmt_f64(r.repeated_round_mean, 2),
            fmt_f64(r.repeated_window_mean, 2),
            fmt_f64(r.window_over_oneshot, 2),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nthe repeated process's per-round max tracks the one-shot level; \
         the poly-window max sits a bounded factor above — consistent with the paper's \
         conjecture that the window max can exceed log n/log log n but stays O(log n)."
    );
    let _ = ctx.sink.write_json("rows", &rows);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_round_max_close_to_oneshot() {
        let ctx = ExpContext::for_tests("e18");
        let rows = compute(&ctx, &[256], 3);
        let r = &rows[0];
        assert!(
            r.repeated_round_mean < 2.5 * r.oneshot_mean,
            "round {} vs oneshot {}",
            r.repeated_round_mean,
            r.oneshot_mean
        );
        assert!(r.repeated_round_mean > 0.8 * r.oneshot_mean);
    }

    #[test]
    fn window_max_exceeds_round_mean() {
        let ctx = ExpContext::for_tests("e18");
        let rows = compute(&ctx, &[256], 3);
        assert!(rows[0].repeated_window_mean > rows[0].repeated_round_mean);
    }

    #[test]
    fn window_premium_is_bounded() {
        let ctx = ExpContext::for_tests("e18");
        let rows = compute(&ctx, &[512], 3);
        assert!(
            rows[0].window_over_oneshot < 4.0,
            "{}",
            rows[0].window_over_oneshot
        );
    }
}
