//! E23 — multi-token traversal beyond the clique (extension).
//!
//! The paper solves multi-token traversal on the complete graph and leaves
//! general topologies open (Section 5). Using the token-identity graph
//! engine we measure the parallel cover time on ring / torus / hypercube /
//! random-regular at matched `n` and compare it to (a) the single-walk cover
//! time on the same topology and (b) the clique's `n log² n` scale. The
//! multi-token slowdown over a single walk stays a bounded small factor on
//! every regular topology (larger on the low-expansion ring, where queueing
//! delays compound the walk's Θ(n²) cover) — congestion never blows up,
//! consistent with the paper's conjecture.

use rbb_core::rng::Xoshiro256pp;
use rbb_graphs::{
    complete_with_loops, cover_time, hypercube, random_regular, ring, torus, Graph,
    GraphTokenProcess,
};
use rbb_sim::{fmt_f64, run_trials_seeded, Table};
use rbb_stats::Summary;

use crate::common::{header, ExpContext};

/// One row of the E23 table.
#[derive(Debug, Clone, serde::Serialize)]
pub struct E23Row {
    /// Topology label.
    pub topology: String,
    /// Number of nodes (= tokens).
    pub n: usize,
    /// Mean parallel cover time (all tokens cover).
    pub mean_parallel_cover: f64,
    /// Mean single-walk cover time on the same topology.
    pub mean_single_cover: f64,
    /// Multi-token slowdown over the single walk.
    pub slowdown: f64,
    /// Parallel cover normalized by the clique scale `n ln² n`.
    pub over_clique_scale: f64,
    /// Trials that hit the cap (expected 0).
    pub timeouts: usize,
}

fn build(name: &str, n: usize, seed: u64) -> Graph {
    match name {
        "clique+loops" => complete_with_loops(n),
        "hypercube" => hypercube((n as f64).log2().round() as u32),
        "torus" => {
            let side = (n as f64).sqrt().round() as usize;
            torus(side, side)
        }
        "random-4-regular" => {
            let mut rng = Xoshiro256pp::seed_from(seed ^ 0xC07E);
            random_regular(n, 4, &mut rng)
        }
        "ring" => ring(n),
        other => panic!("unknown topology {other}"),
    }
}

/// Topologies in the sweep (hardest last).
pub const TOPOLOGIES: [&str; 5] = [
    "clique+loops",
    "hypercube",
    "torus",
    "random-4-regular",
    "ring",
];

/// Computes the graph cover table.
pub fn compute(ctx: &ExpContext, n: usize, trials: usize) -> Vec<E23Row> {
    TOPOLOGIES
        .iter()
        .map(|&name| {
            let nf = n as f64;
            // Generous cap: the ring needs ~n²/duty rounds.
            let cap = (200.0 * nf * nf).max(1e6) as u64;
            let scope = ctx.seeds.scope(&format!("{name}-n{n}"));
            let results: Vec<(Option<u64>, Option<u64>)> =
                run_trials_seeded(scope, trials, |_i, seed| {
                    let g = build(name, n, seed);
                    let mut rng = Xoshiro256pp::seed_from(seed ^ 0x51);
                    let single = cover_time(&g, 0, cap, &mut rng);
                    let mut p = GraphTokenProcess::one_per_node(g, seed);
                    let parallel = p.run_to_cover(cap);
                    (parallel, single)
                });
            let par = Summary::from_iter(results.iter().filter_map(|r| r.0.map(|x| x as f64)));
            let single = Summary::from_iter(results.iter().filter_map(|r| r.1.map(|x| x as f64)));
            E23Row {
                topology: name.to_string(),
                n,
                mean_parallel_cover: par.mean(),
                mean_single_cover: single.mean(),
                slowdown: par.mean() / single.mean(),
                over_clique_scale: par.mean() / (nf * nf.ln() * nf.ln()),
                timeouts: results.iter().filter(|r| r.0.is_none()).count(),
            }
        })
        .collect()
}

/// Runs and prints E23.
pub fn run(ctx: &ExpContext) {
    header(
        "e23",
        "multi-token traversal beyond the clique (extension of Corollary 1)",
        "parallel cover stays within a small factor of the single walk on every regular topology",
    );
    let n = ctx.pick(256, 64);
    let trials = ctx.pick(5, 2);
    let rows = compute(ctx, n, trials);

    let mut table = Table::new([
        "topology",
        "n",
        "mean parallel cover",
        "mean single cover",
        "slowdown",
        "vs n ln^2 n",
        "timeouts",
    ]);
    for r in &rows {
        table.row([
            r.topology.clone(),
            r.n.to_string(),
            fmt_f64(r.mean_parallel_cover, 0),
            fmt_f64(r.mean_single_cover, 0),
            fmt_f64(r.slowdown, 2),
            fmt_f64(r.over_clique_scale, 2),
            r.timeouts.to_string(),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nreading: the multi-token slowdown over one walk is a bounded small factor on every \
         regular topology (≈3-4× on expanders like the clique and hypercube, somewhat larger \
         on the low-expansion ring where queueing delays compound the walk's own Θ(n²) cover) — \
         no topology shows the congestion blow-up that would refute the Section-5 conjecture."
    );
    let _ = ctx.sink.write_json("rows", &rows);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_topologies_cover_without_timeout() {
        let ctx = ExpContext::for_tests("e23");
        let rows = compute(&ctx, 64, 2);
        for r in &rows {
            assert_eq!(r.timeouts, 0, "{}", r.topology);
            assert!(r.mean_parallel_cover > 0.0);
            assert!(r.slowdown > 1.0, "{}: slowdown {}", r.topology, r.slowdown);
        }
    }

    #[test]
    fn ring_is_slowest_clique_fastest() {
        let ctx = ExpContext::for_tests("e23");
        let rows = compute(&ctx, 64, 2);
        let get = |t: &str| {
            rows.iter()
                .find(|r| r.topology == t)
                .unwrap()
                .mean_parallel_cover
        };
        assert!(get("ring") > get("clique+loops"));
        assert!(get("ring") > get("hypercube"));
    }

    #[test]
    fn slowdown_is_bounded_on_regular_graphs() {
        let ctx = ExpContext::for_tests("e23");
        let rows = compute(&ctx, 64, 2);
        for r in &rows {
            assert!(r.slowdown < 30.0, "{}: {}", r.topology, r.slowdown);
        }
    }
}
