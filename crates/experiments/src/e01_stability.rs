//! E01 — Theorem 1(a): stability.
//!
//! Starting from a legitimate configuration (one ball per bin), the maximum
//! load over a polynomially long window stays `O(log n)` w.h.p. We measure
//! `max_{t ≤ T} M(t)` over `T = min(n², 200·n)` rounds across trials, report
//! the normalized ratio to `ln n`, the empirical violation probability with
//! its Wilson upper bound (the w.h.p. claim, machine-checked), and fit
//! `window max = a + b·ln n` — the paper predicts a good log fit with
//! constant `b` (and `O(√t)`-free shape).
//!
//! Each size runs as a declarative [`EnsembleSpec`] whose `master_seed` is
//! this experiment's scoped seed-tree master, so the migration onto the
//! ensemble API reproduces the published trajectories bit for bit.

use rbb_core::config::LegitimacyThreshold;
use rbb_sim::{fmt_f64, EnsembleSpec, MetricKind, MetricSpec, ScenarioSpec, Table};
use rbb_stats::log_fit;

use crate::common::{header, ExpContext};

/// One row of the E01 table.
#[derive(Debug, Clone, serde::Serialize)]
pub struct E01Row {
    /// Number of bins/balls.
    pub n: usize,
    /// Window length in rounds.
    pub window: u64,
    /// Trials run.
    pub trials: usize,
    /// Mean over trials of the window max load.
    pub mean_window_max: f64,
    /// Worst window max over trials.
    pub worst_window_max: u32,
    /// `mean_window_max / ln n`.
    pub ratio_to_ln_n: f64,
    /// The legitimacy bound `⌈4 ln n⌉` used by the tracker.
    pub legitimacy_bound: u32,
    /// Trials whose window max exceeded the bound (should be 0).
    pub violations: usize,
    /// Empirical `P(window max > bound)` — the tail the w.h.p. claim bounds.
    pub p_violation: f64,
    /// Wilson 95% upper bound on that tail probability.
    pub p_violation_hi: f64,
}

/// The measured window: `min(200·n, n²)` rounds.
fn window_for(n: usize) -> u64 {
    (200 * n as u64).min((n as u64) * (n as u64))
}

/// The declarative scenario behind one E01 cell: the paper's process from
/// the legitimate start, run for the full window.
pub fn spec_for(n: usize) -> ScenarioSpec {
    ScenarioSpec::builder(n)
        .name("e01-stability")
        .horizon_rounds(window_for(n))
        .build()
}

/// The declarative ensemble behind one E01 row: `trials` seeds of
/// [`spec_for`], with the stability-violation tail (`window max > 4 ln n`,
/// i.e. `>= bound + 1`) as the reported threshold.
pub fn ensemble_for(ctx: &ExpContext, n: usize, trials: usize) -> EnsembleSpec {
    let bound = LegitimacyThreshold::default().bound(n);
    EnsembleSpec::new(
        spec_for(n),
        ctx.seeds.scope(&format!("n{n}")).master(),
        trials,
    )
    .with_metrics(vec![MetricSpec::with_thresholds(
        MetricKind::WindowMaxLoad,
        vec![bound as f64 + 1.0],
    )])
}

/// Computes the stability table: one streaming ensemble per size. Seeds
/// derive exactly as the pre-ensemble (sweep-based) implementation derived
/// them, so the published numbers are preserved bit for bit.
pub fn compute(ctx: &ExpContext, sizes: &[usize], trials: usize) -> Vec<E01Row> {
    let thr = LegitimacyThreshold::default();
    sizes
        .iter()
        .map(|&n| {
            let report = ensemble_for(ctx, n, trials).run().expect("valid ensemble");
            let wml = report
                .metric(MetricKind::WindowMaxLoad)
                .expect("requested metric");
            let bound = thr.bound(n);
            let tail = wml.tail_at(bound as f64 + 1.0).expect("requested tail");
            E01Row {
                n,
                window: window_for(n),
                trials,
                mean_window_max: wml.mean,
                worst_window_max: wml.max as u32,
                ratio_to_ln_n: wml.mean / (n as f64).ln(),
                legitimacy_bound: bound,
                violations: tail.exceed_count as usize,
                p_violation: tail.probability,
                p_violation_hi: tail.wilson.hi,
            }
        })
        .collect()
}

/// Runs and prints E01.
pub fn run(ctx: &ExpContext) {
    header(
        "e01",
        "stability of the maximum load (Theorem 1(a))",
        "from a legitimate start, M(t) = O(log n) for all t in a poly(n) window, w.h.p.",
    );
    let sizes: Vec<usize> = ctx.pick(vec![256, 512, 1024, 2048, 4096, 8192], vec![128, 256]);
    let trials = ctx.pick(10, 3);
    let rows = compute(ctx, &sizes, trials);

    let mut table = Table::new([
        "n",
        "window",
        "trials",
        "mean window max",
        "worst",
        "mean/ln n",
        "4 ln n bound",
        "violations",
        "P(viol)",
        "wilson hi",
    ]);
    for r in &rows {
        table.row([
            r.n.to_string(),
            r.window.to_string(),
            r.trials.to_string(),
            fmt_f64(r.mean_window_max, 2),
            r.worst_window_max.to_string(),
            fmt_f64(r.ratio_to_ln_n, 3),
            r.legitimacy_bound.to_string(),
            r.violations.to_string(),
            fmt_f64(r.p_violation, 3),
            fmt_f64(r.p_violation_hi, 3),
        ]);
    }
    print!("{}", table.render());

    if rows.len() >= 3 {
        let xs: Vec<f64> = rows.iter().map(|r| r.n as f64).collect();
        let ys: Vec<f64> = rows.iter().map(|r| r.mean_window_max).collect();
        let fit = log_fit(&xs, &ys);
        println!(
            "\nlog fit: window max ≈ {} + {}·ln n   (R² = {})",
            fmt_f64(fit.intercept, 2),
            fmt_f64(fit.slope, 2),
            fmt_f64(fit.r_squared, 4)
        );
        println!(
            "paper: O(log n) ⇒ slope is a constant; any n^ε or √window growth would break the fit."
        );
    }
    let _ = ctx.sink.write_json("rows", &rows);
    let _ = ctx.sink.write_text("table", &{
        let mut s = String::new();
        for r in &rows {
            s.push_str(&format!("{:?}\n", r));
        }
        s
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbb_core::metrics::ObserverStack;
    use rbb_sim::sweep_par_seeded;

    #[test]
    fn quick_compute_is_stable() {
        let ctx = ExpContext::for_tests("e01");
        let rows = compute(&ctx, &[128, 256], 3);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert_eq!(r.violations, 0, "stability violated at n={}", r.n);
            assert_eq!(r.p_violation, 0.0);
            assert!(r.p_violation_hi < 1.0, "Wilson bound is informative");
            assert!(r.mean_window_max >= 1.0);
            assert!(r.ratio_to_ln_n < 4.0, "ratio {}", r.ratio_to_ln_n);
        }
    }

    #[test]
    fn window_is_capped_by_n_squared() {
        let ctx = ExpContext::for_tests("e01");
        let rows = compute(&ctx, &[16], 1);
        assert_eq!(rows[0].window, 256);
    }

    #[test]
    fn deterministic() {
        let ctx = ExpContext::for_tests("e01");
        let a = compute(&ctx, &[64], 2);
        let b = compute(&ctx, &[64], 2);
        assert_eq!(a[0].mean_window_max, b[0].mean_window_max);
    }

    /// The migration contract: the ensemble reproduces the historical
    /// sweep-based trial results bit for bit (same seeds, same engine).
    #[test]
    fn ensemble_matches_historical_sweep() {
        let ctx = ExpContext::for_tests("e01");
        let sizes = [64usize, 128];
        let trials = 3;
        let rows = compute(&ctx, &sizes, trials);

        let grid = sweep_par_seeded(
            ctx.seeds,
            &sizes,
            trials,
            |n| format!("n{n}"),
            |&n, _i, seed| {
                let mut scenario = spec_for(n).scenario_seeded(seed).expect("valid spec");
                let mut stack = ObserverStack::new().with_max_load();
                scenario.run_observed(&mut stack);
                stack.max_load.expect("enabled").window_max()
            },
        );
        for (row, (n, maxes)) in rows.iter().zip(grid) {
            assert_eq!(row.n, n);
            // Same Welford fold in the same trial order: exactly equal.
            let s = rbb_stats::Summary::from_iter(maxes.iter().map(|&m| m as f64));
            assert_eq!(row.mean_window_max, s.mean(), "n = {n}");
            assert_eq!(row.worst_window_max, *maxes.iter().max().unwrap());
        }
    }
}
